#!/usr/bin/env python
"""Chaos-soak harness: overload × armed faults against the serving layer.

Drives the seeded loadgen at a multiple of the service's *measured*
capacity (calibrated closed-loop on a clean warm-up service), open-loop so
arrivals do not self-limit, with a fault plan armed and elastic recovery
on — then asserts the liveness invariants the overload design promises:

1. **no hang** — the soak finishes inside its wall budget and every
   submission reached a terminal outcome;
2. **bounded queue** — observed queue depth never exceeds the configured
   admission bound (sampled concurrently throughout the run);
3. **zero non-shed failures** — every query is answered, degraded,
   expired-by-its-own-deadline, or shed with a structured 503; nothing
   fails for any other reason;
4. **goodput floor** — completed queries per second stay at or above
   ``--goodput-floor`` × calibrated capacity despite the overload;
5. **bounded p99** — admitted queries' p99 wall latency stays under
   ``--p99-budget`` seconds (sheds return immediately and are excluded);
6. **truthful health** — every sampled ``healthz`` state is consistent
   with the admission snapshot at that instant, and the service ends the
   run admitting again (``ok``/``degraded``);
7. **bit-exact answers after the storm** — once pressure subsides,
   admitted non-degraded exact queries return bit-identical rows to a
   solo fault-free run (run under ``REPRO_CHECK=cheap`` to also arm the
   differential-replay validator underneath).

Run the CI smoke configuration::

    python scripts/soak.py --duration 60 --factor 4 \
        --faults "seed:3,crash@25:1,corrupt:0.02,checksum:1,tear:0.05,limit:6" \
        --elastic replica --check cheap --memory-words 30000

``--memory-words`` arms the memory ladder under the storm: the soak
service runs inside a per-rank budget (with ``tear:RATE`` injecting torn
spill-segment writes), so admission control, elastic recovery, and the
spill/shrink ladder all defend the same run — still with zero non-shed
failures and bit-identical post-storm answers.

Exit code 0 when every invariant held.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.graphs import rmat_graph  # noqa: E402
from repro.serve import BCService, OverloadConfig  # noqa: E402
from repro.serve.loadgen import (  # noqa: E402
    DEFAULT_MIX,
    DirectClient,
    generate_queries,
    run_load,
)

#: soak mix adds whole-graph exact ``bc`` so brownout has something to
#: downgrade (the default mix is all per-source / already-approximate)
SOAK_MIX: dict[str, float] = {**DEFAULT_MIX, "bc": 0.05}


def calibrate(graph, args) -> float:
    """Closed-loop queries/second of a clean service (no faults, no bounds)."""
    service = BCService(
        graph,
        p=args.p,
        max_batch=args.max_batch,
        batch_window=args.batch_window,
        cache_capacity=args.cache_capacity,
        check=args.check,
    )
    try:
        specs = generate_queries(args.calibrate_queries, graph.n, seed=args.seed + 1)
        report = run_load(
            DirectClient(service), specs, concurrency=args.concurrency
        )
    finally:
        service.close()
    if report.failed:
        raise SystemExit(f"calibration run failed {report.failed} queries")
    return report.throughput_qps


def soak(graph, capacity_qps: float, args) -> tuple[dict, int]:
    """One soak leg at ``args.factor`` × capacity; returns (record, rc)."""
    cfg = OverloadConfig(
        max_queued=args.max_queued,
        max_queued_seconds=args.max_queued_seconds,
    )
    service = BCService(
        graph,
        p=args.p,
        max_batch=args.max_batch,
        batch_window=args.batch_window,
        cache_capacity=args.cache_capacity,
        faults=args.faults,
        elastic=args.elastic,
        check=args.check,
        overload=cfg,
        memory_words=args.memory_words,
        spill_dir=args.spill_dir,
    )
    offered = args.factor * capacity_qps
    n_queries = max(int(offered * args.duration), args.concurrency)
    specs = generate_queries(n_queries, graph.n, seed=args.seed, mix=SOAK_MIX)
    # open-loop needs enough client threads that arrivals are not
    # self-limited below the admission bound: the whole point is to fill
    # the queue past its watermarks and watch the service defend itself
    drive_concurrency = max(args.concurrency, 2 * args.max_queued + 32)

    # concurrent sampler: queue bound + health truthfulness, the whole run
    samples: list[dict] = []
    violations: list[str] = []
    stop = threading.Event()

    def sample_loop() -> None:
        while not stop.wait(args.sample_interval):
            health = service.health()
            snap = service.admission.snapshot()
            samples.append({"health": health["state"], **snap})
            if snap["queued_count"] > args.max_queued:
                violations.append(
                    f"queue depth {snap['queued_count']} exceeded the "
                    f"{args.max_queued} admission bound"
                )
            if snap["shedding"] and health["state"] not in (
                "overloaded",
                "draining",
            ):
                violations.append(
                    f"shedding active but healthz said {health['state']!r}"
                )

    sampler = threading.Thread(target=sample_loop, daemon=True)
    sampler.start()
    hang_budget = args.duration * 4 + 120
    result: dict = {}

    def drive() -> None:
        result["report"] = run_load(
            DirectClient(service),
            specs,
            concurrency=drive_concurrency,
            offered_qps=offered,
        )

    driver = threading.Thread(target=drive, daemon=True)
    t0 = time.monotonic()
    driver.start()
    driver.join(hang_budget)
    wall = time.monotonic() - t0
    stop.set()
    sampler.join(5.0)

    rc = 0
    checks: list[tuple[str, bool, str]] = []

    def check(name: str, ok: bool, detail: str) -> None:
        nonlocal rc
        checks.append((name, ok, detail))
        if not ok:
            rc = 1

    if driver.is_alive():
        check("no-hang", False, f"loadgen still running after {hang_budget:.0f}s")
        service.close(drain_timeout=5.0)
        record = {"factor": args.factor, "hung": True}
        _print_checks(checks)
        return record, 1
    report = result["report"]
    check("no-hang", True, f"finished in {wall:.1f}s (budget {hang_budget:.0f}s)")
    check(
        "terminal-outcomes",
        report.completed + report.shed + report.expired + report.failed
        == report.queries,
        f"{report.queries} submissions all reached terminal outcomes",
    )
    check(
        "bounded-queue",
        not violations,
        violations[0] if violations else (
            f"max sampled depth "
            f"{max((s['queued_count'] for s in samples), default=0)} "
            f"<= bound {args.max_queued} over {len(samples)} samples"
        ),
    )
    check(
        "zero-nonshed-failures",
        report.failed == 0,
        f"{report.failed} hard failures "
        f"({report.shed} shed, {report.degraded} degraded, "
        f"{report.expired} expired are allowed)",
    )
    floor = args.goodput_floor * capacity_qps
    check(
        "goodput-floor",
        report.goodput_qps >= floor,
        f"goodput {report.goodput_qps:.1f} q/s >= floor {floor:.1f} q/s "
        f"({args.goodput_floor:.0%} of {capacity_qps:.1f} q/s capacity)",
    )
    p99 = report.percentile(99)
    check(
        "bounded-p99",
        p99 <= args.p99_budget,
        f"admitted p99 {p99 * 1e3:.0f} ms <= budget {args.p99_budget * 1e3:.0f} ms",
    )

    # post-storm: pressure subsides, service must recover to a live state
    # and answer exact queries bit-identically to a solo fault-free run
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if service.health()["state"] in ("ok", "degraded") and not (
            service.admission.brownout_active
        ):
            break
        time.sleep(0.1)
    health = service.health()
    check(
        "recovers-after-storm",
        health["state"] in ("ok", "degraded"),
        f"post-storm healthz: {health['state']}",
    )
    exact_ok = True
    detail = ""
    rng = np.random.default_rng(args.seed)
    probe_sources = rng.choice(
        graph.n, size=min(args.verify_queries, graph.n), replace=False
    )
    reference = _reference_rows(graph, probe_sources, args)
    for i, src in enumerate(probe_sources):
        qid = service.submit("bc_source", source=int(src))
        try:
            row = service.result(qid, timeout=120.0)
        except Exception as exc:
            exact_ok, detail = False, f"verification query failed: {exc}"
            break
        status = service.poll(qid)
        if status["degraded"]:
            exact_ok, detail = False, "verification query answered degraded"
            break
        if not np.array_equal(row, reference[i]):
            exact_ok, detail = False, f"source {src} diverged from solo run"
            break
    check(
        "bit-identical-exact",
        exact_ok,
        detail or f"{len(probe_sources)} admitted exact queries match solo runs",
    )

    service.close(drain_timeout=10.0)
    stats = service.stats()
    injected = (
        service.machine.faults.injected
        if service.machine.faults is not None
        else 0
    )
    _print_checks(checks)
    print(f"  {report.summary()}")
    machine_recoveries = len(getattr(service.machine, "recoveries", ()))
    print(
        f"  service: {injected} faults injected, "
        f"{machine_recoveries} elastic recoveries "
        f"({stats['recoveries']} via the service retry ladder), "
        f"{stats['retries']} retries, breaker opened "
        f"{service.breaker.opened_total}x, "
        f"{stats['dispatcher_restarts']} dispatcher restarts, "
        f"peak queue {stats['admission']['peak_queued']}"
    )
    if args.memory_words is not None:
        mem = service.machine.memory.snapshot()
        print(
            f"  memory: peak {service.machine.memory_peak()} words/rank "
            f"(budget {args.memory_words}), {mem['reliefs']} reliefs, "
            f"{mem.get('spilled_blocks', 0)} blocks spilled, "
            f"{mem.get('torn_writes', 0)} torn writes absorbed"
        )
    record = {
        "factor": args.factor,
        "offered_qps": offered,
        "goodput_qps": report.goodput_qps,
        "p99_ms": p99 * 1e3,
        "shed": report.shed,
        "degraded": report.degraded,
        "expired": report.expired,
        "failed": report.failed,
        "peak_queued": stats["admission"]["peak_queued"],
        "recoveries": stats["recoveries"],
        "checks": {name: ok for name, ok, _ in checks},
    }
    return record, rc


def _reference_rows(graph, sources, args):
    from repro.core.mfbc import mfbc_per_source
    from repro.dist.engine import DistributedEngine
    from repro.machine.machine import Machine

    engine = DistributedEngine(Machine(args.p), check=args.check)
    return mfbc_per_source(
        graph, np.asarray(sources, dtype=np.int64), engine=engine
    )


def _print_checks(checks) -> None:
    for name, ok, detail in checks:
        print(f"  [{'PASS' if ok else 'FAIL'}] {name}: {detail}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="soak.py", description="chaos soak for repro.serve overload"
    )
    parser.add_argument("--duration", type=float, default=60.0)
    parser.add_argument(
        "--factor",
        type=float,
        default=4.0,
        help="offered load as a multiple of calibrated capacity",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=int, default=7, help="log2 vertices (R-MAT)")
    parser.add_argument("--degree", type=int, default=8)
    parser.add_argument("--p", type=int, default=4)
    parser.add_argument("--concurrency", type=int, default=16)
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--batch-window", type=float, default=0.005)
    parser.add_argument(
        "--cache-capacity",
        type=int,
        default=8,
        help="score-cache entries; small by default so the soak load "
        "actually reaches the machine instead of the cache",
    )
    parser.add_argument("--max-queued", type=int, default=64)
    parser.add_argument("--max-queued-seconds", type=float, default=None)
    parser.add_argument("--faults", default=None)
    parser.add_argument(
        "--memory-words",
        type=int,
        default=None,
        help="per-rank memory budget for the soak service (words); arms "
        "the spill/shrink ladder under the storm (calibration stays clean)",
    )
    parser.add_argument(
        "--spill-dir", default=None, help="spill-segment directory"
    )
    parser.add_argument("--elastic", default=None)
    parser.add_argument("--check", default=None)
    parser.add_argument("--calibrate-queries", type=int, default=150)
    parser.add_argument("--goodput-floor", type=float, default=0.5)
    parser.add_argument("--p99-budget", type=float, default=30.0)
    parser.add_argument("--sample-interval", type=float, default=0.25)
    parser.add_argument("--verify-queries", type=int, default=4)
    parser.add_argument("--json", default=None, help="write the record here")
    args = parser.parse_args(argv)

    graph = rmat_graph(args.scale, args.degree, seed=args.seed)
    print(f"graph: {graph}")
    capacity = calibrate(graph, args)
    print(f"calibrated capacity: {capacity:.1f} q/s (closed-loop, clean)")
    print(
        f"soak: {args.factor}x overload for {args.duration:.0f}s, "
        f"faults={args.faults!r}, elastic={args.elastic!r}, "
        f"max_queued={args.max_queued}"
    )
    record, rc = soak(graph, capacity, args)
    if args.json:
        Path(args.json).write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {args.json}")
    print("SOAK PASS" if rc == 0 else "SOAK FAIL", flush=True)
    return rc


if __name__ == "__main__":
    sys.exit(main())
