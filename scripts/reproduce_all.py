#!/usr/bin/env python
"""Run every figure/table bench and assemble a measured-results report.

Usage:
    python scripts/reproduce_all.py [--output EXPERIMENTS-measured.md]

Runs ``pytest benchmarks/ --benchmark-only`` (each bench prints its rows and
writes them under ``benchmarks/results/``), then stitches all result tables
into one markdown report with a pass/fail summary per artifact.
"""

from __future__ import annotations

import argparse
import datetime
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RESULTS = ROOT / "benchmarks" / "results"

#: artifact → result files, in paper order
ARTIFACTS = [
    ("Figure 1(a) — MFBC strong scaling, real graphs", ["fig1a_strong_real_mfbc"]),
    ("Figure 1(b) — CombBLAS strong scaling, real graphs", ["fig1b_strong_real_combblas"]),
    ("Figure 1(c) — R-MAT strong scaling", ["fig1c_strong_rmat", "fig1c_dense_headline"]),
    ("Figure 2(a) — edge weak scaling", ["fig2a_edge_weak"]),
    ("Figure 2(b) — vertex weak scaling", ["fig2b_vertex_weak"]),
    ("Table 2 — graph properties", ["table2_graph_stats"]),
    ("Table 3 — critical-path costs", ["table3_critical_path"]),
    ("§5.3 theory", [
        "theory_bandwidth", "theory_scaling_range", "theory_latency",
        "theory_headline",
    ]),
    ("Ablations", [
        "ablation_variants", "ablation_selector", "ablation_batch_size",
        "ablation_mfbr_iterations", "ablation_weighted_frontiers",
        "ablation_load_balance",
    ]),
    ("Supplementary", ["traffic_breakdown", "kernel_throughput"]),
]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=str(ROOT / "EXPERIMENTS-measured.md"))
    parser.add_argument(
        "--skip-run", action="store_true",
        help="only assemble the report from existing results",
    )
    args = parser.parse_args()

    rc = 0
    if not args.skip_run:
        rc = subprocess.call(
            [sys.executable, "-m", "pytest", "benchmarks/", "--benchmark-only", "-q"],
            cwd=ROOT,
        )

    lines = [
        "# Measured reproduction results",
        "",
        f"Generated {datetime.datetime.now():%Y-%m-%d %H:%M} by "
        "`scripts/reproduce_all.py`; expected shapes and paper-vs-measured "
        "commentary live in EXPERIMENTS.md.",
        "",
        "Bench suite exit status: "
        + (
            "not run (--skip-run; tables from existing results)"
            if args.skip_run
            else ("PASS" if rc == 0 else f"FAIL ({rc})")
        ),
    ]
    missing = []
    for title, names in ARTIFACTS:
        lines.append(f"\n## {title}\n")
        for name in names:
            path = RESULTS / f"{name}.txt"
            if not path.exists():
                missing.append(name)
                lines.append(f"*missing: {name}.txt — bench did not run*")
                continue
            lines.append("```")
            lines.append(path.read_text().rstrip())
            lines.append("```")
    out = Path(args.output)
    out.write_text("\n".join(lines) + "\n")
    print(f"wrote {out} ({len(missing)} missing artifacts)")
    return rc if rc else (1 if missing else 0)


if __name__ == "__main__":
    sys.exit(main())
