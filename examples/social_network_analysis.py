#!/usr/bin/env python
"""Social-network analysis: find broker vertices in an Orkut-like graph.

The paper's motivating workload (§1, §7): centrality on power-law social
networks.  This example builds the Orkut SNAP stand-in, computes approximate
betweenness centrality from a random source sample (the standard technique
for large graphs — Bader et al. 2007, cited as [4] in the paper), and
reports the "broker" vertices that connect communities, contrasting them
with mere high-degree hubs.

Run:  python examples/social_network_analysis.py [--graph ork] [--sources 64]
"""

import argparse

import numpy as np

from repro import mfbc, snap_standin
from repro.analysis import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--graph", default="ork", choices=["frd", "ork", "ljm", "cit"]
    )
    parser.add_argument("--sources", type=int, default=64, help="sampled sources")
    parser.add_argument(
        "--scale-offset", type=int, default=-4, help="graph size adjustment"
    )
    args = parser.parse_args()

    g = snap_standin(args.graph, scale_offset=args.scale_offset, seed=7)
    print(f"graph: {g} (avg degree {g.average_degree():.1f})")

    rng = np.random.default_rng(0)
    sources = rng.choice(g.n, size=min(args.sources, g.n), replace=False)
    result = mfbc(g, sources=sources)
    # scale sampled scores up to estimate full BC
    est = result.scores * (g.n / len(sources))

    deg = g.degrees()
    top_bc = np.argsort(est)[::-1][:10]
    rows = []
    for v in top_bc:
        # a broker has higher centrality than its degree alone explains
        degree_rank = int((deg > deg[v]).sum()) + 1
        rows.append((int(v), f"{est[v]:.3e}", int(deg[v]), degree_rank))
    print("top-10 estimated betweenness (brokers bridge communities):")
    print(
        format_table(
            ["vertex", "est. λ", "degree", "degree rank"],
            rows,
        )
    )

    # correlation between degree and centrality: high but not 1 — the gap is
    # where betweenness adds information beyond degree
    order_bc = np.argsort(np.argsort(est))
    order_dg = np.argsort(np.argsort(deg))
    rho = np.corrcoef(order_bc, order_dg)[0, 1]
    print(f"\nSpearman rank correlation(degree, betweenness) = {rho:.3f}")
    print("vertices whose BC rank beats their degree rank are the brokers")


if __name__ == "__main__":
    main()
