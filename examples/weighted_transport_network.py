#!/usr/bin/env python
"""Weighted-graph centrality: a transportation-network contingency study.

The paper's headline generality claim: MFBC handles *weighted* graphs, which
BFS-based algebraic BC codes (CombBLAS) cannot.  This example builds a
synthetic road network — a planar-ish grid with random travel times —
computes weighted betweenness centrality, and runs a contingency analysis
(remove the most central junction, recompute, measure how centrality
redistributes), the power-grid/transportation use case the paper cites
([24]: betweenness for power grid contingency analysis).

Run:  python examples/weighted_transport_network.py [--side 14]
"""

import argparse

import numpy as np

from repro import Graph, mfbc
from repro.analysis import format_table
from repro.baselines import combblas_bc


def grid_road_network(side: int, seed: int = 3) -> Graph:
    """A side×side grid with a few diagonal shortcuts and travel-time weights."""
    rng = np.random.default_rng(seed)
    src, dst = [], []
    vid = lambda r, c: r * side + c
    for r in range(side):
        for c in range(side):
            if c + 1 < side:
                src.append(vid(r, c)), dst.append(vid(r, c + 1))
            if r + 1 < side:
                src.append(vid(r, c)), dst.append(vid(r + 1, c))
    # a handful of express shortcuts
    for _ in range(side):
        a, b = rng.integers(0, side * side, 2)
        if a != b:
            src.append(a), dst.append(b)
    w = rng.integers(1, 10, len(src)).astype(float)
    return Graph(side * side, np.array(src), np.array(dst), w, name="roads")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--side", type=int, default=12, help="grid side length")
    args = parser.parse_args()

    g = grid_road_network(args.side)
    print(f"road network: {g}")

    # CombBLAS-style BC refuses weighted graphs — MFBC's differentiator.
    try:
        combblas_bc(g)
    except ValueError as exc:
        print(f"CombBLAS-style baseline: rejected as expected ({exc})")

    base = mfbc(g)
    top = int(np.argmax(base.scores))
    print(
        f"\nmost critical junction: vertex {top} "
        f"(λ = {base.scores[top]:.0f}, row {top // args.side}, col {top % args.side})"
    )

    # contingency: close that junction and recompute
    keep = (g.src != top) & (g.dst != top)
    g2 = Graph(g.n, g.src[keep], g.dst[keep], g.weight[keep], name="roads-closed")
    after = mfbc(g2)

    # where does the load move?
    delta = after.scores - base.scores
    gainers = np.argsort(delta)[::-1][:5]
    rows = [
        (int(v), f"{base.scores[v]:.0f}", f"{after.scores[v]:.0f}", f"{delta[v]:+.0f}")
        for v in gainers
    ]
    print("\njunctions absorbing the diverted shortest paths:")
    print(format_table(["vertex", "λ before", "λ after", "Δ"], rows))

    unreachable = int(np.isinf(base.scores).sum())
    print(
        f"\nweighted MFBC iterations per batch reflect the weighted-frontier "
        f"churn the paper discusses (§7.2): "
        f"{base.stats.batches[0].mfbf_iterations} Bellman-Ford rounds vs "
        f"hop diameter {g.diameter_hops()}"
    )
    assert unreachable == 0


if __name__ == "__main__":
    main()
