#!/usr/bin/env python
"""Quickstart: betweenness centrality with MFBC in a dozen lines.

Generates an R-MAT social-network-like graph, computes exact betweenness
centrality with the sequential MFBC engine, validates it against the
classic Brandes algorithm, and prints the most central vertices.

Run:  python examples/quickstart.py [--scale N]
"""

import argparse

import numpy as np

from repro import betweenness_centrality, brandes_bc, mfbc, rmat_graph


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=9, help="log2 vertex count")
    parser.add_argument("--degree", type=int, default=8, help="average degree")
    args = parser.parse_args()

    g = rmat_graph(scale=args.scale, avg_degree=args.degree, seed=42)
    print(f"graph: {g}")

    result = mfbc(g)
    print(
        f"MFBC: {result.stats.summary()['matmuls']} generalized matmuls, "
        f"{result.elapsed_seconds:.2f}s, "
        f"{result.teps(g) / 1e6:.1f} MTEPS"
    )

    # the convenience API returns networkx-compatible normalized scores
    normalized = betweenness_centrality(g, normalized=True)
    top = np.argsort(result.scores)[::-1][:5]
    print("top-5 central vertices (vertex: raw λ, normalized):")
    for v in top:
        print(f"  {v}: {result.scores[v]:.1f}, {normalized[v]:.5f}")

    # sanity: agree with the textbook Brandes algorithm on a source sample
    sample = np.arange(0, g.n, max(g.n // 64, 1))
    ours = mfbc(g, sources=sample).scores
    ref = brandes_bc(g, sources=sample)
    assert np.allclose(ours, ref, atol=1e-6), "MFBC disagrees with Brandes!"
    print(f"validated against Brandes on {len(sample)} sources ✓")


if __name__ == "__main__":
    main()
