#!/usr/bin/env python
"""Hypergraph analysis: tensor contractions feeding betweenness centrality.

CTF's pitch (§6.1 of the paper): "tensors of order higher than two can
represent hypergraphs".  This example builds a synthetic author–paper–venue
collaboration hypergraph as an order-3 sparse tensor, then uses the same
monoid-contraction machinery that powers MFBC to:

1. project it to a venue-weighted co-authorship graph (two contractions),
2. run MFBC betweenness centrality on that projection to find the
   cross-community broker authors.

Run:  python examples/hypergraph_analysis.py [--authors 60]
"""

import argparse

import numpy as np

from repro import Graph, mfbc
from repro.algebra import REAL_PLUS_TIMES
from repro.analysis import format_table
from repro.tensor import SpTensor, contract
from repro.algebra.monoid import PlusMonoid

PLUS = PlusMonoid()
SPEC = REAL_PLUS_TIMES.matmul_spec()


def collaboration_tensor(n_authors: int, n_papers: int, n_venues: int, seed=0):
    """Authors cluster into two communities publishing at distinct venues;
    a few bridge authors publish across both."""
    rng = np.random.default_rng(seed)
    half = n_authors // 2
    a_idx, p_idx, v_idx = [], [], []
    for paper in range(n_papers):
        community = paper % 2
        venue = rng.integers(0, n_venues // 2) + community * (n_venues // 2)
        lo = 0 if community == 0 else half
        team = rng.choice(np.arange(lo, lo + half), size=rng.integers(2, 5),
                          replace=False)
        # occasionally a bridge author from the other community joins
        if rng.random() < 0.15:
            other_lo = half if community == 0 else 0
            team = np.append(team, rng.integers(other_lo, other_lo + 3))
        for a in team:
            a_idx.append(int(a))
            p_idx.append(paper)
            v_idx.append(int(venue))
    return SpTensor(
        (n_authors, n_papers, n_venues),
        (np.array(a_idx), np.array(p_idx), np.array(v_idx)),
        {"w": np.ones(len(a_idx))},
        PLUS,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--authors", type=int, default=60)
    parser.add_argument("--papers", type=int, default=240)
    parser.add_argument("--venues", type=int, default=8)
    args = parser.parse_args()

    t = collaboration_tensor(args.authors, args.papers, args.venues, seed=2)
    print(f"hypergraph tensor: {t}")

    # venue prestige weights (e.g. impact): contract the venue mode away
    prestige = SpTensor(
        (args.venues,),
        (np.arange(args.venues),),
        {"w": np.linspace(1.0, 2.0, args.venues)},
        PLUS,
    )
    # AP(author, paper) = Σ_v T(a, p, v) · prestige(v)
    ap = contract(t, "apv", prestige, "v", "ap", SPEC)
    print(f"author-paper incidence (venue-weighted): nnz = {ap.nnz}")

    # co-authorship strength: C(a, b) = Σ_p AP(a, p) · AP(b, p)
    co = contract(ap, "ap", ap, "bp", "ab", SPEC)
    mat = co.unfold([0])  # order-2 tensor to matrix view
    # strip the diagonal (self-collaboration); undirected → one orientation
    keep = mat.rows < mat.cols
    g = Graph(
        args.authors, mat.rows[keep], mat.cols[keep], None, name="coauthors"
    )
    print(f"projected co-authorship graph: {g}")

    result = mfbc(g)
    top = np.argsort(result.scores)[::-1][:8]
    half = args.authors // 2
    table = [
        (
            int(a),
            "A" if a < half else "B",
            f"{result.scores[a]:.0f}",
        )
        for a in top
    ]
    print("\nmost central authors (community brokers rank highest):")
    print(format_table(["author", "community", "betweenness"], table))

    # the designed bridge authors (ids 0-2 and half..half+2) should dominate
    bridge_ids = set(range(3)) | set(range(half, half + 3))
    hits = sum(1 for a in top[:4] if int(a) in bridge_ids)
    print(f"\n{hits}/4 of the top-4 are designed bridge authors")


if __name__ == "__main__":
    main()
