#!/usr/bin/env python
"""Distributed MFBC on the simulated machine: costs, plans, and policies.

Runs the same betweenness-centrality computation under three execution
policies on a simulated 16-rank machine —

* **CTF-MFBC**: the model-driven mapping search (AutoPolicy, §6.2),
* **CA-MFBC**: the pinned Theorem-5.1 communication-avoiding grid,
* **CombBLAS-style**: square-2D-grid SUMMA only,

then prints each policy's critical-path communication ledger (the §7.4
W/S methodology) so the communication-efficiency differences are visible
directly.

Run:  python examples/distributed_simulation.py [--p 16] [--n 400]
"""

import argparse

import numpy as np

from repro import (
    DistributedEngine,
    Machine,
    PinnedPolicy,
    Square2DPolicy,
    mfbc,
    uniform_random_graph_nm,
)
from repro.analysis import format_table
from repro.baselines import combblas_bc


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--p", type=int, default=16, help="simulated ranks")
    parser.add_argument("--n", type=int, default=300, help="vertices")
    parser.add_argument("--degree", type=float, default=16.0)
    parser.add_argument("--batch", type=int, default=64)
    parser.add_argument("--batches", type=int, default=1, help="batches to run")
    args = parser.parse_args()

    g = uniform_random_graph_nm(args.n, args.degree, seed=11, name="uniform")
    print(f"graph: {g}; machine: p={args.p}\n")

    ref = None
    rows = []
    for label, policy, runner in [
        ("CTF-MFBC (auto)", None, "mfbc"),
        ("CA-MFBC (pinned 3D)", PinnedPolicy.ca_mfbc(args.p, c=4), "mfbc"),
        ("CombBLAS-style (2D)", Square2DPolicy(), "combblas"),
    ]:
        machine = Machine(args.p)
        engine = DistributedEngine(machine, policy=policy)
        if runner == "mfbc":
            res = mfbc(
                g, batch_size=args.batch, engine=engine, max_batches=args.batches
            )
            scores = res.scores
        else:
            res = combblas_bc(
                g, batch_size=args.batch, engine=engine, max_batches=args.batches
            )
            scores = res.scores
        if ref is None:
            ref = scores
        assert np.allclose(scores, ref, atol=1e-6), f"{label} disagrees!"
        led = machine.ledger.snapshot()
        rows.append(
            (
                label,
                f"{led['words'] * 8 / 1e6:.2f}",
                f"{led['msgs']:.0f}",
                f"{led['comm_time'] * 1e3:.2f}",
                f"{led['time'] * 1e3:.2f}",
            )
        )
    print(
        format_table(
            ["policy", "W (MB)", "S (#msgs)", "comm (ms)", "total (ms)"], rows
        )
    )
    print(
        "\nall three policies computed identical centrality scores; the "
        "ledger shows their differing critical-path communication costs "
        "(cf. the paper's Table 3)."
    )


if __name__ == "__main__":
    main()
