#!/usr/bin/env python
"""Girvan–Newman community detection via edge betweenness centrality.

Betweenness centrality's second classic application (after vertex ranking):
edges *between* communities carry many shortest paths, so repeatedly
removing the highest-edge-BC edge splits a network into its communities.
This example plants a two-community graph, runs Girvan–Newman on top of the
MFBC-derived edge centrality, and verifies the recovered partition.

Run:  python examples/community_detection.py [--size 24] [--p-in 0.4]
"""

import argparse

import numpy as np

from repro import Graph
from repro.apps import connected_components
from repro.core import edge_betweenness_centrality


def planted_partition(
    size: int, p_in: float, p_out: float, seed: int = 0
) -> tuple[Graph, np.ndarray]:
    """Two communities of ``size`` vertices; returns (graph, true labels)."""
    rng = np.random.default_rng(seed)
    n = 2 * size
    truth = np.repeat([0, 1], size)
    src, dst = [], []
    for i in range(n):
        for j in range(i + 1, n):
            p = p_in if truth[i] == truth[j] else p_out
            if rng.random() < p:
                src.append(i)
                dst.append(j)
    return Graph(n, np.array(src), np.array(dst), name="planted"), truth


def girvan_newman_split(g: Graph, max_removals: int | None = None):
    """Remove max-edge-BC edges until the graph splits; returns labels and
    the removed edges."""
    if max_removals is None:
        max_removals = g.m
    src, dst = g.src.copy(), g.dst.copy()
    removed = []
    for _ in range(max_removals):
        current = Graph(g.n, src, dst, name=g.name)
        labels = connected_components(current)
        if len(np.unique(labels)) > 1:
            return labels, removed
        ebc = edge_betweenness_centrality(current, batch_size=32)
        worst = int(np.argmax(ebc.scores))
        removed.append((int(src[worst]), int(dst[worst])))
        keep = np.ones(len(src), dtype=bool)
        keep[worst] = False
        src, dst = src[keep], dst[keep]
    return connected_components(Graph(g.n, src, dst)), removed


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=20, help="community size")
    parser.add_argument("--p-in", type=float, default=0.4)
    parser.add_argument("--p-out", type=float, default=0.02)
    args = parser.parse_args()

    g, truth = planted_partition(args.size, args.p_in, args.p_out, seed=1)
    print(f"planted graph: {g} (2 communities of {args.size})")

    ebc = edge_betweenness_centrality(g, batch_size=32)
    bridges = ebc.top_edges(5)
    print("\nhighest-betweenness edges (the inter-community bridges):")
    cross = 0
    for u, v, s in bridges:
        is_cross = truth[u] != truth[v]
        cross += is_cross
        print(f"  ({u:3d}, {v:3d})  λ = {s:8.1f}  {'CROSS' if is_cross else 'intra'}")
    print(f"{cross}/5 of the top edges cross the planted boundary")

    labels, removed = girvan_newman_split(g)
    print(f"\nGirvan–Newman removed {len(removed)} edges to split the graph")
    # agreement with planted truth (up to label swap)
    comp = labels == labels[0]
    agree = max(
        np.mean(comp == (truth == truth[0])),
        np.mean(comp == (truth != truth[0])),
    )
    print(f"partition agreement with planted communities: {agree:.1%}")
    assert agree > 0.9, "community recovery failed"


if __name__ == "__main__":
    main()
