"""MFBF (Algorithm 1): shortest distances and multiplicities."""

import numpy as np
import pytest
import scipy.sparse.csgraph

from repro.core import mfbf
from repro.core.stats import BatchStats
from repro.baselines.sssp import bfs_sssp, dijkstra_sssp
from repro.graphs import Graph, uniform_random_graph_nm, with_random_weights


def run_mfbf(graph, sources, **kw):
    return mfbf(graph.adjacency(), np.asarray(sources, dtype=np.int64), **kw)


def dense_dist_mult(t_mat, s_idx, n):
    d = t_mat.to_dense("w")[s_idx]
    m = t_mat.to_dense("m")[s_idx]
    return d, m


class TestAgainstScipy:
    @pytest.mark.parametrize("directed", [False, True])
    def test_distances_match_scipy(self, directed):
        g = uniform_random_graph_nm(50, 4.0, directed=directed, seed=7)
        t = run_mfbf(g, np.arange(g.n))
        ref = scipy.sparse.csgraph.shortest_path(
            g.adjacency_scipy(), directed=directed
        )
        got = t.to_dense("w")
        assert np.allclose(
            np.where(np.isfinite(ref), ref, -1), np.where(np.isfinite(got), got, -1)
        )

    def test_weighted_distances(self):
        g = with_random_weights(uniform_random_graph_nm(40, 4.0, seed=8), 1, 9, seed=8)
        t = run_mfbf(g, np.arange(g.n))
        ref = scipy.sparse.csgraph.shortest_path(g.adjacency_scipy())
        got = t.to_dense("w")
        assert np.allclose(
            np.where(np.isfinite(ref), ref, -1), np.where(np.isfinite(got), got, -1)
        )


class TestMultiplicities:
    @pytest.mark.parametrize("seed", range(5))
    def test_unweighted_vs_bfs_oracle(self, seed):
        g = uniform_random_graph_nm(45, 4.0, seed=seed)
        s = seed % g.n
        t = run_mfbf(g, [s])
        d_ref, m_ref = bfs_sssp(g, s)
        d, m = dense_dist_mult(t, 0, g.n)
        assert np.allclose(np.nan_to_num(d, posinf=-1), np.nan_to_num(d_ref, posinf=-1))
        reach = np.isfinite(d_ref)
        assert np.allclose(m[reach], m_ref[reach])

    @pytest.mark.parametrize("seed", range(5))
    def test_weighted_vs_dijkstra_oracle(self, seed):
        g = with_random_weights(
            uniform_random_graph_nm(40, 4.0, seed=100 + seed), 1, 7, seed=seed
        )
        s = (3 * seed) % g.n
        t = run_mfbf(g, [s])
        d_ref, m_ref = dijkstra_sssp(g, s)
        d, m = dense_dist_mult(t, 0, g.n)
        assert np.allclose(np.nan_to_num(d, posinf=-1), np.nan_to_num(d_ref, posinf=-1))
        reach = np.isfinite(d_ref)
        assert np.allclose(m[reach], m_ref[reach])

    def test_diamond_multiplicity(self, diamond_graph):
        t = run_mfbf(diamond_graph, [0])
        e = t.get(0, 3)
        assert e["w"] == 2.0 and e["m"] == 2.0

    def test_source_self_entry(self, diamond_graph):
        t = run_mfbf(diamond_graph, [1])
        e = t.get(0, 1)
        assert e["w"] == 0.0 and e["m"] == 1.0

    def test_unreachable_unstored(self):
        # two disconnected edges
        g = Graph(4, np.array([0, 2]), np.array([1, 3]))
        t = run_mfbf(g, [0])
        assert np.isinf(t.get(0, 2)["w"]) and t.get(0, 2)["m"] == 0


class TestFrontierBehaviour:
    def test_unweighted_each_vertex_one_frontier(self, small_undirected):
        """§5.3: in the unweighted case every vertex appears in exactly one
        frontier, so Σ nnz(F_i) ≤ n·nb."""
        g = small_undirected
        stats = BatchStats(sources=g.n)
        run_mfbf(g, np.arange(g.n), stats=stats)
        total_frontier = sum(it.frontier_nnz for it in stats.iterations)
        assert total_frontier <= g.n * g.n

    def test_weighted_vertices_can_reenter(self):
        """A heavy direct edge is later beaten by a longer-but-lighter path,
        so the destination enters two frontiers."""
        # 0 -10- 2 ; 0 -1- 1 -1- 2
        g = Graph(
            3,
            np.array([0, 0, 1]),
            np.array([2, 1, 2]),
            np.array([10.0, 1.0, 1.0]),
        )
        stats = BatchStats(sources=1)
        t = run_mfbf(g, [0], stats=stats)
        assert t.get(0, 2)["w"] == 2.0 and t.get(0, 2)["m"] == 1.0
        appearances = sum(it.frontier_nnz for it in stats.iterations)
        # frontier sum exceeds the n·nb bound that holds for unweighted
        assert appearances > 3

    def test_iteration_count_tracks_diameter(self, path_graph):
        stats = BatchStats(sources=1)
        run_mfbf(path_graph, [0], stats=stats)
        # path of 4 edges: 4 productive relaxations + 1 empty-detect products
        assert len(stats.iterations) in (4, 5)

    def test_ops_counted(self, small_undirected):
        stats = BatchStats(sources=2)
        run_mfbf(small_undirected, [0, 1], stats=stats)
        assert stats.total_ops > 0


class TestValidation:
    def test_empty_sources_raises(self, small_undirected):
        with pytest.raises(ValueError, match="empty"):
            run_mfbf(small_undirected, [])

    def test_source_out_of_range_raises(self, small_undirected):
        with pytest.raises(ValueError, match="range"):
            run_mfbf(small_undirected, [10_000])

    def test_max_iterations_guard(self, small_undirected):
        with pytest.raises(RuntimeError, match="converge"):
            run_mfbf(small_undirected, [0], max_iterations=1)
