"""Scaling-experiment harnesses produce well-formed, correctly-shaped data."""

import pytest

from repro.analysis import (
    edge_weak_scaling,
    strong_scaling,
    vertex_weak_scaling,
)
from repro.analysis.scaling import ScalingPoint
from repro.graphs import uniform_random_graph_nm


@pytest.fixture(scope="module")
def graph():
    return uniform_random_graph_nm(100, 6.0, seed=51, name="harness")


class TestStrongScaling:
    def test_rows_per_p(self, graph):
        pts = strong_scaling(graph, [2, 8, 32], max_batches=1, batch_sizes=[16])
        assert [p.p for p in pts] == [2, 8, 32]
        assert all(isinstance(p, ScalingPoint) for p in pts)
        assert all(p.graph_name == "harness" for p in pts)
        assert all(p.mteps_per_node > 0 for p in pts)

    def test_best_over_batch_sizes(self, graph):
        single = strong_scaling(graph, [8], max_batches=1, batch_sizes=[16])
        multi = strong_scaling(graph, [8], max_batches=1, batch_sizes=[4, 16, 50])
        assert multi[0].mteps_per_node >= single[0].mteps_per_node - 1e-12

    def test_total_words_decrease_with_p(self, graph):
        pts = strong_scaling(graph, [2, 32], max_batches=1, batch_sizes=[16])
        assert pts[1].words < pts[0].words


class TestWeakScaling:
    def test_edge_weak_graph_sizes(self):
        pts = edge_weak_scaling(
            40, 0.02, [1, 4, 16], batch_size=8, max_batches=1
        )
        ns = [p.n for p in pts]
        # n = n0·√p
        assert ns[0] == 40 and ns[1] == 80 and ns[2] == 160

    def test_edge_weak_density_constant(self):
        pts = edge_weak_scaling(40, 0.02, [1, 4], batch_size=8, max_batches=1)
        f = [2 * p.m / p.n**2 for p in pts]
        assert f[1] == pytest.approx(f[0], rel=0.35)

    def test_vertex_weak_graph_sizes(self):
        pts = vertex_weak_scaling(30, 4.0, [1, 2, 4], batch_size=8, max_batches=1)
        assert [p.n for p in pts] == [30, 60, 120]

    def test_vertex_weak_degree_constant(self):
        pts = vertex_weak_scaling(50, 6.0, [1, 4], batch_size=8, max_batches=1)
        k = [2 * p.m / p.n for p in pts]
        assert k[1] == pytest.approx(k[0], rel=0.25)

    def test_vertex_weak_words_per_node_work_grow(self):
        """§7.3: vertex weak scaling is unsustainable — critical-path words
        per unit of per-node work grow (≈ √p) with p on full runs."""
        pts = vertex_weak_scaling(20, 4.0, [8, 128], batch_size=20)
        per_work = [p.words * p.p / max(p.m * p.n, 1) for p in pts]
        assert per_work[-1] > per_work[0]
