"""First-principles oracle: brute-force path enumeration on tiny graphs.

Brandes' algorithm (our main oracle) shares the dependency-accumulation idea
with MFBC, so agreeing with it is not fully independent evidence.  These
tests enumerate *all simple paths* on tiny random graphs and evaluate the
paper's definitions literally:

    τ(s,t)      = min path weight
    σ̄(s,t)     = number of minimal-weight paths
    σ(s,t,v)    = number of those passing through interior vertex v
    λ(v)        = Σ_{s,t} σ(s,t,v)/σ̄(s,t)

then check MFBF and MFBC against them.
"""

import numpy as np
import pytest
from hypothesis import given

from repro.check.strategies import tiny_graphs
from repro.core import mfbc, mfbf
from repro.graphs import Graph


def enumerate_shortest(graph: Graph):
    """All-pairs (τ, σ̄, path sets) by exhaustive simple-path enumeration."""
    n = graph.n
    adj: dict[int, list[tuple[int, float]]] = {i: [] for i in range(n)}
    w = graph.edge_weights()
    for u, v, ww in zip(graph.src, graph.dst, w):
        adj[int(u)].append((int(v), float(ww)))
        if not graph.directed:
            adj[int(v)].append((int(u), float(ww)))

    tau = np.full((n, n), np.inf)
    paths: dict[tuple[int, int], list[tuple[int, ...]]] = {}
    for s in range(n):
        tau[s, s] = 0.0
        paths[(s, s)] = [(s,)]
        all_paths: dict[int, list[tuple[tuple[int, ...], float]]] = {s: [((s,), 0.0)]}
        # DFS over all simple paths from s
        frontier = [((s,), 0.0)]
        while frontier:
            path, cost = frontier.pop()
            u = path[-1]
            for v, ww in adj[u]:
                if v in path:
                    continue
                npath = path + (v,)
                ncost = cost + ww
                all_paths.setdefault(v, []).append((npath, ncost))
                frontier.append((npath, ncost))
        for t, plist in all_paths.items():
            if t == s:
                continue
            mincost = min(c for _, c in plist)
            tau[s, t] = mincost
            paths[(s, t)] = [p for p, c in plist if c == mincost]
    return tau, paths


def brute_bc(graph: Graph) -> np.ndarray:
    tau, paths = enumerate_shortest(graph)
    n = graph.n
    lam = np.zeros(n)
    for (s, t), plist in paths.items():
        if s == t or not plist:
            continue
        sigma = len(plist)
        for v in range(n):
            if v == s or v == t:
                continue
            through = sum(1 for p in plist if v in p)
            lam[v] += through / sigma
    return lam


@given(tiny_graphs())
def test_mfbf_matches_path_enumeration(g):
    tau_ref, paths = enumerate_shortest(g)
    t = mfbf(g.adjacency(), np.arange(g.n, dtype=np.int64))
    tau = t.to_dense("w")
    sigma = t.to_dense("m", fill=0.0)
    assert np.allclose(
        np.nan_to_num(tau, posinf=-1), np.nan_to_num(tau_ref, posinf=-1)
    )
    for (s, tt), plist in paths.items():
        if s == tt:
            continue
        assert sigma[s, tt] == len(plist), (s, tt)


@given(tiny_graphs())
def test_mfbc_matches_definition(g):
    got = mfbc(g, batch_size=max(g.n // 2, 1)).scores
    ref = brute_bc(g)
    assert np.allclose(got, ref, atol=1e-8)


class TestHandChecked:
    def test_kite(self):
        """The classic 'kite' where degree, closeness and betweenness
        disagree about the most central vertex."""
        # Krackhardt kite, vertices 0..9; 7 is the betweenness winner
        edges = [
            (0, 1), (0, 2), (0, 3), (0, 5),
            (1, 3), (1, 4), (1, 6),
            (2, 3), (2, 5),
            (3, 4), (3, 5), (3, 6),
            (4, 6),
            (5, 6), (5, 7),
            (6, 7),
            (7, 8),
            (8, 9),
        ]
        g = Graph(
            10,
            np.array([e[0] for e in edges]),
            np.array([e[1] for e in edges]),
        )
        scores = mfbc(g).scores
        assert int(np.argmax(scores)) == 7
        assert np.allclose(scores, brute_bc(g), atol=1e-8)

    def test_weighted_tie_multiplicity(self):
        """Two weighted routes of equal cost both count: σ̄ = 2, each middle
        vertex gets λ = 1 per direction."""
        # 0 -1- 1 -2- 3 and 0 -2- 2 -1- 3
        g = Graph(
            4,
            np.array([0, 1, 0, 2]),
            np.array([1, 3, 2, 3]),
            np.array([1.0, 2.0, 2.0, 1.0]),
        )
        scores = mfbc(g).scores
        assert scores[1] == pytest.approx(1.0)
        assert scores[2] == pytest.approx(1.0)
