"""CheckedEngine end-to-end: enablement roads, clean runs, and the mutation test.

The core acceptance test here plants a real bug (a monkeypatched
``execute_plan`` that mis-reports or corrupts products) and requires the
checked engine to (1) raise :class:`CheckFailure`, (2) emit a minimized
``.npz`` repro case plus a standalone replay script, and (3) have that
artifact reproduce the divergence in a fresh interpreter with the bug gone —
the artifact stores the *divergent* result, so it stays red on healthy code.
"""

import importlib
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.algebra import TROPICAL
from repro.check import (
    CheckConfig,
    CheckedEngine,
    CheckError,
    CheckFailure,
    maybe_checked,
    resolve_check_config,
)
from repro.check.replay import load_case, replay
from repro.core import mfbc
from repro.core.engine import SequentialEngine
from repro.dist import DistributedEngine
from repro.graphs import rmat_graph
from repro.machine import Machine
from repro.sparse import SpMat

# ``repro.spgemm`` the *function* shadows the subpackage attribute on the
# top-level package, so the variants module must be imported by name.
variants = importlib.import_module("repro.spgemm.variants")

W = TROPICAL.add_monoid
TROP = TROPICAL.matmul_spec()

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def _mat(engine, rng, n, density=0.3):
    mask = rng.random((n, n)) < density
    r, c = mask.nonzero()
    vals = rng.integers(1, 9, len(r)).astype(float)
    return engine.matrix(n, n, r.astype(np.int64), c.astype(np.int64), {"w": vals}, W)


# ---------------------------------------------------------------------------
# the REPRO_CHECK grammar
# ---------------------------------------------------------------------------


class TestResolveConfig:
    @pytest.mark.parametrize("spec", ["", "none", "off", "0", "false", "OFF"])
    def test_off_spellings(self, spec):
        assert resolve_check_config(spec) is None

    def test_levels(self):
        assert resolve_check_config("cheap") == CheckConfig("cheap")
        assert resolve_check_config("full") == CheckConfig("full", sample=1)
        assert resolve_check_config("sample:5") == CheckConfig("sample", sample=5)

    def test_config_passthrough(self):
        cfg = CheckConfig("sample", sample=3, artifact_dir="/tmp/x")
        assert resolve_check_config(cfg) is cfg

    @pytest.mark.parametrize("spec", ["verbose", "sample:", "sample:abc", "sample:0"])
    def test_bad_specs(self, spec):
        with pytest.raises(ValueError):
            resolve_check_config(spec)

    def test_bad_type(self):
        with pytest.raises(TypeError):
            resolve_check_config(7)

    def test_bad_mode_in_config(self):
        with pytest.raises(ValueError):
            CheckConfig("paranoid")
        with pytest.raises(ValueError):
            CheckConfig("cheap", sample=-1)

    def test_env_consulted_only_when_asked(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "sample:7")
        assert resolve_check_config(None) == CheckConfig("sample", sample=7)
        assert resolve_check_config(None, env=False) is None
        monkeypatch.delenv("REPRO_CHECK")
        assert resolve_check_config(None) is None

    def test_describe(self):
        assert CheckConfig("full", sample=1).describe() == "full"
        assert CheckConfig("sample", sample=4).describe() == "sample:4"


# ---------------------------------------------------------------------------
# enablement roads
# ---------------------------------------------------------------------------


class TestEnablement:
    def test_engine_kwarg(self):
        engine = DistributedEngine(Machine(2), check="cheap")
        assert isinstance(engine, CheckedEngine)
        assert isinstance(engine.engine, DistributedEngine)

    def test_off_means_no_wrapper(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK", raising=False)
        engine = DistributedEngine(Machine(2))
        assert isinstance(engine, DistributedEngine)
        assert not isinstance(engine, CheckedEngine)
        assert isinstance(DistributedEngine(Machine(2), check="off"), DistributedEngine)

    def test_machine_kwarg(self):
        machine = Machine(2, check="full")
        engine = DistributedEngine(machine)
        assert isinstance(engine, CheckedEngine)
        assert engine.config == CheckConfig("full", sample=1)

    def test_env_road(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "cheap")
        engine = DistributedEngine(Machine(2))
        assert isinstance(engine, CheckedEngine)
        assert engine.config.mode == "cheap"

    def test_explicit_off_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "full")
        engine = DistributedEngine(Machine(2), check="off")
        assert not isinstance(engine, CheckedEngine)

    def test_maybe_checked_idempotent(self):
        inner = SequentialEngine()
        once = maybe_checked(inner, "cheap")
        assert isinstance(once, CheckedEngine)
        assert maybe_checked(once, "full") is once

    def test_maybe_checked_off_is_identity(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK", raising=False)
        inner = SequentialEngine()
        assert maybe_checked(inner) is inner

    def test_delegation(self):
        machine = Machine(2)
        engine = DistributedEngine(machine, check="cheap")
        assert engine.machine is machine  # __getattr__ reaches through
        engine.recover()  # delegates without blowing up


# ---------------------------------------------------------------------------
# clean runs: checking passes and counts work
# ---------------------------------------------------------------------------


class TestCleanRuns:
    def test_full_checked_mfbc_agrees(self):
        g = rmat_graph(4, 4, seed=7)
        engine = DistributedEngine(Machine(4), check="full")
        got = mfbc(g, engine=engine).scores
        ref = mfbc(g).scores
        assert np.allclose(got, ref, atol=1e-8)
        assert engine.stats["validated"] > 0
        assert engine.stats["replayed"] > 0
        assert engine.stats["mismatches"] == 0

    def test_sequential_engine_can_be_checked(self):
        engine = CheckedEngine(SequentialEngine(), "full")
        rng = np.random.default_rng(0)
        a, b = _mat(engine, rng, 10), _mat(engine, rng, 10)
        out, ops = engine.spgemm(a, b, TROP)
        ref, ref_ops = SequentialEngine().spgemm(a, b, TROP)
        assert out.equals(ref) and ops == ref_ops

    def test_broken_operand_is_rejected(self):
        engine = CheckedEngine(SequentialEngine(), "cheap")
        bad = SpMat.__new__(SpMat)
        bad.nrows = bad.ncols = 4
        bad.rows = np.array([1, 0], dtype=np.int64)  # unsorted
        bad.cols = np.array([0, 1], dtype=np.int64)
        bad.vals = {"w": np.array([1.0, 2.0])}
        bad.monoid = W
        bad._rowptr = None
        rng = np.random.default_rng(1)
        good = _mat(engine, rng, 4)
        with pytest.raises(CheckError, match="operand_a"):
            engine.spgemm(bad, good, TROP)


# ---------------------------------------------------------------------------
# the mutation test: a planted bug must be caught, minimized, and replayable
# ---------------------------------------------------------------------------


def _checked_product(tmp_path, p=4, n=12, seed=3):
    cfg = CheckConfig("full", sample=1, artifact_dir=str(tmp_path))
    engine = DistributedEngine(Machine(p), check=cfg)
    rng = np.random.default_rng(seed)
    return engine, _mat(engine, rng, n), _mat(engine, rng, n)


class TestMutationCatch:
    def test_ops_lie_is_caught_and_replayable(self, tmp_path, monkeypatch):
        real = variants.execute_plan

        def lying(*args, **kwargs):
            out, ops = real(*args, **kwargs)
            return out, ops + 1

        monkeypatch.setattr(variants, "execute_plan", lying)
        engine, a, b = _checked_product(tmp_path)
        with pytest.raises(CheckFailure) as err:
            engine.spgemm(a, b, TROP)
        failure = err.value
        assert engine.stats["mismatches"] == 1
        assert failure.case_path and os.path.exists(failure.case_path)
        assert failure.script_path and os.path.exists(failure.script_path)
        assert str(failure.case_path).startswith(str(tmp_path))
        assert "repro script" in str(failure)

        # the artifact is self-contained: with the bug *removed*, replaying
        # still reports the stored divergence
        monkeypatch.setattr(variants, "execute_plan", real)
        case = load_case(failure.case_path)
        report = replay(case)
        assert not report.matches
        assert not report.ops_match
        # the minimizer shrank the operands (a total ops-lie minimizes to 0)
        assert case.a.nnz < a.nnz and case.b.nnz < b.nnz
        assert case.info["engine"] == "DistributedEngine"

    def test_value_corruption_is_caught(self, tmp_path, monkeypatch):
        real = variants.execute_plan

        def corrupting(*args, **kwargs):
            out, ops = real(*args, **kwargs)
            for row in out.blocks:
                for j, blk in enumerate(row):
                    if blk.nnz:
                        vals = {k: v.copy() for k, v in blk.vals.items()}
                        vals["w"][0] += 1.0
                        row[j] = SpMat(
                            blk.nrows, blk.ncols, blk.rows, blk.cols, vals, blk.monoid
                        )
                        return out, ops
            return out, ops

        monkeypatch.setattr(variants, "execute_plan", corrupting)
        engine, a, b = _checked_product(tmp_path, seed=5)
        with pytest.raises(CheckFailure) as err:
            engine.spgemm(a, b, TROP)
        monkeypatch.setattr(variants, "execute_plan", real)
        report = replay(load_case(err.value.case_path))
        assert not report.matches
        assert not report.matrix_match

    def test_generated_script_exits_one(self, tmp_path, monkeypatch):
        real = variants.execute_plan
        monkeypatch.setattr(
            variants, "execute_plan", lambda *a, **k: (lambda r: (r[0], r[1] + 1))(real(*a, **k))
        )
        engine, a, b = _checked_product(tmp_path)
        with pytest.raises(CheckFailure) as err:
            engine.spgemm(a, b, TROP)
        monkeypatch.undo()

        env = dict(os.environ, PYTHONPATH=SRC)
        proc = subprocess.run(
            [sys.executable, err.value.script_path],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "DIVERGED" in proc.stdout

    def test_artifact_dir_env_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_DIR", str(tmp_path / "artifacts"))
        real = variants.execute_plan
        monkeypatch.setattr(
            variants, "execute_plan", lambda *a, **k: (lambda r: (r[0], r[1] + 1))(real(*a, **k))
        )
        engine = DistributedEngine(Machine(4), check="full")
        rng = np.random.default_rng(9)
        with pytest.raises(CheckFailure) as err:
            engine.spgemm(_mat(engine, rng, 10), _mat(engine, rng, 10), TROP)
        assert str(err.value.case_path).startswith(str(tmp_path / "artifacts"))

    def test_sampling_skips_products(self, tmp_path, monkeypatch):
        """sample:N replays every Nth product, so the lie survives N-1 calls."""
        real = variants.execute_plan
        monkeypatch.setattr(
            variants, "execute_plan", lambda *a, **k: (lambda r: (r[0], r[1] + 1))(real(*a, **k))
        )
        cfg = CheckConfig("sample", sample=3, artifact_dir=str(tmp_path))
        engine = DistributedEngine(Machine(4), check=cfg)
        rng = np.random.default_rng(11)
        a, b = _mat(engine, rng, 10), _mat(engine, rng, 10)
        engine.spgemm(a, b, TROP)  # product 1: not sampled
        engine.spgemm(a, b, TROP)  # product 2: not sampled
        with pytest.raises(CheckFailure):
            engine.spgemm(a, b, TROP)  # product 3: replayed, caught
        assert engine.stats["replayed"] == 1
