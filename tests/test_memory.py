"""repro.memory: spill-to-disk store, relief eviction, the OOM ladder.

Covers the checksummed :class:`SpillStore` (round-trip bit-exactness,
write-then-verify torn-write handling, generation rotation, chunk
staging), DistMat block/replica eviction and lazy fault-in,
:class:`MemoryLadder` rung progression and re-arming, and the ISSUE's
acceptance bar: a seed-graph MFBC run under a per-rank budget well below
the unpressured peak completes **bit-identically** via the ladder with its
tracked peak under the budget and spill traffic visible on the ledger and
the memory report.  Crash-safe streamed ingestion (resume from the last
durable shard, injected torn shard writes) is covered here too.

Every machine built here opts out of ambient ``REPRO_FAULTS`` /
``REPRO_ELASTIC`` / ``REPRO_MEMORY`` (the CI memory-pressure leg sets
them) unless the test is specifically about them.
"""

import os

import numpy as np
import pytest

from repro import obs
from repro.analysis.report import format_memory_report, memory_attribution
from repro.core import mfbc
from repro.dist import DistributedEngine
from repro.faults import FaultPlan
from repro.faults.plan import payload_checksum
from repro.graphs import (
    IngestManifest,
    ingest_edgelist,
    read_edgelist,
    read_edgelist_streamed,
    rmat_graph,
    write_edgelist,
)
from repro.machine import Machine, MemoryLimitExceeded
from repro.memory import MemoryLadder, SpillError, SpillStore

from conftest import random_weight_spmat

#: explicit "effectively unlimited" budget — opts a machine out of the CI
#: leg's ambient REPRO_MEMORY without disabling the accounting
UNLIMITED = 1 << 40


def quiet(p, **kw):
    """A machine opted out of ambient faults/elastic/memory env defaults."""
    kw.setdefault("faults", "off")
    kw.setdefault("elastic", "off")
    kw.setdefault("memory_words", UNLIMITED)
    return Machine(p, **kw)


def seed_graph():
    return rmat_graph(scale=7, avg_degree=8, seed=1)


def run_mfbc(g, machine, *, batch=64):
    engine = DistributedEngine(machine)
    return mfbc(g, batch_size=batch, engine=engine).scores


# ---------------------------------------------------------------------------
# SpillStore: segments, torn writes, rotation, chunks
# ---------------------------------------------------------------------------


class TestSpillStore:
    def test_round_trip_bit_exact(self, tmp_path, rng):
        blk = random_weight_spmat(rng, 12, 9, 0.3)
        store = SpillStore(tmp_path)
        seg = store.spill("a-0-0", blk)
        assert seg is not None and seg.words == blk.words()
        back = store.fetch(seg)
        assert payload_checksum(back) == payload_checksum(blk)
        np.testing.assert_array_equal(back.rows, blk.rows)
        np.testing.assert_array_equal(back.cols, blk.cols)
        for name in blk.monoid.field_names:
            np.testing.assert_array_equal(back.vals[name], blk.vals[name])
        snap = store.snapshot()
        assert snap["spilled_blocks"] == 1 and snap["restored_blocks"] == 1
        assert snap["torn_writes"] == 0

    def test_spill_charges_ledger_spill_category(self, tmp_path, rng):
        machine = quiet(2)
        store = SpillStore(tmp_path, machine=machine)
        blk = random_weight_spmat(rng, 10, 10, 0.3)
        seg = store.spill("k", blk, rank=1)
        store.fetch(seg, rank=1)
        cat = machine.ledger.category_words.get("spill", 0.0)
        assert cat == pytest.approx(2.0 * blk.words())

    def test_torn_write_leaves_block_resident(self, tmp_path, rng):
        # rate 1 with limit 1: the first write tears, the retry succeeds
        machine = Machine(
            1, faults="seed:0,tear:1,limit:1", elastic="off",
            memory_words=UNLIMITED,
        )
        store = SpillStore(tmp_path, machine=machine)
        blk = random_weight_spmat(rng, 8, 8, 0.3)
        assert store.spill("k", blk) is None  # torn: caller keeps it resident
        assert store.torn_writes == 1
        sigs = [(e.kind, e.action) for e in machine.faults.events]
        assert ("tear", "injected") in sigs and ("tear", "detected") in sigs
        seg = store.spill("k", blk)  # injection budget spent: durable now
        assert seg is not None
        assert payload_checksum(store.fetch(seg)) == payload_checksum(blk)

    def test_generation_rotation_survives_torn_newest(self, tmp_path, rng):
        blk = random_weight_spmat(rng, 10, 7, 0.3)
        store = SpillStore(tmp_path, keep=1)
        store.spill("k", blk)
        seg = store.spill("k", blk)  # rotates the first write to gen 1
        # tear the newest generation at rest; fetch falls back to gen 1
        with open(seg.path, "r+b") as fh:
            fh.truncate(10)
        back = store.fetch(seg)
        assert payload_checksum(back) == payload_checksum(blk)

    def test_fetch_raises_when_no_generation_durable(self, tmp_path, rng):
        blk = random_weight_spmat(rng, 6, 6, 0.3)
        store = SpillStore(tmp_path)
        seg = store.spill("k", blk)
        with open(seg.path, "r+b") as fh:
            fh.truncate(4)
        with pytest.raises(SpillError, match="no durable generation"):
            store.fetch(seg)

    def test_drop_removes_every_generation(self, tmp_path, rng):
        blk = random_weight_spmat(rng, 6, 6, 0.3)
        store = SpillStore(tmp_path, keep=1)
        store.spill("k", blk)
        seg = store.spill("k", blk)
        store.drop("k")
        with pytest.raises(SpillError):
            store.fetch(seg)

    def test_chunk_staging_round_trip_is_binary_exact(self, tmp_path, rng):
        store = SpillStore(tmp_path)
        arrays = {
            "rows": rng.integers(0, 100, 50),
            "wts": rng.random(50),
        }
        handle = store.fetch_chunk(store.stage_chunk("c0", arrays))
        np.testing.assert_array_equal(handle["rows"], arrays["rows"])
        np.testing.assert_array_equal(handle["wts"], arrays["wts"])

    def test_bad_keep_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            SpillStore(tmp_path, keep=-1)


# ---------------------------------------------------------------------------
# DistMat eviction + MemoryManager relief
# ---------------------------------------------------------------------------


class TestEvictionAndRelief:
    def test_spilled_blocks_fault_back_in_bit_identically(self, tmp_path):
        g = seed_graph()
        machine = quiet(4, spill_dir=str(tmp_path))
        engine = DistributedEngine(machine)
        mat = engine.adjacency(g)
        before = payload_checksum(engine.gather(mat))
        freed = mat.spill_blocks(machine.memory.store())
        assert freed > 0
        # gather touches every block: each one faults back in from disk
        assert payload_checksum(engine.gather(mat)) == before
        snap = machine.memory.snapshot()
        assert snap["spilled_blocks"] > 0 and snap["restored_blocks"] > 0

    def test_relieve_frees_lru_blocks_on_rank(self):
        g = seed_graph()
        machine = quiet(4)
        engine = DistributedEngine(machine)
        engine.adjacency(g)  # registered spillable by the engine
        used = machine.memory_used(0)
        assert used > 0
        freed = machine.memory.relieve(0, 1)
        assert freed > 0
        assert machine.memory_used(0) < used
        assert machine.memory.snapshot()["reliefs"] == 1

    def test_replicas_evicted_before_primary_blocks(self):
        g = seed_graph()
        machine = quiet(4, elastic="replica")
        engine = DistributedEngine(machine)
        mat = engine.adjacency(g)
        assert mat.replica_words() > 0
        machine.memory.relieve(0, 1)
        # a small request is satisfied from replicas alone: primaries stay
        assert not mat._spilled

    def test_drop_and_rearm_redundancy(self):
        g = seed_graph()
        machine = quiet(4, elastic="replica")
        engine = DistributedEngine(machine)
        engine.adjacency(g)
        words = engine.redundancy_words()
        assert words > 0
        assert engine.drop_redundancy() == words
        assert engine.redundancy_words() == 0
        assert engine.rearm_redundancy()
        assert engine.redundancy_words() == words

    def test_allocation_failure_raises_after_relief_exhausted(self):
        machine = quiet(2, memory_words=1000)
        with pytest.raises(MemoryLimitExceeded, match="budget"):
            machine.allocate(0, 2000)
        # the failed allocation must not stay charged
        assert machine.memory_used(0) == 0


# ---------------------------------------------------------------------------
# MemoryLadder rung progression
# ---------------------------------------------------------------------------


class _StubEngine:
    """Minimal engine surface the ladder drives (drop/rearm hooks)."""

    def __init__(self, machine, redundancy=512):
        self.machine = machine
        self._redundancy = redundancy
        self.dropped = False

    def redundancy_words(self):
        return 0 if self.dropped else self._redundancy

    def drop_redundancy(self):
        if self.dropped:
            return 0
        self.dropped = True
        return self._redundancy

    def rearm_redundancy(self):
        self.dropped = False
        return True


class TestMemoryLadder:
    def test_rung_progression_shrink_spill_drop_exhaust(self, monkeypatch):
        machine = quiet(2)
        ladder = MemoryLadder(_StubEngine(machine))
        exc = MemoryLimitExceeded("boom")
        assert ladder.advance(exc, batch_width=8) == "shrink_batch"
        assert ladder.batch_size == 4
        assert ladder.advance(exc, batch_width=4) == "shrink_batch"
        assert ladder.batch_size == 2
        assert ladder.advance(exc, batch_width=2) == "shrink_batch"
        assert ladder.batch_size == 1
        monkeypatch.setattr(machine.memory, "spill_all", lambda: 4096)
        assert ladder.advance(exc) == "spill"
        assert machine.memory.chunk_staging
        assert ladder.advance(exc) == "drop_redundancy"
        assert ladder.advance(exc) is None  # exhausted: caller re-raises
        assert ladder.rungs_taken == [
            "shrink_batch", "shrink_batch", "shrink_batch",
            "spill", "drop_redundancy",
        ]

    def test_spill_rung_skipped_when_nothing_spillable(self):
        machine = quiet(2)
        engine = _StubEngine(machine)
        ladder = MemoryLadder(engine)
        exc = MemoryLimitExceeded("boom")
        # nothing registered: spill_all frees 0, falls through to the drop
        assert ladder.advance(exc) == "drop_redundancy"
        assert engine.dropped

    def test_after_success_rearms_once_pressure_clears(self):
        machine = quiet(2, memory_words=10_000)
        engine = _StubEngine(machine, redundancy=512)
        ladder = MemoryLadder(engine)
        ladder.advance(MemoryLimitExceeded("boom"))
        assert engine.dropped
        machine.memory.chunk_staging = True
        # headroom 10_000 >= 2 * 512: replicas come back, staging disarms
        ladder.after_success()
        assert not engine.dropped
        assert not machine.memory.chunk_staging
        # and the drop rung is available again on the next pressure spike
        assert ladder.advance(MemoryLimitExceeded("boom")) == "drop_redundancy"

    def test_after_success_keeps_drop_while_pressure_persists(self):
        machine = quiet(2, memory_words=10_000)
        engine = _StubEngine(machine, redundancy=512)
        ladder = MemoryLadder(engine)
        ladder.advance(MemoryLimitExceeded("boom"))
        machine.allocate(0, 9_500)  # headroom 500 < 2 * 512
        ladder.after_success()
        assert engine.dropped

    def test_rungs_recorded_on_fault_plan(self):
        machine = Machine(
            2, faults=FaultPlan(seed=0), elastic="off", memory_words=UNLIMITED
        )
        ladder = MemoryLadder(_StubEngine(machine), site="mfbc")
        ladder.advance(MemoryLimitExceeded("boom"), batch_width=4)
        ladder.advance(MemoryLimitExceeded("boom"))
        sigs = [(e.kind, e.action, e.site) for e in machine.faults.events]
        assert sigs.count(("mem", "degraded", "mfbc")) == 2


# ---------------------------------------------------------------------------
# end-to-end: pressured MFBC completes bit-identically under budget
# ---------------------------------------------------------------------------


class TestPressuredRuns:
    def _baseline(self, tmp_path=None):
        g = seed_graph()
        m0 = quiet(4)
        ref = run_mfbc(g, m0)
        return g, ref, m0.memory_peak()

    def test_spill_ladder_bit_identical_under_budget(self, tmp_path):
        g, ref, peak0 = self._baseline()
        budget = int(peak0 * 0.6)
        machine = quiet(4, memory_words=budget, spill_dir=str(tmp_path))
        scores = run_mfbc(g, machine)
        np.testing.assert_array_equal(scores, ref)
        assert machine.memory_peak() <= budget
        snap = machine.memory.snapshot()
        assert snap["reliefs"] > 0
        assert snap.get("spilled_blocks", 0) > 0
        assert machine.ledger.category_words.get("spill", 0.0) > 0

    def test_tight_budget_descends_ladder_bit_identically(self, tmp_path):
        g, ref, peak0 = self._baseline()
        budget = int(peak0 * 0.45)
        machine = Machine(
            4, faults=FaultPlan(seed=0), elastic="off",
            memory_words=budget, spill_dir=str(tmp_path),
        )
        scores = run_mfbc(g, machine)
        np.testing.assert_array_equal(scores, ref)
        assert machine.memory_peak() <= budget
        acted = machine.memory.snapshot()["reliefs"] > 0 or any(
            e.kind == "mem" and e.action == "degraded"
            for e in machine.faults.events
        )
        assert acted

    def test_injected_memory_pressure_tightens_and_completes(self, tmp_path):
        g, ref, peak0 = self._baseline()
        machine = Machine(
            4, faults="seed:1,mem:0.6", elastic="off",
            memory_words=int(peak0), spill_dir=str(tmp_path),
        )
        assert machine.memory_words == int(int(peak0) * 0.6)
        sigs = [(e.kind, e.action, e.site) for e in machine.faults.events]
        assert ("mem", "injected", "machine") in sigs
        scores = run_mfbc(g, machine)
        np.testing.assert_array_equal(scores, ref)
        assert machine.memory_peak() <= machine.memory_words

    def test_torn_spill_writes_never_corrupt_scores(self, tmp_path):
        g, ref, peak0 = self._baseline()
        machine = Machine(
            4, faults="seed:3,tear:1,limit:4", elastic="off",
            memory_words=int(peak0 * 0.6), spill_dir=str(tmp_path),
        )
        scores = run_mfbc(g, machine)
        np.testing.assert_array_equal(scores, ref)
        store = machine.memory._store
        assert store is not None and store.torn_writes >= 1

    def test_pressure_with_replica_elastic_still_bit_identical(self, tmp_path):
        g, ref, peak0 = self._baseline()
        machine = quiet(
            4, elastic="replica",
            memory_words=int(peak0 * 0.7), spill_dir=str(tmp_path),
        )
        scores = run_mfbc(g, machine)
        np.testing.assert_array_equal(scores, ref)
        assert machine.memory_peak() <= machine.memory_words

    def test_forced_chunk_staging_bit_identical(self, tmp_path):
        g, ref, _ = self._baseline()
        machine = quiet(4, spill_dir=str(tmp_path))
        machine.memory.chunk_staging = True
        scores = run_mfbc(g, machine)
        np.testing.assert_array_equal(scores, ref)

    def test_infeasible_budget_is_terminal(self, tmp_path):
        g = seed_graph()
        machine = quiet(4, memory_words=50, spill_dir=str(tmp_path))
        with pytest.raises(MemoryLimitExceeded):
            run_mfbc(g, machine)


# ---------------------------------------------------------------------------
# observability: memory report and attribution
# ---------------------------------------------------------------------------


class TestMemoryReport:
    def test_attribution_rows_and_report_render(self, tmp_path):
        g = seed_graph()
        probe = quiet(4)
        run_mfbc(g, probe)
        session = obs.enable()
        try:
            machine = quiet(
                4, memory_words=int(probe.memory_peak() * 0.6),
                spill_dir=str(tmp_path),
            )
            run_mfbc(g, machine)
        finally:
            obs.disable()
        rows = memory_attribution(session.metrics)
        events = {r["event"] for r in rows}
        assert "spill.spill" in events
        assert "relief" in events
        spilled = [r for r in rows if r["event"] == "spill.spill"]
        assert sum(r["words"] for r in spilled) > 0
        text = format_memory_report(session.metrics)
        assert "memory pressure" in text and "spill.spill" in text

    def test_report_empty_without_pressure(self):
        session = obs.enable()
        obs.disable()
        assert memory_attribution(session.metrics) == []
        assert format_memory_report(session.metrics) == ""


# ---------------------------------------------------------------------------
# crash-safe streamed ingestion
# ---------------------------------------------------------------------------


class TestIngest:
    def _write(self, tmp_path, *, weighted=False, n=600, deg=6.0, seed=7):
        from repro.graphs import uniform_random_graph_nm, with_random_weights

        g = uniform_random_graph_nm(n, deg, seed=seed)
        if weighted:
            g = with_random_weights(g, 1, 100, seed=seed)
        path = tmp_path / "g.txt"
        write_edgelist(g, path)
        return g, path

    @staticmethod
    def _same(a, b):
        assert a.n == b.n and a.m == b.m and a.directed == b.directed
        np.testing.assert_array_equal(a.src, b.src)
        np.testing.assert_array_equal(a.dst, b.dst)
        if a.weighted or b.weighted:
            np.testing.assert_array_equal(a.weight, b.weight)

    def test_streamed_matches_one_shot_bit_identically(self, tmp_path):
        for weighted in (False, True):
            g, path = self._write(tmp_path, weighted=weighted)
            one = read_edgelist(path)
            streamed = read_edgelist_streamed(
                path, shard_dir=tmp_path / f"s{weighted}", shard_edges=256
            )
            self._same(one, streamed)
            self._same(g, streamed)

    def test_manifest_records_durable_shards(self, tmp_path):
        _, path = self._write(tmp_path)
        shard_dir = tmp_path / "shards"
        manifest = ingest_edgelist(path, shard_dir, shard_edges=256)
        assert manifest.complete
        assert manifest.durable_prefix() == len(manifest.shards)
        assert sum(s["edges"] for s in manifest.shards) > 0
        reloaded = IngestManifest.load(shard_dir)
        assert reloaded is not None
        assert reloaded.durable_prefix() == len(manifest.shards)

    def test_resume_after_torn_last_shard(self, tmp_path):
        g, path = self._write(tmp_path)
        shard_dir = tmp_path / "shards"
        manifest = ingest_edgelist(path, shard_dir, shard_edges=256)
        assert len(manifest.shards) >= 3
        # crash simulation: the last shard's write tore mid-file and the
        # manifest never learned the ingest finished
        last = manifest.shards[-1]
        spath = manifest.shard_path(last)
        size = os.path.getsize(spath)
        with open(spath, "r+b") as fh:
            fh.truncate(max(size // 2, 1))
        manifest.complete = False
        manifest.save()
        reloaded = IngestManifest.load(shard_dir)
        assert reloaded.durable_prefix() == len(manifest.shards) - 1
        resumed = ingest_edgelist(path, shard_dir, shard_edges=256)
        assert resumed.complete
        streamed = read_edgelist_streamed(path, shard_dir=shard_dir)
        self._same(g, streamed)

    def test_resume_after_missing_manifest_restarts_cleanly(self, tmp_path):
        g, path = self._write(tmp_path)
        shard_dir = tmp_path / "shards"
        ingest_edgelist(path, shard_dir, shard_edges=256)
        (shard_dir / "manifest.json").unlink()
        streamed = read_edgelist_streamed(path, shard_dir=shard_dir)
        self._same(g, streamed)

    def test_fault_injected_tears_self_heal(self, tmp_path):
        g, path = self._write(tmp_path, weighted=True)
        plan = FaultPlan(seed=1, tear=1.0, limit=2)
        streamed = read_edgelist_streamed(
            path, shard_dir=tmp_path / "shards", shard_edges=128, faults=plan
        )
        self._same(g, streamed)
        sigs = [(e.kind, e.action) for e in plan.events]
        assert sigs.count(("tear", "injected")) == 2
        assert sigs.count(("tear", "recovered")) == 2

    def test_streamed_bc_scores_match_one_shot(self, tmp_path):
        g, path = self._write(tmp_path, n=200, deg=4.0)
        streamed = read_edgelist_streamed(
            path, shard_dir=tmp_path / "shards", shard_edges=128
        )
        ref = run_mfbc(g, quiet(2), batch=16)
        got = run_mfbc(streamed, quiet(2), batch=16)
        np.testing.assert_array_equal(got, ref)
