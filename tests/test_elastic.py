"""repro.elastic: in-flight rank-failure recovery.

Covers the :class:`ElasticPolicy` spec grammar, the grid-shrink helpers
(``survivor_map`` / ``nearest_feasible_p`` / ``Machine.shrink``), DistMat
redundancy and lost-block repair, the Group epoch guard, the deadline
guard, and the ISSUE's acceptance bars: seeded runs with one and two
injected mid-batch rank failures complete *without restart*, bit-identical
to fault-free runs of the same configuration, across the §5.2 variant
policies and all three executors, with post-recovery ledger invariants
intact.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro import obs
from repro.check import check_ledger
from repro.check import strategies as cst
from repro.core import mfbc
from repro.dist import DistMat, DistributedEngine
from repro.elastic import (
    ElasticPolicy,
    RecoveryError,
    RecoveryReport,
    resolve_elastic,
)
from repro.elastic.policy import ELASTIC_ENV
from repro.faults import DeadlineExceeded, RankFailure
from repro.graphs import uniform_random_graph_nm
from repro.machine import Machine
from repro.machine.grid import near_square_shape, nearest_feasible_p, survivor_map
from repro.spgemm import PinnedPolicy, Square2DPolicy

from conftest import random_weight_spmat

# one injected mid-batch crash; two crashes in distinct batches
ONE_CRASH = "seed:3,crash@4:2"
TWO_CRASHES = "seed:3,crash@4:2,crash@60:1"


def quiet(p, **kw):
    """A machine opted out of any ambient REPRO_FAULTS / REPRO_ELASTIC
    (the CI chaos leg sets both) — for references and unit fixtures."""
    kw.setdefault("faults", "off")
    kw.setdefault("elastic", "off")
    return Machine(p, **kw)


def scores_of(g, machine, *, policy=None, check=None, **kw):
    eng = DistributedEngine(machine, policy=policy, check=check)
    return mfbc(g, batch_size=8, engine=eng, **kw).scores


# ---------------------------------------------------------------------------
# spec grammar + resolution
# ---------------------------------------------------------------------------


class TestElasticSpec:
    def test_default_replica(self):
        pol = resolve_elastic("replica")
        assert pol == ElasticPolicy()
        assert pol.redundancy == "replica" and pol.stride == 1

    @pytest.mark.parametrize("spec", ["on", "1", "true", "REPLICA"])
    def test_aliases_for_default(self, spec):
        assert resolve_elastic(spec) == ElasticPolicy()

    @pytest.mark.parametrize("spec", ["", "none", "off", "0", "false"])
    def test_off_aliases(self, spec):
        assert resolve_elastic(spec) is None

    def test_replica_stride(self):
        pol = resolve_elastic("replica:3")
        assert pol.redundancy == "replica" and pol.stride == 3

    def test_source(self):
        assert resolve_elastic("source").redundancy == "source"

    def test_describe_round_trips(self):
        for pol in (ElasticPolicy(), ElasticPolicy(stride=2),
                    ElasticPolicy(redundancy="source")):
            assert resolve_elastic(pol.describe()) == pol

    @pytest.mark.parametrize("spec", ["replica:x", "parity", "replica:-1"])
    def test_bad_specs(self, spec):
        with pytest.raises(ValueError):
            resolve_elastic(spec)

    def test_bad_policy_fields(self):
        with pytest.raises(ValueError, match="redundancy"):
            ElasticPolicy(redundancy="parity")
        with pytest.raises(ValueError, match="stride"):
            ElasticPolicy(stride=0)

    def test_policy_passthrough_and_type_error(self):
        pol = ElasticPolicy(stride=2)
        assert resolve_elastic(pol) is pol
        with pytest.raises(TypeError):
            resolve_elastic(42)

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(ELASTIC_ENV, "replica:2")
        assert resolve_elastic(None) == ElasticPolicy(stride=2)
        assert resolve_elastic(None, env=False) is None
        # an explicit spec beats the ambient one
        assert resolve_elastic("source").redundancy == "source"

    def test_machine_threads_policy_through(self, monkeypatch):
        monkeypatch.delenv(ELASTIC_ENV, raising=False)
        m = Machine(4, elastic="replica")
        assert m.elastic == ElasticPolicy()
        assert "elastic=replica" in repr(m)
        assert Machine(4).elastic is None


# ---------------------------------------------------------------------------
# grid helpers + shrink
# ---------------------------------------------------------------------------


class TestGridHelpers:
    def test_survivor_map_basic(self):
        mapping = survivor_map(6, [2, 4])
        assert mapping.tolist() == [0, 1, -1, 2, -1, 3]

    def test_survivor_map_errors(self):
        with pytest.raises(ValueError, match="out of range"):
            survivor_map(4, [4])
        with pytest.raises(ValueError, match="all"):
            survivor_map(3, [0, 1, 2])

    def test_nearest_feasible_p(self):
        assert nearest_feasible_p(7) == 7  # None accepts everything
        square = lambda q: int(q**0.5) ** 2 == q
        assert nearest_feasible_p(8, square) == 4
        with pytest.raises(ValueError, match="no feasible grid"):
            nearest_feasible_p(5, lambda q: False)
        with pytest.raises(ValueError, match="no feasible grid"):
            nearest_feasible_p(0)

    @settings(max_examples=40, deadline=None)
    @given(cst.survivor_sets())
    def test_survivor_map_is_a_compaction(self, case):
        p, dead = case
        mapping = survivor_map(p, dead)
        alive = [r for r in range(p) if r not in dead]
        assert all(mapping[r] == -1 for r in dead)
        # survivors are renumbered 0..p'-1 in ascending order
        assert [mapping[r] for r in alive] == list(range(len(alive)))

    @settings(max_examples=30, deadline=None)
    @given(cst.survivor_sets(max_p=8))
    def test_shrink_compacts_ledger(self, case):
        p, dead = case
        m = quiet(p)
        m.charge_collective(np.arange(p), 100.0, weight=1.0)
        before = m.ledger.time.copy()
        epoch0 = m.epoch
        mapping = m.shrink(dead)
        alive = np.flatnonzero(mapping >= 0)
        assert m.p == len(alive) == p - len(dead)
        assert m.epoch == epoch0 + 1
        assert np.array_equal(m.ledger.time, before[alive])
        for name in ("time", "comm_time", "words", "msgs", "compute_per_rank"):
            assert len(getattr(m.ledger, name)) == m.p
        assert check_ledger(m) == []

    def test_group_epoch_guard(self):
        m = quiet(4)
        g = m.group(np.arange(4))
        payloads = [np.zeros(2)] * 4
        g.bcast(payloads)
        m.shrink([3])
        with pytest.raises(RuntimeError, match="epoch"):
            g.bcast(payloads)


# ---------------------------------------------------------------------------
# DistMat redundancy + repair
# ---------------------------------------------------------------------------


def _distribute(rng, m, policy, n=12):
    mat = random_weight_spmat(rng, n, n, 0.4)
    ranks2d = np.arange(m.p).reshape(near_square_shape(m.p))
    return mat, DistMat.distribute(mat, m, ranks2d, redundancy=policy)


class TestRedundancy:
    def test_replica_charges_redundancy_category(self, rng):
        m = quiet(4)
        _, dm = _distribute(rng, m, ElasticPolicy())
        assert m.ledger.category_words.get("redundancy", 0.0) > 0.0
        assert dm._replicas and dm._source is not None

    def test_source_mode_is_free_while_healthy(self, rng):
        m = quiet(4)
        _, dm = _distribute(rng, m, ElasticPolicy(redundancy="source"))
        assert "redundancy" not in m.ledger.category_words
        assert not dm._replicas and dm._source is not None

    def test_repair_from_replica(self, rng):
        m = quiet(4)
        mat, dm = _distribute(rng, m, ElasticPolicy())
        dead_owner = int(dm.ranks2d[0, 0])
        stats = dm.repair_lost([dead_owner])
        assert stats["replica"] >= 1 and stats["source"] == 0
        got = dm.gather(charge=False)
        assert np.array_equal(got.vals["w"], mat.vals["w"])

    def test_repair_falls_back_to_source_when_buddy_dead(self, rng):
        m = quiet(4)
        mat, dm = _distribute(rng, m, ElasticPolicy())
        owner = int(dm.ranks2d[0, 0])
        buddy = (owner + 1) % m.p
        stats = dm.repair_lost([owner, buddy])
        assert stats["source"] >= 1
        got = dm.gather(charge=False)
        assert np.array_equal(got.vals["w"], mat.vals["w"])

    def test_corrupt_replica_detected_by_crc(self, rng):
        m = quiet(4)
        mat, dm = _distribute(rng, m, ElasticPolicy())
        # find a replicated block and silently flip a stored value
        (i, j), (buddy, crc, copy_) = next(iter(dm._replicas.items()))
        if len(copy_.vals["w"]):
            copy_.vals["w"][0] += 1.0
            owner = int(dm.ranks2d[i, j])
            stats = dm.repair_lost([owner])
            assert stats["source"] >= 1  # CRC mismatch forced the fallback
            got = dm.gather(charge=False)
            assert np.array_equal(got.vals["w"], mat.vals["w"])

    def test_no_redundancy_raises(self, rng):
        m = quiet(4)
        _, dm = _distribute(rng, m, None)
        with pytest.raises(RecoveryError, match="no live replica"):
            dm.repair_lost([int(dm.ranks2d[0, 0])])


# ---------------------------------------------------------------------------
# deadline guard
# ---------------------------------------------------------------------------


class TestDeadline:
    def test_invalid_deadline(self):
        with pytest.raises(ValueError, match="deadline"):
            Machine(4, deadline=0.0)

    def test_charge_past_deadline_raises(self):
        m = quiet(4, deadline=1e-9)
        with pytest.raises(DeadlineExceeded) as ei:
            m.charge_collective(np.arange(4), 1e6, weight=1.0)
        exc = ei.value
        assert exc.modeled > exc.deadline == 1e-9
        # the charge that tripped the guard stays on the books
        assert m.ledger.critical_time() > 0.0

    def test_deadline_is_terminal_in_mfbc(self, small_undirected):
        # neither retries nor elastic recovery may mask a blown deadline;
        # the budget admits setup (~2.6 µs modeled) but not the batch loop
        m = Machine(4, deadline=1e-4, faults="seed:0", elastic="replica")
        with pytest.raises(DeadlineExceeded):
            scores_of(small_undirected, m, retries=3)
        actions = [(e.kind, e.action) for e in m.faults.events]
        assert ("deadline", "detected") in actions
        assert ("batch", "abandoned") in actions
        assert m.recoveries == []

    def test_generous_deadline_is_inert(self, small_undirected):
        ref = mfbc(small_undirected, batch_size=8).scores
        m = quiet(4, deadline=1e9)
        assert np.array_equal(scores_of(small_undirected, m), ref)


# ---------------------------------------------------------------------------
# end-to-end recovery: the acceptance matrix
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def graph():
    return uniform_random_graph_nm(40, 4.0, seed=1)


def _policy(name, p):
    if name == "ca":
        return PinnedPolicy.ca_mfbc(p, 2)
    if name == "square2d":
        return Square2DPolicy()
    return None


class TestRecoveryDifferential:
    @pytest.mark.parametrize("executor", ["serial", "thread:2", "process:2"])
    @pytest.mark.parametrize(
        "policy_name,p,p_after", [("auto", 6, 5), ("square2d", 9, 4), ("ca", 8, 2)]
    )
    def test_single_failure_bit_identical(
        self, graph, policy_name, p, p_after, executor
    ):
        """One injected mid-batch rank failure: the run completes without
        restart, shrinks the grid, and the scores are bit-identical to
        fault-free — on every executor, under cheap checking.

        The crash lands in the first batch, so every batch effectively
        executes at the post-recovery configuration; the determinism claim
        is therefore bit-identity with a fault-free run at ``p_after``
        under the rescaled policy.
        """
        ref = scores_of(
            graph, quiet(p_after), policy=_policy(policy_name, p_after)
        )
        m = Machine(p, executor=executor, faults=ONE_CRASH, elastic="replica")
        eng = DistributedEngine(m, policy=_policy(policy_name, p), check="cheap")
        res = mfbc(graph, batch_size=8, engine=eng)
        assert np.array_equal(res.scores, ref)
        assert len(m.recoveries) == 1
        rep = m.recoveries[0]
        assert isinstance(rep, RecoveryReport)
        assert rep.p_before == p and rep.p_after == m.p == p_after
        assert rep.blocks_replica >= 1 and rep.words_restored > 0
        actions = [(e.kind, e.action) for e in m.faults.events]
        assert ("crash", "recovered") in actions
        assert eng.stats["mismatches"] == 0
        assert check_ledger(m) == []

    @pytest.mark.parametrize("executor", ["serial", "thread:2", "process:2"])
    def test_two_failures_bit_identical(self, graph, executor):
        ref = scores_of(graph, quiet(6))
        m = Machine(6, executor=executor, faults=TWO_CRASHES, elastic="replica")
        res = scores_of(graph, m, check="cheap")
        assert np.array_equal(res, ref)
        assert [(r.p_before, r.p_after) for r in m.recoveries] == [(6, 5), (5, 4)]
        assert m.faults.injected == 2
        assert check_ledger(m) == []

    def test_source_redundancy_recovers(self, graph):
        ref = scores_of(graph, quiet(6))
        m = Machine(6, faults=ONE_CRASH, elastic="source")
        res = scores_of(graph, m)
        assert np.array_equal(res, ref)
        rep = m.recoveries[0]
        assert rep.blocks_source >= 1 and rep.blocks_replica == 0

    def test_recovery_does_not_consume_retry_budget(self, graph):
        # retries=0 means a plain RankFailure would abort — elastic doesn't
        ref = scores_of(graph, quiet(6))
        m = Machine(6, faults=ONE_CRASH, elastic="replica")
        assert np.array_equal(scores_of(graph, m, retries=0), ref)
        # no elastic (explicitly, the chaos leg sets REPRO_ELASTIC):
        # the same spec aborts
        m2 = Machine(6, faults=ONE_CRASH, elastic="off")
        with pytest.raises(RankFailure):
            scores_of(graph, m2, retries=0)

    def test_recovery_charges_ledger(self, graph):
        m = Machine(6, faults=ONE_CRASH, elastic="replica")
        scores_of(graph, m)
        cat = m.ledger.category_words
        assert cat.get("redundancy", 0.0) > 0.0  # upkeep + re-arming
        assert cat.get("recovery", 0.0) > 0.0  # redistribution traffic

    def test_infeasible_grid_degrades_to_retry(self, graph):
        """CA-MFBC pinned at p=4, c=4 has no feasible grid below 4, so
        recovery fails; the driver notes the degradation and falls back to
        the plain retry ladder, which still completes the run."""
        pol = PinnedPolicy.ca_mfbc(4, 4)
        ref = scores_of(graph, quiet(4), policy=PinnedPolicy.ca_mfbc(4, 4))
        m = Machine(4, faults=ONE_CRASH, elastic="replica")
        res = scores_of(graph, m, policy=pol, retries=2)
        assert np.array_equal(res, ref)
        assert m.recoveries == []  # no successful elastic recovery
        actions = [(e.kind, e.action) for e in m.faults.events]
        assert ("crash", "degraded") in actions
        assert ("batch", "recovered") in actions  # the retry rung caught it

    def test_recovery_span_on_obs(self, graph):
        session = obs.enable()
        try:
            m = Machine(6, faults=ONE_CRASH, elastic="replica")
            scores_of(graph, m)
        finally:
            obs.disable()
        # the charged redistribution collective is also named "recovery"
        # (after its ledger category); the coordinator span is the one
        # carrying the grid transition
        spans = [
            sp for sp in session.tracer.find("recovery")
            if "p_before" in sp.args
        ]
        assert len(spans) == 1
        sp = spans[0]
        assert sp.args["p_before"] == 6 and sp.args["p_after"] == 5
        assert sp.args["blocks_replica"] >= 1

    def test_checkpoint_composes_with_recovery(self, graph, tmp_path):
        """Elastic recovery and per-batch checkpointing stack: the run
        recovers in-flight and the checkpoint file tracks every batch."""
        ref = scores_of(graph, quiet(6))
        m = Machine(6, faults=ONE_CRASH, elastic="replica")
        res = scores_of(graph, m, checkpoint=str(tmp_path / "ck.json"))
        assert np.array_equal(res, ref)
        assert len(m.recoveries) == 1

# ---------------------------------------------------------------------------
# adaptive sampler × elastic recovery
# ---------------------------------------------------------------------------


class TestAdaptiveRecovery:
    """The adaptive (ε, δ) sampler rides the same recovery ladder as mfbc:
    an injected crash is absorbed by elastic recovery (or the retry rung),
    the run terminates with its bound intact, and no batch is ever folded
    into the sampler twice — the faulted run is bit-identical to the
    fault-free one, sample for sample."""

    ADAPTIVE_KW = dict(epsilon=0.25, delta=0.2, seed=0, batch_size=8)

    def _run(self, graph, machine, **kw):
        from repro.core.approx import adaptive_bc

        merged = {**self.ADAPTIVE_KW, **kw}
        return adaptive_bc(
            graph, engine=DistributedEngine(machine), **merged
        )

    def test_elastic_recovery_bit_identical(self, graph):
        ref = self._run(graph, quiet(6))
        assert ref.converged
        m = Machine(6, faults=ONE_CRASH, elastic="replica")
        res = self._run(graph, m)
        assert np.array_equal(res.scores, ref.scores)
        assert res.width_history == ref.width_history
        # no double-counted batch: exactly the fault-free sample count
        assert res.samples_used == ref.samples_used
        assert res.converged and res.width <= res.epsilon
        assert [(r.p_before, r.p_after) for r in m.recoveries] == [(6, 5)]
        assert m.faults.injected == 1

    def test_retry_rung_bit_identical_without_elastic(self, graph):
        ref = self._run(graph, quiet(6))
        m = Machine(6, faults=ONE_CRASH, elastic="off")
        res = self._run(graph, m, retries=2)
        assert np.array_equal(res.scores, ref.scores)
        assert res.samples_used == ref.samples_used
        assert m.recoveries == []
        # the recovery note carries the adaptive driver's site tag
        assert ("batch", "recovered", "adaptive_bc") in [
            (e.kind, e.action, e.site) for e in m.faults.events
        ]

    def test_crash_without_any_ladder_aborts(self, graph):
        m = Machine(6, faults=ONE_CRASH, elastic="off")
        with pytest.raises(RankFailure):
            self._run(graph, m, retries=0)

    def test_checkpoint_composes_with_recovery(self, graph, tmp_path):
        from repro.core.approx import adaptive_bc

        ref = self._run(graph, quiet(6))
        m = Machine(6, faults=ONE_CRASH, elastic="replica")
        res = self._run(graph, m, checkpoint=str(tmp_path / "ad.json"))
        assert np.array_equal(res.scores, ref.scores)
        assert len(m.recoveries) == 1
        # the persisted sampler state resumes to the same converged answer
        # (even sequentially — shards are logical, pinned by the schedule)
        resumed = adaptive_bc(
            graph, resume_from=str(tmp_path / "ad.json"), shards=6,
            **self.ADAPTIVE_KW
        )
        assert np.array_equal(resumed.scores, ref.scores)
