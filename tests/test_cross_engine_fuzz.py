"""Cross-engine fuzzing: random operation pipelines, both engines, equality.

Hypothesis drives a random sequence of matrix operations — elementwise
combines, filters, maps, and generalized products over random monoids — and
executes it on the sequential engine and on simulated machines of various
rank counts.  Every intermediate result must agree exactly.  This is the
broadest equivalence net over the distribution logic: any divergence in
redistribution, piece extraction, reduction order, or identity pruning
shows up here.

The cross-*executor* tests at the bottom re-run the same programs on the
distributed engine under every local backend (serial / thread / process,
with the dispatch gate forced open) and require bit-identical gathered
matrices *and* bit-identical ``ledger.snapshot()`` — the determinism
guarantee the executor subsystem promises.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import MULTPATH, TROPICAL, MatMulSpec, bellman_ford_action
from repro.baselines import brandes_bc
from repro.check.strategies import WEIGHT_MONOID as W
from repro.check.strategies import graphs, pipelines
from repro.core import mfbc
from repro.core.engine import SequentialEngine
from repro.dist import DistributedEngine
from repro.graphs import Graph
from repro.machine import Machine
from repro.machine.executor import ProcessExecutor, SerialExecutor, ThreadExecutor
from repro.spgemm import Plan
from repro.spgemm.selector import PinnedPolicy

TROP = TROPICAL.matmul_spec()
BF = MatMulSpec(MULTPATH, bellman_ford_action, "bf")


def _rand_mat(engine, rng, n):
    mask = rng.random((n, n)) < 0.25
    r, c = mask.nonzero()
    vals = rng.integers(1, 9, len(r)).astype(float)
    return engine.matrix(n, n, r.astype(np.int64), c.astype(np.int64), {"w": vals}, W)


def _run(engine, n, seed, ops):
    rng = np.random.default_rng(seed)
    x = _rand_mat(engine, rng, n)
    aux = _rand_mat(engine, rng, n)
    for op in ops:
        if op == "mul":
            x, _ = engine.spgemm(x, aux, TROP)
        elif op == "combine":
            x = x.combine(aux)
        elif op == "filter":
            x = x.filter(lambda v: v["w"] > 3)
        elif op == "map":
            x = x.map(lambda v: {"w": v["w"] + 1.0})
        elif op == "transpose":
            x = x.transpose()
            aux = aux.transpose()
    return engine.gather(x)


@given(pipelines())
def test_random_pipelines_agree(pipeline):
    n, seed, p, ops = pipeline
    ref = _run(SequentialEngine(), n, seed, ops)
    got = _run(DistributedEngine(Machine(p)), n, seed, ops)
    assert got.equals(ref), (n, seed, p, ops)


@given(st.integers(0, 5000), st.sampled_from([2, 4, 9]))
@settings(max_examples=20)
def test_multpath_product_chain_agrees(seed, p):
    """Chains of Bellman-Ford products (the MFBC inner loop shape)."""
    n = 14
    rng = np.random.default_rng(seed)

    def run(engine):
        mask = rng_local.random((n, n)) < 0.3
        r, c = mask.nonzero()
        adj = engine.matrix(
            n, n, r.astype(np.int64), c.astype(np.int64),
            {"w": np.ones(len(r))}, W,
        )
        f = engine.matrix(
            2,
            n,
            np.array([0, 1], dtype=np.int64),
            np.array([0, n - 1], dtype=np.int64),
            MULTPATH.make([0.0, 0.0], [1.0, 1.0]),
            MULTPATH,
        )
        for _ in range(3):
            f, _ = engine.spgemm(f, adj, BF)
        return engine.gather(f)

    rng_local = np.random.default_rng(seed)
    ref = run(SequentialEngine())
    rng_local = np.random.default_rng(seed)
    got = run(DistributedEngine(Machine(p)))
    assert got.equals(ref)


# ---------------------------------------------------------------------------
# cross-executor determinism: serial vs thread vs process
# ---------------------------------------------------------------------------

# Pools are shared across examples (and the gate forced open with
# ``fanout_min_work=0``) so every batch actually crosses the backend even
# at fuzz-sized inputs, without paying pool startup per example.


@pytest.fixture(scope="module")
def executors():
    exs = [
        SerialExecutor(),
        ThreadExecutor(2, fanout_min_work=0),
        ProcessExecutor(2, fanout_min_work=0),
    ]
    yield exs
    for ex in exs:
        ex.close()


@given(pipelines())
@settings(max_examples=10)
def test_pipelines_agree_across_executors(executors, pipeline):
    n, seed, p, ops = pipeline
    ref = _run(SequentialEngine(), n, seed, ops)
    snaps = []
    for ex in executors:
        machine = Machine(p, executor=ex)
        got = _run(DistributedEngine(machine), n, seed, ops)
        assert got.equals(ref), (n, seed, p, ops, ex.name)
        snaps.append(machine.ledger.snapshot())
    assert snaps[1] == snaps[0], (n, seed, p, ops, "thread ledger diverged")
    assert snaps[2] == snaps[0], (n, seed, p, ops, "process ledger diverged")


#: pinned p=4 plans covering every variant class: pure 1D (A/B/C), pure 2D
#: (AB/AC/BC), and genuinely 3D nestings (1D splits × 2D grids).
PLANS_P4 = [
    Plan(4, 1, 1, "A", "AB"),
    Plan(4, 1, 1, "B", "AB"),
    Plan(4, 1, 1, "C", "AB"),
    Plan(1, 2, 2, "A", "AB"),
    Plan(1, 2, 2, "A", "AC"),
    Plan(1, 2, 2, "A", "BC"),
    Plan(2, 2, 1, "A", "AB"),
    Plan(2, 1, 2, "B", "AC"),
    Plan(2, 2, 1, "C", "BC"),
]


@given(st.integers(0, 5000), st.sampled_from(PLANS_P4))
@settings(max_examples=18)
def test_variant_classes_agree_across_executors(executors, seed, plan):
    """Every §5.2 variant class, every backend: same matrix, same ledger."""
    n = 16
    rng = np.random.default_rng(seed)
    mask = rng.random((n, n)) < 0.3
    ar, ac = (idx.astype(np.int64) for idx in mask.nonzero())
    aw = rng.integers(1, 9, len(ar)).astype(float)
    srcs = rng.choice(n, size=3, replace=False).astype(np.int64)

    def run(executor):
        machine = Machine(4, executor=executor)
        engine = DistributedEngine(machine, policy=PinnedPolicy(plan))
        adj = engine.matrix(n, n, ar, ac, {"w": aw}, W)
        engine.register_invariant(adj)
        f = engine.matrix(
            len(srcs),
            n,
            np.arange(len(srcs), dtype=np.int64),
            srcs,
            MULTPATH.make(np.zeros(len(srcs)), np.ones(len(srcs))),
            MULTPATH,
        )
        for _ in range(2):
            f, _ = engine.spgemm(f, adj, BF)
        return engine.gather(f), machine.ledger.snapshot()

    ref_mat, ref_snap = run(executors[0])
    for ex in executors[1:]:
        got, snap = run(ex)
        assert got.equals(ref_mat), (seed, plan.describe(), ex.name)
        assert snap == ref_snap, (seed, plan.describe(), ex.name)


# ---------------------------------------------------------------------------
# weighted-graph and degenerate-graph edge cases, cross-executor × variants
# ---------------------------------------------------------------------------


@given(graphs(weighted=True, max_n=12))
@settings(max_examples=15)
def test_weighted_mfbc_agrees_across_engines(g):
    """Weighted BC: sequential vs distributed, any auto-selected plan."""
    ref = mfbc(g).scores
    got = mfbc(g, engine=DistributedEngine(Machine(4), check="full")).scores
    assert np.allclose(got, ref, atol=1e-8)
    assert np.allclose(ref, brandes_bc(g), atol=1e-8)


def _edge_case_graphs():
    """Degenerate shapes the uniform fuzzers rarely hit."""
    empty = Graph(3, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
    singleton = Graph(1, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
    self_loops = Graph(
        4,
        np.array([0, 1, 1, 2], dtype=np.int64),
        np.array([0, 1, 2, 3], dtype=np.int64),
    )
    disconnected = Graph(
        6,
        np.array([0, 1, 3, 4], dtype=np.int64),
        np.array([1, 2, 4, 5], dtype=np.int64),
        np.array([2.0, 1.0, 1.0, 3.0]),
    )
    return {
        "empty": empty,
        "singleton": singleton,
        "self_loops": self_loops,
        "disconnected_weighted": disconnected,
    }


@pytest.mark.parametrize("case", sorted(_edge_case_graphs()))
def test_edge_case_graphs_agree_across_executors(executors, case):
    """Empty / singleton / self-loop / disconnected graphs: every backend
    produces the sequential scores, under full checking."""
    g = _edge_case_graphs()[case]
    ref = mfbc(g).scores
    assert np.allclose(ref, brandes_bc(g), atol=1e-12)
    for ex in executors:
        engine = DistributedEngine(Machine(4, executor=ex), check="full")
        got = mfbc(g, engine=engine).scores
        assert np.allclose(got, ref, atol=1e-12), (case, ex.name)


@pytest.mark.parametrize("plan", PLANS_P4, ids=lambda p: p.describe())
def test_edge_cases_under_every_variant(plan):
    """Degenerate frontier shapes through every §5.2 variant class."""
    cases = _edge_case_graphs()
    for name, g in cases.items():
        engine = DistributedEngine(
            Machine(4), policy=PinnedPolicy(plan), check="full"
        )
        got = mfbc(g, engine=engine).scores
        ref = mfbc(g).scores
        assert np.allclose(got, ref, atol=1e-12), (name, plan.describe())
