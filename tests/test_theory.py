"""The §5.3 closed-form results: sanity relations and claimed advantages."""

import math

import pytest

from repro.analysis.theory import (
    apsp_bandwidth_words,
    apsp_memory_words,
    best_replication_factor,
    mfbc_bandwidth_words,
    mfbc_latency_messages,
    mfbc_memory_words,
    strong_scaling_range,
)


class TestBandwidth:
    def test_matches_tiskin_at_same_c(self):
        """MFBC's n²/√(cp) term equals APSP's bandwidth — the Theorem 5.1
        'matches this bandwidth cost' claim — while its memory is c·m/p
        instead of c·n²/p."""
        n, m, p, c = 1e6, 1e7, 4096, 8
        mfbc = mfbc_bandwidth_words(n, m, p, c)
        apsp = apsp_bandwidth_words(n, p, c)
        assert mfbc == pytest.approx(apsp + c * m / p)
        assert mfbc_memory_words(n, m, p, c) < apsp_memory_words(n, p, c)

    def test_optimal_c_minimizes(self):
        n, m, p = 1e5, 1e7, 4096
        c_star = best_replication_factor(n, m, p)
        w_star = mfbc_bandwidth_words(n, m, p, c_star)
        for c in (1.0, c_star / 2, c_star * 2, p):
            if 1 <= c <= p:
                assert w_star <= mfbc_bandwidth_words(n, m, p, c) * (1 + 1e-9)

    def test_replication_reduces_bandwidth_for_dense(self):
        """For a dense-enough graph, c > 1 strictly beats c = 1."""
        n, m, p = 1e5, 1e7, 4096
        assert mfbc_bandwidth_words(n, m, p, 8) < mfbc_bandwidth_words(n, m, p, 1)

    def test_speedup_over_apsp_memory_bound(self):
        """§5.3.2: given M = Ω(n²/p^{2/3}) memory, MFBC is up to
        min(n/√m, p^{2/3}) faster — check the headline n√m/p^{2/3} cost is
        below APSP's n²/√p."""
        n, m, p = 1e6, 1e7, 32768
        headline = n * math.sqrt(m) / p ** (2 / 3)
        apsp = apsp_bandwidth_words(n, p, 1)
        assert headline < apsp


class TestLatency:
    def test_latency_grows_with_diameter(self):
        a = mfbc_latency_messages(1e5, 1e6, 1024, 1, d=10)
        b = mfbc_latency_messages(1e5, 1e6, 1024, 1, d=100)
        assert b == pytest.approx(10 * a)

    def test_latency_falls_with_replication(self):
        a = mfbc_latency_messages(1e5, 1e6, 1024, 1)
        b = mfbc_latency_messages(1e5, 1e6, 1024, 4)
        assert b < a

    def test_default_diameter_lowers_for_smaller_n(self):
        assert mfbc_latency_messages(1e3, 1e4, 64) < mfbc_latency_messages(
            1e6, 1e7, 64
        )


class TestScalingRange:
    def test_range_ordering(self):
        all_costs, bandwidth = strong_scaling_range(1e6, 1e7, 64)
        assert bandwidth > all_costs > 64

    def test_range_beats_dense_mm(self):
        """§5.3.4: the strong-scaling range p0 → p0^{3/2}·n²/m exceeds dense
        MM's p0 → p0^{3/2} whenever n² > m."""
        n, m, p0 = 1e6, 1e7, 64
        all_costs, _ = strong_scaling_range(n, m, p0)
        assert all_costs > p0 ** 1.5

    def test_memory_scaling(self):
        assert mfbc_memory_words(1e5, 1e7, 100, 2) == pytest.approx(2e5)
