"""MFBr (Algorithm 2): partial centrality factors ζ(s, v)."""

import numpy as np
import pytest

from repro.core import mfbf, mfbr
from repro.core.stats import BatchStats
from repro.graphs import Graph, uniform_random_graph_nm, with_random_weights
from repro.baselines.brandes import brandes_single_source
from repro.baselines.sssp import bfs_sssp, dijkstra_sssp


def zeta_reference(graph, s):
    """ζ(s, v) = δ(s, v)/σ̄(s, v) from the Brandes oracle."""
    delta = brandes_single_source(graph, s)
    d, sigma = (dijkstra_sssp if graph.weighted else bfs_sssp)(graph, s)
    with np.errstate(invalid="ignore", divide="ignore"):
        zeta = np.where(sigma > 0, delta / np.where(sigma > 0, sigma, 1), 0.0)
    return zeta, d


def run_pair(graph, sources):
    adj = graph.adjacency()
    t = mfbf(adj, np.asarray(sources, dtype=np.int64))
    z = mfbr(adj, t)
    return t, z


class TestZetaValues:
    @pytest.mark.parametrize("seed", range(4))
    def test_unweighted_matches_brandes(self, seed):
        g = uniform_random_graph_nm(40, 4.0, seed=seed)
        s = (7 * seed) % g.n
        t, z = run_pair(g, [s])
        zeta_ref, dist = zeta_reference(g, s)
        got = z.to_dense("p")[0]
        reach = np.isfinite(dist)
        reach[s] = False  # ζ(s, s) is unused by MFBC (diagonal excluded)
        assert np.allclose(got[reach], zeta_ref[reach], atol=1e-10)

    @pytest.mark.parametrize("seed", range(4))
    def test_weighted_matches_brandes(self, seed):
        g = with_random_weights(
            uniform_random_graph_nm(35, 4.0, seed=50 + seed), 1, 6, seed=seed
        )
        s = (5 * seed) % g.n
        t, z = run_pair(g, [s])
        zeta_ref, dist = zeta_reference(g, s)
        got = z.to_dense("p")[0]
        reach = np.isfinite(dist)
        reach[s] = False
        assert np.allclose(got[reach], zeta_ref[reach], atol=1e-10)

    @pytest.mark.parametrize("directed", [False, True])
    def test_directed_variants(self, directed):
        g = uniform_random_graph_nm(30, 3.0, directed=directed, seed=11)
        s = 3
        _, z = run_pair(g, [s])
        zeta_ref, dist = zeta_reference(g, s)
        got = z.to_dense("p")[0]
        reach = np.isfinite(dist)
        reach[s] = False
        assert np.allclose(got[reach], zeta_ref[reach], atol=1e-10)


class TestPathGraph:
    def test_path_zeta_analytic(self, path_graph):
        """On 0-1-2-3-4 from source 0: σ̄ ≡ 1, ζ(0,v) = δ(0,v) = #targets
        beyond v: ζ(0,1)=3, ζ(0,2)=2, ζ(0,3)=1, ζ(0,4)=0."""
        _, z = run_pair(path_graph, [0])
        p = z.to_dense("p")[0]
        assert np.allclose(p[1:], [3, 2, 1, 0])

    def test_diamond_zeta(self, diamond_graph):
        """From 0: σ̄(0,3)=2 and δ(0,1)=δ(0,2)=1/2, so ζ(0,1)=ζ(0,2)=1/2."""
        _, z = run_pair(diamond_graph, [0])
        p = z.to_dense("p")[0]
        assert p[1] == pytest.approx(0.5)
        assert p[2] == pytest.approx(0.5)
        assert p[3] == 0.0


class TestCounters:
    def test_all_reachable_fire_exactly_once(self, small_undirected):
        """After convergence every reachable vertex's counter is parked at −1
        (fired) — the no-double-fire invariant of lines 7–11."""
        g = small_undirected
        t, z = run_pair(g, [0])
        c = z.to_dense("c", fill=0)
        w = t.to_dense("w")[0]
        reachable = np.isfinite(w)
        assert np.all(c[0][reachable] == -1)

    def test_frontier_sizes_recorded(self, small_undirected):
        adj = small_undirected.adjacency()
        t = mfbf(adj, np.array([0, 1, 2]))
        stats = BatchStats(sources=3)
        mfbr(adj, t, stats=stats)
        assert any(it.phase == "mfbr" for it in stats.iterations)
        assert stats.total_ops > 0

    def test_max_iterations_guard(self, small_undirected):
        adj = small_undirected.adjacency()
        t = mfbf(adj, np.array([0]))
        with pytest.raises(RuntimeError, match="converge"):
            mfbr(adj, t, max_iterations=1)


class TestIsolatedCases:
    def test_single_edge(self):
        g = Graph(2, np.array([0]), np.array([1]))
        _, z = run_pair(g, [0])
        assert z.to_dense("p")[0][1] == 0.0  # leaf has ζ = 0

    def test_star_center(self):
        """Star: from a leaf, the centre mediates all other leaves."""
        n = 6
        g = Graph(n, np.zeros(n - 1, dtype=np.int64), np.arange(1, n))
        _, z = run_pair(g, [1])
        p = z.to_dense("p")[0]
        # centre 0: δ(1,0) = n-2 targets, σ̄ = 1 -> ζ = n-2
        assert p[0] == pytest.approx(n - 2)
