"""The serving layer: coalescer, versioned cache, BCService, HTTP, loadgen.

The load-bearing claims (ISSUE 6 acceptance):

* k concurrent single-source BC queries on a pinned graph execute as at
  most ``ceil(k / max_batch)`` MFBC sweeps, and every response is
  bit-identical to a per-query run;
* repeat queries at an unchanged graph version are served from the score
  cache without touching the machine's ledger;
* a mid-batch rank failure takes the elastic-recovery path and the batch
  transparently retries — no query ever observes the fault.
"""

from __future__ import annotations

import json
import threading
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import obs
from repro.core import mfbc
from repro.core.mfbc import mfbc_per_source
from repro.dist import DistributedEngine
from repro.graphs import uniform_random_graph_nm
from repro.machine import Machine
from repro.serve import (
    BCService,
    Coalescer,
    Query,
    QueryError,
    QueryState,
    ScoreCache,
    cache_key,
    serve_http,
)


@pytest.fixture
def graph():
    return uniform_random_graph_nm(36, 4.0, seed=7)


def _service(graph, **kw):
    kw.setdefault("p", 4)
    kw.setdefault("batch_window", 0.05)
    return BCService(graph, **kw)


def _reference_row(graph, source, p=4):
    """A per-query single-source run on a fresh machine of the same shape."""
    engine = DistributedEngine(Machine(p))
    return mfbc(graph, engine=engine, sources=np.array([source])).scores


# ---------------------------------------------------------------------------
# coalescer
# ---------------------------------------------------------------------------


class TestCoalescer:
    def _q(self, source, algorithm="bc_source", **kw):
        return Query(algorithm=algorithm, params={"source": source}, **kw)

    def test_take_batches_compatible_queries(self):
        c = Coalescer(max_batch=8)
        qs = [self._q(i) for i in range(5)]
        for q in qs:
            c.put(q)
        assert c.take(timeout=0.5) == qs
        assert len(c) == 0

    def test_incompatible_algorithms_split(self):
        c = Coalescer(max_batch=8)
        a, b, a2 = self._q(0), self._q(1, algorithm="bfs"), self._q(2)
        for q in (a, b, a2):
            c.put(q)
        assert c.take(timeout=0.5) == [a, a2]
        assert c.take(timeout=0.5) == [b]

    def test_max_batch_bounds_width(self):
        c = Coalescer(max_batch=3)
        qs = [self._q(i) for i in range(7)]
        for q in qs:
            c.put(q)
        widths = [len(c.take(timeout=0.5)) for _ in range(3)]
        assert widths == [3, 3, 1]

    def test_cancelled_queries_dropped(self):
        c = Coalescer(max_batch=8)
        keep, gone = self._q(0), self._q(1)
        c.put(keep)
        c.put(gone)
        gone.state = QueryState.CANCELLED
        assert c.take(timeout=0.5) == [keep]

    def test_putback_goes_to_front(self):
        c = Coalescer(max_batch=1)
        first, second = self._q(0), self._q(1)
        c.put(first)
        c.put(second)
        got = c.take(timeout=0.5)
        c.putback(got)
        assert c.take(timeout=0.5) == [first]
        assert c.take(timeout=0.5) == [second]

    def test_take_timeout_and_close(self):
        c = Coalescer(max_batch=2)
        assert c.take(timeout=0.01) is None
        c.close()
        assert c.take(timeout=0.01) is None
        with pytest.raises(RuntimeError):
            c.put(self._q(0))

    def test_window_waits_for_concurrent_submitters(self):
        c = Coalescer(max_batch=4, window=0.5)
        c.put(self._q(0))
        t = threading.Timer(0.05, lambda: [c.put(self._q(i)) for i in (1, 2, 3)])
        t.start()
        try:
            batch = c.take(timeout=1.0)
        finally:
            t.join()
        assert len(batch) == 4

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Coalescer(max_batch=0)
        with pytest.raises(ValueError):
            Coalescer(window=-1.0)

    def test_coalesce_key_ignores_source_only(self):
        a = Query(algorithm="approx_bc", params={"samples": 4, "seed": 0})
        b = Query(algorithm="approx_bc", params={"samples": 4, "seed": 1})
        assert a.coalesce_key != b.coalesce_key
        s0 = self._q(0)
        s1 = self._q(1)
        assert s0.coalesce_key == s1.coalesce_key


# ---------------------------------------------------------------------------
# versioned score cache
# ---------------------------------------------------------------------------


class TestScoreCache:
    def test_hit_miss_counting(self):
        c = ScoreCache(capacity=4)
        k = cache_key(0, "bc_source", {"source": 3})
        assert c.get(k) is None
        c.put(k, np.ones(3))
        assert np.array_equal(c.get(k), np.ones(3))
        assert (c.hits, c.misses) == (1, 1)
        assert c.hit_rate() == 0.5

    def test_peek_counts_nothing(self):
        c = ScoreCache(capacity=4)
        k = cache_key(0, "bc", {})
        assert c.peek(k) is None
        c.put(k, 1.0)
        assert c.peek(k) == 1.0
        assert (c.hits, c.misses) == (0, 0)

    def test_lru_eviction(self):
        c = ScoreCache(capacity=2)
        keys = [cache_key(0, "bc_source", {"source": i}) for i in range(3)]
        c.put(keys[0], "a")
        c.put(keys[1], "b")
        c.get(keys[0])  # refresh 0 so 1 is the LRU entry
        c.put(keys[2], "c")
        assert c.peek(keys[1]) is None
        assert c.peek(keys[0]) == "a"
        assert c.evicted == 1

    def test_invalidate_before_version(self):
        c = ScoreCache(capacity=8)
        old = cache_key(0, "bc", {})
        new = cache_key(1, "bc", {})
        c.put(old, "old")
        c.put(new, "new")
        assert c.invalidate(before_version=1) == 1
        assert c.peek(old) is None
        assert c.peek(new) == "new"
        assert c.invalidate() == 1  # drop everything

    def test_none_payload_rejected(self):
        c = ScoreCache()
        with pytest.raises(ValueError):
            c.put(cache_key(0, "bc", {}), None)

    def test_key_canonicalizes_param_order(self):
        a = cache_key(1, "approx_bc", {"samples": 4, "seed": 2})
        b = cache_key(1, "approx_bc", {"seed": 2, "samples": 4})
        assert a == b

    def test_obs_counters_emitted(self):
        c = ScoreCache()
        k = cache_key(0, "bc_source", {"source": 1})
        session = obs.enable()
        try:
            c.get(k)
            c.put(k, 1.0)
            c.get(k)
            c.invalidate()
        finally:
            obs.disable()
        m = session.metrics
        assert m.get_count("serve.cache.miss", algorithm="bc_source") == 1
        assert m.get_count("serve.cache.hit", algorithm="bc_source") == 1
        assert m.get_count("serve.cache.invalidate", algorithm="bc_source") == 1


# ---------------------------------------------------------------------------
# the service: coalescing, bit-identity, cache, lifecycle
# ---------------------------------------------------------------------------


class TestServiceCoalescing:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_concurrent_bc_source_coalesces_and_is_bit_identical(
        self, graph, executor
    ):
        """The acceptance criterion, under REPRO_CHECK=cheap semantics."""
        k, max_batch = 10, 4
        sources = list(range(k))
        with _service(
            graph,
            executor=executor,
            check="cheap",
            max_batch=max_batch,
            batch_window=0.2,
        ) as svc:
            with ThreadPoolExecutor(max_workers=k) as pool:
                ids = list(
                    pool.map(
                        lambda s: svc.submit("bc_source", source=s), sources
                    )
                )
            results = [svc.result(qid, timeout=60.0) for qid in ids]
            stats = svc.stats()
        assert stats["batches"] <= -(-k // max_batch)  # ceil(k / max_batch)
        assert stats["swept_sources"] == k
        assert stats["completed"] == k
        for s, row in zip(sources, results):
            assert np.array_equal(row, _reference_row(graph, s)), s

    def test_duplicate_sources_in_one_batch_dedupe(self, graph):
        with _service(graph, batch_window=0.2) as svc:
            ids = [svc.submit("bc_source", source=5) for _ in range(4)]
            ids.append(svc.submit("bc_source", source=6))
            results = [svc.result(qid, timeout=60.0) for qid in ids]
            stats = svc.stats()
        assert stats["batches"] == 1
        for r in results[:4]:
            assert np.array_equal(r, results[0])
        assert not np.array_equal(results[0], results[4])

    def test_coalesced_matches_mfbc_per_source(self, graph):
        src = np.array([2, 9, 17])
        expected = mfbc_per_source(graph, src, engine=DistributedEngine(Machine(4)))
        with _service(graph, batch_window=0.2) as svc:
            ids = [svc.submit("bc_source", source=int(s)) for s in src]
            rows = [svc.result(qid, timeout=60.0) for qid in ids]
        for i in range(len(src)):
            assert np.array_equal(rows[i], expected[i])


class TestServiceCache:
    def test_repeat_query_served_from_cache_without_ledger_touch(self, graph):
        with _service(graph) as svc:
            first = svc.submit("bc_source", source=3)
            res1 = svc.result(first, timeout=60.0)
            before = svc.machine.ledger.snapshot()
            second = svc.submit("bc_source", source=3)
            res2 = svc.result(second, timeout=60.0)
            after = svc.machine.ledger.snapshot()
            status = svc.poll(second)
        assert np.array_equal(res1, res2)
        assert before == after
        assert status["cache_hit"] is True
        assert status["batch_size"] == 0

    def test_update_graph_bumps_version_and_invalidates(self, graph):
        other = uniform_random_graph_nm(36, 4.0, seed=8)
        with _service(graph) as svc:
            res_old = svc.result(svc.submit("bc_source", source=1), timeout=60.0)
            assert svc.graph_version == 0
            version = svc.update_graph(other)
            assert version == 1
            res_new = svc.result(svc.submit("bc_source", source=1), timeout=60.0)
            status = svc.poll(svc.submit("bc_source", source=1))
            # the default overload config retains stale_depth=1 generation
            # for brownout stale serving; a second swap purges version 0
            assert svc.cache.invalidated == 0
            svc.update_graph(graph)
            assert svc.cache.invalidated >= 1
        assert not np.array_equal(res_old, res_new)
        assert np.array_equal(res_new, _reference_row(other, 1))
        assert status["cache_hit"] is True  # new version re-cached
        assert status["graph_version"] == 1

    def test_whole_graph_queries_cache_and_dedupe(self, graph):
        with _service(graph) as svc:
            a = svc.result(svc.submit("connected"), timeout=60.0)
            before = svc.machine.ledger.snapshot()
            b = svc.result(svc.submit("connected"), timeout=60.0)
            assert svc.machine.ledger.snapshot() == before
            assert np.array_equal(a, b)

    def test_approx_bc_params_key_the_cache(self, graph):
        with _service(graph) as svc:
            a = svc.result(svc.submit("approx_bc", samples=4, seed=0), timeout=60.0)
            b = svc.result(svc.submit("approx_bc", samples=4, seed=1), timeout=60.0)
            c = svc.result(svc.submit("approx_bc", samples=4, seed=0), timeout=60.0)
            stats = svc.stats()
        assert np.array_equal(a, c)
        assert not np.array_equal(a, b)
        assert stats["cache"]["hits"] >= 1


class TestServiceAlgorithms:
    def test_all_algorithms_complete(self, graph):
        with _service(graph) as svc:
            specs = [
                ("bc", {}),
                ("bc_source", {"source": 0}),
                ("approx_bc", {"samples": 4}),
                ("adaptive_bc", {"epsilon": 0.4, "delta": 0.2}),
                ("bfs", {"source": 1}),
                ("sssp", {"source": 2}),
                ("widest", {"source": 3}),
                ("connected", {}),
                ("triangles", {}),
            ]
            ids = [svc.submit(alg, **kw) for alg, kw in specs]
            results = {
                alg: svc.result(qid, timeout=120.0)
                for (alg, _), qid in zip(specs, ids)
            }
        assert results["bc"].shape == (graph.n,)
        assert results["bc_source"].shape == (graph.n,)
        assert results["approx_bc"].shape == (graph.n,)
        assert results["adaptive_bc"].shape == (graph.n,)
        assert results["bfs"].shape == (graph.n,)
        assert results["sssp"].shape == (graph.n,)
        assert results["widest"].shape == (graph.n,)
        assert results["connected"].shape == (graph.n,)
        assert isinstance(results["triangles"], (int, np.integer))

    def test_bfs_row_matches_direct_run(self, graph):
        from repro.apps import bfs_levels

        expected = bfs_levels(graph, np.array([4]))
        with _service(graph) as svc:
            row = svc.result(svc.submit("bfs", source=4), timeout=60.0)
        assert np.array_equal(row, expected[0])

    def test_validation_errors(self, graph):
        with _service(graph) as svc:
            with pytest.raises(ValueError, match="unknown algorithm"):
                svc.submit("pagerank")
            with pytest.raises(ValueError, match="requires a source"):
                svc.submit("bc_source")
            with pytest.raises(ValueError, match="out of range"):
                svc.submit("bfs", source=graph.n)
            with pytest.raises(ValueError, match="does not take a source"):
                svc.submit("bc", source=0)
            with pytest.raises(ValueError, match="requires samples"):
                svc.submit("approx_bc")
            with pytest.raises(ValueError, match="samples"):
                svc.submit("approx_bc", samples=0)
            with pytest.raises(ValueError, match="deadline"):
                svc.submit("bc_source", source=0, deadline=-1.0)
            with pytest.raises(ValueError, match="epsilon must be positive"):
                svc.submit("adaptive_bc", epsilon=0.0)
            with pytest.raises(ValueError, match=r"delta must be in \(0, 1\)"):
                svc.submit("adaptive_bc", delta=2.0)


class TestServiceAdaptive:
    """adaptive_bc as a service algorithm: drop-in λ-scale payload,
    coalescing keyed on the (ε, δ, seed) accuracy target, cache reuse."""

    def test_result_matches_direct_run(self, graph):
        from repro.core.approx import adaptive_bc

        expected = adaptive_bc(
            graph,
            epsilon=0.3,
            delta=0.2,
            seed=5,
            engine=DistributedEngine(Machine(4)),
        ).scores
        with _service(graph) as svc:
            got = svc.result(
                svc.submit("adaptive_bc", epsilon=0.3, delta=0.2, seed=5),
                timeout=120.0,
            )
        assert np.array_equal(got, expected)

    def test_identical_targets_coalesce_and_cache(self, graph):
        with _service(graph) as svc:
            kw = dict(epsilon=0.4, delta=0.2, seed=1)
            with svc._exec_lock:  # park the dispatcher so both queue
                a = svc.submit("adaptive_bc", **kw)
                b = svc.submit("adaptive_bc", **kw)
            ra = svc.result(a, timeout=120.0)
            rb = svc.result(b, timeout=120.0)
            batches = svc.stats()["batches"]
            # same key → one sweep; a third submit is a submit-time hit
            c = svc.submit("adaptive_bc", **kw)
            rc = svc.result(c, timeout=120.0)
            assert svc.poll(c)["cache_hit"] is True
            assert svc.stats()["batches"] == batches
        assert np.array_equal(ra, rb) and np.array_equal(ra, rc)
        assert batches == 1

    def test_distinct_targets_do_not_share(self, graph):
        from repro.serve import Query

        q1 = Query(algorithm="adaptive_bc",
                   params={"epsilon": 0.3, "delta": 0.2, "seed": 0})
        q2 = Query(algorithm="adaptive_bc",
                   params={"epsilon": 0.3, "delta": 0.2, "seed": 1})
        q3 = Query(algorithm="adaptive_bc",
                   params={"epsilon": 0.2, "delta": 0.2, "seed": 0})
        assert q1.coalesce_key != q2.coalesce_key
        assert q1.coalesce_key != q3.coalesce_key

    def test_defaults_applied_when_unspecified(self, graph):
        with _service(graph) as svc:
            qid = svc.submit("adaptive_bc")
            svc.result(qid, timeout=120.0)
            params = svc._get(qid).params
        assert params == {"epsilon": 0.1, "delta": 0.1, "seed": 0}


class TestServiceLifecycle:
    def test_cancel_queued_query(self, graph):
        with _service(graph, batch_window=0.5) as svc:
            blocker = svc.submit("bc_source", source=0)
            victim = svc.submit("bc_source", source=1, deadline=None)
            cancelled = svc.cancel(victim)
            status = svc.poll(victim)
            svc.result(blocker, timeout=60.0)
        if cancelled:  # racy by design: dispatcher may have grabbed it first
            assert status["state"] == "cancelled"
            with pytest.raises(QueryError, match="cancelled"):
                svc.result(victim, timeout=5.0)
        assert svc.cancel(blocker) is False  # terminal: not cancellable

    def test_unknown_query_id(self, graph):
        with _service(graph) as svc:
            with pytest.raises(KeyError):
                svc.poll("q999999")
            with pytest.raises(KeyError):
                svc.result("nope")

    def test_result_timeout(self, graph):
        with _service(graph, batch_window=1.0) as svc:
            qid = svc.submit("bc_source", source=0)
            with pytest.raises(TimeoutError):
                svc.result(qid, timeout=0.01)
            svc.result(qid, timeout=60.0)

    def test_closed_service_rejects_submissions(self, graph):
        svc = _service(graph)
        svc.close()
        with pytest.raises(RuntimeError, match="closed"):
            svc.submit("bc_source", source=0)
        svc.close()  # idempotent

    def test_stats_shape(self, graph):
        with _service(graph) as svc:
            svc.result(svc.submit("bc_source", source=0), timeout=60.0)
            stats = svc.stats()
        for key in (
            "graph_version",
            "queued",
            "p",
            "submitted",
            "completed",
            "batches",
            "coalescing_factor",
            "cache",
        ):
            assert key in stats, key
        assert stats["submitted"] == stats["completed"] == 1


# ---------------------------------------------------------------------------
# deadlines and faults mid-batch
# ---------------------------------------------------------------------------


class TestServiceDeadlines:
    def test_tiny_deadline_expires(self, graph):
        with _service(graph) as svc:
            qid = svc.submit("bc_source", source=0, deadline=1e-12)
            with pytest.raises(QueryError, match="expired"):
                svc.result(qid, timeout=60.0)
            assert svc.poll(qid)["state"] == "expired"
            assert svc.stats()["expired"] == 1

    def test_mixed_budgets_expire_only_the_blown_query(self, graph):
        with _service(graph, batch_window=0.3) as svc:
            with ThreadPoolExecutor(max_workers=2) as pool:
                tight = pool.submit(
                    svc.submit, "bc_source", source=0, deadline=1e-12
                ).result()
                loose = pool.submit(
                    svc.submit, "bc_source", source=1, deadline=1e6
                ).result()
            with pytest.raises(QueryError, match="expired"):
                svc.result(tight, timeout=60.0)
            row = svc.result(loose, timeout=60.0)
        assert np.array_equal(row, _reference_row(graph, 1))

    def test_deadline_restores_machine_global_deadline(self, graph):
        machine = Machine(4, deadline=1e9)
        with _service(graph, machine=machine) as svc:
            svc.result(svc.submit("bc_source", source=0, deadline=1e6), timeout=60.0)
            assert machine.deadline == 1e9


class TestServiceFaults:
    def test_rank_failure_mid_batch_recovers_elastically(self, graph):
        with _service(
            graph, faults="seed:3,crash@10:1", elastic="replica"
        ) as svc:
            ids = [svc.submit("bc_source", source=s) for s in range(3)]
            rows = [svc.result(qid, timeout=120.0) for qid in ids]
            stats = svc.stats()
            assert svc.machine.faults.injected >= 1
            assert len(svc.machine.recoveries) >= 1
            assert stats["recoveries"] >= 1
            assert stats["failed"] == 0
        # answers survive the grid shrink bit-identically
        for s, row in zip(range(3), rows):
            assert np.array_equal(row, _reference_row(graph, s)), s

    def test_fault_without_elastic_takes_retry_ladder(self, graph):
        # a rank crash with elastic recovery off falls back to plain retries
        with _service(graph, faults="seed:5,crash@8", retries=3) as svc:
            row = svc.result(svc.submit("bc_source", source=2), timeout=120.0)
            stats = svc.stats()
            assert svc.machine.faults.injected >= 1
        assert stats["retries"] >= 1
        assert stats["failed"] == 0
        assert np.array_equal(row, _reference_row(graph, 2))

    def test_exhausted_retries_fail_the_batch(self, graph):
        # an unconditional crash storm: every batch attempt faults
        with _service(graph, faults="seed:1,crash:1.0", retries=1) as svc:
            qid = svc.submit("bc_source", source=0)
            with pytest.raises(QueryError, match="failed"):
                svc.result(qid, timeout=120.0)
            assert svc.stats()["failed"] == 1


# ---------------------------------------------------------------------------
# HTTP front end
# ---------------------------------------------------------------------------


@pytest.fixture
def http_service(graph):
    svc = BCService(graph, p=4, batch_window=0.02)
    server = serve_http(svc, port=0)
    server.start_background()
    try:
        yield svc, server.address
    finally:
        server.shutdown()
        svc.close()


def _http(method, url, body=None, timeout=60.0):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        url, data=data, method=method, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


class TestHTTP:
    def test_healthz_and_stats(self, http_service):
        _, base = http_service
        code, body = _http("GET", f"{base}/v1/healthz")
        assert code == 200 and body["ok"] is True
        code, body = _http("GET", f"{base}/v1/stats")
        assert code == 200 and "cache" in body

    def test_submit_wait_roundtrip(self, graph, http_service):
        _, base = http_service
        code, body = _http(
            "POST",
            f"{base}/v1/query",
            {"algorithm": "bc_source", "source": 3, "wait": True},
        )
        assert code == 200
        assert body["state"] == "done"
        assert np.array_equal(
            np.asarray(body["result"]), _reference_row(graph, 3)
        )

    def test_submit_poll_roundtrip(self, http_service):
        _, base = http_service
        code, body = _http(
            "POST", f"{base}/v1/query", {"algorithm": "bfs", "source": 0}
        )
        assert code in (200, 202)
        qid = body["id"]
        for _ in range(600):
            code, status = _http("GET", f"{base}/v1/query/{qid}")
            if status["state"] in ("done", "failed", "expired"):
                break
            import time

            time.sleep(0.05)
        assert status["state"] == "done"

    def test_adaptive_epsilon_delta_pass_through(self, http_service):
        svc, base = http_service
        code, body = _http(
            "POST",
            f"{base}/v1/query",
            {"algorithm": "adaptive_bc", "epsilon": 0.4, "delta": 0.2,
             "seed": 2, "wait": True},
        )
        assert code == 200 and body["state"] == "done"
        assert svc._get(body["id"]).params == {
            "epsilon": 0.4, "delta": 0.2, "seed": 2,
        }

    def test_cached_resubmit_returns_200_with_result(self, http_service):
        _, base = http_service
        _http(
            "POST",
            f"{base}/v1/query",
            {"algorithm": "bc_source", "source": 5, "wait": True},
        )
        code, body = _http(
            "POST", f"{base}/v1/query", {"algorithm": "bc_source", "source": 5}
        )
        assert code == 200  # submit-time cache hit carries the answer
        assert body["cache_hit"] is True and "result" in body

    def test_graph_update_over_http(self, http_service):
        svc, base = http_service
        code, body = _http(
            "POST",
            f"{base}/v1/graph",
            {"n": 4, "edges": [[0, 1], [1, 2], [2, 3]], "directed": False},
        )
        assert code == 200
        assert body["graph_version"] == 1
        assert svc.graph.n == 4
        code, body = _http(
            "POST",
            f"{base}/v1/query",
            {"algorithm": "bc_source", "source": 1, "wait": True},
        )
        assert code == 200 and body["graph_version"] == 1

    def test_errors(self, http_service):
        _, base = http_service
        code, body = _http("POST", f"{base}/v1/query", {"source": 1})
        assert code == 400 and "algorithm" in body["error"]
        code, body = _http(
            "POST", f"{base}/v1/query", {"algorithm": "nope", "source": 1}
        )
        assert code == 400
        code, _ = _http("GET", f"{base}/v1/query/q999999")
        assert code == 404
        code, _ = _http("GET", f"{base}/v1/nothing")
        assert code == 404

    def test_infinite_floats_survive_json(self, graph, http_service):
        # a disconnected vertex's SSSP distance is modeled +inf
        _, base = http_service
        code, body = _http(
            "POST",
            f"{base}/v1/query",
            {"algorithm": "sssp", "source": 0, "wait": True},
        )
        assert code == 200  # json.dumps would have raised on bare Infinity


# ---------------------------------------------------------------------------
# load generator (the CI smoke's engine) + CLI wiring
# ---------------------------------------------------------------------------


class TestLoadgen:
    def test_generate_queries_is_deterministic_and_valid(self):
        from repro.serve.loadgen import generate_queries

        a = generate_queries(50, 100, seed=3)
        b = generate_queries(50, 100, seed=3)
        assert a == b
        for spec in a:
            if spec["algorithm"] in ("bc_source", "bfs", "sssp", "widest"):
                assert 0 <= spec["source"] < 100
            elif spec["algorithm"] == "approx_bc":
                assert spec["samples"] >= 1

    def test_direct_smoke_exits_zero(self, capsys):
        from repro.serve.loadgen import main

        rc = main(
            [
                "--queries",
                "30",
                "--concurrency",
                "4",
                "--scale",
                "5",
                "--p",
                "4",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "PASS: zero failed queries" in out

    def test_run_load_reports(self, graph):
        from repro.serve.loadgen import DirectClient, generate_queries, run_load

        with _service(graph) as svc:
            specs = generate_queries(20, graph.n, seed=1)
            report = run_load(DirectClient(svc), specs, concurrency=4)
        assert report.queries == 20
        assert report.failed == 0
        assert report.completed == 20
        assert report.percentile(99) >= report.percentile(50) >= 0
        assert "queries" in report.summary()


class TestCLI:
    def test_serve_subcommand_registered(self):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["serve", "--help"])
        assert exc.value.code == 0


# ---------------------------------------------------------------------------
# trace-report surfacing of the cache counters (satellite 3)
# ---------------------------------------------------------------------------


class TestCacheReport:
    def test_cache_events_render_in_report(self, graph):
        from repro.analysis.report import cache_attribution, format_cache_report

        session = obs.enable()
        try:
            with _service(graph) as svc:
                svc.result(svc.submit("bc_source", source=0), timeout=60.0)
                svc.result(svc.submit("bc_source", source=0), timeout=60.0)
        finally:
            obs.disable()
        rows = cache_attribution(session.metrics)
        assert any(r["algorithm"] == "bc_source" and r["hits"] >= 1 for r in rows)
        text = format_cache_report(session.metrics)
        assert "serve.cache" in text and "bc_source" in text

    def test_empty_metrics_render_empty(self):
        from repro.analysis.report import format_cache_report
        from repro.obs.metrics import Metrics

        assert format_cache_report(Metrics()) == ""
