"""Overload robustness: admission, shedding, brownout, breaker, watchdog.

Unit-level pieces run against an injected fake clock so watermark and
breaker transitions are deterministic; service-level tests use the same
tiny graph as ``test_serve.py`` and force states directly (the soak
harness in ``scripts/soak.py`` exercises the emergent behavior under real
overload).
"""

from __future__ import annotations

import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.graphs import uniform_random_graph_nm
from repro.serve import (
    AdmissionController,
    AdmissionError,
    BCService,
    CircuitBreaker,
    CircuitOpen,
    CostEstimator,
    OverloadConfig,
    QueryError,
    ServiceState,
    TokenBucket,
)
from repro.serve.overload import BreakerState


@pytest.fixture(scope="module")
def graph():
    return uniform_random_graph_nm(36, 4.0, seed=7)


def _service(graph, **kw):
    kw.setdefault("p", 4)
    kw.setdefault("batch_window", 0.05)
    return BCService(graph, **kw)


def _reference_row(graph, source, p=4):
    from repro.core.mfbc import mfbc_per_source
    from repro.dist.engine import DistributedEngine
    from repro.machine.machine import Machine

    engine = DistributedEngine(Machine(p))
    rows = mfbc_per_source(graph, np.array([source]), engine=engine)
    return rows[0]


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


# ---------------------------------------------------------------------------
# config validation + health states
# ---------------------------------------------------------------------------


class TestConfig:
    def test_defaults_valid(self):
        cfg = OverloadConfig()
        assert cfg.max_queued == 1024
        assert cfg.max_queued_seconds is None

    @pytest.mark.parametrize(
        "kw",
        [
            {"max_queued": 0},
            {"max_queued_seconds": -1.0},
            {"brownout_high": 0.2, "brownout_low": 0.5},
            {"shed_high": 0.0, "shed_low": 0.0},
            {"brownout_high": 0.95},  # above shed_high
            {"breaker_threshold": 0},
            {"brownout_samples": 0},
            {"stale_depth": -1},
            {"brownout_algorithm": "pagerank"},
            {"brownout_algorithm": "adaptive_bc", "brownout_epsilon": 0.0},
            {"brownout_algorithm": "adaptive_bc", "brownout_delta": 1.5},
        ],
    )
    def test_invalid_rejected(self, kw):
        with pytest.raises(ValueError):
            OverloadConfig(**kw)

    def test_service_state_liveness(self):
        assert ServiceState.OK.live and ServiceState.DEGRADED.live
        for s in (ServiceState.OVERLOADED, ServiceState.DRAINING, ServiceState.DEAD):
            assert not s.live


# ---------------------------------------------------------------------------
# token bucket
# ---------------------------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_starve_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
        assert [bucket.try_take()[0] for _ in range(3)] == [True] * 3
        ok, wait = bucket.try_take()
        assert not ok and wait == pytest.approx(0.5)
        clock.advance(0.5)  # one token refilled
        assert bucket.try_take()[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


# ---------------------------------------------------------------------------
# admission controller + watermark governor
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_count_bound(self):
        # watermarks above 1.0 never arm, isolating the hard count bound
        ctl = AdmissionController(
            OverloadConfig(
                max_queued=2, shed_high=5.0, shed_low=1.0,
                brownout_high=4.0, brownout_low=1.0,
            )
        )
        ctl.admit(0.1)
        ctl.admit(0.1)
        with pytest.raises(AdmissionError) as exc:
            ctl.admit(0.1)
        assert exc.value.reason == "queue_full"
        assert exc.value.retry_after is not None
        ctl.release(0.1)
        ctl.admit(0.1)  # bound frees up

    def test_modeled_seconds_bound(self):
        ctl = AdmissionController(
            OverloadConfig(max_queued=100, max_queued_seconds=1.0)
        )
        ctl.admit(0.8)
        with pytest.raises(AdmissionError) as exc:
            ctl.admit(0.3)
        assert exc.value.reason == "queue_seconds"
        ctl.admit(0.1)  # still fits

    def test_queued_memory_bound(self):
        ctl = AdmissionController(
            OverloadConfig(max_queued=100, max_queued_memory_words=1000.0)
        )
        ctl.admit(0.0, memory_words=800.0)
        with pytest.raises(AdmissionError) as exc:
            ctl.admit(0.0, memory_words=300.0)
        assert exc.value.reason == "queue_memory"
        ctl.admit(0.0, memory_words=100.0)  # still fits
        assert ctl.snapshot()["queued_memory_words"] == pytest.approx(900.0)
        ctl.release(0.0, memory_words=800.0)
        ctl.admit(0.0, memory_words=850.0)  # bound frees on release

    def test_queued_memory_drives_pressure(self):
        ctl = AdmissionController(
            OverloadConfig(max_queued=100, max_queued_memory_words=1000.0)
        )
        ctl.admit(0.0, memory_words=500.0)
        # one query of a hundred, but half the memory bound: memory wins
        assert ctl.snapshot()["pressure"] == pytest.approx(0.5)

    def test_rate_limit_per_client(self):
        clock = FakeClock()
        ctl = AdmissionController(
            OverloadConfig(client_rate=1.0, client_burst=2.0), clock=clock
        )
        ctl.admit(0.0, client="a")
        ctl.admit(0.0, client="a")
        with pytest.raises(AdmissionError) as exc:
            ctl.admit(0.0, client="a")
        assert exc.value.reason == "rate_limited"
        ctl.admit(0.0, client="b")  # buckets are per client
        clock.advance(1.0)
        ctl.admit(0.0, client="a")  # refilled

    def test_hysteresis_bands(self):
        cfg = OverloadConfig(
            max_queued=10,
            brownout_high=0.60, brownout_low=0.30,
            shed_high=0.90, shed_low=0.50,
        )
        ctl = AdmissionController(cfg)
        for _ in range(6):  # pressure 0.6 → brownout arms
            ctl.admit(0.0)
        assert ctl.brownout_active and not ctl.shedding_active
        for _ in range(3):  # pressure 0.9 → shedding arms
            ctl.admit(0.0)
        assert ctl.shedding_active
        with pytest.raises(AdmissionError) as exc:
            ctl.admit(0.0)
        assert exc.value.reason == "overloaded"
        for _ in range(4):  # pressure 0.5 → shed re-arms (low watermark)
            ctl.release(0.0)
        assert not ctl.shedding_active
        assert ctl.brownout_active  # still above its own low watermark
        for _ in range(3):  # pressure 0.2 < 0.3 → brownout recovers
            ctl.release(0.0)
        assert not ctl.brownout_active
        # no flapping: 0.4 is inside both bands → neither re-arms
        for _ in range(2):
            ctl.admit(0.0)
        assert not ctl.brownout_active and not ctl.shedding_active

    def test_readmit_never_rejects(self):
        ctl = AdmissionController(OverloadConfig(max_queued=1))
        ctl.admit(0.5)
        ctl.readmit(0.5)  # retry putback: over the bound, still accepted
        assert ctl.queued_count == 2
        assert ctl.queued_seconds == pytest.approx(1.0)

    def test_retry_after_tracks_queue_depth(self):
        cfg = OverloadConfig(retry_after_floor=0.05, retry_after_cap=2.0)
        ctl = AdmissionController(cfg)
        assert ctl.retry_after() == pytest.approx(0.05)  # empty → floor
        ctl.observe_drain(1, 1.0)  # ~0.7s per query after one EWMA step
        for _ in range(5):
            ctl.admit(0.0)
        assert 0.05 < ctl.retry_after() <= 2.0
        for _ in range(1000):
            ctl.readmit(0.0)
        assert ctl.retry_after() == pytest.approx(2.0)  # clamped at cap

    def test_snapshot_shape(self):
        ctl = AdmissionController(OverloadConfig())
        ctl.admit(0.25)
        snap = ctl.snapshot()
        assert snap["queued_count"] == 1
        assert snap["queued_seconds"] == pytest.approx(0.25)
        assert snap["peak_queued"] == 1
        assert 0 <= snap["pressure"] <= 1
        assert snap["brownout"] is False and snap["shedding"] is False


# ---------------------------------------------------------------------------
# circuit breaker
# ---------------------------------------------------------------------------


class TestBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        brk = CircuitBreaker(threshold=3, reset_timeout=5.0, clock=clock)
        brk.record_failure()
        brk.record_failure()
        brk.record_success()  # success resets the consecutive count
        for _ in range(2):
            brk.record_failure()
        assert brk.state is BreakerState.CLOSED
        brk.record_failure()
        assert brk.state is BreakerState.OPEN
        assert not brk.allow()
        assert brk.retry_after() == pytest.approx(5.0)

    def test_half_open_single_probe_then_close(self):
        clock = FakeClock()
        brk = CircuitBreaker(threshold=1, reset_timeout=5.0, clock=clock)
        brk.record_failure()
        assert not brk.allow()
        clock.advance(5.0)
        assert brk.allow()  # the probe
        assert brk.state is BreakerState.HALF_OPEN
        assert not brk.allow()  # exactly one probe at a time
        brk.record_success()
        assert brk.state is BreakerState.CLOSED
        assert brk.allow()

    def test_probe_failure_reopens(self):
        clock = FakeClock()
        brk = CircuitBreaker(threshold=1, reset_timeout=5.0, clock=clock)
        brk.record_failure()
        clock.advance(5.0)
        assert brk.allow()
        brk.record_failure()
        assert brk.state is BreakerState.OPEN
        assert brk.opened_total == 2
        assert not brk.allow()


# ---------------------------------------------------------------------------
# cost estimator
# ---------------------------------------------------------------------------


class TestEstimator:
    def test_baseline_scales_with_units(self, graph):
        from repro.machine.machine import Machine

        est = CostEstimator(Machine(4), graph)
        one = est.estimate("bc_source", {"source": 0})
        assert one > 0
        assert est.estimate("bc", {}) == pytest.approx(one * graph.n)
        assert est.estimate("approx_bc", {"samples": 5, "seed": 0}) == (
            pytest.approx(one * 5)
        )

    def test_adaptive_units_follow_planned_bound(self, graph):
        from repro.core.approx import planned_sample_bound
        from repro.machine.machine import Machine

        est = CostEstimator(Machine(4), graph)
        one = est.estimate("bc_source", {"source": 0})
        planned = planned_sample_bound(graph.n, 0.1, 0.1)
        assert planned >= 1
        assert est.estimate(
            "adaptive_bc", {"epsilon": 0.1, "delta": 0.1, "seed": 0}
        ) == pytest.approx(one * planned)
        # a looser target prices cheaper
        assert est.units(
            "adaptive_bc", {"epsilon": 0.5, "delta": 0.1}
        ) <= planned

    def test_observe_corrects_the_estimate(self, graph):
        from repro.machine.machine import Machine

        est = CostEstimator(Machine(4), graph, smoothing=0.5)
        baseline = est.estimate("bc_source", {"source": 0})
        est.observe("bc_source", units=1.0, modeled_seconds=baseline * 10)
        first = est.estimate("bc_source", {"source": 0})
        assert first == pytest.approx(baseline * 10)  # first sample adopted
        est.observe("bc_source", units=1.0, modeled_seconds=baseline * 10)
        assert est.estimate("bc_source", {"source": 0}) == pytest.approx(
            baseline * 10
        )

    def test_rebind_resets_learned_rates(self, graph):
        from repro.machine.machine import Machine

        est = CostEstimator(Machine(4), graph)
        baseline = est.estimate("bc_source", {"source": 0})
        est.observe("bc_source", units=1.0, modeled_seconds=baseline * 100)
        est.rebind(graph)
        assert est.estimate("bc_source", {"source": 0}) == pytest.approx(baseline)


# ---------------------------------------------------------------------------
# service integration: shed / brownout / stale / infeasible
# ---------------------------------------------------------------------------


    def test_memory_estimate_follows_theory_form(self, graph):
        from repro.analysis.theory import mfbc_memory_words
        from repro.machine.machine import Machine

        est = CostEstimator(Machine(4), graph)
        floor = est.estimate_memory_words("bc_source", {"source": 0}, width=1)
        # the estimator's m is the adjacency nnz (2m when undirected)
        assert floor == pytest.approx(
            mfbc_memory_words(est._n, est._m, 4) + graph.n / 4
        )
        full = est.estimate_memory_words("bc", {})
        # the n x nb working set grows with the batch width, the m/p term
        # is width-independent
        assert full - floor == pytest.approx(graph.n * (graph.n - 1) / 4)


class TestServiceOverload:
    def test_queue_bound_sheds_and_recovers(self, graph):
        cfg = OverloadConfig(max_queued=2, shed_high=0.9, shed_low=0.4)
        with _service(graph, overload=cfg, batch_window=0.0) as svc:
            with svc._exec_lock:  # park the dispatcher so the queue fills
                ids = [svc.submit("bc_source", source=i) for i in range(2)]
                with pytest.raises(AdmissionError) as exc:
                    svc.submit("bc_source", source=5)
                assert exc.value.reason in ("overloaded", "queue_full")
                assert svc.health()["state"] == "overloaded"
                assert svc.stats()["shed"] == 1
            for qid in ids:
                svc.result(qid, timeout=60.0)
            assert svc.health()["state"] in ("ok", "degraded")
            svc.submit("bc_source", source=6)  # admitting again

    def test_brownout_downgrades_bc_and_marks_degraded(self, graph):
        with _service(graph) as svc:
            svc.admission.brownout_active = True
            qid = svc.submit("bc")
            degraded = svc.result(qid, timeout=60.0)
            status = svc.poll(qid)
            svc.admission.brownout_active = False
            exact = svc.result(svc.submit("bc"), timeout=60.0)
        assert status["degraded"] is True
        assert status["requested_algorithm"] == "bc"
        assert status["algorithm"] == "approx_bc"
        assert not np.array_equal(degraded, exact)

    def test_brownout_downgrades_to_adaptive_when_configured(self, graph):
        cfg = OverloadConfig(
            brownout_algorithm="adaptive_bc",
            brownout_epsilon=0.4,
            brownout_delta=0.2,
            brownout_seed=3,
        )
        with _service(graph, overload=cfg) as svc:
            svc.admission.brownout_active = True
            qid = svc.submit("bc")
            degraded = svc.result(qid, timeout=60.0)
            status = svc.poll(qid)
            # the degraded answer shares the adaptive cache key
            same = svc.result(
                svc.submit("adaptive_bc", epsilon=0.4, delta=0.2, seed=3),
                timeout=60.0,
            )
            svc.admission.brownout_active = False
            exact = svc.result(svc.submit("bc"), timeout=60.0)
        assert status["degraded"] is True
        assert status["requested_algorithm"] == "bc"
        assert status["algorithm"] == "adaptive_bc"
        assert np.array_equal(degraded, same)
        assert not np.array_equal(degraded, exact)
        assert degraded.shape == exact.shape  # drop-in λ-scale payload

    def test_brownout_answers_cache_under_approx_key(self, graph):
        cfg = OverloadConfig(brownout_samples=6, brownout_seed=3)
        with _service(graph, overload=cfg) as svc:
            svc.admission.brownout_active = True
            a = svc.result(svc.submit("bc"), timeout=60.0)
            b = svc.result(
                svc.submit("approx_bc", samples=6, seed=3), timeout=60.0
            )
            svc.admission.brownout_active = False
            exact = svc.result(svc.submit("bc"), timeout=60.0)
        assert np.array_equal(a, b)  # degraded bc == the approx key it used
        assert not np.array_equal(exact, a)  # exact bc never polluted

    def test_brownout_serves_stale_generation(self, graph):
        other = uniform_random_graph_nm(36, 4.0, seed=8)
        with _service(graph, overload=OverloadConfig(stale_depth=1)) as svc:
            old = svc.result(svc.submit("bc_source", source=1), timeout=60.0)
            svc.update_graph(other)
            svc.admission.brownout_active = True
            qid = svc.submit("bc_source", source=1)
            stale = svc.result(qid, timeout=60.0)
            status = svc.poll(qid)
            svc.admission.brownout_active = False
            fresh = svc.result(svc.submit("bc_source", source=1), timeout=60.0)
        assert np.array_equal(stale, old)  # version-0 answer served
        assert status["degraded"] is True
        assert status["stale_version"] == 0
        assert status["cache_hit"] is True
        assert not np.array_equal(fresh, stale)

    def test_infeasible_deadline_expires_at_submit(self, graph):
        with _service(graph) as svc:
            before = svc.stats()["batches"]
            qid = svc.submit("bc", deadline=1e-15)
            status = svc.poll(qid)
            with pytest.raises(QueryError, match="expired"):
                svc.result(qid, timeout=5.0)
            stats = svc.stats()
        assert status["state"] == "expired"
        assert "infeasible" in status["error"]
        assert stats["infeasible"] == 1
        assert stats["batches"] == before  # never burned a sweep

    def test_memory_infeasible_submit_expires(self, graph):
        # modeled floor (batch width 1) above the per-rank budget: no batch
        # shrink can make it fit, so the query expires before queueing
        with _service(graph, memory_words=1 << 30) as svc:
            before = svc.stats()["batches"]
            svc.estimator.estimate_memory_words = (
                lambda *a, **k: float(1 << 40)
            )
            qid = svc.submit("bc")
            status = svc.poll(qid)
            with pytest.raises(QueryError, match="expired"):
                svc.result(qid, timeout=5.0)
            stats = svc.stats()
        assert status["state"] == "expired"
        assert "memory infeasible" in status["error"]
        assert stats["infeasible"] == 1
        assert stats["batches"] == before  # never burned a sweep

    def test_memory_admission_charges_and_releases(self, graph):
        cfg = OverloadConfig(max_queued_memory_words=1e12)
        with _service(graph, memory_words=1 << 30, overload=cfg) as svc:
            qids = [svc.submit("bc_source", source=i) for i in range(3)]
            rows = [svc.result(q, timeout=60.0) for q in qids]
            snap = svc.admission.snapshot()
        for i, row in enumerate(rows):
            np.testing.assert_allclose(row, _reference_row(graph, i))
        # every completed query released its modeled-memory charge
        assert snap["queued_memory_words"] == pytest.approx(0.0)

    def test_rate_limited_client_sheds(self, graph):
        cfg = OverloadConfig(client_rate=0.001, client_burst=1.0)
        with _service(graph, overload=cfg) as svc:
            svc.submit("bc_source", source=1, client="alice")
            with pytest.raises(AdmissionError) as exc:
                svc.submit("bc_source", source=2, client="alice")
            assert exc.value.reason == "rate_limited"
            svc.submit("bc_source", source=2, client="bob")  # unaffected


# ---------------------------------------------------------------------------
# service integration: circuit breaker
# ---------------------------------------------------------------------------


class TestServiceBreaker:
    def test_open_circuit_sheds_submissions(self, graph):
        cfg = OverloadConfig(breaker_threshold=1, breaker_reset=60.0)
        with _service(graph, overload=cfg) as svc:
            svc.breaker.record_failure()
            with pytest.raises(CircuitOpen) as exc:
                svc.submit("bc_source", source=1)
            assert exc.value.reason == "circuit_open"
            assert exc.value.retry_after > 0
            assert svc.health()["state"] == "degraded"

    def test_queued_batch_fails_fast_when_circuit_opens(self, graph):
        cfg = OverloadConfig(breaker_threshold=1, breaker_reset=60.0)
        with _service(graph, overload=cfg, batch_window=0.0) as svc:
            with svc._exec_lock:
                qid = svc.submit("bc_source", source=1)
                svc.breaker.record_failure()  # opens while the query queues
            with pytest.raises(QueryError, match="circuit open"):
                svc.result(qid, timeout=30.0)
            stats = svc.stats()
        assert stats["breaker_fastfail"] == 1
        assert stats["failed"] == 1

    def test_storm_opens_circuit_then_probe_recovers(self, graph):
        # exhaust retries on every batch: each fault-ladder entry records a
        # failure; threshold 2 opens after the second failed attempt
        clock = FakeClock()
        cfg = OverloadConfig(breaker_threshold=2, breaker_reset=5.0)
        with _service(
            graph,
            overload=cfg,
            retries=1,
            faults="seed:1,crash:1.0,limit:2",
            elastic="off",
            batch_window=0.0,
        ) as svc:
            svc.breaker._clock = clock
            with pytest.raises(QueryError):
                svc.result(svc.submit("bc_source", source=1), timeout=60.0)
            assert svc.breaker.state is BreakerState.OPEN
            # fault plan exhausted (limit:2) → the probe batch will succeed
            clock.advance(5.0)
            out = svc.result(svc.submit("bc_source", source=2), timeout=60.0)
            assert svc.breaker.state is BreakerState.CLOSED
        assert np.array_equal(out, _reference_row(graph, 2))


# ---------------------------------------------------------------------------
# service integration: watchdog, drain, health over HTTP
# ---------------------------------------------------------------------------


class TestSupervision:
    # the first two tests kill the dispatcher on purpose; the escaping
    # synthetic exception is the mechanism, not a leak
    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_watchdog_restarts_dead_dispatcher(self, graph):
        cfg = OverloadConfig(watchdog_interval=0.05)
        with _service(graph, overload=cfg, batch_window=0.0) as svc:
            real_take = svc.coalescer.take
            tripped = threading.Event()

            def bomb(timeout=None):
                if not tripped.is_set():
                    tripped.set()
                    raise RuntimeError("synthetic dispatcher death")
                return real_take(timeout)

            svc.coalescer.take = bomb
            deadline = time.monotonic() + 10.0
            while not tripped.is_set() and time.monotonic() < deadline:
                time.sleep(0.01)
            while (
                svc.stats()["dispatcher_restarts"] < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            assert svc.stats()["dispatcher_restarts"] >= 1
            # the revived dispatcher still serves correct answers
            out = svc.result(svc.submit("bc_source", source=3), timeout=60.0)
            assert svc.health()["dispatcher_alive"]
        assert np.array_equal(out, _reference_row(graph, 3))

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_dead_dispatcher_reports_dead_without_watchdog(self, graph):
        # a huge watchdog interval means no revival: health must say so
        cfg = OverloadConfig(watchdog_interval=3600.0)
        svc = _service(graph, overload=cfg, batch_window=0.0)
        try:
            def bomb(timeout=None):
                raise RuntimeError("synthetic dispatcher death")

            svc.coalescer.take = bomb
            deadline = time.monotonic() + 10.0
            while svc._dispatcher.is_alive() and time.monotonic() < deadline:
                time.sleep(0.01)
            health = svc.health()
            assert health["state"] == "dead"
            assert health["live"] is False
        finally:
            del svc.coalescer.take  # restore for a clean close
            svc.close(drain_timeout=1.0)

    def test_drain_finishes_queued_work(self, graph):
        with _service(graph, batch_window=0.0) as svc:
            ids = [svc.submit("bc_source", source=i) for i in range(4)]
            svc.close(drain_timeout=30.0)
            for qid in ids:
                assert svc.poll(qid)["state"] == "done"

    def test_drain_timeout_abandons_leftovers(self, graph):
        # a long linger window parks the batch in the coalescer, so a short
        # drain timeout must abandon it with a structured cancel
        svc = _service(graph, batch_window=30.0)
        qid = svc.submit("bc_source", source=1)
        t0 = time.monotonic()
        svc.close(drain_timeout=0.3)
        assert time.monotonic() - t0 < 10.0
        status = svc.poll(qid)
        assert status["state"] == "cancelled"
        assert "drain" in status["error"]
        assert svc.admission.snapshot()["queued_count"] == 0

    def test_submit_while_draining_is_shed(self, graph):
        svc = _service(graph, batch_window=0.0)
        svc._draining = True
        try:
            with pytest.raises(AdmissionError) as exc:
                svc.submit("bc_source", source=1)
            assert exc.value.reason == "draining"
            assert svc.health()["state"] == "draining"
        finally:
            svc._draining = False
            svc.close()

    def test_healthz_503_when_not_live_and_shed_503_with_retry_after(self, graph):
        from repro.serve.http import serve_http

        cfg = OverloadConfig(max_queued=1, shed_high=0.9, shed_low=0.4)
        svc = _service(graph, overload=cfg, batch_window=0.0)
        server = serve_http(svc, port=0)
        server.start_background()
        base = server.address
        try:
            with urllib.request.urlopen(base + "/v1/healthz", timeout=10) as resp:
                assert resp.status == 200
            with svc._exec_lock:
                svc.submit("bc_source", source=1)  # queue full → shedding
                req = urllib.request.Request(
                    base + "/v1/query",
                    data=b'{"algorithm": "bc_source", "source": 2}',
                    headers={"Content-Type": "application/json"},
                    method="POST",
                )
                with pytest.raises(urllib.error.HTTPError) as exc:
                    urllib.request.urlopen(req, timeout=10)
                assert exc.value.code == 503
                assert float(exc.value.headers["Retry-After"]) > 0
                with pytest.raises(urllib.error.HTTPError) as hexc:
                    urllib.request.urlopen(base + "/v1/healthz", timeout=10)
                assert hexc.value.code == 503
        finally:
            server.shutdown()
            svc.close()


# ---------------------------------------------------------------------------
# satellite: update_graph racing in-flight queries; cancel mid-batch
# ---------------------------------------------------------------------------


class TestRaces:
    def test_update_graph_racing_inflight_queries(self, graph):
        """Every answer matches the reference for the version it reports."""
        other = uniform_random_graph_nm(36, 4.0, seed=9)
        graphs = {0: graph, 1: other}
        with _service(graph, batch_window=0.01, max_batch=4) as svc:
            ids = []
            swapped = threading.Event()

            def swap():
                time.sleep(0.05)  # mid-stream
                svc.update_graph(other)
                swapped.set()

            t = threading.Thread(target=swap)
            t.start()
            for i in range(18):
                ids.append(svc.submit("bc_source", source=i % graph.n))
                time.sleep(0.01)
            t.join()
            assert swapped.is_set()
            seen_versions = set()
            for qid in ids:
                svc.result(qid, timeout=60.0)
                status = svc.poll(qid)
                v = status["graph_version"]
                seen_versions.add(v)
                expected = _reference_row(graphs[v], status["params"]["source"])
                assert np.array_equal(status["result"], expected)
        # the stream actually straddled the swap
        assert seen_versions == {0, 1}

    def test_cancel_mid_batch_releases_admission_once(self, graph):
        with _service(graph, batch_window=0.0) as svc:
            with svc._exec_lock:
                qid = svc.submit("bc_source", source=1)
                # wait for the dispatcher to claim the batch (queue empties)
                deadline = time.monotonic() + 10.0
                while len(svc.coalescer) and time.monotonic() < deadline:
                    time.sleep(0.005)
                assert len(svc.coalescer) == 0
                # cancel lands after take() but before execution
                assert svc.cancel(qid) is True
            with pytest.raises(QueryError, match="cancelled"):
                svc.result(qid, timeout=30.0)
            deadline = time.monotonic() + 10.0
            while svc._inflight and time.monotonic() < deadline:
                time.sleep(0.005)
            snap = svc.admission.snapshot()
        assert snap["queued_count"] == 0  # released exactly once, not twice
        assert snap["queued_seconds"] == pytest.approx(0.0)

    def test_cancel_racing_batch_never_double_releases(self, graph):
        # hammer submit/cancel against a live dispatcher: accounting must
        # land at zero with no negative excursions baked into the snapshot
        with _service(graph, batch_window=0.005) as svc:
            ids = [svc.submit("bc_source", source=i % graph.n) for i in range(12)]
            for qid in ids[::2]:
                svc.cancel(qid)
            for qid in ids:
                q = svc._get(qid)
                q.done.wait(60.0)
            deadline = time.monotonic() + 10.0
            while (
                len(svc.coalescer) or svc._inflight
            ) and time.monotonic() < deadline:
                time.sleep(0.01)
            snap = svc.admission.snapshot()
            stats = svc.stats()
        assert snap["queued_count"] == 0
        assert snap["queued_seconds"] == pytest.approx(0.0, abs=1e-12)
        assert stats["completed"] + stats["cancelled"] == 12


# ---------------------------------------------------------------------------
# obs counters surfaced by `repro trace`
# ---------------------------------------------------------------------------


class TestOverloadReport:
    def test_overload_events_render_in_report(self, graph):
        from repro import obs
        from repro.analysis.report import (
            format_overload_report,
            overload_attribution,
        )

        cfg = OverloadConfig(max_queued=1, shed_high=0.9, shed_low=0.4)
        session = obs.enable()
        try:
            with _service(graph, overload=cfg, batch_window=0.0) as svc:
                with svc._exec_lock:
                    qid = svc.submit("bc_source", source=0)
                    with pytest.raises(AdmissionError):
                        svc.submit("bc_source", source=1)
                svc.result(qid, timeout=60.0)
                svc.admission.brownout_active = True
                svc.result(svc.submit("bc"), timeout=60.0)
                svc.admission.brownout_active = False
        finally:
            obs.disable()
        rows = overload_attribution(session.metrics)
        events = {r["event"] for r in rows}
        assert "shed" in events and "degraded" in events
        text = format_overload_report(session.metrics)
        assert "serve.overload" in text and "shed" in text

    def test_empty_metrics_render_empty(self):
        from repro.analysis.report import format_overload_report
        from repro.obs.metrics import Metrics

        assert format_overload_report(Metrics()) == ""


# ---------------------------------------------------------------------------
# satellite: decorrelated jitter in the mfbc retry backoff
# ---------------------------------------------------------------------------


class TestRetryJitter:
    def _flaky_machine_run(self, graph, monkeypatch, fail_times, **kw):
        import sys

        from repro.dist.engine import DistributedEngine
        from repro.machine.machine import Machine

        mfbc_mod = sys.modules["repro.core.mfbc"]
        real_mfbf = mfbc_mod.mfbf
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] <= fail_times:
                from repro.faults.plan import RankFailure

                raise RankFailure(0, 0, "mfbf")
            return real_mfbf(*args, **kwargs)

        monkeypatch.setattr(mfbc_mod, "mfbf", flaky)
        m = Machine(4, faults="off", elastic="off")
        mfbc_mod.mfbc(
            graph,
            batch_size=graph.n,
            engine=DistributedEngine(m),
            max_batches=1,
            **kw,
        )
        return m.ledger.critical_time()

    def test_jittered_backoff_is_deterministic(self, graph, monkeypatch):
        a = self._flaky_machine_run(
            graph, monkeypatch, 2, retries=3, retry_backoff=1.0, retry_jitter_seed=7
        )
        b = self._flaky_machine_run(
            graph, monkeypatch, 2, retries=3, retry_backoff=1.0, retry_jitter_seed=7
        )
        assert a == b

    def test_different_seeds_decorrelate(self, graph, monkeypatch):
        a = self._flaky_machine_run(
            graph, monkeypatch, 2, retries=3, retry_backoff=1.0, retry_jitter_seed=1
        )
        b = self._flaky_machine_run(
            graph, monkeypatch, 2, retries=3, retry_backoff=1.0, retry_jitter_seed=2
        )
        assert a != b

    def test_none_restores_legacy_exponential(self, graph, monkeypatch):
        charged = self._flaky_machine_run(
            graph,
            monkeypatch,
            2,
            retries=3,
            retry_backoff=1.0,
            retry_jitter_seed=None,
        )
        baseline = self._flaky_machine_run(
            graph, monkeypatch, 0, retries=3, retry_backoff=1.0
        )
        # two legacy rungs: 1.0·2⁰ + 1.0·2¹ = 3.0 modeled seconds
        assert charged - baseline == pytest.approx(3.0)

    def test_jitter_stays_within_ladder_bounds(self, graph, monkeypatch):
        charged = self._flaky_machine_run(
            graph, monkeypatch, 2, retries=3, retry_backoff=1.0, retry_jitter_seed=5
        )
        baseline = self._flaky_machine_run(
            graph, monkeypatch, 0, retries=3, retry_backoff=1.0
        )
        extra = charged - baseline
        # each of the two sleeps is in [base, base·2^(retries-1)] = [1, 4]
        assert 2.0 <= extra <= 8.0
