"""The hybrid performance model and its agreement with the simulator."""

import pytest

from repro.analysis import model_run
from repro.analysis.scaling import trace_combblas, trace_mfbc
from repro.core import mfbc
from repro.dist import DistributedEngine
from repro.graphs import uniform_random_graph_nm
from repro.machine import CostParams, Machine
from repro.spgemm import Square2DPolicy


@pytest.fixture(scope="module")
def traced():
    g = uniform_random_graph_nm(80, 6.0, seed=41)
    stats, sources = trace_mfbc(g, batch_size=20)
    return g, stats, sources


class TestModelRun:
    def test_words_decrease_with_p(self, traced):
        g, stats, _ = traced
        w = [model_run(stats, g, p).words for p in (2, 8, 32, 128)]
        assert all(a > b for a, b in zip(w, w[1:]))

    def test_msgs_increase_with_p(self, traced):
        g, stats, _ = traced
        m2 = model_run(stats, g, 2).msgs
        m128 = model_run(stats, g, 128).msgs
        assert m128 > m2

    def test_compute_scales_inversely(self, traced):
        """The ops-proportional part of compute time scales 1/p; the fixed
        per-product overhead (CostParams.product_overhead) does not."""
        g, stats, _ = traced
        overhead = (
            sum(len(b.iterations) for b in stats.batches)
            * CostParams().product_overhead
        )
        c2 = model_run(stats, g, 2).compute_seconds - overhead
        c8 = model_run(stats, g, 8).compute_seconds - overhead
        assert c8 == pytest.approx(c2 / 4, rel=0.01)

    def test_breakdown_consistent(self, traced):
        g, stats, _ = traced
        run = model_run(stats, g, 16)
        assert run.seconds == pytest.approx(run.comm_seconds + run.compute_seconds)
        assert set(run.breakdown) == {
            "seconds",
            "comm_seconds",
            "compute_seconds",
            "words",
            "msgs",
        }

    def test_policy_restriction_prices_higher_or_equal(self, traced):
        """A CombBLAS-restricted (square-2D-only) pricing can never beat the
        full search on the same trace."""
        g, stats, _ = traced
        free = model_run(stats, g, 16)
        pinned = model_run(stats, g, 16, policy=Square2DPolicy())
        assert pinned.seconds >= free.seconds - 1e-15

    def test_memory_constraint_respected(self, traced):
        g, stats, _ = traced
        # a generous budget works
        run = model_run(stats, g, 16, memory_words=1e9)
        assert run.seconds > 0
        # an impossible one raises
        with pytest.raises(ValueError, match="memory"):
            model_run(stats, g, 16, memory_words=1.0)

    def test_custom_cost_params_scale(self, traced):
        g, stats, _ = traced
        cheap = model_run(stats, g, 8, cost=CostParams(alpha=1e-6, beta=1e-9))
        pricey = model_run(stats, g, 8, cost=CostParams(alpha=1e-3, beta=1e-6))
        assert pricey.comm_seconds > cheap.comm_seconds


class TestCombBLASTrace:
    def test_trace_shape(self):
        g = uniform_random_graph_nm(50, 5.0, seed=43)
        stats, sources = trace_combblas(g, batch_size=25, max_batches=1)
        assert sources == 25
        assert stats.total_ops > 0
        run = model_run(stats, g, 16)
        assert run.seconds > 0


class TestModelVsSimulator:
    def test_model_lower_bounds_simulator(self):
        """The hybrid model prices only the §5.2 algorithm collectives; the
        full simulator additionally pays input distribution, per-operation
        redistribution, and result gathers — so on the same workload the
        simulator's total traffic must dominate the model's and both must be
        nonzero."""
        g = uniform_random_graph_nm(60, 5.0, seed=47)
        stats, _ = trace_mfbc(g, batch_size=20)
        p = 4
        modeled = model_run(stats, g, p)
        assert modeled.words > 0

        machine = Machine(p)
        mfbc(g, batch_size=20, engine=DistributedEngine(machine))
        assert machine.ledger.total_words > modeled.words
