"""Approximate BC estimators and the CA-MFBC convenience wrapper."""

import numpy as np
import pytest

from repro.baselines import brandes_bc
from repro.core import (
    AdaptiveEstimate,
    adaptive_vertex_bc,
    approximate_bc,
    ca_engine,
    ca_mfbc,
    mfbc,
)
from repro.graphs import Graph, uniform_random_graph_nm
from repro.machine import Machine


class TestApproximateBC:
    def test_full_sample_is_exact(self, small_undirected):
        got = approximate_bc(small_undirected, small_undirected.n, seed=0)
        ref = brandes_bc(small_undirected)
        assert np.allclose(got, ref, atol=1e-8)

    def test_unbiased_expectation(self):
        """Averaging many independent sampled estimates converges to exact."""
        g = uniform_random_graph_nm(30, 4.0, seed=71)
        exact = brandes_bc(g)
        acc = np.zeros(g.n)
        trials = 40
        for t in range(trials):
            acc += approximate_bc(g, 6, seed=t)
        est = acc / trials
        # correlation is the robust check; tolerances on a small graph
        mask = exact > 0
        assert np.corrcoef(est[mask], exact[mask])[0, 1] > 0.9

    def test_scaling_factor(self, small_undirected):
        got = approximate_bc(small_undirected, 10, seed=1)
        # compare against manual scaled run with the same sample
        rng = np.random.default_rng(1)
        sources = rng.choice(small_undirected.n, size=10, replace=False)
        ref = mfbc(small_undirected, sources=sources).scores * (
            small_undirected.n / 10
        )
        assert np.allclose(got, ref)

    def test_bad_sample_count_raises(self, small_undirected):
        with pytest.raises(ValueError):
            approximate_bc(small_undirected, 0)
        with pytest.raises(ValueError):
            approximate_bc(small_undirected, small_undirected.n + 1)


class TestAdaptiveVertexBC:
    def test_high_centrality_converges_fast(self):
        """The star centre accumulates dependency mass immediately."""
        n = 40
        g = Graph(n, np.zeros(n - 1, dtype=np.int64), np.arange(1, n))
        est = adaptive_vertex_bc(g, 0, c=2.0, seed=0, batch_size=8)
        assert isinstance(est, AdaptiveEstimate)
        assert est.converged
        assert est.samples_used < n
        exact = (n - 1) * (n - 2)
        assert est.estimate == pytest.approx(exact, rel=0.35)

    def test_low_centrality_exhausts_budget(self):
        n = 40
        g = Graph(n, np.zeros(n - 1, dtype=np.int64), np.arange(1, n))
        est = adaptive_vertex_bc(g, 5, c=2.0, seed=0, max_samples=16)
        assert not est.converged
        assert est.samples_used == 16
        assert est.estimate == pytest.approx(0.0)

    def test_validation(self, small_undirected):
        with pytest.raises(ValueError, match="range"):
            adaptive_vertex_bc(small_undirected, 10_000)
        with pytest.raises(ValueError, match="positive"):
            adaptive_vertex_bc(small_undirected, 0, c=0)


class TestCAMFBC:
    def test_matches_sequential(self, small_undirected):
        ref = mfbc(small_undirected, batch_size=16).scores
        machine = Machine(16)
        res = ca_mfbc(small_undirected, machine, c=4, batch_size=16)
        assert np.allclose(res.scores, ref, atol=1e-8)
        assert machine.ledger.critical_words() > 0

    def test_default_batch_from_memory_rule(self, small_undirected):
        machine = Machine(4)
        res = ca_mfbc(small_undirected, machine, c=1, max_batches=1)
        # nb = c·m/n = average adjacency degree
        expect = max(
            1,
            min(
                small_undirected.n,
                small_undirected.nnz_adjacency // small_undirected.n,
            ),
        )
        assert res.batch_size == expect

    def test_engine_pinned_plan(self):
        machine = Machine(16)
        eng = ca_engine(machine, c=4)
        assert eng.policy.plan.p3 == 2  # √(16/4) = 2
        assert eng.policy.plan.p1 == 4

    def test_invalid_grid_raises(self):
        with pytest.raises(ValueError):
            ca_engine(Machine(12), c=2)
