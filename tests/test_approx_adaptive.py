"""Statistical-correctness tier for the adaptive (ε, δ) sampler.

Unlike the rest of the suite, the claims here are *distributional*: the
estimator is unbiased, the confidence width shrinks monotonically, and —
the headline guarantee — the returned scores are within ε of exact
betweenness on at least a (1 − δ) fraction of seeded trials.  Every test
is fully seeded, so the tier is deterministic in CI (the Bernstein bound
is conservative enough that the observed failure fraction on these seeds
is zero, far under the δ the bound permits).

Also the home of the shared-validation contract (the same message for a
bad sample count or seed no matter which entry point raised it) and the
hypothesis properties for the sampler state: merge-order invariance of
disjoint-shard partials and bit-identical checkpoint/resume after any
batch.
"""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import strategies as cst
from repro.core import mfbc
from repro.core.approx import (
    SamplerState,
    adaptive_bc,
    adaptive_vertex_bc,
    approximate_bc,
    bernstein_half_width,
    normalize_seed,
    planned_sample_bound,
    validate_epsilon_delta,
    validate_sample_count,
)
from repro.core.mfbc import mfbc_per_source
from repro.faults.checkpoint import MemoryCheckpointStore
from repro.graphs import uniform_random_graph_nm


@pytest.fixture(scope="module")
def graph():
    return uniform_random_graph_nm(40, 4.0, seed=1)


@pytest.fixture(scope="module")
def exact_normalized(graph):
    denom = (graph.n - 1) * (graph.n - 2)
    return mfbc(graph).scores / denom


# ---------------------------------------------------------------------------
# the (ε, δ) guarantee, empirically
# ---------------------------------------------------------------------------


class TestEpsilonDeltaAcceptance:
    """P(max_v |b̂(v) − b(v)| > ε) ≤ δ, checked over seeded trials."""

    TRIALS = 20

    @pytest.mark.parametrize("epsilon,delta", [(0.25, 0.2), (0.15, 0.1)])
    def test_error_within_epsilon_on_most_trials(
        self, graph, exact_normalized, epsilon, delta
    ):
        within = 0
        for seed in range(self.TRIALS):
            res = adaptive_bc(graph, epsilon=epsilon, delta=delta, seed=seed)
            err = float(np.max(np.abs(res.normalized_scores - exact_normalized)))
            within += err <= epsilon
            if res.converged:
                # an honest certificate: the reported width meets the target
                assert res.width <= epsilon
        assert within >= math.ceil((1.0 - delta) * self.TRIALS)

    def test_raw_scores_are_lambda_scale(self, graph, exact_normalized):
        res = adaptive_bc(graph, epsilon=0.2, delta=0.1, seed=0)
        denom = (graph.n - 1) * (graph.n - 2)
        assert np.allclose(res.scores / denom, res.normalized_scores)
        # converged run: raw scores within ε·(n−1)(n−2) of exact λ
        assert np.max(
            np.abs(res.scores - exact_normalized * denom)
        ) <= res.epsilon * denom

    def test_sample_cap_returns_honest_unconverged(self, graph):
        res = adaptive_bc(
            graph, epsilon=1e-4, delta=0.1, seed=0, max_samples=64, batch_size=16
        )
        assert not res.converged
        assert res.samples_used == 64
        assert res.batches == 4
        assert res.width > res.epsilon

    def test_tiny_graph_short_circuits(self):
        g = uniform_random_graph_nm(2, 1.0, seed=0)
        res = adaptive_bc(g, epsilon=0.1, delta=0.1)
        assert res.converged and res.samples_used == 0
        assert np.array_equal(res.scores, np.zeros(2))


class TestUnbiasedness:
    def test_full_enumeration_recovers_exact_bc(self, graph, exact_normalized):
        """E[x(v)] over a uniform source equals b(v) *exactly*: folding all
        n dependency rows into the sampler reproduces exact normalized BC
        (to float round-off), which is the estimator's unbiasedness claim
        without any sampling noise in the way."""
        rows = mfbc_per_source(graph, np.arange(graph.n))
        scale = graph.n / ((graph.n - 1) * (graph.n - 2))
        state = SamplerState.empty(graph.n, 3)
        state.update(rows * scale, 0)
        mean, _ = state.mean_and_variance()
        assert np.allclose(mean, exact_normalized)

    def test_batch_estimate_mean_approaches_exact(self, graph, exact_normalized):
        """Averaging independent one-batch estimates converges on exact BC
        (sampled unbiasedness; observed deviation on these seeds is 0.023,
        well under the asserted 0.04)."""
        acc = np.zeros(graph.n)
        trials = 24
        for seed in range(trials):
            res = adaptive_bc(
                graph, epsilon=0.5, delta=0.5, seed=seed,
                batch_size=16, max_batches=1,
            )
            acc += res.normalized_scores
        assert np.max(np.abs(acc / trials - exact_normalized)) < 0.04


class TestWidthShrinkage:
    def test_width_history_monotone_nonincreasing(self, graph):
        res = adaptive_bc(
            graph, epsilon=0.05, delta=0.1, seed=0,
            batch_size=16, max_samples=160,
        )
        wh = res.width_history
        assert len(wh) == res.batches == 10
        assert all(later <= earlier for earlier, later in zip(wh, wh[1:]))
        assert wh[-1] == res.width
        assert all(w > 0 for w in wh)

    def test_half_width_decreases_in_count_and_variance(self):
        var = np.array([0.25])
        w64 = bernstein_half_width(var, 64, failure=0.05, value_range=1.0)
        w256 = bernstein_half_width(var, 256, failure=0.05, value_range=1.0)
        assert w256 < w64
        lo = bernstein_half_width(np.array([0.01]), 64, failure=0.05,
                                  value_range=1.0)
        assert lo < w64
        assert np.isinf(bernstein_half_width(var, 0, failure=0.05,
                                             value_range=1.0))

    def test_planned_bound_brackets_observed_samples(self, graph):
        """The admission-pricing bound is a sane planning number: more
        samples than any of the seeded converged runs used, fewer than the
        hard cap, and monotone in ε."""
        res = adaptive_bc(graph, epsilon=0.25, delta=0.2, seed=0)
        bound = planned_sample_bound(graph.n, 0.25, 0.2)
        assert res.samples_used <= bound <= max(4 * graph.n, 256)
        assert planned_sample_bound(graph.n, 0.1, 0.2) > bound
        assert planned_sample_bound(2, 0.1, 0.1) == 0


# ---------------------------------------------------------------------------
# checkpoint / resume
# ---------------------------------------------------------------------------


class TestCheckpointResume:
    def test_resume_is_bit_identical(self, graph):
        kw = dict(epsilon=0.2, delta=0.1, seed=3, batch_size=16,
                  max_samples=320)
        ref = adaptive_bc(graph, **kw)
        store = MemoryCheckpointStore()
        part = adaptive_bc(graph, checkpoint=store, max_batches=2, **kw)
        assert not part.converged and part.batches == 2
        res = adaptive_bc(graph, checkpoint=store, resume_from=store, **kw)
        assert np.array_equal(res.scores, ref.scores)
        assert res.width_history == ref.width_history
        assert res.samples_used == ref.samples_used
        assert res.converged

    def test_resume_rejects_mismatched_target(self, graph):
        store = MemoryCheckpointStore()
        adaptive_bc(graph, epsilon=0.2, delta=0.1, seed=0, batch_size=16,
                    checkpoint=store, max_batches=1)
        with pytest.raises(ValueError, match="cannot resume with"):
            adaptive_bc(graph, epsilon=0.1, delta=0.1, seed=0, batch_size=16,
                        resume_from=store)

    def test_resume_rejects_mismatched_schedule(self, graph):
        store = MemoryCheckpointStore()
        adaptive_bc(graph, epsilon=0.2, delta=0.1, seed=0, batch_size=16,
                    checkpoint=store, max_batches=1)
        with pytest.raises(ValueError, match="different sampling schedule"):
            adaptive_bc(graph, epsilon=0.2, delta=0.1, seed=1, batch_size=16,
                        resume_from=store)

    def test_resume_rejects_non_adaptive_checkpoint(self, graph):
        store = MemoryCheckpointStore()
        mfbc(graph, batch_size=16, checkpoint=store, max_batches=1)
        with pytest.raises(ValueError, match="no sampler state"):
            adaptive_bc(graph, epsilon=0.2, delta=0.1, resume_from=store)


# ---------------------------------------------------------------------------
# unified parameter validation (one message per mistake, any entry point)
# ---------------------------------------------------------------------------


class TestValidationUnified:
    def test_sample_count_message_is_identical_everywhere(self, graph):
        expected = f"must be in [1, n={graph.n}]"
        with pytest.raises(ValueError, match="n_samples must be in"):
            approximate_bc(graph, 0)
        with pytest.raises(ValueError, match="max_samples must be in"):
            adaptive_vertex_bc(graph, 0, max_samples=graph.n + 1)
        for bad in (0, graph.n + 1, -3):
            with pytest.raises(ValueError) as exc:
                validate_sample_count(bad, graph.n)
            assert expected in str(exc.value)

    def test_serve_uses_the_same_validator(self, graph):
        from repro.serve import BCService

        svc = BCService(graph, p=2)
        try:
            with pytest.raises(
                ValueError, match=rf"samples must be in \[1, n={graph.n}\]"
            ):
                svc.submit("approx_bc", samples=0)
            with pytest.raises(ValueError, match="epsilon must be positive"):
                svc.submit("adaptive_bc", epsilon=-0.5)
            with pytest.raises(ValueError, match=r"delta must be in \(0, 1\)"):
                svc.submit("adaptive_bc", epsilon=0.1, delta=1.5)
        finally:
            svc.close()

    @pytest.mark.parametrize("bad", [3.5, "x", object()])
    def test_non_integer_counts_rejected(self, graph, bad):
        with pytest.raises(ValueError, match="must be an integer"):
            validate_sample_count(bad, graph.n)

    def test_integral_floats_and_numpy_ints_accepted(self, graph):
        assert validate_sample_count(3.0, graph.n) == 3
        assert validate_sample_count(np.int64(5), graph.n) == 5

    @pytest.mark.parametrize(
        "epsilon,delta",
        [(0.0, 0.1), (-1.0, 0.1), (float("inf"), 0.1), (float("nan"), 0.1),
         (0.1, 0.0), (0.1, 1.0), (0.1, -0.2)],
    )
    def test_bad_epsilon_delta_rejected(self, epsilon, delta):
        with pytest.raises(ValueError):
            validate_epsilon_delta(epsilon, delta)

    def test_seed_normalization_contract(self):
        assert normalize_seed(None) == 0
        assert normalize_seed(np.int64(7)) == 7
        with pytest.raises(ValueError, match="got a Generator"):
            normalize_seed(np.random.default_rng(0))
        with pytest.raises(ValueError, match="seed must be an integer"):
            normalize_seed(1.5)

    def test_adaptive_bc_rejects_generator_seed(self, graph):
        with pytest.raises(ValueError, match="got a Generator"):
            adaptive_bc(graph, seed=np.random.default_rng(0))


# ---------------------------------------------------------------------------
# hypothesis properties: sampler-state algebra and resumability
# ---------------------------------------------------------------------------


def _shard_partials(state):
    """Split a state into one single-shard-occupancy partial per shard."""
    parts = []
    for shard in range(state.shards):
        part = SamplerState.empty(state.n, state.shards)
        part.counts[shard] = state.counts[shard]
        part.sums[shard] = state.sums[shard]
        part.sumsqs[shard] = state.sumsqs[shard]
        parts.append(part)
    return parts


class TestSamplerStateProperties:
    @given(cst.sampler_states(), st.randoms(use_true_random=False))
    def test_merge_order_invariance(self, state, shuffler):
        """Disjoint-shard partials merge bit-identically in any order."""
        parts = _shard_partials(state)
        merged = SamplerState.merge(parts)
        shuffler.shuffle(parts)
        remerged = SamplerState.merge(parts)
        assert np.array_equal(merged.counts, remerged.counts)
        assert np.array_equal(merged.sums, remerged.sums)
        assert np.array_equal(merged.sumsqs, remerged.sumsqs)
        assert np.array_equal(merged.counts, state.counts)
        assert np.array_equal(merged.sums, state.sums)

    @given(cst.sampler_states())
    def test_payload_round_trip_bit_identical(self, state):
        back = SamplerState.from_payload(
            json.loads(json.dumps(state.to_payload()))
        )
        assert (back.n, back.shards) == (state.n, state.shards)
        assert np.array_equal(back.counts, state.counts)
        assert np.array_equal(back.sums, state.sums)
        assert np.array_equal(back.sumsqs, state.sumsqs)

    @given(cst.sampler_states())
    def test_merged_moments_match_mean_variance(self, state):
        k, total, totalsq = state.merged()
        mean, var = state.mean_and_variance()
        if k == 0:
            assert np.array_equal(mean, np.zeros(state.n))
        else:
            assert np.allclose(mean, total / k)
            assert np.all(var >= 0)

    def test_merge_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="different shapes"):
            SamplerState.merge(
                [SamplerState.empty(4, 2), SamplerState.empty(4, 3)]
            )
        with pytest.raises(ValueError, match="zero sampler states"):
            SamplerState.merge([])

    @given(cst.epsilon_delta_params())
    def test_epsilon_delta_strategy_always_valid(self, params):
        epsilon, delta = validate_epsilon_delta(*params)
        assert epsilon > 0 and 0 < delta < 1


class TestResumeProperty:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        cut=st.integers(1, 4),
        batch=st.sampled_from([8, 16]),
    )
    def test_resume_after_any_batch_bit_identical(self, seed, cut, batch):
        """Interrupting after *any* batch and resuming from the checkpoint
        reproduces the uninterrupted run bit for bit."""
        g = uniform_random_graph_nm(24, 3.0, seed=2)
        kw = dict(epsilon=0.3, delta=0.2, seed=seed, batch_size=batch,
                  max_samples=5 * batch)
        ref = adaptive_bc(g, **kw)
        store = MemoryCheckpointStore()
        adaptive_bc(g, checkpoint=store, max_batches=cut, **kw)
        res = adaptive_bc(g, resume_from=store, **kw)
        assert np.array_equal(res.scores, ref.scores)
        assert res.width_history == ref.width_history
        assert res.samples_used == ref.samples_used
        assert res.converged == ref.converged
