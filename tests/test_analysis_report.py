"""Report rendering and the TEPS metric helpers."""

import numpy as np
import pytest

from repro.analysis import format_table, mteps, mteps_per_node, traversed_edges
from repro.analysis.report import write_markdown_table
from repro.graphs import Graph


@pytest.fixture
def tiny():
    return Graph(4, np.array([0, 1, 2]), np.array([1, 2, 3]))


class TestTeps:
    def test_traversals_all_sources(self, tiny):
        # undirected: nnz(A) = 2m, traversals = n · 2m
        assert traversed_edges(tiny) == 4 * 6

    def test_traversals_subset(self, tiny):
        assert traversed_edges(tiny, 2) == 2 * 6

    def test_mteps(self, tiny):
        assert mteps(tiny, seconds=1.0) == pytest.approx(24 / 1e6)
        assert mteps(tiny, seconds=0.0) == 0.0

    def test_mteps_per_node(self, tiny):
        assert mteps_per_node(tiny, 1.0, 4) == pytest.approx(24 / 4e6)
        with pytest.raises(ValueError):
            mteps_per_node(tiny, 1.0, 0)


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bbb"], [[1, 2.5], [100, 0.001]])
        lines = out.splitlines()
        assert len(lines) == 4
        widths = {len(l) for l in lines}
        assert len(widths) == 1  # all lines equal width

    def test_float_formats(self):
        out = format_table(["x"], [[1e-9], [0.5], [123456.0], [0]])
        assert "1.000e-09" in out and "1.235e+05" in out and "0.5" in out

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out


class TestMarkdown:
    def test_write_and_append(self, tmp_path):
        p = tmp_path / "exp.md"
        write_markdown_table(p, "T1", ["x"], [[1]], append=False)
        write_markdown_table(p, "T2", ["y"], [[2]])
        text = p.read_text()
        assert "## T1" in text and "## T2" in text
        assert "| x |" in text and "| 1 |" in text
