"""Report rendering and the TEPS metric helpers."""

import numpy as np
import pytest

from repro.analysis import format_table, mteps, mteps_per_node, traversed_edges
from repro.analysis.report import write_markdown_table
from repro.graphs import Graph


@pytest.fixture
def tiny():
    return Graph(4, np.array([0, 1, 2]), np.array([1, 2, 3]))


class TestTeps:
    def test_traversals_all_sources(self, tiny):
        # undirected: nnz(A) = 2m, traversals = n · 2m
        assert traversed_edges(tiny) == 4 * 6

    def test_traversals_subset(self, tiny):
        assert traversed_edges(tiny, 2) == 2 * 6

    def test_mteps(self, tiny):
        assert mteps(tiny, seconds=1.0) == pytest.approx(24 / 1e6)
        assert mteps(tiny, seconds=0.0) == 0.0

    def test_mteps_per_node(self, tiny):
        assert mteps_per_node(tiny, 1.0, 4) == pytest.approx(24 / 4e6)
        with pytest.raises(ValueError):
            mteps_per_node(tiny, 1.0, 0)


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bbb"], [[1, 2.5], [100, 0.001]])
        lines = out.splitlines()
        assert len(lines) == 4
        widths = {len(l) for l in lines}
        assert len(widths) == 1  # all lines equal width

    def test_float_formats(self):
        out = format_table(["x"], [[1e-9], [0.5], [123456.0], [0]])
        assert "1.000e-09" in out and "1.235e+05" in out and "0.5" in out

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out


class TestMarkdown:
    def test_write_and_append(self, tmp_path):
        p = tmp_path / "exp.md"
        write_markdown_table(p, "T1", ["x"], [[1]], append=False)
        write_markdown_table(p, "T2", ["y"], [[2]])
        text = p.read_text()
        assert "## T1" in text and "## T2" in text
        assert "| x |" in text and "| 1 |" in text


class TestApproxReport:
    def test_empty_registry_renders_nothing(self):
        from repro.analysis.report import approx_attribution, format_approx_report
        from repro.obs.metrics import Metrics

        reg = Metrics()
        assert approx_attribution(reg) == []
        assert format_approx_report(reg) == ""

    def test_counters_from_a_real_run(self):
        from repro import obs
        from repro.analysis.report import approx_attribution, format_approx_report
        from repro.core.approx import adaptive_bc
        from repro.graphs import uniform_random_graph_nm

        g = uniform_random_graph_nm(24, 3.0, seed=2)
        session = obs.enable()
        try:
            res = adaptive_bc(g, epsilon=0.3, delta=0.2, seed=0, batch_size=8)
        finally:
            obs.disable()
        rows = approx_attribution(session.metrics)
        assert len(rows) == 1
        row = rows[0]
        assert row["algorithm"] == "adaptive_bc"
        assert row["runs"] == 1
        assert row["converged"] == int(res.converged)
        assert row["batches"] == res.batches
        assert row["samples"] == res.samples_used
        assert row["last_width"] == pytest.approx(res.width)
        out = format_approx_report(session.metrics)
        assert "adaptive sampling (approx.*)" in out
        assert "adaptive_bc" in out
