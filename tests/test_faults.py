"""repro.faults: deterministic injection, tolerance, and the acceptance bars.

Covers the :class:`FaultPlan` spec grammar and validation, seed-exact
determinism of the injected event stream, payload corruption + the checksum
guard at the Group collectives, straggler skew, memory-pressure tightening,
the executors' pool-kill injection and process → thread → serial graceful
degradation (bit-identical results), the mfbc retry loop, and the ISSUE's
end-to-end acceptance criteria (crash → checkpoint → resume re-executes
only the remaining batches, bit-identical scores).
"""

import numpy as np
import pytest

from repro import obs
from repro.core import mfbc
from repro.dist import DistributedEngine
from repro.faults import (
    CorruptPayload,
    FaultPlan,
    MemoryCheckpointStore,
    RankFailure,
    WorkerPoolDied,
    corrupt_copy,
    format_fault_report,
    payload_checksum,
    resolve_fault_plan,
)
from repro.faults.plan import FAULTS_ENV
from repro.graphs import uniform_random_graph_nm
from repro.machine import Group, Machine, MemoryLimitExceeded
from repro.machine.executor import ProcessExecutor, SerialExecutor, ThreadExecutor
from repro.sparse.spgemm import spgemm

from conftest import random_weight_spmat

from repro.algebra import TROPICAL

SPEC = TROPICAL.matmul_spec()


def spgemm_pairs(rng, n_pairs=6, m=18, density=0.3):
    return [
        (
            random_weight_spmat(rng, m, m, density),
            random_weight_spmat(rng, m, m, density),
        )
        for _ in range(n_pairs)
    ]


def assert_results_equal(got, ref):
    assert len(got) == len(ref)
    for r, e in zip(got, ref):
        assert r.ops == e.ops
        assert np.array_equal(r.matrix.rows, e.matrix.rows)
        assert np.array_equal(r.matrix.cols, e.matrix.cols)
        for name in e.matrix.monoid.field_names:
            assert np.array_equal(r.matrix.vals[name], e.matrix.vals[name])


# ---------------------------------------------------------------------------
# spec grammar + resolution
# ---------------------------------------------------------------------------


class TestSpecParsing:
    def test_full_grammar(self):
        plan = FaultPlan.from_spec(
            "seed:7,crash:0.05,corrupt:0.01,straggle:0.1,poolkill:0.02,"
            "checksum:1,mem:0.5,skew:2e-4,limit:10,crash@12,straggle@9:2,corrupt@7"
        )
        assert plan.seed == 7
        assert plan.crash == 0.05
        assert plan.corrupt == 0.01
        assert plan.straggle == 0.1
        assert plan.poolkill == 0.02
        assert plan.checksum is True
        assert plan.mem == 0.5
        assert plan.skew == 2e-4
        assert plan.limit == 10
        assert [repr(sc) for sc in plan.script] == [
            "crash@12",
            "straggle@9:2",
            "corrupt@7",
        ]
        assert plan.armed

    @pytest.mark.parametrize("spec", ["", "none", "off", "  NONE  "])
    def test_disabled_specs_parse_to_none(self, spec):
        assert FaultPlan.from_spec(spec) is None

    @pytest.mark.parametrize(
        "spec",
        [
            "crash",  # missing value
            "crash:2.0",  # rate out of range
            "mem:0",  # factor must be positive
            "mem:1.5",
            "limit:0",
            "skew:-1",
            "frobnicate:1",  # unknown key
            "explode@3",  # unknown scripted kind
            "crash@0",  # step must be positive
            "crash:xyz",  # unparsable value
        ],
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.from_spec(spec)

    def test_describe_round_trips(self):
        spec = "seed:3,crash:0.05,checksum:1,limit:2,crash@12"
        plan = FaultPlan.from_spec(spec)
        again = FaultPlan.from_spec(plan.describe())
        assert again.describe() == plan.describe()

    def test_inert_plan_is_not_armed(self):
        assert not FaultPlan(seed=5).armed
        assert FaultPlan(seed=5, checksum=True).armed
        assert FaultPlan(seed=5, mem=0.5).armed
        assert FaultPlan(seed=5, script=[("crash", 3)]).armed


class TestResolve:
    def test_plan_passthrough(self):
        plan = FaultPlan(1, crash=0.1)
        assert resolve_fault_plan(plan) is plan

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "seed:9,crash:0.25")
        plan = resolve_fault_plan(None)
        assert plan.seed == 9 and plan.crash == 0.25

    def test_env_opt_out(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "seed:9,crash:0.25")
        assert resolve_fault_plan(None, env=False) is None

    def test_explicit_spec_beats_env(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "seed:9,crash:0.25")
        assert resolve_fault_plan("none") is None

    def test_type_error(self):
        with pytest.raises(TypeError):
            resolve_fault_plan(42)

    def test_machine_threads_plan_through(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        m = Machine(4)
        assert m.faults is None
        m = Machine(4, faults="seed:1,crash:0.5")
        assert m.faults is not None and m.faults.crash == 0.5
        assert "seed:1" in repr(m)

    def test_inert_plan_disables_hot_path_hooks(self):
        m = Machine(4, faults="seed:1")
        assert m.faults is not None
        assert m._fault_hook is None  # inert → hooks skipped entirely


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------


class TestDeterminism:
    def _run_collectives(self, spec):
        m = Machine(4, faults=spec)
        g = Group(m, np.arange(4))
        try:
            for _ in range(60):
                g.bcast([np.ones(4), None, None, None], root=0)
        except RankFailure:
            pass
        return m.faults.signature()

    def test_same_seed_same_event_sequence(self):
        spec = "seed:3,crash:0.05,straggle:0.1"
        sig1 = self._run_collectives(spec)
        sig2 = self._run_collectives(spec)
        assert sig1 and sig1 == sig2

    def test_different_seeds_diverge(self):
        sig1 = self._run_collectives("seed:3,crash:0.05,straggle:0.1")
        sig2 = self._run_collectives("seed:4,crash:0.05,straggle:0.1")
        assert sig1 != sig2

    def test_reset_replays_schedule(self):
        plan = FaultPlan(3, crash=0.05, straggle=0.1)
        m = Machine(4, faults=plan)
        g = Group(m, np.arange(4))
        try:
            for _ in range(60):
                g.bcast([np.ones(4), None, None, None], root=0)
        except RankFailure:
            pass
        first = plan.signature()
        plan.reset()
        assert plan.signature() == []
        try:
            for _ in range(60):
                g.bcast([np.ones(4), None, None, None], root=0)
        except RankFailure:
            pass
        assert plan.signature() == first

    def test_full_mfbc_run_deterministic(self, small_undirected):
        """Same seed ⇒ identical FaultEvent sequence AND identical scores
        after recovery (acceptance criterion)."""
        spec = "seed:3,crash:0.02,straggle:0.05,limit:4"

        def run():
            m = Machine(4, faults=spec)
            res = mfbc(
                small_undirected,
                batch_size=8,
                engine=DistributedEngine(m),
                retries=5,
            )
            return m.faults.signature(), res.scores

        sig1, scores1 = run()
        sig2, scores2 = run()
        assert sig1 == sig2 and sig1
        assert np.array_equal(scores1, scores2)


# ---------------------------------------------------------------------------
# corruption + checksum guard
# ---------------------------------------------------------------------------


class TestCorruption:
    def test_corrupt_copy_never_mutates_original(self, rng):
        arr = np.ones(16)
        out = corrupt_copy(arr, rng)
        assert np.array_equal(arr, np.ones(16))
        assert not np.array_equal(out, arr)

        mat = random_weight_spmat(rng, 10, 10, 0.5)
        before = mat.vals["w"].copy()
        out = corrupt_copy(mat, rng)
        assert np.array_equal(mat.vals["w"], before)
        assert out is not mat
        assert not np.array_equal(out.vals["w"], before)
        # structure untouched: only a value was perturbed
        assert np.array_equal(out.rows, mat.rows)
        assert np.array_equal(out.cols, mat.cols)

    def test_checksum_detects_any_perturbation(self, rng):
        mat = random_weight_spmat(rng, 10, 10, 0.5)
        assert payload_checksum(mat) == payload_checksum(mat)
        assert payload_checksum(mat) != payload_checksum(corrupt_copy(mat, rng))

    def test_checksum_guard_raises_on_collective(self):
        m = Machine(4, faults="seed:0,corrupt:1,checksum:1")
        g = Group(m, np.arange(4))
        with pytest.raises(CorruptPayload, match="checksum mismatch"):
            g.bcast([np.ones(8), None, None, None], root=0)
        actions = {(e.kind, e.action) for e in m.faults.events}
        assert ("corrupt", "injected") in actions
        assert ("corrupt", "detected") in actions

    def test_unguarded_corruption_propagates_silently(self):
        m = Machine(4, faults="seed:0,corrupt:1")
        g = Group(m, np.arange(4))
        sent = np.ones(8)
        out = g.bcast([sent, None, None, None], root=0)
        assert np.array_equal(sent, np.ones(8))  # sender buffer intact
        assert not np.array_equal(out[0], sent)  # receivers got damage
        assert [e.action for e in m.faults.events] == ["injected"]

    def test_reduce_and_allgather_guarded(self):
        for site, call in [
            ("reduce", lambda g: g.reduce([np.ones(8)] * 4, np.add)),
            ("allgather", lambda g: g.allgather([np.ones(8)] * 4)),
        ]:
            m = Machine(4, faults="seed:0,corrupt:1,checksum:1")
            g = Group(m, np.arange(4))
            with pytest.raises(CorruptPayload):
                call(g)
            assert m.faults.events[-1].site == site

    def test_scripted_corrupt_fires_once(self):
        m = Machine(4, faults="corrupt@1")
        g = Group(m, np.arange(4))
        out1 = g.bcast([np.ones(8), None, None, None], root=0)
        out2 = g.bcast([np.ones(8), None, None, None], root=0)
        assert not np.array_equal(out1[0], np.ones(8))
        assert np.array_equal(out2[0], np.ones(8))


# ---------------------------------------------------------------------------
# stragglers + memory pressure
# ---------------------------------------------------------------------------


class TestStragglersAndMemory:
    def test_scripted_straggler_skews_target_rank(self):
        m = Machine(4, faults="straggle@2:1,skew:1.0")
        g = Group(m, np.arange(4))
        g.bcast([np.ones(4), None, None, None])
        before = m.ledger.time.copy()
        g.bcast([np.ones(4), None, None, None])
        skew = m.ledger.time - before
        # rank 1 got between 0.5 and 2.0 modeled seconds of extra time
        assert skew[1] > 0.4
        ev = m.faults.events[-1]
        assert ev.kind == "straggle" and ev.rank == 1

    def test_memory_budget_tightened_at_construction(self):
        assert Machine(2, memory_words=1000, faults="mem:0.5").memory_words == 500
        assert Machine(2, memory_words=1000).memory_words == 1000

    def test_tightened_budget_blames_injection(self):
        m = Machine(2, memory_words=100, faults="mem:0.1")
        with pytest.raises(MemoryLimitExceeded, match="tightened by injected"):
            m.allocate(0, 50)
        assert m.faults.events[0].kind == "mem"

    def test_limit_caps_injections(self):
        m = Machine(4, faults="seed:0,straggle:1,limit:3")
        g = Group(m, np.arange(4))
        for _ in range(10):
            g.bcast([np.ones(4), None, None, None])
        assert m.faults.injected == 3


# ---------------------------------------------------------------------------
# executor degradation
# ---------------------------------------------------------------------------


class TestExecutorDegradation:
    def test_thread_degrades_to_serial_bit_identical(self, rng):
        pairs = spgemm_pairs(rng)
        ref = [spgemm(x, y, SPEC) for x, y in pairs]
        ex = ThreadExecutor(2, fanout_min_work=0)
        ex.fault_plan = FaultPlan(0, poolkill=1.0, limit=1)
        out = ex.run_spgemm(pairs, SPEC)
        assert_results_equal(out, ref)
        assert isinstance(ex._successor, SerialExecutor)
        actions = [(e.kind, e.action) for e in ex.fault_plan.events]
        assert actions == [("pool", "injected"), ("pool", "degraded")]
        ex.close()

    def test_process_pool_sigkill_degrades_down_the_chain(self, rng):
        """Acceptance: a real SIGKILLed pool worker degrades process →
        thread (→ serial after a second injection) with no intervention and
        bit-identical results."""
        pairs = spgemm_pairs(rng)
        ref = [spgemm(x, y, SPEC) for x, y in pairs]
        ex = ProcessExecutor(2, fanout_min_work=0)
        ex.fault_plan = FaultPlan(0, poolkill=1.0, limit=2)
        try:
            out = ex.run_spgemm(pairs, SPEC)
            assert_results_equal(out, ref)
            chain = []
            cur = ex
            while cur is not None:
                chain.append(cur.name)
                cur = cur._successor
            assert chain == ["process", "thread", "serial"]
            kinds = [(e.kind, e.action) for e in ex.fault_plan.events]
            assert kinds.count(("pool", "degraded")) == 2
        finally:
            ex.close()

    def test_degraded_executor_delegates_future_batches(self, rng):
        ex = ThreadExecutor(2, fanout_min_work=0)
        ex.fault_plan = FaultPlan(0, poolkill=1.0, limit=1)
        pairs = spgemm_pairs(rng)
        ex.run_spgemm(pairs, SPEC)  # degrades here
        ref = [spgemm(x, y, SPEC) for x, y in pairs]
        out = ex.run_spgemm(pairs, SPEC)  # runs on the serial successor
        assert_results_equal(out, ref)
        assert ex.fault_plan.events[-1].action == "degraded"  # no new faults
        ex.close()

    def test_run_tasks_degrades_too(self):
        ex = ThreadExecutor(2, fanout_min_work=0)
        ex.fault_plan = FaultPlan(0, poolkill=1.0, limit=1)
        out = ex.run_tasks(
            [lambda i=i: i * i for i in range(8)], site="tasks", est_work=1e9
        )
        assert out == [i * i for i in range(8)]
        assert isinstance(ex._successor, SerialExecutor)
        ex.close()

    def test_injection_skipped_for_inline_batches(self, rng):
        """The pool can only die when a batch actually fans out: inline
        batches (below the work floor) never consult the poolkill hook."""
        ex = ThreadExecutor(2)  # default floor; tiny batches run inline
        ex.fault_plan = FaultPlan(0, poolkill=1.0)
        pairs = spgemm_pairs(rng, n_pairs=2, m=6, density=0.2)
        ex.run_spgemm(pairs, SPEC)
        assert ex._successor is None
        assert ex.fault_plan.events == []
        ex.close()

    def test_close_is_idempotent_and_closes_successor(self, rng):
        ex = ThreadExecutor(2, fanout_min_work=0)
        ex.fault_plan = FaultPlan(0, poolkill=1.0, limit=1)
        ex.run_spgemm(spgemm_pairs(rng), SPEC)
        successor = ex._successor
        assert successor is not None
        ex.close()
        ex.close()  # second close is a no-op, not an error
        assert ex._pool is None

    def test_executors_registered_for_atexit_cleanup(self):
        from repro.machine.executor import _LIVE_EXECUTORS

        ex = ThreadExecutor(2)
        px = ProcessExecutor(2)
        try:
            assert ex in _LIVE_EXECUTORS
            assert px in _LIVE_EXECUTORS
        finally:
            ex.close()
            px.close()

    def test_serial_reference_untouched_by_fault_plan(self, rng):
        ex = SerialExecutor()
        ex.fault_plan = FaultPlan(0, poolkill=1.0)
        pairs = spgemm_pairs(rng)
        ref = [spgemm(x, y, SPEC) for x, y in pairs]
        assert_results_equal(ex.run_spgemm(pairs, SPEC), ref)


# ---------------------------------------------------------------------------
# mfbc retry loop
# ---------------------------------------------------------------------------


class TestMfbcRetry:
    def test_crash_retried_to_bit_identical_scores(self, small_undirected):
        ref = mfbc(small_undirected, batch_size=8).scores
        m = Machine(4, faults="seed:3,crash:0.02,limit:2")
        res = mfbc(
            small_undirected, batch_size=8, engine=DistributedEngine(m), retries=3
        )
        assert np.array_equal(res.scores, ref)
        actions = [(e.kind, e.action) for e in m.faults.events]
        assert ("crash", "injected") in actions
        assert ("batch", "recovered") in actions

    def test_retries_zero_propagates_failure(self, small_undirected):
        # elastic="off": this test asserts the *non-elastic* abort path even
        # under the CI chaos leg's ambient REPRO_ELASTIC
        m = Machine(4, faults="seed:2,crash:0.01,limit:1", elastic="off")
        with pytest.raises(RankFailure):
            mfbc(
                small_undirected,
                batch_size=8,
                engine=DistributedEngine(m),
                retries=0,
            )

    def test_exhausted_retries_abandon_with_event(
        self, small_undirected, monkeypatch
    ):
        import sys

        mfbc_mod = sys.modules["repro.core.mfbc"]

        def always_crash(*args, **kwargs):
            raise RankFailure(0, 0, "mfbf")

        monkeypatch.setattr(mfbc_mod, "mfbf", always_crash)
        # inert plan still records tolerance; elastic off so the synthetic
        # failure walks the retry ladder, not recovery
        m = Machine(4, faults="seed:0", elastic="off")
        with pytest.raises(RankFailure):
            mfbc_mod.mfbc(
                small_undirected,
                batch_size=8,
                engine=DistributedEngine(m),
                retries=2,
                retry_backoff=0.01,
            )
        actions = [(e.kind, e.action) for e in m.faults.events]
        assert actions.count(("batch", "recovered")) == 2
        assert actions[-1] == ("batch", "abandoned")

    def test_backoff_charged_to_modeled_clock(self, small_undirected, monkeypatch):
        import sys

        mfbc_mod = sys.modules["repro.core.mfbc"]
        calls = {"n": 0}
        real_mfbf = mfbc_mod.mfbf

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RankFailure(0, 0, "mfbf")
            return real_mfbf(*args, **kwargs)

        monkeypatch.setattr(mfbc_mod, "mfbf", flaky)
        # the synthetic mfbf fault must be the only one: opt out of any
        # ambient REPRO_FAULTS plan (the CI fault leg sets one) and of
        # ambient elastic recovery (the chaos leg), which would skip retry
        m = Machine(4, faults="off", elastic="off")
        t_before = m.ledger.critical_time()
        mfbc_mod.mfbc(
            small_undirected,
            batch_size=8,
            engine=DistributedEngine(m),
            retries=1,
            retry_backoff=123.0,
            max_batches=1,
        )
        assert m.ledger.critical_time() - t_before >= 123.0

    def test_invalid_retry_arguments(self, small_undirected):
        with pytest.raises(ValueError, match="retries"):
            mfbc(small_undirected, retries=-1)
        with pytest.raises(ValueError, match="retry_backoff"):
            mfbc(small_undirected, retry_backoff=-0.1)


# ---------------------------------------------------------------------------
# end-to-end acceptance: crash → checkpoint → resume
# ---------------------------------------------------------------------------


class TestAcceptance:
    def test_crash_checkpoint_resume_reexecutes_only_remaining_batches(
        self, small_undirected
    ):
        """The ISSUE's resume bar: a run killed by an injected rank crash at
        batch k, resumed via ``resume_from=``, produces bit-identical scores
        while re-executing only batches ≥ k (asserted via obs batch spans)."""
        ref = mfbc(small_undirected, batch_size=8).scores

        store = MemoryCheckpointStore()
        m = Machine(4, faults="seed:2,crash:0.01,limit:1", elastic="off")
        with pytest.raises(RankFailure):
            mfbc(
                small_undirected,
                batch_size=8,
                engine=DistributedEngine(m),
                retries=0,
                checkpoint=store,
            )
        state = store.load()
        assert state is not None and state.batch_index >= 1  # died mid-run

        session = obs.enable()
        try:
            res = mfbc(
                small_undirected,
                batch_size=8,
                engine=DistributedEngine(Machine(4)),
                resume_from=store,
            )
        finally:
            obs.disable()

        assert np.array_equal(res.scores, ref)
        assert res.stats.sources_processed == small_undirected.n
        batch_indices = [
            sp.args["index"] for sp in session.tracer.find("batch")
        ]
        assert batch_indices  # the resumed run did execute batches...
        assert min(batch_indices) == state.batch_index  # ...but only ≥ k
        assert batch_indices == sorted(batch_indices)

    def test_fault_report_renders(self, small_undirected):
        m = Machine(4, faults="seed:3,crash:0.02,limit:2", elastic="off")
        mfbc(
            small_undirected, batch_size=8, engine=DistributedEngine(m), retries=3
        )
        report = format_fault_report(m.faults)
        assert "fault injection summary" in report
        # the attribution table groups counts by (kind, site) with one
        # column per recovery outcome
        assert "kind" in report and "injected" in report
        crash_rows = [
            ln for ln in report.splitlines() if ln.strip().startswith("crash")
        ]
        assert crash_rows  # the injected crashes are attributed to a site
        assert format_fault_report(None) == "faults: no fault plan attached"

    def test_fault_events_mirrored_to_obs(self, small_undirected):
        session = obs.enable()
        try:
            m = Machine(4, faults="seed:3,crash:0.02,limit:2")
            mfbc(
                small_undirected,
                batch_size=8,
                engine=DistributedEngine(m),
                retries=3,
            )
        finally:
            obs.disable()
        fault_spans = [sp for sp in session.tracer.spans if sp.cat == "fault"]
        assert len(fault_spans) == len(m.faults.events)
        assert session.metrics.total("faults.injected") >= 1
