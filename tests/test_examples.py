"""Every example script runs end to end (at reduced scale)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

CASES = [
    ("quickstart.py", ["--scale", "7", "--degree", "6"]),
    ("social_network_analysis.py", ["--scale-offset", "-6", "--sources", "16"]),
    ("weighted_transport_network.py", ["--side", "7"]),
    ("distributed_simulation.py", ["--p", "4", "--n", "80", "--batch", "20"]),
    ("community_detection.py", ["--size", "10"]),
    ("hypergraph_analysis.py", ["--authors", "30", "--papers", "80"]),
]


@pytest.mark.parametrize("script,args", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, args):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"
