"""Edge betweenness centrality against the networkx oracle."""

import numpy as np
import pytest

from repro.core import edge_betweenness_centrality
from repro.dist import DistributedEngine
from repro.graphs import Graph, uniform_random_graph_nm, with_random_weights
from repro.machine import Machine


def nx_edge_reference(graph):
    import networkx as nx

    ref = nx.edge_betweenness_centrality(
        graph.to_networkx(),
        normalized=False,
        weight="weight" if graph.weighted else None,
    )
    factor = 1.0 if graph.directed else 2.0
    out = {}
    for (u, v), s in ref.items():
        out[(u, v)] = s * factor
    return out


def assert_matches_nx(graph, result):
    ref = nx_edge_reference(graph)
    for (u, v), s in result.as_dict().items():
        expect = ref.get((u, v), ref.get((v, u)))
        assert expect is not None, (u, v)
        assert s == pytest.approx(expect, abs=1e-8), (u, v)


class TestCorrectness:
    @pytest.mark.parametrize("directed", [False, True])
    @pytest.mark.parametrize("weighted", [False, True])
    def test_matches_networkx(self, directed, weighted):
        g = uniform_random_graph_nm(35, 3.5, directed=directed, seed=97)
        if weighted:
            g = with_random_weights(g, 1, 8, seed=97)
        res = edge_betweenness_centrality(g, batch_size=8)
        assert_matches_nx(g, res)

    def test_path_graph_analytic(self, path_graph):
        """Edge i-(i+1) of a 5-path carries 2·(i+1)·(4-i) ordered pairs."""
        res = edge_betweenness_centrality(path_graph)
        d = res.as_dict()
        for i in range(4):
            assert d[(i, i + 1)] == pytest.approx(2 * (i + 1) * (4 - i))

    def test_bridge_dominates(self):
        """The single bridge between two triangles has the highest score."""
        # triangles {0,1,2} and {3,4,5} bridged by (2,3)
        src = np.array([0, 1, 2, 3, 4, 5, 2])
        dst = np.array([1, 2, 0, 4, 5, 3, 3])
        g = Graph(6, src, dst)
        res = edge_betweenness_centrality(g)
        top = res.top_edges(1)[0]
        assert {top[0], top[1]} == {2, 3}

    def test_batch_invariance(self):
        g = uniform_random_graph_nm(30, 3.0, seed=99)
        a = edge_betweenness_centrality(g, batch_size=30).scores
        b = edge_betweenness_centrality(g, batch_size=4).scores
        assert np.allclose(a, b, atol=1e-8)

    def test_edge_chunking(self):
        g = uniform_random_graph_nm(30, 3.0, seed=99)
        a = edge_betweenness_centrality(g, batch_size=8).scores
        b = edge_betweenness_centrality(g, batch_size=8, edge_chunk=3).scores
        assert np.allclose(a, b, atol=1e-10)

    def test_sources_subset_scaling(self):
        g = uniform_random_graph_nm(30, 3.0, seed=99)
        full = edge_betweenness_centrality(g).scores
        partials = [
            edge_betweenness_centrality(g, sources=np.array([s])).scores
            for s in range(g.n)
        ]
        assert np.allclose(sum(partials), full, atol=1e-8)

    def test_distributed_engine(self, small_undirected):
        ref = edge_betweenness_centrality(small_undirected, batch_size=10).scores
        eng = DistributedEngine(Machine(4))
        got = edge_betweenness_centrality(
            small_undirected, batch_size=10, engine=eng
        ).scores
        assert np.allclose(got, ref, atol=1e-8)

    def test_bad_batch_raises(self, small_undirected):
        with pytest.raises(ValueError, match="batch_size"):
            edge_betweenness_centrality(small_undirected, batch_size=0)


class TestResultAPI:
    def test_top_edges_sorted(self, small_undirected):
        res = edge_betweenness_centrality(small_undirected, batch_size=10)
        top = res.top_edges(5)
        assert len(top) == 5
        scores = [s for _, _, s in top]
        assert scores == sorted(scores, reverse=True)

    def test_dict_covers_all_edges(self, small_undirected):
        res = edge_betweenness_centrality(small_undirected, batch_size=10)
        assert len(res.as_dict()) == small_undirected.m
