"""Distributed MFBC on the simulated machine: equivalence + cost sanity."""

import numpy as np
import pytest

from repro.core import mfbc
from repro.dist import DistributedEngine
from repro.machine.grid import near_square_shape
from repro.graphs import uniform_random_graph_nm, with_random_weights
from repro.machine import Machine
from repro.machine.machine import MemoryLimitExceeded
from repro.spgemm import PinnedPolicy, Plan, Square2DPolicy


@pytest.fixture(scope="module")
def graph():
    return uniform_random_graph_nm(60, 5.0, seed=21)


@pytest.fixture(scope="module")
def reference(graph):
    return mfbc(graph, batch_size=15).scores


class TestEquivalence:
    @pytest.mark.parametrize("p", [1, 2, 4, 8, 16])
    def test_auto_policy(self, graph, reference, p):
        machine = Machine(p)
        res = mfbc(graph, batch_size=15, engine=DistributedEngine(machine))
        assert np.allclose(res.scores, reference, atol=1e-8)

    def test_ca_mfbc_policy(self, graph, reference):
        machine = Machine(16)
        eng = DistributedEngine(machine, policy=PinnedPolicy.ca_mfbc(16, c=4))
        res = mfbc(graph, batch_size=15, engine=eng)
        assert np.allclose(res.scores, reference, atol=1e-8)

    def test_square2d_policy(self, graph, reference):
        machine = Machine(9)
        eng = DistributedEngine(machine, policy=Square2DPolicy())
        res = mfbc(graph, batch_size=15, engine=eng)
        assert np.allclose(res.scores, reference, atol=1e-8)

    def test_weighted_distributed(self):
        g = with_random_weights(uniform_random_graph_nm(40, 4.0, seed=23), 1, 9, seed=3)
        ref = mfbc(g, batch_size=10).scores
        machine = Machine(4)
        res = mfbc(g, batch_size=10, engine=DistributedEngine(machine))
        assert np.allclose(res.scores, ref, atol=1e-8)

    def test_directed_distributed(self):
        g = uniform_random_graph_nm(40, 4.0, directed=True, seed=29)
        ref = mfbc(g, batch_size=10).scores
        machine = Machine(6)
        res = mfbc(g, batch_size=10, engine=DistributedEngine(machine))
        assert np.allclose(res.scores, ref, atol=1e-8)


class TestLedger:
    def test_costs_accumulate(self, graph):
        machine = Machine(8)
        mfbc(graph, batch_size=15, max_batches=1, engine=DistributedEngine(machine))
        snap = machine.ledger.snapshot()
        assert snap["words"] > 0 and snap["msgs"] > 0 and snap["time"] > 0
        assert snap["comm_time"] <= snap["time"]

    def test_plan_log_populated(self, graph):
        machine = Machine(8)
        eng = DistributedEngine(machine)
        mfbc(graph, batch_size=15, max_batches=1, engine=eng)
        assert len(eng.plan_log) > 0
        assert all(pl.p == 8 for pl in eng.plan_log)

    def test_critical_words_decrease_with_p(self, graph):
        """More ranks → smaller per-rank panels → fewer critical-path words
        (the strong-scaling effect of Theorem 5.1)."""
        words = {}
        for p in (2, 16):
            machine = Machine(p)
            mfbc(
                graph,
                batch_size=15,
                max_batches=1,
                engine=DistributedEngine(machine),
            )
            words[p] = machine.ledger.critical_words()
        assert words[16] < words[2]

    def test_replication_amortized_across_batches(self, graph):
        """With an invariant adjacency, later batches must not pay the
        replication again: per-batch traffic should not grow."""
        machine = Machine(4)
        eng = DistributedEngine(machine, policy=PinnedPolicy(Plan(2, 2, 1, "B", "AB")))
        mfbc(graph, batch_size=15, max_batches=1, engine=eng)
        t1 = machine.ledger.total_words
        mfbc(graph, batch_size=15, max_batches=1, engine=eng)
        t2 = machine.ledger.total_words - t1
        # second run reuses the cached replicas and the cached adjacency —
        # but re-distributes the adjacency in engine.adjacency(); allow a
        # modest increase only
        assert t2 <= t1 * 1.1


class TestEveryVariantEndToEnd:
    """MFBC end-to-end under each pinned plan family — the strongest
    integration net over the variant implementations."""

    @pytest.mark.parametrize("x", ["A", "B", "C"])
    @pytest.mark.parametrize("yz", ["AB", "AC", "BC"])
    def test_pinned_3d_variants(self, graph, reference, x, yz):
        machine = Machine(8)
        eng = DistributedEngine(machine, policy=PinnedPolicy(Plan(2, 2, 2, x, yz)))
        res = mfbc(graph, batch_size=15, max_batches=2, engine=eng)
        ref = mfbc(graph, batch_size=15, max_batches=2).scores
        assert np.allclose(res.scores, ref, atol=1e-8), (x, yz)

    @pytest.mark.parametrize("x", ["A", "B", "C"])
    def test_pinned_1d_variants(self, graph, x):
        machine = Machine(4)
        eng = DistributedEngine(machine, policy=PinnedPolicy(Plan(4, 1, 1, x, "AB")))
        res = mfbc(graph, batch_size=15, max_batches=2, engine=eng)
        ref = mfbc(graph, batch_size=15, max_batches=2).scores
        assert np.allclose(res.scores, ref, atol=1e-8), x

    @pytest.mark.parametrize("yz", ["AB", "AC", "BC"])
    def test_pinned_2d_variants(self, graph, yz):
        machine = Machine(6)
        eng = DistributedEngine(machine, policy=PinnedPolicy(Plan(1, 2, 3, "A", yz)))
        res = mfbc(graph, batch_size=15, max_batches=2, engine=eng)
        ref = mfbc(graph, batch_size=15, max_batches=2).scores
        assert np.allclose(res.scores, ref, atol=1e-8), yz


class TestMemoryBudget:
    def test_budget_violation_raises(self, graph):
        machine = Machine(4, memory_words=4)
        with pytest.raises(MemoryLimitExceeded):
            mfbc(
                graph,
                batch_size=15,
                max_batches=1,
                engine=DistributedEngine(machine),
            )

    def test_feasible_budget_runs(self, graph, reference):
        machine = Machine(4, memory_words=100_000)
        res = mfbc(graph, batch_size=15, engine=DistributedEngine(machine))
        assert np.allclose(res.scores, reference, atol=1e-8)


class TestNearSquare:
    def test_shapes(self):
        assert near_square_shape(1) == (1, 1)
        assert near_square_shape(12) == (3, 4)
        assert near_square_shape(16) == (4, 4)
        assert near_square_shape(7) == (1, 7)
