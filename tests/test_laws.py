"""The public monoid-law checker (and that it catches unlawful algebras)."""

import numpy as np
import pytest

from repro.algebra import (
    CENTPATH,
    MULTPATH,
    MonoidLawError,
    bellman_ford_action,
    brandes_action,
    check_action_compatibility,
    check_monoid_laws,
)
from repro.algebra.monoid import MaxMonoid, MinMonoid, Monoid, PlusMonoid

MULTPATH_SAMPLES = [
    {"w": np.inf, "m": 0.0},
    {"w": 0.0, "m": 1.0},
    {"w": 1.0, "m": 2.0},
    {"w": 1.0, "m": 3.0},
    {"w": 5.0, "m": 1.0},
]

CENTPATH_SAMPLES = [
    {"w": -np.inf, "p": 0.0, "c": 0},
    {"w": 0.0, "p": 0.5, "c": 1},
    {"w": 2.0, "p": 0.25, "c": -1},
    {"w": 2.0, "p": 1.0, "c": 3},
]


class TestLawfulMonoidsPass:
    def test_multpath(self):
        check_monoid_laws(MULTPATH, MULTPATH_SAMPLES)

    def test_centpath(self):
        check_monoid_laws(CENTPATH, CENTPATH_SAMPLES)

    def test_scalar_monoids(self):
        check_monoid_laws(PlusMonoid(), [{"w": v} for v in (0.0, 1.0, -2.5)])
        check_monoid_laws(MinMonoid(), [{"w": v} for v in (np.inf, 1.0, 3.0)])
        check_monoid_laws(MaxMonoid(), [{"w": v} for v in (-np.inf, 1.0, 3.0)])


class _SubtractMonoid(Monoid):
    """Deliberately unlawful: subtraction is neither assoc. nor comm."""

    def __init__(self):
        super().__init__([("w", np.float64)], {"w": 0.0})

    def combine(self, a, b):
        return {"w": a["w"] - b["w"]}


class _WrongIdentityMonoid(Monoid):
    def __init__(self):
        super().__init__([("w", np.float64)], {"w": 1.0})

    def combine(self, a, b):
        return {"w": a["w"] + b["w"]}


class TestUnlawfulMonoidsCaught:
    def test_subtraction_rejected(self):
        # e ⊕ a = −a trips the identity law before the later laws run
        with pytest.raises(MonoidLawError, match="failed"):
            check_monoid_laws(
                _SubtractMonoid(), [{"w": 1.0}, {"w": 2.0}, {"w": 5.0}]
            )

    def test_wrong_identity_rejected(self):
        with pytest.raises(MonoidLawError, match="identity"):
            check_monoid_laws(_WrongIdentityMonoid(), [{"w": 3.0}])

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError, match="sample"):
            check_monoid_laws(MULTPATH, [])


class TestActionLaws:
    def test_bellman_ford_action(self):
        check_action_compatibility(
            bellman_ford_action,
            [{"w": 0.0, "m": 1.0}, {"w": 3.0, "m": 2.0}],
            [1.0, 2.5, 7.0],
        )

    def test_brandes_action(self):
        check_action_compatibility(
            brandes_action,
            [{"w": 5.0, "p": 0.5, "c": 1}],
            [1.0, 2.0],
        )

    def test_broken_action_caught(self):
        def broken(a, b):
            return {"w": a["w"] + b["w"] ** 2, "m": a["m"]}

        with pytest.raises(MonoidLawError, match="action law"):
            check_action_compatibility(
                broken, [{"w": 0.0, "m": 1.0}], [1.0, 2.0]
            )
