"""The simulated machine: cost charging, critical paths, collectives, memory."""

import numpy as np
import pytest

from repro.machine import CostParams, Group, Machine, MemoryLimitExceeded, payload_words
from repro.sparse import SpMat
from repro.algebra.monoid import MinMonoid

W = MinMonoid()


class TestCostParams:
    def test_defaults_valid(self):
        c = CostParams()
        assert c.alpha >= c.beta

    def test_alpha_below_beta_raises(self):
        with pytest.raises(ValueError, match="alpha >= beta"):
            CostParams(alpha=1e-12, beta=1e-6)


class TestMachineBasics:
    def test_bad_p_raises(self):
        with pytest.raises(ValueError):
            Machine(0)

    def test_world_group(self):
        m = Machine(4)
        assert m.world().size == 4


class TestCharging:
    def test_collective_cost_formula(self):
        m = Machine(4, cost=CostParams(alpha=1.0, beta=0.5, compute_rate=1.0))
        m.charge_collective(np.arange(4), words_per_rank=10, weight=2.0)
        # 2*(10*0.5 + 2*1.0) = 14 seconds; words 20; msgs 2*log2(4)=4
        assert m.ledger.critical_time() == pytest.approx(14.0)
        assert m.ledger.critical_words() == pytest.approx(20.0)
        assert m.ledger.critical_msgs() == pytest.approx(4.0)

    def test_single_rank_collective_free(self):
        m = Machine(4)
        m.charge_collective([2], 100.0)
        assert m.ledger.critical_time() == 0.0

    def test_critical_path_max_merge(self):
        """Two disjoint groups charge in parallel; a spanning collective
        starts from the max."""
        m = Machine(4, cost=CostParams(alpha=1.0, beta=1.0, compute_rate=1.0))
        m.charge_collective([0, 1], 5.0, weight=1.0)  # t = 5 + 1 = 6
        m.charge_collective([2, 3], 2.0, weight=1.0)  # t = 2 + 1 = 3
        assert m.ledger.critical_time() == pytest.approx(6.0)
        m.charge_collective(np.arange(4), 1.0, weight=1.0)  # starts at 6
        assert m.ledger.critical_time() == pytest.approx(6.0 + 1.0 + 2.0)

    def test_parallel_groups_do_not_stack(self):
        m = Machine(4, cost=CostParams(alpha=1.0, beta=1.0, compute_rate=1.0))
        for _ in range(3):
            m.charge_collective([0, 1], 1.0, weight=1.0)
        m2 = Machine(4, cost=CostParams(alpha=1.0, beta=1.0, compute_rate=1.0))
        for _ in range(3):
            m2.charge_collective([0, 1], 1.0, weight=1.0)
            m2.charge_collective([2, 3], 1.0, weight=1.0)
        # disjoint charging doesn't lengthen the critical path
        assert m.ledger.critical_time() == m2.ledger.critical_time()

    def test_pointtopoint(self):
        m = Machine(3, cost=CostParams(alpha=1.0, beta=1.0, compute_rate=1.0))
        m.charge_pointtopoint(0, 1, 4.0)
        assert m.ledger.critical_time() == pytest.approx(5.0)
        assert m.ledger.critical_msgs() == 1
        assert m.ledger.time[2] == 0.0

    def test_compute_charge(self):
        m = Machine(2, cost=CostParams(alpha=1.0, beta=1.0, compute_rate=100.0))
        m.charge_compute([0], 200.0)
        assert m.ledger.time[0] == pytest.approx(2.0)
        assert m.ledger.comm_time[0] == 0.0

    def test_barrier_syncs(self):
        m = Machine(2, cost=CostParams(alpha=1.0, beta=1.0, compute_rate=1.0))
        m.charge_compute([0], 5.0)
        m.barrier()
        assert m.ledger.time[1] == m.ledger.time[0]

    def test_totals_accumulate(self):
        m = Machine(4)
        m.charge_collective(np.arange(4), 10.0, weight=1.0)
        assert m.ledger.total_words == pytest.approx(40.0)
        snap = m.ledger.snapshot()
        assert set(snap) >= {"time", "words", "msgs", "comm_time"}

    def test_category_breakdown(self):
        m = Machine(4)
        m.charge_collective(np.arange(4), 10.0, weight=1.0, category="bcast")
        m.charge_collective(np.arange(4), 3.0, weight=2.0, category="reduce")
        m.charge_collective(np.arange(4), 5.0, weight=1.0, category="bcast")
        bd = m.ledger.traffic_breakdown()
        assert bd["bcast"] == pytest.approx(60.0)
        assert bd["reduce"] == pytest.approx(24.0)
        assert list(bd)[0] == "bcast"  # sorted descending

    def test_categories_from_real_run(self):
        """A distributed MFBC run populates the expected categories."""
        from repro.core import mfbc
        from repro.dist import DistributedEngine
        from repro.graphs import uniform_random_graph_nm

        g = uniform_random_graph_nm(40, 4.0, seed=5)
        m = Machine(4)
        mfbc(g, batch_size=10, max_batches=1, engine=DistributedEngine(m))
        bd = m.ledger.traffic_breakdown()
        assert "input" in bd and "gather" in bd
        assert sum(bd.values()) == pytest.approx(m.ledger.total_words)


class TestMemory:
    def test_limit_enforced(self):
        m = Machine(2, memory_words=100)
        m.allocate(0, 60)
        with pytest.raises(MemoryLimitExceeded):
            m.allocate(0, 50)

    def test_free_releases(self):
        m = Machine(2, memory_words=100)
        m.allocate(0, 60)
        m.free(0, 60)
        m.allocate(0, 90)  # fits again
        assert m.memory_used(0) == 90
        assert m.memory_used() == 90
        m.reset_memory()
        assert m.memory_used() == 0

    def test_peak_tracked_and_reset(self):
        m = Machine(2, memory_words=100)
        m.allocate(0, 60)
        m.free(0, 60)
        m.allocate(0, 30)
        assert m.memory_peak(0) == 60  # high-water mark survives the free
        assert m.memory_peak() == 60
        m.reset_memory()
        assert m.memory_peak() == 0
        assert m.memory_used() == 0

    def test_repeated_runs_on_one_machine_do_not_accumulate(self):
        """Regression: reset_memory must clear both live usage and peaks, so
        back-to-back runs on one Machine can't spuriously exhaust the budget
        or misreport the later run's footprint."""
        m = Machine(2, memory_words=100)
        for _ in range(5):
            m.allocate(0, 90)  # would blow the budget on round 2 if leaked
            m.allocate(1, 90)
            m.reset_memory()
        assert m.memory_used() == 0
        assert m.memory_peak() == 0

    def test_shrink_compacts_memory_accounting(self):
        """Survivors keep their usage *and* peaks, resliced onto 0..p'-1."""
        m = Machine(4, memory_words=1 << 30, faults="off", elastic="off")
        for r in range(4):
            m.allocate(r, 100 * (r + 1))
        m.free(3, 150)  # rank 3: used 250, peak 400
        mapping = m.shrink([1])
        assert m.p == 3 and mapping[1] == -1
        assert [m.memory_used(r) for r in range(3)] == [100, 300, 250]
        assert [m.memory_peak(r) for r in range(3)] == [100, 300, 400]
        assert m.memory_peak() == 400  # machine-wide peak survives the shrink

    def test_shrink_drops_dead_rank_from_budget_checks(self):
        """A stale rank index fails loudly after the shrink, like groups do."""
        m = Machine(3, memory_words=100, faults="off", elastic="off")
        m.allocate(2, 90)
        m.shrink([2])
        assert m.p == 2
        with pytest.raises(IndexError):
            m.allocate(2, 1)

    def test_reset_memory_after_shrink_and_recovery(self):
        """The elastic-recovery interplay: a post-recovery reset starts the
        next run clean on the survivor grid without resurrecting the dead
        rank's accounting."""
        m = Machine(4, memory_words=1 << 30, faults="off", elastic="off")
        for r in range(4):
            m.allocate(r, 50)
        m.shrink([0, 2])
        assert m.p == 2
        m.reset_memory()
        assert m.memory_used() == 0 and m.memory_peak() == 0
        m.allocate(1, 70)  # the compacted survivor index, freshly charged
        assert m.memory_used() == 70 and m.memory_peak(1) == 70


class TestGroups:
    def test_distinct_ranks_required(self):
        m = Machine(4)
        with pytest.raises(ValueError, match="distinct"):
            Group(m, np.array([0, 0]))

    def test_rank_range_checked(self):
        m = Machine(2)
        with pytest.raises(ValueError, match="out of range"):
            Group(m, np.array([5]))

    def test_payload_count_checked(self):
        m = Machine(2)
        g = m.world()
        with pytest.raises(ValueError, match="payloads"):
            g.bcast([None])

    def test_bcast_moves_root_payload(self):
        m = Machine(3)
        g = m.world()
        out = g.bcast([np.arange(4), None, None], root=0)
        assert all(np.array_equal(o, np.arange(4)) for o in out)
        assert m.ledger.critical_words() > 0

    def test_reduce_combines(self):
        m = Machine(3)
        g = m.world()
        out = g.reduce([np.ones(3), np.ones(3) * 2, None], lambda a, b: a + b)
        assert np.allclose(out, [3, 3, 3])

    def test_reduce_all_none(self):
        m = Machine(2)
        assert m.world().reduce([None, None], lambda a, b: a + b) is None

    def test_allreduce(self):
        m = Machine(2)
        out = m.world().allreduce([np.ones(2), np.ones(2)], lambda a, b: a + b)
        assert len(out) == 2 and np.allclose(out[0], 2)

    def test_sparse_reduce_charges_output_size(self):
        m = Machine(2, cost=CostParams(alpha=1.0, beta=1.0, compute_rate=1.0))
        small = SpMat(4, 4, np.array([0]), np.array([0]), {"w": np.ones(1)}, W)
        big = SpMat(
            4, 4, np.arange(4), np.arange(4), {"w": np.ones(4)}, W
        )
        out = m.world().sparse_reduce([small, big], lambda a, b: a.combine(b))
        assert out.nnz == 4
        # cost charged against the reduced result, not the sum of inputs
        assert m.ledger.critical_words() == pytest.approx(2 * out.words())

    def test_scatter_gather_allgather(self):
        m = Machine(2)
        g = m.world()
        parts = [np.zeros(2), np.ones(2)]
        assert np.allclose(g.scatter(parts)[1], 1)
        gathered = g.gather(parts)
        assert len(gathered) == 2
        ag = g.allgather(parts)
        assert len(ag) == 2 and len(ag[0]) == 2


class TestPayloadWords:
    def test_none(self):
        assert payload_words(None) == 0

    def test_array(self):
        assert payload_words(np.zeros(10)) == 10

    def test_spmat(self):
        s = SpMat(2, 2, np.array([0]), np.array([1]), {"w": np.ones(1)}, W)
        assert payload_words(s) == s.words()

    def test_containers(self):
        assert payload_words([np.zeros(2), np.zeros(3)]) == 5
        assert payload_words({"a": np.zeros(2)}) == 2

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            payload_words(object())
