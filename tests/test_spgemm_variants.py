"""Every distributed SpGEMM variant must equal the sequential kernel.

This is the load-bearing equivalence of the whole mini-CTF layer: the full
§5.2 algorithm space — 1D A/B/C, 2D AB/AC/BC over every factorization, and
all nine 3D nestings — run on real partitioned data and must reproduce the
node-local product bit-for-bit, for single-field and multpath monoids alike.
"""

import numpy as np
import pytest

from repro.algebra import MULTPATH, TROPICAL, MatMulSpec, bellman_ford_action
from repro.dist import DistMat
from repro.machine.grid import near_square_shape
from repro.machine import CostParams, Machine
from repro.sparse import SpMat, spgemm
from repro.spgemm import Plan, execute_plan
from repro.spgemm.selector import enumerate_plans

from conftest import random_weight_spmat

SPEC = TROPICAL.matmul_spec()
BF = MatMulSpec(MULTPATH, bellman_ford_action, "bf")


def home(p):
    pr, pc = near_square_shape(p)
    return np.arange(p).reshape(pr, pc)


def dist_pair(rng, machine, m, k, n, da=0.2, db=0.2):
    a = random_weight_spmat(rng, m, k, da)
    b = random_weight_spmat(rng, k, n, db)
    h = home(machine.p)
    return (
        a,
        b,
        DistMat.distribute(a, machine, h, charge=False),
        DistMat.distribute(b, machine, h, charge=False),
    )


class TestAllPlansMatchSequential:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8, 12])
    def test_square_operands(self, rng, p):
        machine = Machine(p)
        a, b, da, db = dist_pair(rng, machine, 26, 26, 26)
        ref = spgemm(a, b, SPEC).matrix
        for plan in enumerate_plans(p):
            c, ops = execute_plan(plan, da, db, SPEC, home(p))
            assert c.gather(charge=False).equals(ref), plan.describe()
            assert ops >= 0

    @pytest.mark.parametrize("p", [4, 8])
    def test_rectangular_operands(self, rng, p):
        machine = Machine(p)
        a, b, da, db = dist_pair(rng, machine, 7, 33, 19)
        ref = spgemm(a, b, SPEC).matrix
        for plan in enumerate_plans(p):
            c, _ = execute_plan(plan, da, db, SPEC, home(p))
            assert c.gather(charge=False).equals(ref), plan.describe()

    def test_multpath_operand(self, rng):
        """Frontier-style product: multpath rows times weight adjacency."""
        p = 4
        machine = Machine(p)
        n = 30
        adj = random_weight_spmat(rng, n, n, 0.2)
        rows = np.zeros(3, dtype=np.int64)
        cols = np.array([2, 7, 11])
        f = SpMat(1, n, rows, cols, MULTPATH.make([1.0, 2.0, 2.0], [1, 1, 2]), MULTPATH)
        ref = spgemm(f, adj, BF).matrix
        h = home(p)
        df = DistMat.distribute(f, machine, h, charge=False)
        dadj = DistMat.distribute(adj, machine, h, charge=False)
        for plan in enumerate_plans(p):
            c, _ = execute_plan(plan, df, dadj, BF, h)
            assert c.gather(charge=False).equals(ref), plan.describe()

    def test_empty_frontier(self, rng):
        p = 4
        machine = Machine(p)
        n = 12
        adj = random_weight_spmat(rng, n, n, 0.3)
        f = SpMat.empty(2, n, MULTPATH)
        h = home(p)
        df = DistMat.distribute(f, machine, h, charge=False)
        dadj = DistMat.distribute(adj, machine, h, charge=False)
        for plan in enumerate_plans(p):
            c, ops = execute_plan(plan, df, dadj, BF, h)
            assert c.nnz == 0 and ops == 0, plan.describe()


class TestPlanValidation:
    def test_wrong_machine_size(self, rng):
        machine = Machine(4)
        a, b, da, db = dist_pair(rng, machine, 8, 8, 8)
        with pytest.raises(ValueError, match="does not cover"):
            execute_plan(Plan(8, 1, 1, "A", "AB"), da, db, SPEC, home(4))

    def test_inner_dim_mismatch(self, rng):
        machine = Machine(2)
        h = home(2)
        a = DistMat.distribute(random_weight_spmat(rng, 4, 5, 0.5), machine, h)
        b = DistMat.distribute(random_weight_spmat(rng, 6, 4, 0.5), machine, h)
        with pytest.raises(ValueError, match="inner dimension"):
            execute_plan(Plan(2, 1, 1, "A", "AB"), a, b, SPEC, h)

    def test_plan_invalid_variant(self):
        with pytest.raises(ValueError, match="x must be"):
            Plan(1, 2, 2, "Q", "AB")
        with pytest.raises(ValueError, match="yz must be"):
            Plan(1, 2, 2, "A", "XY")
        with pytest.raises(ValueError, match="positive"):
            Plan(0, 2, 2, "A", "AB")

    def test_plan_kind(self):
        assert Plan(4, 1, 1, "A", "AB").kind == "1d"
        assert Plan(1, 2, 2, "A", "AB").kind == "2d"
        assert Plan(2, 2, 1, "B", "AC").kind == "3d"
        assert "1D" in Plan(4, 1, 1, "C", "AB").describe()
        assert "2D" in Plan(1, 2, 2, "A", "BC").describe()
        assert "3D" in Plan(2, 2, 2, "B", "AC").describe()


class TestCostAccounting:
    def test_communication_charged(self, rng):
        machine = Machine(4)
        a, b, da, db = dist_pair(rng, machine, 20, 20, 20, 0.4, 0.4)
        w0 = machine.ledger.critical_words()
        execute_plan(Plan(1, 2, 2, "A", "AB"), da, db, SPEC, home(4))
        assert machine.ledger.critical_words() > w0
        assert machine.ledger.critical_msgs() > 0

    def test_compute_charged(self, rng):
        machine = Machine(4)
        a, b, da, db = dist_pair(rng, machine, 20, 20, 20, 0.4, 0.4)
        execute_plan(Plan(1, 2, 2, "A", "AB"), da, db, SPEC, home(4))
        assert machine.ledger.compute_ops > 0

    def test_replication_cache_amortizes(self, rng):
        """Second product with the same cached operand replicates for free."""
        machine = Machine(8)
        a, b, da, db = dist_pair(rng, machine, 24, 24, 24, 0.3, 0.3)
        cache: dict = {}
        plan = Plan(2, 2, 2, "B", "AB")
        execute_plan(plan, da, db, SPEC, home(8), replication_cache=cache)
        w1 = machine.ledger.total_words
        execute_plan(plan, da, db, SPEC, home(8), replication_cache=cache)
        w2 = machine.ledger.total_words - w1
        assert w2 < w1  # replication traffic absent the second time

    def test_p1_output_no_comm(self, rng):
        machine = Machine(1, cost=CostParams(alpha=1.0, beta=1.0, compute_rate=1e9))
        a, b, da, db = dist_pair(rng, machine, 10, 10, 10, 0.4, 0.4)
        execute_plan(Plan(1, 1, 1, "A", "AB"), da, db, SPEC, home(1))
        assert machine.ledger.critical_words() == 0.0
