"""Unit tests for the columnar field-array helpers."""

import numpy as np
import pytest

from repro.algebra.fields import (
    concat_fields,
    empty_fields,
    fields_length,
    full_fields,
    take_fields,
    validate_fields,
)

SPEC = [("w", np.dtype(np.float64)), ("m", np.dtype(np.int64))]


class TestFieldsLength:
    def test_consistent(self):
        assert fields_length({"a": np.zeros(3), "b": np.ones(3)}) == 3

    def test_empty_dict(self):
        assert fields_length({}) == 0

    def test_ragged_raises(self):
        with pytest.raises(ValueError, match="ragged"):
            fields_length({"a": np.zeros(3), "b": np.ones(2)})


class TestEmptyAndFull:
    def test_empty_schema(self):
        e = empty_fields(SPEC)
        assert set(e) == {"w", "m"}
        assert len(e["w"]) == 0 and e["w"].dtype == np.float64
        assert e["m"].dtype == np.int64

    def test_full_values(self):
        f = full_fields(SPEC, 4, {"w": np.inf, "m": 0})
        assert np.all(np.isinf(f["w"])) and len(f["w"]) == 4
        assert np.all(f["m"] == 0)


class TestTakeConcat:
    def test_take_reorders_all_columns(self):
        vals = {"w": np.arange(5.0), "m": np.arange(5) * 10}
        out = take_fields(vals, np.array([4, 0, 2]))
        assert list(out["w"]) == [4.0, 0.0, 2.0]
        assert list(out["m"]) == [40, 0, 20]

    def test_concat_roundtrip(self):
        a = {"w": np.array([1.0, 2.0]), "m": np.array([1, 2])}
        b = {"w": np.array([3.0]), "m": np.array([3])}
        out = concat_fields([a, b])
        assert list(out["w"]) == [1.0, 2.0, 3.0]
        assert list(out["m"]) == [1, 2, 3]

    def test_concat_skips_empty_parts(self):
        a = {"w": np.empty(0), "m": np.empty(0, np.int64)}
        b = {"w": np.array([3.0]), "m": np.array([3])}
        out = concat_fields([a, b])
        assert list(out["w"]) == [3.0]

    def test_concat_schema_mismatch_raises(self):
        a = {"w": np.array([1.0])}
        b = {"x": np.array([2.0])}
        with pytest.raises(ValueError, match="schema mismatch"):
            concat_fields([a, b])


class TestValidate:
    def test_valid(self):
        validate_fields({"w": np.zeros(2), "m": np.zeros(2, np.int64)}, SPEC)

    def test_missing_field(self):
        with pytest.raises(ValueError, match="expected fields"):
            validate_fields({"w": np.zeros(2)}, SPEC)

    def test_extra_field(self):
        with pytest.raises(ValueError, match="expected fields"):
            validate_fields(
                {"w": np.zeros(2), "m": np.zeros(2), "x": np.zeros(2)}, SPEC
            )
