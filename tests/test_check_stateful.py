"""Stateful model-based test: random op sequences vs a dense numpy model.

Hypothesis drives an arbitrary interleaving of matrix creation, min-plus
products, elementwise combines, filters, transposes, and redistributions
through a fully-checked :class:`DistributedEngine`, mirroring every step in
a dense ``numpy`` min-plus model (``inf`` = absent).  After every step the
gathered matrix must equal the model exactly, and the machine's α-β ledger
must stay internally consistent.  This explores op *sequences* the
fixed-pipeline fuzzers never generate (e.g. redistribute between a filter
and a product), with the CheckedEngine differentially replaying every
product against the sequential kernel along the way.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import Bundle, RuleBasedStateMachine, invariant, rule

from repro.algebra import TROPICAL
from repro.check import CheckedEngine, check_ledger
from repro.check.strategies import grids
from repro.dist import DistributedEngine
from repro.machine import Machine

W = TROPICAL.add_monoid
TROP = TROPICAL.matmul_spec()

N = 8  # all matrices are N×N so every pair composes
P = 4


def _minplus(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.min(a[:, :, None] + b[None, :, :], axis=1)


class CheckedPipeline(RuleBasedStateMachine):
    mats = Bundle("mats")

    def __init__(self):
        super().__init__()
        self.machine = Machine(P)
        self.engine = CheckedEngine(DistributedEngine(self.machine), "full")

    @rule(target=mats, seed=st.integers(0, 10**6))
    def new_matrix(self, seed):
        rng = np.random.default_rng(seed)
        mask = rng.random((N, N)) < 0.3
        r, c = mask.nonzero()
        vals = rng.integers(1, 9, len(r)).astype(float)
        mat = self.engine.matrix(
            N, N, r.astype(np.int64), c.astype(np.int64), {"w": vals}, W
        )
        model = np.full((N, N), np.inf)
        model[r, c] = vals
        return mat, model

    @rule(target=mats, a=mats, b=mats)
    def multiply(self, a, b):
        out, ops = self.engine.spgemm(a[0], b[0], TROP)
        assert ops >= 0
        return out, _minplus(a[1], b[1])

    @rule(target=mats, a=mats, b=mats)
    def combine(self, a, b):
        return a[0].combine(b[0]), np.minimum(a[1], b[1])

    @rule(target=mats, a=mats, threshold=st.integers(1, 12))
    def filter_above(self, a, threshold):
        out = a[0].filter(lambda v: v["w"] > threshold)
        model = a[1].copy()
        model[model <= threshold] = np.inf
        return out, model

    @rule(target=mats, a=mats)
    def transpose(self, a):
        return a[0].transpose(), a[1].T.copy()

    @rule(target=mats, a=mats, grid=grids(p=P))
    def redistribute(self, a, grid):
        return a[0].redistribute(grid), a[1]

    @rule(a=mats)
    def gather_matches_model(self, a):
        gathered = self.engine.gather(a[0])
        assert np.array_equal(gathered.to_dense("w"), a[1])

    @invariant()
    def ledger_stays_consistent(self):
        assert check_ledger(self.machine) == []


TestCheckedPipeline = CheckedPipeline.TestCase
TestCheckedPipeline.settings = settings(
    max_examples=12, stateful_step_count=20, deadline=None
)
