"""The node-local generalized SpGEMM kernel against dense references."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algebra import MULTPATH, REAL_PLUS_TIMES, TROPICAL, MatMulSpec
from repro.algebra import bellman_ford_action
from repro.algebra.monoid import MinMonoid
from repro.sparse import SpMat, spgemm
from repro.sparse.spgemm import _chunk_bounds, count_ops

from repro.check.strategies import random_weight_spmat

W = MinMonoid()


def dense_tropical(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    out = np.full((a.shape[0], b.shape[1]), np.inf)
    for i in range(a.shape[0]):
        for kk in range(a.shape[1]):
            if np.isfinite(a[i, kk]):
                out[i] = np.minimum(out[i], a[i, kk] + b[kk])
    return out


class TestTropical:
    @pytest.mark.parametrize("shape", [(10, 12, 8), (1, 20, 20), (15, 1, 15)])
    def test_matches_dense(self, rng, shape):
        m, k, n = shape
        a = random_weight_spmat(rng, m, k, 0.3)
        b = random_weight_spmat(rng, k, n, 0.3)
        c = spgemm(a, b, TROPICAL.matmul_spec()).matrix
        ref = dense_tropical(a.to_dense("w"), b.to_dense("w"))
        got = c.to_dense("w")
        assert np.allclose(
            np.where(np.isfinite(ref), ref, -1), np.where(np.isfinite(got), got, -1)
        )

    def test_empty_a(self, rng):
        a = SpMat.empty(5, 6, W)
        b = random_weight_spmat(rng, 6, 7, 0.5)
        res = spgemm(a, b, TROPICAL.matmul_spec())
        assert res.matrix.nnz == 0 and res.ops == 0

    def test_empty_b(self, rng):
        a = random_weight_spmat(rng, 5, 6, 0.5)
        b = SpMat.empty(6, 7, W)
        res = spgemm(a, b, TROPICAL.matmul_spec())
        assert res.matrix.nnz == 0 and res.ops == 0

    def test_dimension_mismatch_raises(self, rng):
        a = random_weight_spmat(rng, 5, 6, 0.5)
        b = random_weight_spmat(rng, 7, 5, 0.5)
        with pytest.raises(ValueError, match="inner dimension"):
            spgemm(a, b, TROPICAL.matmul_spec())

    def test_no_overlap_zero_ops(self):
        # A's columns miss all of B's rows
        a = SpMat(2, 4, np.array([0]), np.array([0]), {"w": np.ones(1)}, W)
        b = SpMat(4, 2, np.array([3]), np.array([1]), {"w": np.ones(1)}, W)
        res = spgemm(a, b, TROPICAL.matmul_spec())
        assert res.ops == 0 and res.matrix.nnz == 0


class TestRealSemiring:
    def test_matches_scipy(self, rng):
        import scipy.sparse

        a = scipy.sparse.random(12, 9, density=0.3, random_state=5).tocoo()
        b = scipy.sparse.random(9, 11, density=0.3, random_state=6).tocoo()
        from repro.algebra.monoid import PlusMonoid

        plus = PlusMonoid()
        sa = SpMat(12, 9, a.row.astype(np.int64), a.col.astype(np.int64), {"w": a.data}, plus)
        sb = SpMat(9, 11, b.row.astype(np.int64), b.col.astype(np.int64), {"w": b.data}, plus)
        c = spgemm(sa, sb, REAL_PLUS_TIMES.matmul_spec()).matrix
        ref = (a.tocsr() @ b.tocsr()).toarray()
        assert np.allclose(c.to_dense("w", fill=0.0), ref, atol=1e-12)


class TestOpsCounting:
    def test_count_ops_matches_execution(self, rng):
        a = random_weight_spmat(rng, 10, 10, 0.3)
        b = random_weight_spmat(rng, 10, 10, 0.3)
        res = spgemm(a, b, TROPICAL.matmul_spec())
        assert res.ops == count_ops(a, b)

    def test_ops_formula_dense(self):
        # fully dense blocks: ops = m*k*n
        m, k, n = 4, 5, 6
        r, c = np.meshgrid(np.arange(m), np.arange(k), indexing="ij")
        a = SpMat(m, k, r.ravel(), c.ravel(), {"w": np.ones(m * k)}, W)
        r, c = np.meshgrid(np.arange(k), np.arange(n), indexing="ij")
        b = SpMat(k, n, r.ravel(), c.ravel(), {"w": np.ones(k * n)}, W)
        assert count_ops(a, b) == m * k * n


class TestChunking:
    @pytest.mark.parametrize("chunk", [1, 3, 17, 1 << 20])
    def test_chunked_equals_unchunked(self, rng, chunk):
        a = random_weight_spmat(rng, 14, 14, 0.3)
        b = random_weight_spmat(rng, 14, 14, 0.3)
        ref = spgemm(a, b, TROPICAL.matmul_spec())
        got = spgemm(a, b, TROPICAL.matmul_spec(), chunk=chunk)
        assert got.matrix.equals(ref.matrix) and got.ops == ref.ops

    def test_chunk_bounds_cover(self):
        counts = np.array([5, 0, 9, 2, 2, 100, 1])
        bounds = _chunk_bounds(counts, 10)
        covered = []
        for lo, hi in bounds:
            assert hi > lo
            covered.extend(range(lo, hi))
        assert covered == list(range(len(counts)))

    def test_chunk_invalid_raises(self):
        with pytest.raises(ValueError, match="positive"):
            _chunk_bounds(np.array([1]), 0)


class TestMultpathProduct:
    def test_multiplicity_counting(self):
        """Two equal-weight paths through different middles sum multiplicity."""
        # frontier at vertices 1 and 2 with weight 1, multiplicity 1 each
        f = SpMat(
            1,
            4,
            np.zeros(2, np.int64),
            np.array([1, 2]),
            MULTPATH.make([1.0, 1.0], [1.0, 1.0]),
            MULTPATH,
        )
        # edges 1->3 and 2->3 with weight 1
        a = SpMat(
            4, 4, np.array([1, 2]), np.array([3, 3]), {"w": np.ones(2)}, W
        )
        spec = MatMulSpec(MULTPATH, bellman_ford_action, "bf")
        out = spgemm(f, a, spec).matrix
        e = out.get(0, 3)
        assert e["w"] == 2.0 and e["m"] == 2.0

    def test_min_weight_wins_in_product(self):
        f = SpMat(
            1,
            3,
            np.zeros(2, np.int64),
            np.array([0, 1]),
            MULTPATH.make([0.0, 5.0], [1.0, 9.0]),
            MULTPATH,
        )
        a = SpMat(
            3, 3, np.array([0, 1]), np.array([2, 2]), {"w": np.array([4.0, 1.0])}, W
        )
        spec = MatMulSpec(MULTPATH, bellman_ford_action, "bf")
        out = spgemm(f, a, spec).matrix
        e = out.get(0, 2)
        # path via 0: 0+4=4 (m=1); via 1: 5+1=6 -> min is 4
        assert e["w"] == 4.0 and e["m"] == 1.0


@given(
    st.integers(2, 10),
    st.integers(2, 10),
    st.integers(2, 10),
    st.integers(0, 10_000),
)
def test_tropical_property(m, k, n, seed):
    rng = np.random.default_rng(seed)
    a = random_weight_spmat(rng, m, k, 0.4)
    b = random_weight_spmat(rng, k, n, 0.4)
    c = spgemm(a, b, TROPICAL.matmul_spec()).matrix
    ref = dense_tropical(a.to_dense("w"), b.to_dense("w"))
    got = c.to_dense("w")
    assert np.allclose(
        np.where(np.isfinite(ref), ref, -1), np.where(np.isfinite(got), got, -1)
    )
