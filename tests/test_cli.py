"""The command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.graphs import uniform_random_graph_nm, write_edgelist


@pytest.fixture
def graph_file(tmp_path):
    g = uniform_random_graph_nm(40, 4.0, seed=81)
    p = tmp_path / "g.txt"
    write_edgelist(g, p)
    # read_edgelist compacts ids, dropping isolated vertices
    from repro.graphs import read_edgelist

    return str(p), read_edgelist(p).n


class TestBC:
    def test_exact(self, graph_file, capsys):
        path, _ = graph_file
        assert main(["bc", path, "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "exact BC" in out
        assert len(out.strip().splitlines()) >= 4

    def test_sampled_with_output(self, graph_file, tmp_path, capsys):
        path, n = graph_file
        out_file = tmp_path / "scores.txt"
        assert (
            main(
                [
                    "bc",
                    path,
                    "--samples",
                    "8",
                    "--seed",
                    "1",
                    "-o",
                    str(out_file),
                ]
            )
            == 0
        )
        scores = np.loadtxt(out_file)
        assert len(scores) == n

    def test_normalized(self, graph_file, capsys):
        path, _ = graph_file
        assert main(["bc", path, "--normalized", "--top", "1"]) == 0

    def test_adaptive(self, graph_file, tmp_path, capsys):
        path, n = graph_file
        out_file = tmp_path / "scores.txt"
        assert (
            main(
                ["bc", path, "--epsilon", "0.3", "--delta", "0.2",
                 "--seed", "1", "-o", str(out_file)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "adaptive BC (ε=0.3, δ=0.2)" in out
        assert "converged" in out
        assert len(np.loadtxt(out_file)) == n

    def test_adaptive_checkpoint_resume(self, graph_file, tmp_path, capsys):
        path, _ = graph_file
        ck = str(tmp_path / "ad.ckpt.json")
        args = ["bc", path, "--epsilon", "0.3", "--delta", "0.2", "--seed",
                "1", "--checkpoint", ck]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0  # resumes from the converged checkpoint
        second = capsys.readouterr().out
        assert first.splitlines()[-3:] == second.splitlines()[-3:]

    def test_adaptive_excludes_samples(self, graph_file, capsys):
        path, _ = graph_file
        assert main(["bc", path, "--epsilon", "0.3", "--samples", "5"]) == 2
        assert "mutually exclusive" in capsys.readouterr().out


class TestGenerate:
    @pytest.mark.parametrize("family", ["rmat", "uniform"])
    def test_families(self, family, tmp_path, capsys):
        out = tmp_path / "g.txt"
        args = ["generate", family, "-o", str(out), "--seed", "3"]
        if family == "rmat":
            args += ["--scale", "7", "--degree", "4"]
        else:
            args += ["--n", "100", "--degree", "4"]
        assert main(args) == 0
        assert out.exists()

    def test_standin(self, tmp_path):
        out = tmp_path / "g.txt"
        # smallest stand-in at full recipe size is big; cit at default
        # is manageable for a generation-only test
        assert main(["generate", "cit", "-o", str(out)]) == 0
        assert out.stat().st_size > 0

    def test_weighted(self, tmp_path):
        out = tmp_path / "g.txt"
        assert (
            main(
                [
                    "generate",
                    "uniform",
                    "--n",
                    "50",
                    "--degree",
                    "4",
                    "--weights",
                    "1",
                    "10",
                    "-o",
                    str(out),
                ]
            )
            == 0
        )
        # third column present
        line = [
            l for l in out.read_text().splitlines() if not l.startswith("#")
        ][0]
        assert len(line.split()) == 3


class TestSimulateAndInfo:
    @pytest.mark.parametrize("policy", ["auto", "ca", "square2d"])
    def test_simulate_policies(self, graph_file, capsys, policy):
        path, _ = graph_file
        args = [
            "simulate",
            path,
            "--p",
            "4",
            "--batch",
            "10",
            "--policy",
            policy,
        ]
        if policy == "ca":
            args += ["--c", "1"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "critical words" in out

    def test_info(self, graph_file, capsys):
        path, n = graph_file
        assert main(["info", path]) == 0
        out = capsys.readouterr().out
        assert f"vertices  : {n}" in out


class TestTrace:
    def test_trace_writes_valid_chrome_trace(self, graph_file, tmp_path, capsys):
        import json

        from repro import obs

        path, _ = graph_file
        out = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        assert (
            main(
                [
                    "trace",
                    path,
                    "--p",
                    "4",
                    "--batch",
                    "10",
                    "-o",
                    str(out),
                    "--jsonl",
                    str(jsonl),
                ]
            )
            == 0
        )
        printed = capsys.readouterr().out
        assert "reconciliation" in printed
        assert "mfbc" in printed and "mfbf" in printed and "mfbr" in printed
        trace = json.loads(out.read_text())
        obs.validate_chrome_trace(trace)
        names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert {"mfbc", "batch", "spgemm"} <= names
        assert jsonl.exists()
        # tracing must be fully torn down after the command
        assert not obs.enabled()


class TestVerify:
    def test_verify_passes(self, graph_file, capsys):
        path, _ = graph_file
        assert main(["verify", path, "--samples", "5", "--p", "4"]) == 0
        out = capsys.readouterr().out
        assert "verification PASSED" in out
        assert out.count("PASS") >= 3

    def test_verify_weighted_skips_combblas(self, tmp_path, capsys):
        from repro.graphs import uniform_random_graph_nm, with_random_weights

        g = with_random_weights(
            uniform_random_graph_nm(30, 4.0, seed=7), 1, 5, seed=7
        )
        p = tmp_path / "gw.txt"
        write_edgelist(g, p)
        assert main(["verify", str(p), "--samples", "4", "--p", "1"]) == 0
        out = capsys.readouterr().out
        assert "CombBLAS" not in out
