"""Processor grids and factorization enumeration."""

import pytest

from repro.machine import Grid, Machine
from repro.machine.grid import factorizations


class TestGrid:
    def test_rank_coords_roundtrip(self):
        m = Machine(24)
        g = Grid(m, (2, 3, 4))
        for r in range(24):
            assert g.rank(g.coords(r)) == r

    def test_all_coords_rank_order(self):
        m = Machine(6)
        g = Grid(m, (2, 3))
        assert [g.rank(c) for c in g.all_coords()] == list(range(6))

    def test_dims_must_multiply_to_p(self):
        m = Machine(8)
        with pytest.raises(ValueError, match="cells"):
            Grid(m, (2, 3))

    def test_nonpositive_dims_raise(self):
        m = Machine(4)
        with pytest.raises(ValueError, match="positive"):
            Grid(m, (4, 0))

    def test_axis_ranks_fiber(self):
        m = Machine(12)
        g = Grid(m, (3, 4))
        col = g.axis_ranks(0, (2,))  # vary axis 0, col fixed at 2
        assert list(col) == [g.rank((i, 2)) for i in range(3)]
        row = g.axis_ranks(1, (1,))
        assert list(row) == [g.rank((1, j)) for j in range(4)]

    def test_axis_group_is_group(self):
        m = Machine(4)
        g = Grid(m, (2, 2))
        grp = g.axis_group(0, (1,))
        assert grp.size == 2

    def test_axis_validation(self):
        m = Machine(4)
        g = Grid(m, (2, 2))
        with pytest.raises(ValueError, match="axis"):
            g.axis_ranks(2, (0,))
        with pytest.raises(ValueError, match="fixed"):
            g.axis_ranks(0, ())

    def test_coords_validation(self):
        m = Machine(4)
        g = Grid(m, (2, 2))
        with pytest.raises(ValueError):
            g.rank((2, 0))
        with pytest.raises(ValueError):
            g.coords(10)


class TestFactorizations:
    def test_count_p8_3d(self):
        f = factorizations(8, 3)
        assert (2, 2, 2) in f and (1, 1, 8) in f and (8, 1, 1) in f
        for a, b, c in f:
            assert a * b * c == 8

    def test_prime(self):
        assert factorizations(7, 2) == [(1, 7), (7, 1)]

    def test_one_dim(self):
        assert factorizations(12, 1) == [(12,)]
