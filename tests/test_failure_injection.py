"""Failure injection: corrupted inputs, resource exhaustion, bad wiring.

A production library must fail loudly and early on the failure modes a
downstream user will actually hit; these tests assert the failure *paths*,
not just the happy paths.
"""

import numpy as np
import pytest

from repro.algebra.monoid import MinMonoid
from repro.algebra.multpath import MULTPATH
from repro.core import mfbc, mfbf, mfbr
from repro.dist import DistMat, DistributedEngine
from repro.graphs import Graph
from repro.machine import Machine, MemoryLimitExceeded
from repro.sparse import SpMat

W = MinMonoid()


class TestCorruptedInputs:
    def test_mfbr_with_corrupt_distances_terminates_gracefully(
        self, small_undirected
    ):
        """MFBr cannot stall on corrupt distances with positive weights: a
        "successor cycle" would need edge weights summing to zero, which the
        positivity invariant forbids.  Corrupt τ therefore yields graceful
        termination — the tie-based successor detection finds no valid
        back-propagation targets and the partial factors stay zero — rather
        than a hang or crash."""
        adj = small_undirected.adjacency()
        t = mfbf(adj, np.arange(4, dtype=np.int64))
        corrupt = t.map(lambda v: {"w": v["w"] * 0.37 + 1.0, "m": v["m"]})
        z = mfbr(adj, corrupt, max_iterations=small_undirected.n + 1)
        good = mfbr(adj, t)
        assert np.all(np.isfinite(z.vals["p"]))
        assert not np.allclose(
            z.to_dense("p").sum(), good.to_dense("p").sum()
        )

    def test_negative_weights_rejected_at_graph_construction(self):
        with pytest.raises(ValueError, match="positive"):
            Graph(3, np.array([0]), np.array([1]), np.array([-1.0]))

    def test_nan_weights_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            Graph(3, np.array([0]), np.array([1]), np.array([np.nan]))

    def test_spmat_monoid_schema_mismatch(self):
        a = SpMat(2, 2, np.array([0]), np.array([0]), {"w": np.ones(1)}, W)
        b = SpMat(
            2,
            2,
            np.array([0]),
            np.array([0]),
            MULTPATH.make([1.0], [1.0]),
            MULTPATH,
        )
        with pytest.raises(ValueError, match="monoid"):
            a.combine(b)

    def test_wrong_field_names_rejected(self):
        with pytest.raises(Exception):
            SpMat(2, 2, np.array([0]), np.array([0]), {"zzz": np.ones(1)}, W)


class TestResourceExhaustion:
    def test_machine_oom_during_distribution(self, small_undirected):
        machine = Machine(2, memory_words=10)
        machine.allocate(0, 5)
        with pytest.raises(MemoryLimitExceeded):
            machine.allocate(0, 100)

    def test_selector_oom_reports_sizes(self, small_undirected):
        machine = Machine(4, memory_words=2)
        eng = DistributedEngine(machine)
        with pytest.raises(MemoryLimitExceeded, match="memory budget"):
            mfbc(small_undirected, batch_size=8, max_batches=1, engine=eng)

    def test_mfbf_iteration_bound_is_a_backstop(self, small_undirected):
        # a bound below the diameter triggers the guard...
        with pytest.raises(RuntimeError):
            mfbf(
                small_undirected.adjacency(),
                np.array([0]),
                max_iterations=1,
            )
        # ...while the default bound never fires on a valid graph
        mfbf(small_undirected.adjacency(), np.array([0]))


class TestBadWiring:
    def test_distmat_elementwise_across_machines_fails(self, rng):
        from conftest import random_weight_spmat

        a = random_weight_spmat(rng, 8, 8, 0.5)
        m1, m2 = Machine(2), Machine(2)
        grid = np.arange(2).reshape(1, 2)
        d1 = DistMat.distribute(a, m1, grid)
        d2 = DistMat.distribute(a, m2, np.arange(2).reshape(2, 1))
        with pytest.raises(ValueError, match="different machines"):
            d1.combine(d2)

    def test_plan_machine_size_mismatch(self, rng):
        from conftest import random_weight_spmat
        from repro.algebra import TROPICAL
        from repro.spgemm import Plan, execute_plan

        a = random_weight_spmat(rng, 8, 8, 0.5)
        machine = Machine(4)
        grid = np.arange(4).reshape(2, 2)
        da = DistMat.distribute(a, machine, grid)
        with pytest.raises(ValueError, match="cover"):
            execute_plan(
                Plan(2, 1, 1, "A", "AB"), da, da, TROPICAL.matmul_spec(), grid
            )

    def test_engine_mixing_detected_via_distribution(self, small_undirected):
        """A matrix built on one engine cannot silently flow into another
        machine's products — the co-distribution check trips."""
        eng1 = DistributedEngine(Machine(4))
        eng2 = DistributedEngine(Machine(2))
        adj1 = eng1.adjacency(small_undirected)
        adj2 = eng2.adjacency(small_undirected)
        with pytest.raises(ValueError):
            adj1.combine(adj2)


class TestCollectiveWiring:
    """Group collectives reject malformed participation before moving data."""

    def _group(self, q=4):
        from repro.machine import Group

        return Group(Machine(q), np.arange(q))

    def test_empty_group_rejected(self):
        from repro.machine import Group

        with pytest.raises(ValueError, match="empty group"):
            Group(Machine(4), np.array([], dtype=np.int64))

    def test_duplicate_ranks_rejected(self):
        from repro.machine import Group

        with pytest.raises(ValueError, match="distinct"):
            Group(Machine(4), np.array([0, 1, 1]))

    def test_out_of_range_ranks_rejected(self):
        from repro.machine import Group

        with pytest.raises(ValueError, match="out of range"):
            Group(Machine(4), np.array([0, 4]))
        with pytest.raises(ValueError, match="out of range"):
            Group(Machine(4), np.array([-1, 0]))

    def test_scatter_payload_count_mismatch(self):
        g = self._group(4)
        with pytest.raises(ValueError, match="expected 4 payloads"):
            g.scatter([np.ones(2)] * 3)

    def test_gather_payload_count_mismatch(self):
        g = self._group(4)
        with pytest.raises(ValueError, match="expected 4 payloads"):
            g.gather([np.ones(2)] * 5)

    @pytest.mark.parametrize("root", [-1, 4, 17])
    def test_out_of_range_root_rejected_everywhere(self, root):
        g = self._group(4)
        payloads = [np.ones(2)] * 4
        with pytest.raises(ValueError, match="root index"):
            g.bcast(payloads, root=root)
        with pytest.raises(ValueError, match="root index"):
            g.reduce(payloads, np.add, root=root)
        with pytest.raises(ValueError, match="root index"):
            g.sparse_reduce(payloads, np.add, root=root)
        with pytest.raises(ValueError, match="root index"):
            g.scatter(payloads, root=root)
        with pytest.raises(ValueError, match="root index"):
            g.gather(payloads, root=root)

    def test_schema_mismatched_payload_rejected_by_sizing(self):
        """Unsizeable payload types fail loudly in payload_words, so a
        schema mismatch cannot silently be charged as zero words."""
        g = self._group(2)
        with pytest.raises(TypeError, match="cannot size payload"):
            g.bcast([object(), None])


class TestAdaptiveSamplerFaults:
    """The adaptive (ε, δ) sampler under injected faults: probabilistic
    crashes are absorbed without double-counting a batch, and a blown
    deadline is terminal through the same ladder as mfbc."""

    KW = dict(epsilon=0.25, delta=0.2, seed=0, batch_size=8)

    def test_probabilistic_crashes_keep_bound_intact(self):
        from repro.core.approx import adaptive_bc
        from repro.graphs import uniform_random_graph_nm

        g = uniform_random_graph_nm(40, 4.0, seed=1)
        quiet = Machine(6, faults="off", elastic="off")
        ref = adaptive_bc(g, engine=DistributedEngine(quiet), **self.KW)
        m = Machine(6, faults="seed:5,crash:0.02,limit:2", elastic="replica")
        res = adaptive_bc(g, engine=DistributedEngine(m), **self.KW)
        assert m.faults.injected == 2
        assert [(r.p_before, r.p_after) for r in m.recoveries] == [(6, 5), (5, 4)]
        # bound intact and no batch folded twice: bit-identical, sample
        # for sample, to the fault-free run
        assert res.converged and res.width <= res.epsilon
        assert np.array_equal(res.scores, ref.scores)
        assert res.samples_used == ref.samples_used

    def test_deadline_is_terminal_in_adaptive(self):
        from repro.core.approx import adaptive_bc
        from repro.faults import DeadlineExceeded
        from repro.graphs import uniform_random_graph_nm

        g = uniform_random_graph_nm(40, 4.0, seed=1)
        m = Machine(4, deadline=1e-4, faults="seed:0", elastic="replica")
        with pytest.raises(DeadlineExceeded):
            adaptive_bc(g, engine=DistributedEngine(m), retries=3, **self.KW)
        actions = [(e.kind, e.action, e.site) for e in m.faults.events]
        assert ("batch", "abandoned", "adaptive_bc") in actions
        assert m.recoveries == []
