"""Distributed tensor contraction == local contraction, with charged traffic."""

import pytest

from repro.algebra import REAL_PLUS_TIMES, TROPICAL
from repro.dist import DistributedEngine
from repro.machine import Machine
from repro.tensor import contract
from repro.tensor.dist import DistTensor, contract_distributed

from test_tensor import random_tensor

SPEC = REAL_PLUS_TIMES.matmul_spec()


@pytest.fixture(params=[2, 4, 6])
def engine(request):
    return DistributedEngine(Machine(request.param))


class TestDistTensorBasics:
    def test_distribute_gather_roundtrip(self, rng, engine):
        t = random_tensor(rng, (4, 5, 6), 0.2)
        d = DistTensor.distribute(t, engine)
        assert d.nnz == t.nnz
        assert d.gather(charge=False).equals(t)

    def test_alternative_unfolding_roundtrip(self, rng, engine):
        t = random_tensor(rng, (4, 5, 6), 0.2)
        d = DistTensor.distribute(t, engine, row_modes=(2, 0))
        assert d.gather(charge=False).equals(t)

    def test_reunfold_preserves_content_and_charges(self, rng, engine):
        t = random_tensor(rng, (4, 5, 6), 0.3)
        d = DistTensor.distribute(t, engine)
        w0 = engine.machine.ledger.total_words
        r = d.reunfold((1,))
        assert r.gather(charge=False).equals(t)
        if engine.machine.p > 1:
            assert engine.machine.ledger.total_words > w0

    def test_reunfold_same_layout_noop(self, rng, engine):
        t = random_tensor(rng, (4, 5), 0.3)
        d = DistTensor.distribute(t, engine)
        assert d.reunfold((0,)) is d

    def test_invalid_mode_partition(self, rng, engine):
        t = random_tensor(rng, (4, 5), 0.3)
        d = DistTensor.distribute(t, engine)
        with pytest.raises(ValueError, match="partition"):
            DistTensor(d.distmat, (4, 5), (0,), (0,))


class TestDistributedContraction:
    def test_matrix_matrix(self, rng, engine):
        a = random_tensor(rng, (5, 6), 0.4)
        b = random_tensor(rng, (6, 7), 0.4)
        da = DistTensor.distribute(a, engine)
        db = DistTensor.distribute(b, engine)
        c = contract_distributed(da, "ik", db, "kj", "ij", SPEC, engine)
        ref = contract(a, "ik", b, "kj", "ij", SPEC)
        assert c.gather(charge=False).equals(ref)

    def test_order3_times_matrix(self, rng, engine):
        a = random_tensor(rng, (3, 4, 5), 0.25)
        b = random_tensor(rng, (5, 6), 0.4)
        da = DistTensor.distribute(a, engine)
        db = DistTensor.distribute(b, engine)
        c = contract_distributed(da, "ijk", db, "kl", "ijl", SPEC, engine)
        ref = contract(a, "ijk", b, "kl", "ijl", SPEC)
        assert c.gather(charge=False).equals(ref)

    def test_middle_mode_contraction(self, rng, engine):
        a = random_tensor(rng, (3, 4, 5), 0.25)
        b = random_tensor(rng, (4, 6), 0.4)
        da = DistTensor.distribute(a, engine)
        db = DistTensor.distribute(b, engine)
        c = contract_distributed(da, "ijk", db, "jl", "ikl", SPEC, engine)
        ref = contract(a, "ijk", b, "jl", "ikl", SPEC)
        assert c.gather(charge=False).equals(ref)

    def test_permuted_output(self, rng, engine):
        a = random_tensor(rng, (3, 4, 5), 0.25)
        b = random_tensor(rng, (5, 6), 0.4)
        da = DistTensor.distribute(a, engine)
        db = DistTensor.distribute(b, engine)
        c = contract_distributed(da, "ijk", db, "kl", "lji", SPEC, engine)
        ref = contract(a, "ijk", b, "kl", "lji", SPEC)
        assert c.gather(charge=False).equals(ref)

    def test_vector_contraction(self, rng, engine):
        a = random_tensor(rng, (4,), 0.7)
        t = random_tensor(rng, (4, 3, 5), 0.3)
        da = DistTensor.distribute(a, engine)
        dt = DistTensor.distribute(t, engine)
        c = contract_distributed(da, "i", dt, "ijk", "jk", SPEC, engine)
        ref = contract(a, "i", t, "ijk", "jk", SPEC)
        assert c.gather(charge=False).equals(ref)

    def test_tropical_distributed(self, rng, engine):
        a = random_tensor(rng, (5, 6), 0.4, monoid=TROPICAL.add_monoid)
        b = random_tensor(rng, (6, 5), 0.4, monoid=TROPICAL.add_monoid)
        da = DistTensor.distribute(a, engine)
        db = DistTensor.distribute(b, engine)
        c = contract_distributed(
            da, "ik", db, "kj", "ij", TROPICAL.matmul_spec(), engine
        )
        ref = contract(a, "ik", b, "kj", "ij", TROPICAL.matmul_spec())
        assert c.gather(charge=False).equals(ref)

    def test_traffic_charged(self, rng):
        engine = DistributedEngine(Machine(4))
        a = random_tensor(rng, (6, 7, 4), 0.3)
        b = random_tensor(rng, (7, 5), 0.5)
        da = DistTensor.distribute(a, engine)
        db = DistTensor.distribute(b, engine)
        contract_distributed(da, "ijk", db, "jl", "ikl", SPEC, engine)
        snap = engine.machine.ledger.snapshot()
        assert snap["words"] > 0 and snap["msgs"] > 0
        assert "redistribute" in engine.machine.ledger.traffic_breakdown()
