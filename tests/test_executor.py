"""The rank-parallel local-execution backends and the keyword-only API audit.

Covers executor resolution (instances, ``name[:N]`` strings, the
``REPRO_EXECUTOR`` environment fallback), the cost-aware dispatch gate,
result ordering, shared-memory SpMat transport for the process backend,
the per-rank skew report, the deprecation shims for the pre-audit
positional constructors, and the runtime-checkable :class:`Engine`
protocol.  Cross-backend *equivalence* over randomized inputs lives in
``test_cross_engine_fuzz.py``.
"""

import numpy as np
import pytest

from repro.core.engine import Engine, SequentialEngine
from repro.dist import DistMat, DistributedEngine
from repro.machine import CostParams, Machine
from repro.machine.executor import (
    EXECUTOR_ENV,
    LocalExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    _export_spmat,
    _import_spmat,
    _release,
    available_backends,
    executor_skew_report,
    resolve_executor,
)
from repro.obs import api as obs
from repro.sparse import SpMat
from repro.sparse.spgemm import spgemm
from repro.spgemm.selector import PinnedPolicy

from conftest import WEIGHT, random_weight_spmat

from repro.algebra import TROPICAL

SPEC = TROPICAL.matmul_spec()


def pairs_for(rng, n_pairs, m=18, density=0.3):
    return [
        (
            random_weight_spmat(rng, m, m, density),
            random_weight_spmat(rng, m, m, density),
        )
        for _ in range(n_pairs)
    ]


# ---------------------------------------------------------------------------
# resolution
# ---------------------------------------------------------------------------


class TestResolveExecutor:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(EXECUTOR_ENV, raising=False)
        ex = resolve_executor(None)
        assert isinstance(ex, SerialExecutor)
        assert ex.name == "serial"

    def test_name_with_workers(self):
        ex = resolve_executor("thread:3")
        assert isinstance(ex, ThreadExecutor)
        assert ex.workers == 3
        ex.close()

    def test_name_without_workers_uses_host_default(self):
        ex = resolve_executor("thread")
        assert ex.workers >= 1
        ex.close()

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "thread:2")
        ex = resolve_executor(None)
        assert isinstance(ex, ThreadExecutor)
        assert ex.workers == 2
        ex.close()

    def test_explicit_spec_beats_env(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "thread:2")
        assert isinstance(resolve_executor("serial"), SerialExecutor)

    def test_instance_passthrough(self):
        ex = SerialExecutor()
        assert resolve_executor(ex) is ex

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor("gpu")

    def test_nonpositive_workers_raises(self):
        with pytest.raises(ValueError, match="positive"):
            resolve_executor("thread:0")

    def test_non_string_raises(self):
        with pytest.raises(TypeError):
            resolve_executor(42)

    def test_available_backends(self):
        assert set(available_backends()) == {"serial", "thread", "process"}

    def test_machine_threads_executor_through(self):
        m = Machine(4, executor="thread:2")
        assert m.executor.name == "thread"
        assert m.executor.workers == 2
        assert "executor=thread" in repr(m)
        m.executor.close()

    def test_machine_env_executor(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "thread:2")
        m = Machine(2)
        assert m.executor.name == "thread"
        m.executor.close()


# ---------------------------------------------------------------------------
# dispatch gate
# ---------------------------------------------------------------------------


class TestDispatchGate:
    def test_serial_never_fans_out(self):
        assert not SerialExecutor().should_fanout(64, 1e12)

    def test_small_work_runs_inline(self):
        ex = ThreadExecutor(2)
        assert not ex.should_fanout(8, ex.fanout_min_work - 1)
        assert ex.should_fanout(8, ex.fanout_min_work)
        ex.close()

    def test_single_task_runs_inline(self):
        ex = ThreadExecutor(2, fanout_min_work=0)
        assert not ex.should_fanout(1, 1e12)
        ex.close()

    def test_inline_and_fanout_counters(self, rng):
        with ThreadExecutor(2, fanout_min_work=0) as ex, obs.use() as session:
            ex.run_tasks([lambda: 1, lambda: 2], site="t", est_work=10.0)
            big = ThreadExecutor(2)  # default floor: same batch stays inline
            big.run_tasks([lambda: 1, lambda: 2], site="t", est_work=10.0)
            big.close()
        m = session.metrics
        assert m.get_count("executor.batches", backend="thread", site="t", mode="fanout") == 1
        assert m.get_count("executor.batches", backend="thread", site="t", mode="inline") == 1
        assert m.get_count("executor.tasks", backend="thread", site="t", mode="fanout") == 2

    def test_fanout_records_rank_histograms_and_utilization(self, rng):
        pairs = pairs_for(rng, 3)
        with ThreadExecutor(2, fanout_min_work=0) as ex, obs.use() as session:
            ex.run_spgemm(pairs, SPEC, site="spgemm", ranks=[5, 9, 13])
        hists = session.metrics.series("executor.rank_wall_seconds")
        ranks = {int(dict(k)["rank"]) for k in hists}
        assert ranks == {5, 9, 13}
        util = session.metrics.get_gauge(
            "executor.utilization", backend="thread", site="spgemm"
        )
        assert util is not None and util > 0


# ---------------------------------------------------------------------------
# execution semantics
# ---------------------------------------------------------------------------


class TestThreadExecutor:
    def test_run_tasks_preserves_submission_order(self):
        with ThreadExecutor(4, fanout_min_work=0) as ex:
            out = ex.run_tasks(
                [lambda i=i: i * i for i in range(16)],
                site="t",
                est_work=1e9,
            )
        assert out == [i * i for i in range(16)]

    def test_run_spgemm_matches_serial_kernel(self, rng):
        pairs = pairs_for(rng, 5)
        ref = [spgemm(x, y, SPEC) for x, y in pairs]
        with ThreadExecutor(2, fanout_min_work=0) as ex:
            out = ex.run_spgemm(pairs, SPEC)
        for got, want in zip(out, ref):
            assert got.matrix.equals(want.matrix)
            assert got.ops == want.ops

    def test_close_is_idempotent(self):
        ex = ThreadExecutor(2, fanout_min_work=0)
        ex.run_tasks([lambda: 1, lambda: 2], site="t", est_work=1e9)
        ex.close()
        ex.close()
        # pool is lazily recreated after close
        assert ex.run_tasks([lambda: 3, lambda: 4], site="t", est_work=1e9) == [3, 4]
        ex.close()


class TestProcessExecutor:
    def test_closures_fall_back_inline(self):
        with ProcessExecutor(2, fanout_min_work=0) as ex:
            out = ex.run_tasks(
                [lambda: "a", lambda: "b"], site="t", est_work=1e12
            )
        assert out == ["a", "b"]

    def test_run_spgemm_matches_serial_kernel(self, rng):
        pairs = pairs_for(rng, 3)
        # repeated operand exercises the export-once dedupe path
        pairs.append((pairs[0][0], pairs[1][1]))
        ref = [spgemm(x, y, SPEC) for x, y in pairs]
        with ProcessExecutor(2, fanout_min_work=0) as ex:
            out = ex.run_spgemm(pairs, SPEC)
        for got, want in zip(out, ref):
            assert got.matrix.equals(want.matrix)
            assert got.ops == want.ops


class TestSharedMemoryTransport:
    def test_roundtrip(self, rng):
        mat = random_weight_spmat(rng, 12, 9, 0.4)
        manifest, shm = _export_spmat(mat)
        try:
            back, back_shm = _import_spmat(manifest, copy=True)
            _release(back_shm, unlink=False)
            assert back.equals(mat)
        finally:
            _release(shm, unlink=True)

    def test_empty_matrix_needs_no_segment(self):
        empty = SpMat(
            4,
            4,
            np.array([], dtype=np.int64),
            np.array([], dtype=np.int64),
            {"w": np.array([], dtype=np.float64)},
            WEIGHT,
        )
        manifest, shm = _export_spmat(empty)
        assert manifest["segment"] is None and shm is None
        back, back_shm = _import_spmat(manifest, copy=True)
        assert back_shm is None
        assert back.nnz == 0 and back.nrows == 4 and back.ncols == 4


# ---------------------------------------------------------------------------
# skew report
# ---------------------------------------------------------------------------


class TestSkewReport:
    def test_empty_metrics(self):
        from repro.obs.metrics import Metrics

        out = executor_skew_report(Metrics(), Machine(2))
        assert "no fanned-out batches" in out

    def test_renders_per_rank_rows(self, rng):
        machine = Machine(4, executor=ThreadExecutor(2, fanout_min_work=0))
        pairs = pairs_for(rng, 4)
        with obs.use() as session:
            res = machine.executor.run_spgemm(pairs, SPEC, ranks=[0, 1, 2, 3])
            for rank, r in enumerate(res):
                machine.charge_compute([rank], float(max(r.ops, 1)))
        report = executor_skew_report(session.metrics, machine)
        assert "rank" in report and "skew" in report
        # one header + one title + one row per rank
        assert len(report.splitlines()) == 2 + 4
        machine.executor.close()


# ---------------------------------------------------------------------------
# keyword-only audit: signatures + Engine protocol
# ---------------------------------------------------------------------------


class TestKeywordOnlySignatures:
    """The PR-2 deprecation period is over: positional extras now raise."""

    def test_machine_rejects_positional_cost(self):
        with pytest.raises(TypeError):
            Machine(4, CostParams())

    def test_engine_rejects_positional_policy(self):
        with pytest.raises(TypeError):
            DistributedEngine(Machine(4), PinnedPolicy.ca_mfbc(4, 1))

    def test_distribute_rejects_positional_splits(self, rng):
        machine = Machine(4)
        mat = random_weight_spmat(rng, 10, 10, 0.3)
        ranks2d = np.arange(4).reshape(2, 2)
        with pytest.raises(TypeError):
            DistMat.distribute(
                mat, machine, ranks2d, np.array([0, 5, 10]), np.array([0, 5, 10])
            )

    def test_keyword_calls_work(self, rng):
        machine = Machine(4, cost=CostParams(), memory_words=None)
        eng = DistributedEngine(machine, policy=None)
        assert eng.machine is machine
        DistMat.distribute(
            random_weight_spmat(rng, 8, 8, 0.3),
            machine,
            np.arange(4).reshape(2, 2),
        )


class TestEngineProtocol:
    def test_runtime_checks(self):
        assert isinstance(SequentialEngine(), Engine)
        assert isinstance(DistributedEngine(Machine(2)), Engine)

    def test_sequential_register_invariant_is_noop(self, rng):
        eng = SequentialEngine()
        mat = random_weight_spmat(rng, 5, 5, 0.5)
        assert eng.register_invariant(mat) is None

    def test_exported_from_top_level(self):
        import repro

        for name in (
            "Engine",
            "LocalExecutor",
            "SerialExecutor",
            "ThreadExecutor",
            "ProcessExecutor",
            "resolve_executor",
        ):
            assert name in repro.__all__
            assert hasattr(repro, name)


class TestExecutorIsALocalExecutor:
    def test_all_backends_instantiate(self):
        for name in available_backends():
            ex = resolve_executor(f"{name}:1")
            assert isinstance(ex, LocalExecutor)
            ex.close()
