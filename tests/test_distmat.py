"""DistMat: distribution, gather, redistribution, elementwise parity."""

import numpy as np
import pytest

from repro.algebra.monoid import MinMonoid
from repro.dist import DistMat, even_splits
from repro.machine.grid import near_square_shape
from repro.machine import Machine

from conftest import random_weight_spmat

W = MinMonoid()


def home_grid(p):
    pr, pc = near_square_shape(p)
    return np.arange(p).reshape(pr, pc)


class TestEvenSplits:
    def test_boundaries(self):
        s = even_splits(10, 4)
        assert s[0] == 0 and s[-1] == 10 and len(s) == 5
        assert np.all(np.diff(s) >= 0)

    def test_more_parts_than_items(self):
        s = even_splits(2, 5)
        assert s[0] == 0 and s[-1] == 2 and len(s) == 6

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            even_splits(10, 0)


class TestDistributeGather:
    @pytest.mark.parametrize("p", [1, 2, 4, 6, 9])
    def test_roundtrip(self, rng, p):
        mat = random_weight_spmat(rng, 23, 17, 0.3)
        machine = Machine(p)
        d = DistMat.distribute(mat, machine, home_grid(p))
        assert d.nnz == mat.nnz
        assert d.gather(charge=False).equals(mat)

    def test_distribution_charges(self, rng):
        mat = random_weight_spmat(rng, 20, 20, 0.3)
        machine = Machine(4)
        DistMat.distribute(mat, machine, home_grid(4))
        assert machine.ledger.critical_words() >= mat.words()

    def test_block_shapes_validated(self, rng):
        mat = random_weight_spmat(rng, 10, 10, 0.3)
        machine = Machine(4)
        d = DistMat.distribute(mat, machine, home_grid(4))
        wrong = d.blocks[0][0].block(0, 2, 0, 2)  # too small for its slot
        with pytest.raises(ValueError, match="shape"):
            DistMat(
                machine,
                d.ranks2d,
                d.row_splits,
                d.col_splits,
                [[wrong, d.blocks[0][1]], d.blocks[1]],
                W,
            )

    def test_empty_like(self, rng):
        mat = random_weight_spmat(rng, 10, 10, 0.3)
        machine = Machine(4)
        d = DistMat.distribute(mat, machine, home_grid(4))
        e = DistMat.empty_like(d)
        assert e.nnz == 0 and e.same_distribution(d)

    def test_memory_accounting(self, rng):
        mat = random_weight_spmat(rng, 20, 20, 0.5)
        machine = Machine(4)
        d = DistMat.distribute(mat, machine, home_grid(4))
        per_rank = d.memory_words_per_rank()
        assert sum(per_rank.values()) == d.words()


class TestRedistribute:
    @pytest.mark.parametrize("p", [2, 4, 6])
    def test_preserves_content(self, rng, p):
        mat = random_weight_spmat(rng, 19, 21, 0.3)
        machine = Machine(p)
        d = DistMat.distribute(mat, machine, home_grid(p))
        r = d.redistribute(np.arange(p).reshape(p, 1))
        assert r.gather(charge=False).equals(mat)
        r2 = r.redistribute(np.arange(p).reshape(1, p))
        assert r2.gather(charge=False).equals(mat)

    def test_to_subgrid(self, rng):
        mat = random_weight_spmat(rng, 12, 12, 0.4)
        machine = Machine(8)
        d = DistMat.distribute(mat, machine, home_grid(8))
        sub = np.array([[4, 5], [6, 7]])
        r = d.redistribute(sub)
        assert r.gather(charge=False).equals(mat)
        owners = set(r.ranks2d.ravel().tolist())
        assert owners == {4, 5, 6, 7}

    def test_charges_alltoall(self, rng):
        mat = random_weight_spmat(rng, 16, 16, 0.5)
        machine = Machine(4)
        d = DistMat.distribute(mat, machine, home_grid(4), charge=False)
        w0 = machine.ledger.critical_words()
        d.redistribute(np.arange(4).reshape(4, 1))
        assert machine.ledger.critical_words() > w0

    def test_custom_splits(self, rng):
        mat = random_weight_spmat(rng, 10, 10, 0.5)
        machine = Machine(2)
        d = DistMat.distribute(mat, machine, np.array([[0, 1]]))
        r = d.redistribute(
            np.array([[0], [1]]),
            row_splits=np.array([0, 3, 10]),
            col_splits=np.array([0, 10]),
        )
        assert r.gather(charge=False).equals(mat)


class TestElementwiseParity:
    """DistMat blockwise ops must equal the same SpMat ops."""

    @pytest.fixture
    def pair(self, rng):
        a = random_weight_spmat(rng, 15, 15, 0.3)
        b = random_weight_spmat(rng, 15, 15, 0.3)
        machine = Machine(4)
        da = DistMat.distribute(a, machine, home_grid(4))
        db = DistMat.distribute(b, machine, home_grid(4))
        return a, b, da, db

    def test_combine(self, pair):
        a, b, da, db = pair
        assert da.combine(db).gather(charge=False).equals(a.combine(b))

    def test_filter(self, pair):
        a, _, da, _ = pair
        pred = lambda v: v["w"] > 10
        assert da.filter(pred).gather(charge=False).equals(a.filter(pred))

    def test_map(self, pair):
        a, _, da, _ = pair
        fn = lambda v: {"w": v["w"] * 2}
        assert da.map(fn).gather(charge=False).equals(a.map(fn))

    def test_zip_filter(self, pair):
        a, b, da, db = pair
        pred = lambda av, bv: av["w"] <= bv["w"]
        assert da.zip_filter(db, pred).gather(charge=False).equals(
            a.zip_filter(b, pred)
        )

    def test_zip_map(self, pair):
        a, b, da, db = pair
        fn = lambda av, bv: {"w": np.minimum(av["w"], bv["w"])}
        assert da.zip_map(db, fn).gather(charge=False).equals(a.zip_map(b, fn))

    def test_mismatched_layouts_auto_align(self, pair):
        """Operands on different layouts of the same machine are aligned
        automatically (charged), like CTF's distribution-oblivious ops."""
        a, b, da, db = pair
        moved = db.redistribute(np.arange(4).reshape(4, 1))
        w0 = da.machine.ledger.total_words
        out = da.combine(moved)
        assert out.gather(charge=False).equals(a.combine(b))
        assert da.machine.ledger.total_words > w0  # re-alignment was charged


class TestTranspose:
    def test_content(self, rng):
        a = random_weight_spmat(rng, 9, 13, 0.4)
        machine = Machine(4)
        da = DistMat.distribute(a, machine, home_grid(4))
        assert da.transpose().gather(charge=False).equals(a.transpose())

    def test_memoized_identity(self, rng):
        a = random_weight_spmat(rng, 9, 9, 0.4)
        machine = Machine(4)
        da = DistMat.distribute(a, machine, home_grid(4))
        t1 = da.transpose()
        t2 = da.transpose()
        assert t1 is t2
        assert t1.transpose() is da


class TestExtractRanges:
    def test_col_range(self, rng):
        a = random_weight_spmat(rng, 10, 20, 0.4)
        machine = Machine(4)
        da = DistMat.distribute(a, machine, home_grid(4))
        sub = da.extract_col_range(5, 13)
        assert sub.gather(charge=False).equals(a.block(0, 10, 5, 13))

    def test_row_range(self, rng):
        a = random_weight_spmat(rng, 20, 10, 0.4)
        machine = Machine(4)
        da = DistMat.distribute(a, machine, home_grid(4))
        sub = da.extract_row_range(3, 18)
        assert sub.gather(charge=False).equals(a.block(3, 18, 0, 10))

    def test_empty_range(self, rng):
        a = random_weight_spmat(rng, 10, 10, 0.4)
        machine = Machine(2)
        da = DistMat.distribute(a, machine, np.array([[0, 1]]))
        sub = da.extract_col_range(4, 4)
        assert sub.ncols == 0 and sub.nnz == 0

    def test_bad_range_raises(self, rng):
        a = random_weight_spmat(rng, 10, 10, 0.4)
        machine = Machine(2)
        da = DistMat.distribute(a, machine, np.array([[0, 1]]))
        with pytest.raises(ValueError):
            da.extract_col_range(5, 20)
        with pytest.raises(ValueError):
            da.extract_row_range(-1, 5)
