"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algebra.monoid import MinMonoid
from repro.graphs import (
    Graph,
    uniform_random_graph_nm,
    with_random_weights,
)
from repro.sparse import SpMat

WEIGHT = MinMonoid()


def random_weight_spmat(
    rng: np.random.Generator, m: int, n: int, density: float
) -> SpMat:
    """A random single-field (tropical weight) sparse matrix."""
    mask = rng.random((m, n)) < density
    r, c = mask.nonzero()
    vals = rng.integers(1, 20, len(r)).astype(np.float64)
    return SpMat(m, n, r, c, {"w": vals}, WEIGHT)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_undirected() -> Graph:
    return uniform_random_graph_nm(40, 4.0, seed=1)


@pytest.fixture
def small_directed() -> Graph:
    return uniform_random_graph_nm(40, 4.0, directed=True, seed=2)


@pytest.fixture
def small_weighted() -> Graph:
    g = uniform_random_graph_nm(40, 4.0, seed=3)
    return with_random_weights(g, 1, 10, seed=3)


@pytest.fixture
def small_weighted_directed() -> Graph:
    g = uniform_random_graph_nm(40, 4.0, directed=True, seed=4)
    return with_random_weights(g, 1, 10, seed=4)


@pytest.fixture
def path_graph() -> Graph:
    """0 - 1 - 2 - 3 - 4: every interior vertex has a known BC."""
    src = np.array([0, 1, 2, 3])
    dst = np.array([1, 2, 3, 4])
    return Graph(5, src, dst)


@pytest.fixture
def diamond_graph() -> Graph:
    """0 - {1, 2} - 3: two equal shortest paths, σ̄(0,3) = 2."""
    src = np.array([0, 0, 1, 2])
    dst = np.array([1, 2, 3, 3])
    return Graph(4, src, dst)


def nx_reference_bc(graph: Graph) -> np.ndarray:
    """Ordered-pair betweenness centrality via networkx (the oracle)."""
    import networkx as nx

    ref = nx.betweenness_centrality(
        graph.to_networkx(),
        normalized=False,
        weight="weight" if graph.weighted else None,
    )
    scores = np.array([ref[i] for i in range(graph.n)])
    return scores if graph.directed else 2.0 * scores
