"""Shared fixtures and helpers for the test suite.

Hypothesis settings are consolidated here into named profiles (the
per-file ``@settings`` decorators are gone — see docs/testing.md):

* ``ci`` (default) — ``deadline=None`` (CI machines stall unpredictably),
  ``derandomize=True`` (a red CI run must be reproducible), 50 examples;
* ``dev`` — randomized exploration for local bug-hunting, 50 examples;
* ``thorough`` — randomized, 300 examples, for occasional deep sweeps.

Select with ``HYPOTHESIS_PROFILE=dev pytest ...``.  Individual tests may
still override ``max_examples`` where an example is unusually expensive
(never the deadline or derandomization).
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.check.strategies import WEIGHT_MONOID, random_weight_spmat
from repro.graphs import Graph, uniform_random_graph_nm, with_random_weights

settings.register_profile("ci", deadline=None, derandomize=True, max_examples=50)
settings.register_profile("dev", deadline=None, max_examples=50)
settings.register_profile("thorough", deadline=None, max_examples=300)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))

#: re-exported so existing ``from conftest import ...`` users keep working;
#: the canonical home is :mod:`repro.check.strategies`.
WEIGHT = WEIGHT_MONOID

__all__ = ["WEIGHT", "random_weight_spmat"]


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_undirected() -> Graph:
    return uniform_random_graph_nm(40, 4.0, seed=1)


@pytest.fixture
def small_directed() -> Graph:
    return uniform_random_graph_nm(40, 4.0, directed=True, seed=2)


@pytest.fixture
def small_weighted() -> Graph:
    g = uniform_random_graph_nm(40, 4.0, seed=3)
    return with_random_weights(g, 1, 10, seed=3)


@pytest.fixture
def small_weighted_directed() -> Graph:
    g = uniform_random_graph_nm(40, 4.0, directed=True, seed=4)
    return with_random_weights(g, 1, 10, seed=4)


@pytest.fixture
def path_graph() -> Graph:
    """0 - 1 - 2 - 3 - 4: every interior vertex has a known BC."""
    src = np.array([0, 1, 2, 3])
    dst = np.array([1, 2, 3, 4])
    return Graph(5, src, dst)


@pytest.fixture
def diamond_graph() -> Graph:
    """0 - {1, 2} - 3: two equal shortest paths, σ̄(0,3) = 2."""
    src = np.array([0, 0, 1, 2])
    dst = np.array([1, 2, 3, 3])
    return Graph(4, src, dst)


def nx_reference_bc(graph: Graph) -> np.ndarray:
    """Ordered-pair betweenness centrality via networkx (the oracle)."""
    import networkx as nx

    ref = nx.betweenness_centrality(
        graph.to_networkx(),
        normalized=False,
        weight="weight" if graph.weighted else None,
    )
    scores = np.array([ref[i] for i in range(graph.n)])
    return scores if graph.directed else 2.0 * scores
