"""Checkpoint/restart for the MFBC driver: stores, validation, bit-identity.

The contract under test: per-batch checkpointing adds no numerical drift —
a run resumed from any batch boundary produces scores bit-identical to an
uninterrupted run, through every store (in-memory, JSON, NPZ), because
floats round-trip exactly and partial sums accumulate in the same order.
"""

import json
import os

import numpy as np
import pytest

from repro import obs
from repro.core import mfbc
from repro.dist import DistributedEngine
from repro.faults import (
    CheckpointState,
    CorruptCheckpoint,
    JsonCheckpointStore,
    MemoryCheckpointStore,
    NpzCheckpointStore,
    resolve_checkpoint_store,
    sources_checksum,
)
from repro.faults.checkpoint import CHECKPOINT_VERSION, stats_from_dicts, stats_to_dicts
from repro.machine import Machine


def make_state(n=10, scores=None):
    return CheckpointState(
        cursor=4,
        batch_index=2,
        batch_size=2,
        n=n,
        sources_crc=sources_checksum(np.arange(n)),
        scores=(
            np.linspace(0.0, 1.0, n) if scores is None else np.asarray(scores)
        ),
        stats=[{"sources": 2, "iterations": []}],
    )


# ---------------------------------------------------------------------------
# stores
# ---------------------------------------------------------------------------


class TestStores:
    def test_memory_store_round_trip_and_isolation(self):
        store = MemoryCheckpointStore()
        assert store.load() is None
        state = make_state()
        store.save(state)
        state.scores[0] = 999.0  # caller mutation must not leak in
        loaded = store.load()
        assert loaded.scores[0] == 0.0
        assert loaded.cursor == 4 and loaded.batch_index == 2
        store.clear()
        assert store.load() is None

    @pytest.mark.parametrize("cls,suffix", [
        (JsonCheckpointStore, "ck.json"),
        (NpzCheckpointStore, "ck.npz"),
    ])
    def test_file_store_round_trip_bit_exact(self, tmp_path, cls, suffix):
        path = tmp_path / suffix
        store = cls(path)
        assert store.load() is None
        # awkward floats: denormals, repeating fractions, large magnitudes
        scores = np.array([1e-310, 1 / 3, 0.1 + 0.2, 1e300, -0.0, np.pi])
        store.save(make_state(n=6, scores=scores))
        loaded = store.load()
        assert loaded.scores.dtype == np.float64
        assert np.array_equal(
            loaded.scores, scores
        ) and np.array_equal(  # -0.0 == 0.0, so also compare bit patterns
            loaded.scores.view(np.uint64), scores.view(np.uint64)
        )
        store.clear()
        assert store.load() is None
        store.clear()  # idempotent

    def test_atomic_write_leaves_no_tmp_litter(self, tmp_path):
        path = tmp_path / "ck.json"
        store = JsonCheckpointStore(path)
        store.save(make_state())
        store.save(make_state())  # overwrite rotates the previous generation
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "ck.json",
            "ck.json.1",
        ]

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "ck.json"
        store = JsonCheckpointStore(path)
        store.save(make_state())
        doc = json.loads(path.read_text())
        doc["version"] = CHECKPOINT_VERSION + 1
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="checkpoint version"):
            store.load()

    def test_resolve_store(self, tmp_path):
        store = MemoryCheckpointStore()
        assert resolve_checkpoint_store(store) is store
        assert isinstance(
            resolve_checkpoint_store(str(tmp_path / "a.npz")), NpzCheckpointStore
        )
        assert isinstance(
            resolve_checkpoint_store(str(tmp_path / "a.json")), JsonCheckpointStore
        )
        assert isinstance(
            resolve_checkpoint_store(tmp_path / "a.ckpt"), JsonCheckpointStore
        )
        with pytest.raises(TypeError, match="CheckpointStore or a path"):
            resolve_checkpoint_store(42)

    def test_stats_round_trip(self, small_undirected):
        res = mfbc(small_undirected, batch_size=8)
        rows = stats_to_dicts(res.stats.batches)
        back = stats_from_dicts(rows)
        assert [b.sources for b in back] == [b.sources for b in res.stats.batches]
        assert [b.total_ops for b in back] == [
            b.total_ops for b in res.stats.batches
        ]
        assert [b.mfbf_iterations for b in back] == [
            b.mfbf_iterations for b in res.stats.batches
        ]


# ---------------------------------------------------------------------------
# hardening: crash-during-write, corruption at rest, generation fallback
# ---------------------------------------------------------------------------


class TestHardening:
    @pytest.mark.parametrize("cls,suffix", [
        (JsonCheckpointStore, "ck.json"),
        (NpzCheckpointStore, "ck.npz"),
    ])
    def test_crash_during_write_preserves_previous(
        self, tmp_path, cls, suffix, monkeypatch
    ):
        """A crash mid-save (simulated by a replace that never happens) must
        leave the previous generations loadable and the directory free of
        temp litter."""
        path = tmp_path / suffix
        store = cls(path)
        store.save(make_state(scores=np.arange(10.0)))

        real_replace = os.replace

        def torn_replace(src, dst):
            if str(dst) == str(path):  # die before the new file lands
                raise OSError("simulated crash during checkpoint write")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", torn_replace)
        with pytest.raises(OSError, match="simulated crash"):
            store.save(make_state(scores=np.arange(10.0) + 1))
        monkeypatch.setattr(os, "replace", real_replace)

        assert not any(p.name.endswith(".tmp") for p in tmp_path.iterdir())
        loaded = store.load()  # the pre-crash checkpoint survived (as .1)
        assert np.array_equal(loaded.scores, np.arange(10.0))

    @pytest.mark.parametrize("garbage", [b"", b"not a checkpoint {"])
    @pytest.mark.parametrize("cls,suffix", [
        (JsonCheckpointStore, "ck.json"),
        (NpzCheckpointStore, "ck.npz"),
    ])
    def test_corrupt_newest_falls_back_to_older(
        self, tmp_path, cls, suffix, garbage
    ):
        path = tmp_path / suffix
        store = cls(path)
        store.save(make_state(scores=np.arange(10.0)))
        store.save(make_state(scores=np.arange(10.0) + 1))
        path.write_bytes(garbage)  # newest generation torn/truncated at rest
        with pytest.warns(RuntimeWarning, match="older"):
            loaded = store.load()
        assert np.array_equal(loaded.scores, np.arange(10.0))

    def test_all_generations_corrupt_raises(self, tmp_path):
        path = tmp_path / "ck.json"
        store = JsonCheckpointStore(path)
        store.save(make_state())
        store.save(make_state())
        path.write_text("{")
        (tmp_path / "ck.json.1").write_text("")
        with pytest.raises(CorruptCheckpoint, match="no loadable checkpoint") as ei:
            store.load()
        assert len(ei.value.errors) == 2  # one reason per generation

    def test_scores_crc_detects_bit_flip(self, tmp_path):
        path = tmp_path / "ck.json"
        store = JsonCheckpointStore(path, keep=1)
        store.save(make_state(scores=np.arange(10.0)))
        doc = json.loads(path.read_text())
        doc["scores"][3] += 1.0  # silent corruption, still valid JSON
        path.write_text(json.dumps(doc))
        with pytest.raises(CorruptCheckpoint, match="CRC-32"):
            store.load()

    def test_v1_checkpoint_without_crc_still_loads(self, tmp_path):
        path = tmp_path / "ck.json"
        store = JsonCheckpointStore(path)
        store.save(make_state(scores=np.arange(10.0)))
        doc = json.loads(path.read_text())
        doc["version"] = 1
        del doc["scores_crc"]
        path.write_text(json.dumps(doc))
        loaded = store.load()
        assert loaded.version == 1
        assert np.array_equal(loaded.scores, np.arange(10.0))

    def test_keep_bounds_generations(self, tmp_path):
        store = JsonCheckpointStore(tmp_path / "ck.json", keep=3)
        for i in range(5):
            store.save(make_state(scores=np.full(10, float(i))))
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["ck.json", "ck.json.1", "ck.json.2"]
        assert store.load().scores[0] == 4.0  # newest wins
        store.clear()
        assert list(tmp_path.iterdir()) == []
        assert store.load() is None

    def test_invalid_keep(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            JsonCheckpointStore(tmp_path / "ck.json", keep=0)

    def test_mfbc_resumes_from_older_generation(self, tmp_path, small_undirected):
        """End-to-end: the newest on-disk checkpoint is corrupted between
        runs; resume falls back to the previous batch boundary and still
        produces bit-identical scores (just re-executing one more batch)."""
        ref = mfbc(small_undirected, batch_size=8).scores
        path = tmp_path / "run.json"
        mfbc(small_undirected, batch_size=8, checkpoint=str(path), max_batches=3)
        path.write_text("torn")
        with pytest.warns(RuntimeWarning, match="older"):
            res = mfbc(small_undirected, batch_size=8, resume_from=str(path))
        assert np.array_equal(res.scores, ref)


# ---------------------------------------------------------------------------
# mfbc integration
# ---------------------------------------------------------------------------


class TestMfbcCheckpointing:
    def test_resume_bit_identical_from_every_boundary(self, small_undirected):
        ref = mfbc(small_undirected, batch_size=8).scores
        n_batches = -(-small_undirected.n // 8)
        for k in range(1, n_batches):
            store = MemoryCheckpointStore()
            mfbc(small_undirected, batch_size=8, checkpoint=store, max_batches=k)
            assert store.load().batch_index == k
            res = mfbc(small_undirected, batch_size=8, resume_from=store)
            assert np.array_equal(res.scores, ref), f"boundary {k}"
            assert res.stats.sources_processed == small_undirected.n

    def test_file_checkpoint_resume_distributed(self, tmp_path, small_undirected):
        ref = mfbc(small_undirected, batch_size=8).scores
        path = str(tmp_path / "run.npz")
        mfbc(
            small_undirected,
            batch_size=8,
            engine=DistributedEngine(Machine(4)),
            checkpoint=path,
            max_batches=2,
        )
        res = mfbc(
            small_undirected,
            batch_size=8,
            engine=DistributedEngine(Machine(4)),
            resume_from=path,
        )
        assert np.array_equal(res.scores, ref)

    def test_completed_run_resume_is_a_noop(self, small_undirected):
        store = MemoryCheckpointStore()
        ref = mfbc(small_undirected, batch_size=8, checkpoint=store).scores
        session = obs.enable()
        try:
            res = mfbc(small_undirected, batch_size=8, resume_from=store)
        finally:
            obs.disable()
        assert np.array_equal(res.scores, ref)
        assert session.tracer.find("batch") == []  # nothing left to execute

    def test_resume_if_present_semantics(self, small_undirected):
        """Passing one store as both checkpoint= and resume_from= starts
        fresh on an empty store and resumes on a populated one (the CLI's
        --checkpoint behavior)."""
        ref = mfbc(small_undirected, batch_size=8).scores
        store = MemoryCheckpointStore()
        kwargs = dict(batch_size=8, checkpoint=store, resume_from=store)
        mfbc(small_undirected, max_batches=2, **kwargs)
        res = mfbc(small_undirected, **kwargs)
        assert np.array_equal(res.scores, ref)

    def test_missing_resume_path_raises(self, tmp_path, small_undirected):
        with pytest.raises(FileNotFoundError, match="no checkpoint"):
            mfbc(
                small_undirected,
                batch_size=8,
                resume_from=str(tmp_path / "nope.json"),
            )

    def test_incompatible_checkpoints_rejected(self, small_undirected):
        store = MemoryCheckpointStore()
        mfbc(small_undirected, batch_size=8, checkpoint=store, max_batches=1)
        with pytest.raises(ValueError, match="batch_size"):
            mfbc(small_undirected, batch_size=16, resume_from=store)
        with pytest.raises(ValueError, match="source list"):
            mfbc(
                small_undirected,
                batch_size=8,
                sources=np.arange(10),
                resume_from=store,
            )
        from repro.graphs import uniform_random_graph_nm

        other = uniform_random_graph_nm(25, 3.0, seed=9)
        with pytest.raises(ValueError, match="-vertex graph"):
            mfbc(other, batch_size=8, resume_from=store)

    def test_batch_size_defaults_to_checkpoints(self, small_undirected):
        store = MemoryCheckpointStore()
        mfbc(small_undirected, batch_size=8, checkpoint=store, max_batches=1)
        res = mfbc(small_undirected, resume_from=store)  # no batch_size given
        assert res.batch_size == 8

    def test_checkpoint_survives_partial_sources(self, small_undirected):
        """Checkpointing composes with sources= (approximate BC)."""
        sources = np.arange(0, small_undirected.n, 2, dtype=np.int64)
        ref = mfbc(small_undirected, batch_size=4, sources=sources).scores
        store = MemoryCheckpointStore()
        mfbc(
            small_undirected,
            batch_size=4,
            sources=sources,
            checkpoint=store,
            max_batches=2,
        )
        res = mfbc(
            small_undirected, batch_size=4, sources=sources, resume_from=store
        )
        assert np.array_equal(res.scores, ref)

    def test_cursor_tracks_source_offsets(self, small_undirected):
        store = MemoryCheckpointStore()
        mfbc(small_undirected, batch_size=7, checkpoint=store, max_batches=3)
        state = store.load()
        assert state.cursor == 21
        assert state.batch_index == 3
        assert state.batch_size == 7
        assert state.n == small_undirected.n
