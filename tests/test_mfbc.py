"""MFBC (Algorithm 3) end to end against the networkx/Brandes oracles."""

import numpy as np
import pytest

from repro.baselines import brandes_bc
from repro.core import betweenness_centrality, mfbc
from repro.graphs import (
    Graph,
    rmat_graph,
    snap_standin,
    uniform_random_graph_nm,
    with_random_weights,
)

from conftest import nx_reference_bc


class TestCorrectness:
    @pytest.mark.parametrize("directed", [False, True])
    @pytest.mark.parametrize("weighted", [False, True])
    def test_matches_networkx(self, directed, weighted):
        g = uniform_random_graph_nm(45, 4.0, directed=directed, seed=17)
        if weighted:
            g = with_random_weights(g, 1, 10, seed=17)
        res = mfbc(g, batch_size=9)
        assert np.allclose(res.scores, nx_reference_bc(g), atol=1e-8)

    def test_matches_own_brandes(self, small_weighted_directed):
        res = mfbc(small_weighted_directed, batch_size=8)
        assert np.allclose(res.scores, brandes_bc(small_weighted_directed), atol=1e-8)

    def test_rmat_graph(self):
        g = rmat_graph(6, 4, seed=5)
        res = mfbc(g)
        assert np.allclose(res.scores, nx_reference_bc(g), atol=1e-8)

    def test_snap_standin_subset_sources(self):
        g = snap_standin("cit", scale_offset=-6, seed=2)
        sources = np.arange(0, g.n, max(g.n // 20, 1))
        res = mfbc(g, batch_size=8, sources=sources)
        ref = brandes_bc(g, sources=sources)
        assert np.allclose(res.scores, ref, atol=1e-8)

    def test_disconnected_graph(self):
        g = Graph(6, np.array([0, 1, 3, 4]), np.array([1, 2, 4, 5]))
        res = mfbc(g)
        assert np.allclose(res.scores, nx_reference_bc(g), atol=1e-10)


class TestAnalyticGraphs:
    def test_path(self, path_graph):
        # ordered-pair BC on a path: vertex i mediates 2·i·(n-1-i) pairs
        res = mfbc(path_graph)
        expect = [2 * i * (4 - i) for i in range(5)]
        assert np.allclose(res.scores, expect)

    def test_star(self):
        n = 8
        g = Graph(n, np.zeros(n - 1, dtype=np.int64), np.arange(1, n))
        res = mfbc(g)
        # centre mediates all (n-1)(n-2) ordered leaf pairs
        assert res.scores[0] == pytest.approx((n - 1) * (n - 2))
        assert np.allclose(res.scores[1:], 0.0)

    def test_clique_all_zero(self):
        n = 6
        src, dst = np.triu_indices(n, k=1)
        g = Graph(n, src, dst)
        res = mfbc(g)
        assert np.allclose(res.scores, 0.0)

    def test_cycle(self):
        n = 7
        g = Graph(n, np.arange(n), (np.arange(n) + 1) % n)
        res = mfbc(g)
        # symmetry: all scores equal
        assert np.allclose(res.scores, res.scores[0])
        assert np.allclose(res.scores, nx_reference_bc(g), atol=1e-10)

    def test_weighted_reroute(self):
        """A heavy edge is bypassed via an intermediate vertex, which then
        earns all the centrality."""
        g = Graph(
            3,
            np.array([0, 0, 1]),
            np.array([2, 1, 2]),
            np.array([10.0, 1.0, 1.0]),
        )
        res = mfbc(g)
        assert res.scores[1] == pytest.approx(2.0)  # (0,2) and (2,0)


class TestBatching:
    @pytest.mark.parametrize("nb", [1, 3, 7, 40])
    def test_batch_size_invariance(self, small_undirected, nb):
        ref = mfbc(small_undirected, batch_size=small_undirected.n).scores
        got = mfbc(small_undirected, batch_size=nb).scores
        assert np.allclose(got, ref, atol=1e-8)

    def test_bad_batch_size_raises(self, small_undirected):
        with pytest.raises(ValueError, match="batch_size"):
            mfbc(small_undirected, batch_size=0)

    def test_max_batches_partial(self, small_undirected):
        res = mfbc(small_undirected, batch_size=10, max_batches=2)
        assert res.stats.sources_processed == 20

    def test_default_batch_size(self):
        from repro.core.mfbc import default_batch_size

        g = uniform_random_graph_nm(200, 6.0, seed=0)
        nb = default_batch_size(g)
        assert 1 <= nb <= g.n
        nb_mem = default_batch_size(g, memory_words=400)
        assert nb_mem == max(1, 400 // g.n)

    def test_stats_summary(self, small_undirected):
        res = mfbc(small_undirected, batch_size=10)
        s = res.stats.summary()
        assert s["sources"] == small_undirected.n
        assert s["matmuls"] > 0 and s["ops"] > 0
        assert res.stats.batches[0].mfbf_iterations > 0
        assert res.stats.batches[0].mfbr_iterations > 0


class TestAPI:
    def test_normalized_matches_networkx(self, small_undirected):
        import networkx as nx

        got = betweenness_centrality(small_undirected, normalized=True)
        ref = nx.betweenness_centrality(
            small_undirected.to_networkx(), normalized=True
        )
        refv = np.array([ref[i] for i in range(small_undirected.n)])
        assert np.allclose(got, refv, atol=1e-8)

    def test_teps_positive(self, small_undirected):
        res = mfbc(small_undirected)
        assert res.teps(small_undirected) > 0

    def test_result_fields(self, small_undirected):
        res = mfbc(small_undirected, batch_size=5)
        assert res.batch_size == 5
        assert res.elapsed_seconds > 0
        assert len(res.scores) == small_undirected.n
