"""The Bellman-Ford and Brandes monoid actions, MatMulSpec, and semirings."""

import numpy as np
import pytest

from repro.algebra import (
    CENTPATH,
    MULTPATH,
    REAL_PLUS_TIMES,
    TROPICAL,
    MatMulSpec,
    bellman_ford_action,
    brandes_action,
)


class TestBellmanFordAction:
    def test_extends_weight_keeps_multiplicity(self):
        a = MULTPATH.make([2.0, 5.0], [3.0, 1.0])
        b = {"w": np.array([1.0, 4.0])}
        out = bellman_ford_action(a, b)
        assert list(out["w"]) == [3.0, 9.0]
        assert list(out["m"]) == [3.0, 1.0]

    def test_action_property(self):
        """f(f(x, w1), w2) == f(x, w1 + w2): (W, +) acts on M."""
        x = MULTPATH.make([2.0], [7.0])
        w1 = {"w": np.array([3.0])}
        w2 = {"w": np.array([4.0])}
        w12 = {"w": np.array([7.0])}
        lhs = bellman_ford_action(bellman_ford_action(x, w1), w2)
        rhs = bellman_ford_action(x, w12)
        assert lhs["w"][0] == rhs["w"][0] and lhs["m"][0] == rhs["m"][0]

    def test_infinite_weight_propagates(self):
        a = MULTPATH.make([np.inf], [0.0])
        out = bellman_ford_action(a, {"w": np.array([1.0])})
        assert np.isinf(out["w"][0])


class TestBrandesAction:
    def test_subtracts_weight_keeps_payload(self):
        a = CENTPATH.make([5.0], [0.25], [2])
        out = brandes_action(a, {"w": np.array([2.0])})
        assert out["w"][0] == 3.0 and out["p"][0] == 0.25 and out["c"][0] == 2

    def test_action_property(self):
        x = CENTPATH.make([9.0], [1.0], [1])
        w1 = {"w": np.array([2.0])}
        w2 = {"w": np.array([3.0])}
        w12 = {"w": np.array([5.0])}
        lhs = brandes_action(brandes_action(x, w1), w2)
        rhs = brandes_action(x, w12)
        assert lhs["w"][0] == rhs["w"][0]


class TestMatMulSpec:
    def test_apply_f_validates_schema(self):
        bad = MatMulSpec(MULTPATH, lambda a, b: {"w": a["w"]}, "bad")
        with pytest.raises(ValueError, match="requires"):
            bad.apply_f(MULTPATH.make([1.0], [1.0]), {"w": np.array([1.0])})

    def test_apply_f_passthrough(self):
        spec = MatMulSpec(MULTPATH, bellman_ford_action, "bf")
        out = spec.apply_f(MULTPATH.make([1.0], [2.0]), {"w": np.array([3.0])})
        assert out["w"][0] == 4.0


class TestSemirings:
    def test_tropical_spec(self):
        spec = TROPICAL.matmul_spec()
        out = spec.apply_f({"w": np.array([2.0])}, {"w": np.array([3.0])})
        assert out["w"][0] == 5.0
        assert spec.monoid.identity["w"] == np.inf

    def test_real_spec(self):
        spec = REAL_PLUS_TIMES.matmul_spec()
        out = spec.apply_f({"w": np.array([2.0])}, {"w": np.array([3.0])})
        assert out["w"][0] == 6.0
        assert spec.monoid.identity["w"] == 0
