"""Property-based tests of the library's load-bearing equivalences.

Hypothesis generates arbitrary small graphs (random edge sets, optional
integer weights, directed or not) and asserts the chain of equalities the
whole reproduction rests on:

    MFBC == Brandes == CombBLAS-style   (betweenness centrality)
    MFBF == Dijkstra/BFS                (distances and multiplicities)
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import brandes_bc, combblas_bc
from repro.baselines.sssp import bfs_sssp, dijkstra_sssp
from repro.check.strategies import graphs
from repro.core import mfbc, mfbf


@given(graphs())
def test_mfbc_equals_brandes(g):
    got = mfbc(g, batch_size=max(g.n // 3, 1)).scores
    ref = brandes_bc(g)
    assert np.allclose(got, ref, atol=1e-8)


@given(graphs(weighted=False))
def test_combblas_equals_brandes(g):
    got = combblas_bc(g, batch_size=max(g.n // 2, 1)).scores
    ref = brandes_bc(g)
    assert np.allclose(got, ref, atol=1e-8)


@given(graphs(), st.integers(0, 1000))
def test_mfbf_equals_sssp_oracle(g, source_seed):
    s = source_seed % g.n
    t = mfbf(g.adjacency(), np.array([s], dtype=np.int64))
    d = t.to_dense("w")[0]
    m = t.to_dense("m")[0]
    d_ref, m_ref = (dijkstra_sssp if g.weighted else bfs_sssp)(g, s)
    assert np.allclose(
        np.nan_to_num(d, posinf=-1.0), np.nan_to_num(d_ref, posinf=-1.0)
    )
    reach = np.isfinite(d_ref)
    assert np.allclose(m[reach], m_ref[reach])


@given(graphs(max_n=10), st.integers(1, 5))
@settings(max_examples=30)
def test_batch_size_never_changes_scores(g, nb):
    ref = mfbc(g, batch_size=g.n).scores
    got = mfbc(g, batch_size=nb).scores
    assert np.allclose(got, ref, atol=1e-8)


@given(graphs(max_n=10))
@settings(max_examples=25)
def test_scores_nonnegative_and_endpoint_free(g):
    scores = mfbc(g).scores
    assert np.all(scores >= -1e-12)
    # a vertex of degree ≤ 1 in an undirected graph mediates nothing
    if not g.directed:
        deg = g.degrees()
        leaves = deg <= 1
        assert np.allclose(scores[leaves], 0.0, atol=1e-12)
