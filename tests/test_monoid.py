"""Monoid laws and reduction correctness — unit and property-based."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.monoid import (
    MaxMonoid,
    MinMonoid,
    Monoid,
    MinWeightTieSumMonoid,
    PlusMonoid,
)
from repro.algebra.multpath import MULTPATH
from repro.algebra.centpath import CENTPATH


def _scalar(monoid, **kw):
    return {k: np.array([v]) for k, v in kw.items()}


def _as_tuple(vals, i=0):
    return tuple(np.asarray(vals[k])[i] for k in sorted(vals))


# ---------------------------------------------------------------------------
# algebraic laws, checked on concrete sample sets
# ---------------------------------------------------------------------------

MULTPATH_SAMPLES = [
    {"w": np.inf, "m": 0.0},
    {"w": 0.0, "m": 1.0},
    {"w": 1.0, "m": 2.0},
    {"w": 1.0, "m": 3.0},
    {"w": 5.0, "m": 1.0},
]

CENTPATH_SAMPLES = [
    {"w": -np.inf, "p": 0.0, "c": 0},
    {"w": 0.0, "p": 0.5, "c": 1},
    {"w": 2.0, "p": 0.25, "c": -1},
    {"w": 2.0, "p": 1.0, "c": 3},
    {"w": 7.0, "p": 0.0, "c": 2},
]


def _check_laws(monoid: Monoid, samples: list[dict]):
    ident = {k: np.array([v]) for k, v in monoid.identity.items()}
    for a in samples:
        av = {k: np.array([v]) for k, v in a.items()}
        # identity
        assert _as_tuple(monoid.combine(av, ident)) == _as_tuple(av)
        assert _as_tuple(monoid.combine(ident, av)) == _as_tuple(av)
        for b in samples:
            bv = {k: np.array([v]) for k, v in b.items()}
            # commutativity
            assert _as_tuple(monoid.combine(av, bv)) == _as_tuple(
                monoid.combine(bv, av)
            )
            for c in samples:
                cv = {k: np.array([v]) for k, v in c.items()}
                # associativity
                left = monoid.combine(monoid.combine(av, bv), cv)
                right = monoid.combine(av, monoid.combine(bv, cv))
                assert _as_tuple(left) == _as_tuple(right)


class TestLaws:
    def test_multpath_laws(self):
        _check_laws(MULTPATH, MULTPATH_SAMPLES)

    def test_centpath_laws(self):
        _check_laws(CENTPATH, CENTPATH_SAMPLES)

    def test_plus_laws(self):
        _check_laws(PlusMonoid(), [{"w": v} for v in (-1.0, 0.0, 2.5, 7.0)])

    def test_min_laws(self):
        _check_laws(MinMonoid(), [{"w": v} for v in (np.inf, 0.0, 2.5, 7.0)])

    def test_max_laws(self):
        _check_laws(MaxMonoid(), [{"w": v} for v in (-np.inf, 0.0, 2.5)])


class TestSemantics:
    def test_multpath_tie_sums_multiplicity(self):
        out = MULTPATH.combine(
            _scalar(MULTPATH, w=3.0, m=2.0), _scalar(MULTPATH, w=3.0, m=5.0)
        )
        assert out["w"][0] == 3.0 and out["m"][0] == 7.0

    def test_multpath_min_wins(self):
        out = MULTPATH.combine(
            _scalar(MULTPATH, w=3.0, m=2.0), _scalar(MULTPATH, w=1.0, m=5.0)
        )
        assert out["w"][0] == 1.0 and out["m"][0] == 5.0

    def test_centpath_max_wins(self):
        out = CENTPATH.combine(
            _scalar(CENTPATH, w=3.0, p=0.5, c=1), _scalar(CENTPATH, w=1.0, p=9.0, c=9)
        )
        assert (out["w"][0], out["p"][0], out["c"][0]) == (3.0, 0.5, 1)

    def test_centpath_tie_sums_p_and_c(self):
        out = CENTPATH.combine(
            _scalar(CENTPATH, w=3.0, p=0.5, c=1),
            _scalar(CENTPATH, w=3.0, p=0.25, c=-1),
        )
        assert (out["w"][0], out["p"][0], out["c"][0]) == (3.0, 0.75, 0)

    def test_is_identity(self):
        vals = {"w": np.array([np.inf, 1.0]), "m": np.array([0.0, 0.0])}
        assert list(MULTPATH.is_identity(vals)) == [True, False]

    def test_identity_array(self):
        arr = CENTPATH.identity_array(3)
        assert np.all(np.isneginf(arr["w"])) and np.all(arr["c"] == 0)

    def test_bad_select_raises(self):
        with pytest.raises(ValueError, match="select"):
            MinWeightTieSumMonoid([("w", float)], {"w": np.inf}, select="median")

    def test_bad_weight_field_raises(self):
        with pytest.raises(ValueError, match="weight field"):
            MinWeightTieSumMonoid(
                [("w", float)], {"w": np.inf}, weight_field="nope"
            )

    def test_identity_schema_mismatch_raises(self):
        with pytest.raises(ValueError, match="identity"):
            Monoid([("w", float)], {"x": 0.0})

    def test_base_combine_not_implemented(self):
        m = Monoid([("w", float)], {"w": 0.0})
        with pytest.raises(NotImplementedError):
            m.combine({"w": np.zeros(1)}, {"w": np.zeros(1)})


# ---------------------------------------------------------------------------
# reductions: vectorized fast paths vs the generic pairwise fold
# ---------------------------------------------------------------------------


def _generic_reduce(monoid, keys, vals):
    order = np.argsort(keys, kind="stable")
    return Monoid._reduce_sorted(
        monoid, keys[order], {k: v[order] for k, v in vals.items()}
    )


class TestReduceByKey:
    @pytest.mark.parametrize("monoid_name", ["multpath", "centpath", "plus", "min"])
    def test_fast_path_matches_generic(self, rng, monoid_name):
        monoid = {
            "multpath": MULTPATH,
            "centpath": CENTPATH,
            "plus": PlusMonoid(),
            "min": MinMonoid(),
        }[monoid_name]
        nelem = 500
        keys = rng.integers(0, 37, nelem)
        vals = {}
        for name, dtype in monoid.field_spec:
            if np.issubdtype(dtype, np.integer):
                vals[name] = rng.integers(-3, 4, nelem).astype(dtype)
            else:
                vals[name] = rng.integers(0, 6, nelem).astype(dtype)
        k1, v1 = monoid.reduce_by_key(keys, {k: v.copy() for k, v in vals.items()})
        k2, v2 = _generic_reduce(monoid, keys, vals)
        assert np.array_equal(k1, k2)
        for name in monoid.field_names:
            assert np.allclose(v1[name], v2[name]), name

    def test_empty_input(self):
        keys = np.empty(0, dtype=np.int64)
        k, v = MULTPATH.reduce_by_key(keys, MULTPATH.empty())
        assert len(k) == 0 and len(v["w"]) == 0

    def test_single_group(self):
        keys = np.zeros(4, dtype=np.int64)
        vals = MULTPATH.make([2.0, 1.0, 1.0, 3.0], [1, 2, 3, 4])
        k, v = MULTPATH.reduce_by_key(keys, vals)
        assert list(k) == [0]
        assert v["w"][0] == 1.0 and v["m"][0] == 5.0

    def test_keys_already_unique(self):
        keys = np.array([3, 1, 2], dtype=np.int64)
        vals = MULTPATH.make([1.0, 2.0, 3.0], [1, 1, 1])
        k, v = MULTPATH.reduce_by_key(keys, vals)
        assert list(k) == [1, 2, 3]
        assert list(v["w"]) == [2.0, 3.0, 1.0]


# ---------------------------------------------------------------------------
# hypothesis: laws on arbitrary elements, reduce == sequential fold
# ---------------------------------------------------------------------------

finite_w = st.integers(min_value=0, max_value=10).map(float)
mult = st.integers(min_value=0, max_value=100).map(float)


@st.composite
def multpath_elem(draw):
    if draw(st.booleans()):
        return (np.inf, 0.0)
    return (draw(finite_w), draw(mult))


@given(st.lists(multpath_elem(), min_size=1, max_size=30))
@settings(max_examples=100)
def test_multpath_reduce_equals_fold(elems):
    keys = np.zeros(len(elems), dtype=np.int64)
    vals = MULTPATH.make([e[0] for e in elems], [e[1] for e in elems])
    _, reduced = MULTPATH.reduce_by_key(keys, vals)

    # sequential fold reference
    acc = (np.inf, 0.0)
    for w, m in elems:
        if w < acc[0]:
            acc = (w, m)
        elif w == acc[0]:
            acc = (acc[0], acc[1] + m)
    if acc == (np.inf, 0.0):
        assert len(reduced["w"]) == 0 or (
            reduced["w"][0] == np.inf and reduced["m"][0] == 0
        )
    else:
        assert reduced["w"][0] == acc[0]
        assert reduced["m"][0] == acc[1]


@given(
    st.lists(
        st.tuples(
            st.integers(0, 5),
            st.integers(0, 8).map(float),
            st.integers(-2, 5),
        ),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=100)
def test_centpath_reduce_matches_generic(items):
    keys = np.array([k for k, _, _ in items], dtype=np.int64)
    vals = CENTPATH.make(
        [w for _, w, _ in items],
        [w / 2 for _, w, _ in items],
        [c for _, _, c in items],
    )
    k1, v1 = CENTPATH.reduce_by_key(keys, {k: v.copy() for k, v in vals.items()})
    k2, v2 = _generic_reduce(CENTPATH, keys, vals)
    assert np.array_equal(k1, k2)
    for name in CENTPATH.field_names:
        assert np.allclose(v1[name], v2[name])
