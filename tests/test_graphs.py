"""Graph container, generators, preprocessing, weights, and I/O."""

import numpy as np
import pytest

from repro.graphs import (
    Graph,
    largest_connected_component,
    randomize_vertex_order,
    read_edgelist,
    remove_isolated_vertices,
    rmat_graph,
    snap_standin,
    uniform_random_graph,
    uniform_random_graph_nm,
    with_random_weights,
    write_edgelist,
)
from repro.graphs.realworld import SNAP_STANDINS


class TestGraphContainer:
    def test_self_loops_dropped(self):
        g = Graph(3, np.array([0, 1, 2]), np.array([0, 2, 2]))
        assert g.m == 1  # only 1-2 survives

    def test_parallel_edges_deduped_min_weight(self):
        g = Graph(
            3,
            np.array([0, 1, 0]),
            np.array([1, 0, 1]),
            np.array([5.0, 2.0, 7.0]),
        )
        assert g.m == 1
        assert g.edge_weights()[0] == 2.0  # undirected: (0,1)==(1,0), min kept

    def test_directed_parallel_edges_distinct_directions(self):
        g = Graph(3, np.array([0, 1]), np.array([1, 0]), directed=True)
        assert g.m == 2

    def test_endpoint_out_of_range_raises(self):
        with pytest.raises(ValueError, match="out of range"):
            Graph(2, np.array([0]), np.array([5]))

    def test_nonpositive_weight_raises(self):
        with pytest.raises(ValueError, match="positive"):
            Graph(2, np.array([0]), np.array([1]), np.array([0.0]))

    def test_degrees_undirected(self):
        g = Graph(3, np.array([0, 1]), np.array([1, 2]))
        assert list(g.degrees()) == [1, 2, 1]
        assert g.max_degree() == 2

    def test_adjacency_symmetric_when_undirected(self):
        g = Graph(3, np.array([0]), np.array([1]))
        adj = g.adjacency()
        assert adj.get(0, 1)["w"] == 1.0 and adj.get(1, 0)["w"] == 1.0
        assert g.nnz_adjacency == 2

    def test_adjacency_asymmetric_when_directed(self):
        g = Graph(3, np.array([0]), np.array([1]), directed=True)
        adj = g.adjacency()
        assert adj.get(0, 1)["w"] == 1.0 and np.isinf(adj.get(1, 0)["w"])

    def test_to_networkx_roundtrip_counts(self, small_undirected):
        nxg = small_undirected.to_networkx()
        assert nxg.number_of_nodes() == small_undirected.n
        assert nxg.number_of_edges() == small_undirected.m

    def test_unweighted_strip(self, small_weighted):
        g = small_weighted.unweighted()
        assert not g.weighted and g.m == small_weighted.m

    def test_reversed_directed(self):
        g = Graph(3, np.array([0]), np.array([1]), directed=True)
        r = g.reversed()
        assert r.src[0] == 1 and r.dst[0] == 0

    def test_reversed_undirected_is_self(self, small_undirected):
        assert small_undirected.reversed() is small_undirected

    def test_diameter_path_graph(self, path_graph):
        assert path_graph.diameter_hops() == 4
        assert path_graph.effective_diameter(percentile=1.0, samples=5) == 4.0


class TestGenerators:
    def test_rmat_size(self):
        g = rmat_graph(8, 4, seed=0)
        assert g.n == 256
        # sampled edges minus dedup losses
        assert 0.5 * 4 * 256 / 2 < g.m <= 4 * 256 / 2

    def test_rmat_deterministic(self):
        g1 = rmat_graph(7, 4, seed=9)
        g2 = rmat_graph(7, 4, seed=9)
        assert np.array_equal(g1.src, g2.src) and np.array_equal(g1.dst, g2.dst)

    def test_rmat_skew(self):
        """Power-law parameters produce a heavier max degree than uniform."""
        g_rmat = rmat_graph(11, 8, seed=1)
        g_uni = uniform_random_graph_nm(2048, 8, seed=1)
        assert g_rmat.max_degree() > 2 * g_uni.max_degree()

    def test_rmat_directed(self):
        g = rmat_graph(7, 4, directed=True, seed=0)
        assert g.directed

    def test_rmat_invalid_probs(self):
        with pytest.raises(ValueError, match="non-negative"):
            rmat_graph(5, 2, a=0.9, b=0.9, c=0.9)

    def test_uniform_fraction(self):
        g = uniform_random_graph(400, 0.02, seed=0)
        assert g.n == 400
        # nnz fraction of adjacency ≈ f (within sampling noise and dedup)
        f = g.nnz_adjacency / 400**2
        assert 0.012 < f < 0.022

    def test_uniform_degree(self):
        g = uniform_random_graph_nm(500, 10.0, seed=0)
        assert 8.0 < g.average_degree() < 10.5

    def test_uniform_bad_args(self):
        with pytest.raises(ValueError):
            uniform_random_graph(10, 1.5)
        with pytest.raises(ValueError):
            uniform_random_graph_nm(10, -1)
        with pytest.raises(ValueError):
            uniform_random_graph_nm(0, 2)


class TestSnapStandins:
    def test_all_ids_generate(self):
        for gid in SNAP_STANDINS:
            g = snap_standin(gid, scale_offset=-5, seed=0)
            assert g.n > 0 and g.m > 0
            assert g.name == gid

    def test_directedness_matches_table2(self):
        assert not snap_standin("ork", scale_offset=-5).directed
        assert snap_standin("ljm", scale_offset=-5).directed
        assert snap_standin("cit", scale_offset=-5).directed

    def test_density_ordering(self):
        """ork denser than ljm denser than cit — the Table 2 ordering that
        drives the paper's per-graph performance story."""
        ork = snap_standin("ork", scale_offset=-4, seed=1)
        ljm = snap_standin("ljm", scale_offset=-4, seed=1)
        cit = snap_standin("cit", scale_offset=-3, seed=1)
        assert ork.average_degree() > ljm.average_degree() > cit.average_degree()

    def test_cit_has_larger_diameter(self):
        ork = snap_standin("ork", scale_offset=-5, seed=1)
        cit = snap_standin("cit", scale_offset=-4, seed=1)
        assert cit.diameter_hops() > ork.diameter_hops()

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError, match="unknown graph id"):
            snap_standin("nope")

    def test_no_isolated_vertices(self):
        g = snap_standin("ork", scale_offset=-5, seed=0)
        assert g.degrees().min() > 0


class TestPreprocess:
    def test_remove_isolated(self):
        g = Graph(5, np.array([0, 3]), np.array([3, 4]))
        out = remove_isolated_vertices(g)
        assert out.n == 3 and out.m == 2

    def test_remove_isolated_noop(self, small_undirected):
        g = remove_isolated_vertices(small_undirected)
        assert g.n <= small_undirected.n

    def test_largest_component(self):
        # two components: {0,1,2} and {3,4}
        g = Graph(5, np.array([0, 1, 3]), np.array([1, 2, 4]))
        out = largest_connected_component(g)
        assert out.n == 3 and out.m == 2

    def test_randomize_preserves_structure(self, small_undirected):
        g = randomize_vertex_order(small_undirected, seed=3)
        assert g.n == small_undirected.n and g.m == small_undirected.m
        assert sorted(g.degrees()) == sorted(small_undirected.degrees())


class TestWeights:
    def test_range(self, small_undirected):
        g = with_random_weights(small_undirected, 1, 100, seed=0)
        assert g.weighted
        assert g.weight.min() >= 1 and g.weight.max() <= 100
        assert np.all(g.weight == np.round(g.weight))

    def test_bad_range_raises(self, small_undirected):
        with pytest.raises(ValueError):
            with_random_weights(small_undirected, 5, 2)
        with pytest.raises(ValueError):
            with_random_weights(small_undirected, 0, 2)


class TestIO:
    def test_roundtrip_unweighted(self, tmp_path, small_undirected):
        p = tmp_path / "g.txt"
        write_edgelist(small_undirected, p)
        g = read_edgelist(p)
        assert g.m == small_undirected.m

    def test_roundtrip_weighted(self, tmp_path, small_weighted):
        p = tmp_path / "g.txt"
        write_edgelist(small_weighted, p)
        g = read_edgelist(p)
        assert g.weighted and g.m == small_weighted.m
        assert np.allclose(sorted(g.weight), sorted(small_weighted.weight))

    def test_noncontiguous_ids_compacted(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("10 20\n20 30\n# comment\n")
        g = read_edgelist(p)
        assert g.n == 3 and g.m == 2

    def test_malformed_line_raises(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("10\n")
        with pytest.raises(ValueError, match="malformed"):
            read_edgelist(p)

    def test_mixed_weight_lines_raise(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("1 2 3.5\n2 3\n")
        with pytest.raises(ValueError, match="mixed"):
            read_edgelist(p)

    def test_malformed_line_names_file_and_lineno(self, tmp_path):
        p = tmp_path / "bad.txt"
        p.write_text("# comment\n1 2\nbogus line here\n")
        with pytest.raises(
            ValueError,
            match=r"bad\.txt:3: malformed edge line 'bogus line here'",
        ):
            read_edgelist(p)

    def test_bad_weight_names_file_and_lineno(self, tmp_path):
        p = tmp_path / "bad.txt"
        p.write_text("1 2 1.5\n2 3 heavy\n")
        with pytest.raises(
            ValueError, match=r"bad\.txt:2: .*weight must be a number"
        ):
            read_edgelist(p)

    def test_noninteger_endpoint_names_file_and_lineno(self, tmp_path):
        p = tmp_path / "bad.txt"
        p.write_text("1 2\na b\n")
        with pytest.raises(
            ValueError, match=r"bad\.txt:2: .*endpoints must be integers"
        ):
            read_edgelist(p)

    def test_header_preserves_ids_and_isolated_vertices(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("# Nodes: 40 Edges: 2 Directed: 1\n10 20\n20 30\n")
        g = read_edgelist(p)
        assert g.n == 40 and g.m == 2 and g.directed
        np.testing.assert_array_equal(sorted(g.src), [10, 20])

    def test_large_roundtrip_batched_write(self, tmp_path):
        # ~100k edges through the batched writer, read back bit-exactly
        g = uniform_random_graph_nm(20_000, 10.0, seed=3)
        assert g.m >= 99_000
        gw = with_random_weights(g, 1, 100, seed=3)
        for tag, graph in (("u", g), ("w", gw)):
            p = tmp_path / f"big-{tag}.txt"
            write_edgelist(graph, p, batch=1 << 12)
            back = read_edgelist(p)
            assert back.n == graph.n and back.m == graph.m
            assert back.directed == graph.directed
            np.testing.assert_array_equal(back.src, graph.src)
            np.testing.assert_array_equal(back.dst, graph.dst)
            if graph.weighted:
                # repr round-trip: weights survive to the exact bit
                np.testing.assert_array_equal(back.weight, graph.weight)
