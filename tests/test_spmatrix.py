"""SpMat: canonical form, elementwise/structural operations, error paths."""

import numpy as np
import pytest
import scipy.sparse

from repro.algebra.monoid import MinMonoid, PlusMonoid
from repro.algebra.multpath import MULTPATH
from repro.sparse import SpMat

from conftest import random_weight_spmat

W = MinMonoid()
PLUS = PlusMonoid()


def mk(nrows, ncols, triples, monoid=W):
    """triples: list of (i, j, value-dict-or-float)."""
    rows = np.array([t[0] for t in triples], dtype=np.int64)
    cols = np.array([t[1] for t in triples], dtype=np.int64)
    if triples and isinstance(triples[0][2], dict):
        keys = triples[0][2].keys()
        vals = {k: np.array([t[2][k] for t in triples], dtype=float) for k in keys}
    else:
        vals = {"w": np.array([t[2] for t in triples], dtype=float)}
    return SpMat(nrows, ncols, rows, cols, vals, monoid)


class TestConstruction:
    def test_canonical_sorted_unique(self):
        m = mk(3, 3, [(2, 1, 5.0), (0, 0, 1.0), (2, 1, 3.0)])
        assert m.nnz == 2
        assert list(m.rows) == [0, 2] and list(m.cols) == [0, 1]
        # duplicates folded with min
        assert m.get(2, 1)["w"] == 3.0

    def test_identity_entries_pruned(self):
        m = mk(2, 2, [(0, 0, np.inf), (1, 1, 2.0)])
        assert m.nnz == 1 and m.get(1, 1)["w"] == 2.0
        assert m.get(0, 0)["w"] == np.inf  # implicit identity

    def test_out_of_bounds_raises(self):
        with pytest.raises(ValueError, match="out of bounds"):
            mk(2, 2, [(2, 0, 1.0)])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="mismatch"):
            SpMat(2, 2, np.array([0]), np.array([0, 1]), {"w": np.ones(1)}, W)

    def test_vals_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="mismatch"):
            SpMat(2, 2, np.array([0]), np.array([0]), {"w": np.ones(2)}, W)

    def test_negative_dims_raise(self):
        with pytest.raises(ValueError, match="negative"):
            SpMat(-1, 2, np.empty(0, np.int64), np.empty(0, np.int64), {"w": np.empty(0)}, W)

    def test_empty(self):
        m = SpMat.empty(3, 4, MULTPATH)
        assert m.nnz == 0 and m.shape == (3, 4)

    def test_from_to_scipy_roundtrip(self, rng):
        sp = scipy.sparse.random(10, 8, density=0.3, random_state=1, format="coo")
        sp.data[:] = np.abs(sp.data) + 1
        m = SpMat.from_scipy(sp, W)
        back = m.to_scipy("w").toarray()
        assert np.allclose(back, sp.toarray())

    def test_from_scipy_multifield_monoid_raises(self):
        sp = scipy.sparse.eye(3, format="coo")
        with pytest.raises(ValueError, match="single-field"):
            SpMat.from_scipy(sp, MULTPATH)

    def test_to_dense_fill(self):
        m = mk(2, 2, [(0, 1, 3.0)])
        d = m.to_dense("w")
        assert d[0, 1] == 3.0 and np.isinf(d[0, 0])
        d2 = m.to_dense("w", fill=-1.0)
        assert d2[0, 0] == -1.0

    def test_words_positive(self):
        m = mk(2, 2, [(0, 1, 3.0)])
        assert m.words() >= 3  # 2 coords + 1 value


class TestElementwise:
    def test_combine_union_min(self):
        a = mk(2, 2, [(0, 0, 5.0), (0, 1, 2.0)])
        b = mk(2, 2, [(0, 0, 3.0), (1, 1, 7.0)])
        c = a.combine(b)
        assert c.get(0, 0)["w"] == 3.0
        assert c.get(0, 1)["w"] == 2.0
        assert c.get(1, 1)["w"] == 7.0

    def test_combine_shape_mismatch_raises(self):
        a = mk(2, 2, [(0, 0, 1.0)])
        b = mk(2, 3, [(0, 0, 1.0)])
        with pytest.raises(ValueError, match="shape"):
            a.combine(b)

    def test_filter(self):
        a = mk(2, 2, [(0, 0, 5.0), (0, 1, 2.0), (1, 1, 9.0)])
        out = a.filter(lambda v: v["w"] > 3.0)
        assert out.nnz == 2 and out.get(0, 1)["w"] == np.inf

    def test_filter_bad_mask_raises(self):
        a = mk(2, 2, [(0, 0, 5.0)])
        with pytest.raises(ValueError, match="mask"):
            a.filter(lambda v: np.ones(7, dtype=bool))

    def test_map_prunes_new_identities(self):
        a = mk(2, 2, [(0, 0, 5.0), (1, 1, 2.0)])
        out = a.map(lambda v: {"w": np.where(v["w"] > 3, np.inf, v["w"])})
        assert out.nnz == 1

    def test_map_changes_monoid(self):
        a = mk(2, 2, [(0, 0, 5.0)])
        out = a.map(
            lambda v: {"w": v["w"], "m": np.ones_like(v["w"])}, monoid=MULTPATH
        )
        assert out.monoid is MULTPATH and out.get(0, 0)["m"] == 1.0

    def test_align_values_identity_default(self):
        a = mk(2, 2, [(0, 0, 1.0), (1, 1, 2.0)])
        b = mk(2, 2, [(1, 1, 9.0)])
        aligned = a.align_values(b)
        assert aligned["w"][0] == np.inf and aligned["w"][1] == 9.0

    def test_align_values_empty_other(self):
        a = mk(2, 2, [(0, 0, 1.0)])
        b = SpMat.empty(2, 2, W)
        aligned = a.align_values(b)
        assert np.isinf(aligned["w"]).all()

    def test_zip_filter(self):
        a = mk(2, 2, [(0, 0, 1.0), (1, 1, 5.0)])
        b = mk(2, 2, [(1, 1, 5.0)])
        out = a.zip_filter(b, lambda av, bv: av["w"] == bv["w"])
        assert out.nnz == 1 and out.get(1, 1)["w"] == 5.0

    def test_zip_map(self):
        a = mk(2, 2, [(0, 0, 1.0), (1, 1, 5.0)])
        b = mk(2, 2, [(1, 1, 2.0)], monoid=PLUS)
        out = a.zip_map(b, lambda av, bv: {"w": av["w"] + bv["w"]})
        assert out.get(1, 1)["w"] == 7.0
        # where b has no entry, its PLUS identity 0 is used: 1.0 + 0 = 1.0
        assert out.get(0, 0)["w"] == 1.0

    def test_column_and_row_sums(self):
        a = mk(2, 3, [(0, 0, 1.0), (0, 2, 2.0), (1, 2, 3.0)], monoid=PLUS)
        assert list(a.column_sums("w")) == [1.0, 0.0, 5.0]
        assert list(a.row_sums("w")) == [3.0, 3.0]


class TestStructural:
    def test_transpose_roundtrip(self, rng):
        a = random_weight_spmat(rng, 7, 5, 0.4)
        t = a.transpose()
        assert t.shape == (5, 7)
        assert t.transpose().equals(a)

    def test_block(self):
        a = mk(4, 4, [(0, 0, 1.0), (2, 3, 2.0), (3, 1, 3.0)])
        b = a.block(2, 4, 1, 4)
        assert b.shape == (2, 3)
        assert b.get(0, 2)["w"] == 2.0
        assert b.get(1, 0)["w"] == 3.0

    def test_block_out_of_bounds_raises(self):
        a = mk(2, 2, [(0, 0, 1.0)])
        with pytest.raises(ValueError, match="out of bounds"):
            a.block(0, 3, 0, 1)

    def test_select_rows(self):
        a = mk(4, 3, [(0, 0, 1.0), (2, 1, 2.0), (3, 2, 3.0)])
        s = a.select_rows(np.array([3, 0]))
        assert s.shape == (2, 3)
        assert s.get(0, 2)["w"] == 3.0
        assert s.get(1, 0)["w"] == 1.0
        assert s.get(0, 1)["w"] == np.inf

    def test_copy_independent(self):
        a = mk(2, 2, [(0, 0, 1.0)])
        b = a.copy()
        b.vals["w"][0] = 99.0
        assert a.get(0, 0)["w"] == 1.0

    def test_equals(self):
        a = mk(2, 2, [(0, 0, 1.0)])
        b = mk(2, 2, [(0, 0, 1.0)])
        c = mk(2, 2, [(0, 0, 2.0)])
        assert a.equals(b) and not a.equals(c)
        assert not a.equals(mk(2, 2, [(0, 1, 1.0)]))
