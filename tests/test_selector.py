"""Cost models and the plan selector (CTF mapping-search behaviour)."""


import pytest

from repro.machine import CostParams, Machine
from repro.machine.machine import MemoryLimitExceeded
from repro.spgemm import (
    AutoPolicy,
    PinnedPolicy,
    Plan,
    Square2DPolicy,
    estimate_nnz_c,
    estimate_ops,
    model_1d,
    model_2d,
    model_3d,
)
from repro.spgemm.costmodel import model_plan
from repro.spgemm.selector import amortized_model_plan, enumerate_plans


class TestEstimators:
    def test_ops_uniform(self):
        # nnz(A)·nnz(B)/k
        assert estimate_ops(10, 20, 10, 100, 200) == pytest.approx(1000.0)

    def test_nnz_c_capped_by_dense(self):
        assert estimate_nnz_c(3, 100, 3, 10_000, 10_000) == 9.0

    def test_zero_k(self):
        assert estimate_ops(5, 0, 5, 0, 0) == 0.0


class TestModels:
    def test_1d_words_scale_with_replicated_operand(self):
        a = model_1d("A", 16, nnz_a=1000, nnz_b=10, nnz_c=10, ops=100)
        b = model_1d("B", 16, nnz_a=1000, nnz_b=10, nnz_c=10, ops=100)
        assert a.words == 2000 and b.words == 20

    def test_2d_words_formula(self):
        est = model_2d("AB", 4, 8, nnz_a=800, nnz_b=1600, nnz_c=0, ops=0)
        assert est.words == pytest.approx(2 * (800 / 4 + 1600 / 8))

    def test_2d_latency_lcm_steps(self):
        est_sq = model_2d("AB", 4, 4, 1, 1, 1, 0)
        est_bad = model_2d("AB", 8, 2, 1, 1, 1, 0)
        # lcm(8,2)=8 = max; lcm(4,4)=4: fewer steps on the square grid
        assert est_sq.msgs < est_bad.msgs

    def test_3d_memory_includes_replication(self):
        est = model_3d("A", "AB", 4, 2, 2, nnz_a=1600, nnz_b=16, nnz_c=16, ops=0)
        # replicated A: nnz_a·p1/p = 1600·4/16 = 400 per rank at least
        assert est.memory_words >= 400

    def test_time_combines_terms(self):
        est = model_1d("A", 4, 100, 0, 0, ops=1000)
        # msgs = 2·log2(4) = 4, words = 2·nnz(A) = 200, flops = ops/p = 250
        t = est.time(alpha=1.0, beta=0.5, compute_rate=100.0)
        assert t == pytest.approx(4 * 1.0 + 200 * 0.5 + 250 / 100.0)

    def test_model_plan_dispatch(self):
        p1d = model_plan(Plan(4, 1, 1, "A", "AB"), 10, 10, 10, 80, 20)
        p2d = model_plan(Plan(1, 2, 2, "A", "AB"), 10, 10, 10, 80, 20)
        p3d = model_plan(Plan(2, 2, 1, "A", "AB"), 10, 10, 10, 80, 20)
        # 1D-A ships all of A (160 words); 2D ships panels (2·(40+10)=100)
        assert p1d.words == pytest.approx(160)
        assert p2d.words == pytest.approx(100)
        assert p3d.memory_words >= p2d.memory_words


class TestAmortization:
    def test_discount_removes_replication_words(self):
        plan = Plan(4, 2, 2, "B", "AB")
        full = amortized_model_plan(plan, 10, 100, 100, 50, 5000, frozenset())
        disc = amortized_model_plan(plan, 10, 100, 100, 50, 5000, frozenset("B"))
        assert disc.words == pytest.approx(full.words - 2 * 5000 / 4)

    def test_discount_1d(self):
        plan = Plan(4, 1, 1, "B", "AB")
        full = amortized_model_plan(plan, 10, 100, 100, 50, 5000, frozenset())
        disc = amortized_model_plan(plan, 10, 100, 100, 50, 5000, frozenset("B"))
        assert disc.words == pytest.approx(full.words - 2 * 5000)

    def test_no_discount_for_other_operand(self):
        plan = Plan(4, 2, 2, "A", "AB")
        full = amortized_model_plan(plan, 10, 100, 100, 50, 5000, frozenset())
        disc = amortized_model_plan(plan, 10, 100, 100, 50, 5000, frozenset("B"))
        assert disc.words == full.words


class TestAutoPolicy:
    def test_picks_cheapest_for_imbalanced_operands(self):
        """A tiny frontier times a huge adjacency should NOT replicate the
        frontier-to-everyone 1D-B style plan; the chosen plan's modeled cost
        must be minimal over the enumeration."""
        machine = Machine(16)
        pol = AutoPolicy()
        plan = pol.select(machine, 8, 10000, 10000, 50, 500_000)
        est = amortized_model_plan(plan, 8, 10000, 10000, 50, 500_000, frozenset())
        for other in enumerate_plans(16):
            est_o = amortized_model_plan(
                other, 8, 10000, 10000, 50, 500_000, frozenset()
            )
            assert est.time(1e-6, 1e-9, 1e9) <= est_o.time(1e-6, 1e-9, 1e9) + 1e-15

    def test_memory_budget_filters(self):
        # replicating the big operand everywhere (1D) needs ≥ 10k words/rank;
        # a budget of 8k forces a non-replicating 2D/3D plan.
        machine = Machine(16, memory_words=8000)
        pol = AutoPolicy()
        plan = pol.select(machine, 100, 100, 100, 10_000, 10_000)
        est = model_plan(plan, 100, 100, 100, 10_000, 10_000)
        assert est.memory_words <= 8000
        assert plan.kind != "1d"

    def test_impossible_budget_raises(self):
        machine = Machine(4, memory_words=1)
        with pytest.raises(MemoryLimitExceeded):
            AutoPolicy().select(machine, 100, 100, 100, 10_000, 10_000)

    def test_history_recorded(self):
        machine = Machine(4)
        pol = AutoPolicy()
        pol.select(machine, 10, 10, 10, 20, 20)
        assert len(pol.history) == 1

    def test_amortized_adjacency_prefers_replication_at_scale(self):
        """With the adjacency's replication amortized away and latency
        expensive, 3D/1D plans replicating B become competitive."""
        machine = Machine(64, cost=CostParams(alpha=1e-3, beta=1e-9))
        pol = AutoPolicy()
        plan = pol.select(
            machine, 512, 100_000, 100_000, 2_000, 1_000_000, amortized=frozenset("B")
        )
        # the selected plan must exploit the free replication of B
        assert plan.x == "B" or plan.kind == "2d"


class TestPinnedPolicies:
    def test_ca_mfbc_grid(self):
        pol = PinnedPolicy.ca_mfbc(16, c=4)
        assert (pol.plan.p1, pol.plan.p2, pol.plan.p3) == (4, 2, 2)
        assert pol.plan.x == "B"

    def test_ca_mfbc_c1_is_2d(self):
        pol = PinnedPolicy.ca_mfbc(16, c=1)
        assert pol.plan.kind == "2d" and pol.plan.p2 == pol.plan.p3 == 4

    def test_ca_mfbc_invalid(self):
        with pytest.raises(ValueError, match="divide"):
            PinnedPolicy.ca_mfbc(16, c=3)
        with pytest.raises(ValueError, match="square"):
            PinnedPolicy.ca_mfbc(8, c=1)

    def test_pinned_machine_mismatch(self):
        pol = PinnedPolicy.ca_mfbc(16, c=1)
        with pytest.raises(ValueError, match="ranks"):
            pol.select(Machine(8), 1, 1, 1, 1, 1)

    def test_square2d(self):
        plan = Square2DPolicy().select(Machine(16), 1, 1, 1, 1, 1)
        assert (plan.p2, plan.p3) == (4, 4) and plan.yz == "AB"

    def test_square2d_nonsquare_raises(self):
        with pytest.raises(ValueError, match="square"):
            Square2DPolicy().select(Machine(8), 1, 1, 1, 1, 1)


class TestEnumeration:
    @pytest.mark.parametrize("p", [1, 2, 4, 16])
    def test_all_plans_cover_p(self, p):
        for plan in enumerate_plans(p):
            assert plan.p == p

    def test_includes_all_kinds_at_16(self):
        kinds = {pl.kind for pl in enumerate_plans(16)}
        assert kinds == {"1d", "2d", "3d"}

    def test_plan_count_grows(self):
        assert len(enumerate_plans(16)) > len(enumerate_plans(4)) > len(
            enumerate_plans(2)
        )
