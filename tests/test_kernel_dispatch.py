"""The kernel dispatch tier: recognition, knobs, and generic/fast identity.

The contract under test is the one ``repro.check`` enforces at runtime:
every fast path must be **bit-identical** to the generic kernel at matched
chunking, for every recognized semiring, masked or not.  The generic kernel
is the oracle throughout.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import mfbc, obs, rmat_graph
from repro.algebra import (
    CENTPATH,
    MAX_MIN,
    MULTPATH,
    REAL_PLUS_TIMES,
    TROPICAL,
    MatMulSpec,
    Semiring,
    left_project,
)
from repro.algebra.monoid import MinMonoid, PlusMonoid
from repro.check import strategies as cst
from repro.check.replay import ReplayCase, load_case, replay, save_case
from repro.check.strategies import WEIGHT_MONOID
from repro.core.engine import SequentialEngine
from repro.core.specs import BELLMAN_FORD_SPEC, BRANDES_SPEC
from repro.dist import DistributedEngine
from repro.machine import Machine
from repro.sparse import (
    KERNEL_ENV,
    KernelTraits,
    SpGemmResult,
    SpMat,
    recognize,
    resolve_kernel_mode,
    set_default_kernel_mode,
    spgemm,
    spgemm_with_ops,
)
from repro.sparse import dispatch as dispatch_mod
from repro.sparse.dispatch import dispatch_spgemm, register_fast_path

CC_SPEC = Semiring(
    add_monoid=MinMonoid(), multiply=left_project, name="cc"
).matmul_spec()


@pytest.fixture(autouse=True)
def _clean_kernel_env(monkeypatch):
    """Every test starts from the ambient default (no env, no process default)."""
    monkeypatch.delenv(KERNEL_ENV, raising=False)
    set_default_kernel_mode(None)
    yield
    set_default_kernel_mode(None)


# ---------------------------------------------------------------------------
# recognition
# ---------------------------------------------------------------------------


class TestRecognition:
    @pytest.mark.parametrize(
        "spec, path, field",
        [
            (REAL_PLUS_TIMES.matmul_spec(), "plus-times", "w"),
            (TROPICAL.matmul_spec(), "soa-min", "w"),
            (TROPICAL.matmul_spec(name="bfs"), "soa-min", "w"),
            (MAX_MIN.matmul_spec(), "soa-max", "w"),
            (CC_SPEC, "soa-min", "w"),
            (BELLMAN_FORD_SPEC, "multpath", None),
            (BRANDES_SPEC, "centpath", None),
        ],
    )
    def test_builtin_traits(self, spec, path, field):
        assert recognize(spec) == KernelTraits(path, field=field)

    def test_opaque_action_unrecognized(self):
        # a bare callable carries no recognizable algebraic structure
        spec = MatMulSpec(MULTPATH, lambda a, b: a, name="opaque")
        assert recognize(spec) is None

    def test_extension_registration(self, rng):
        spec = MatMulSpec(MULTPATH, lambda a, b: a, name="ext")
        sentinel = SpGemmResult(SpMat.empty(2, 2, MULTPATH), 0)
        n_before = len(dispatch_mod._FAST_PATHS)
        register_fast_path(
            lambda s: KernelTraits("ext") if s.name == "ext" else None,
            lambda *a, **k: sentinel,
        )
        try:
            assert recognize(spec) == KernelTraits("ext")
            a = cst.random_weight_spmat(rng, 3, 3, 0.5)
            got = dispatch_spgemm(
                a, a, spec, mask_keys=None, mask_complement=False,
                chunk=1 << 22, mode="fast",
            )
            assert got is sentinel
        finally:
            del dispatch_mod._FAST_PATHS[n_before:]


# ---------------------------------------------------------------------------
# mode resolution (explicit > process default > env > auto)
# ---------------------------------------------------------------------------


class TestModeKnob:
    def test_default_is_auto(self):
        assert resolve_kernel_mode() == "auto"
        assert resolve_kernel_mode(None) == "auto"

    def test_env_beats_nothing(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "fast")
        assert resolve_kernel_mode() == "fast"

    def test_process_default_beats_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "fast")
        set_default_kernel_mode("generic")
        assert resolve_kernel_mode() == "generic"
        set_default_kernel_mode(None)  # clearing re-exposes the env
        assert resolve_kernel_mode() == "fast"

    def test_explicit_beats_all(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "fast")
        set_default_kernel_mode("generic")
        assert resolve_kernel_mode("auto") == "auto"

    def test_normalization_and_rejection(self):
        assert resolve_kernel_mode("  Fast ") == "fast"
        with pytest.raises(ValueError, match="unknown kernel mode"):
            resolve_kernel_mode("turbo")
        with pytest.raises(ValueError):
            set_default_kernel_mode("turbo")

    def test_sequential_engine_knob(self):
        assert SequentialEngine(kernel="fast").kernel == "fast"
        assert SequentialEngine().kernel is None

    def test_machine_knob(self):
        m = Machine(4, kernel="fast")
        assert m.kernel == "fast"
        assert m.executor.kernel_mode == "fast"
        assert "kernel=fast" in repr(m)
        assert Machine(4).kernel is None

    def test_cli_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["bc", "g.txt", "--kernel", "fast"])
        assert args.kernel == "fast"
        assert build_parser().parse_args(["bc", "g.txt"]).kernel is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bc", "g.txt", "--kernel", "turbo"])

    def test_spgemm_reads_env(self, rng, monkeypatch):
        # REPRO_KERNEL=generic must disable dispatch even for recognized specs
        a = cst.random_weight_spmat(rng, 6, 6, 0.5)
        metrics = obs.Metrics()
        monkeypatch.setenv(KERNEL_ENV, "generic")
        with obs.use(metrics=metrics):
            spgemm(a, a, TROPICAL.matmul_spec())
        assert metrics.total("kernel.dispatch") == 0.0

    def test_dispatch_counter(self, rng):
        a = cst.random_weight_spmat(rng, 6, 6, 0.5)
        metrics = obs.Metrics()
        with obs.use(metrics=metrics):
            spgemm(a, a, TROPICAL.matmul_spec(), kernel="fast")
        assert (
            metrics.total("kernel.dispatch", kernel="soa-min", outcome="hit") == 1.0
        )


# ---------------------------------------------------------------------------
# differential fuzz: fast == generic, bit for bit, at matched chunking
# ---------------------------------------------------------------------------


def _assert_identical(a, b, spec, mask, complement, chunk):
    gen = spgemm(
        a, b, spec, mask=mask, mask_complement=complement, chunk=chunk,
        kernel="generic",
    )
    for mode in ("fast", "auto"):
        got = spgemm(
            a, b, spec, mask=mask, mask_complement=complement, chunk=chunk,
            kernel=mode,
        )
        assert got.matrix.equals(gen.matrix), mode
        assert got.ops == gen.ops, mode


@st.composite
def _products(draw, a_monoid, b_monoid=None):
    """(a, b, mask, complement, chunk) with compatible shapes."""
    m = draw(st.integers(1, 7))
    k = draw(st.integers(1, 7))
    n = draw(st.integers(1, 7))
    a = draw(cst.spmats(monoid=a_monoid, shape=(m, k)))
    b = draw(cst.spmats(monoid=b_monoid or a_monoid, shape=(k, n)))
    mask = draw(
        st.none() | cst.spmats(monoid=WEIGHT_MONOID, shape=(m, n))
    )
    complement = draw(st.booleans()) if mask is not None else False
    chunk = draw(st.sampled_from([5, 64, 1 << 22]))
    return a, b, mask, complement, chunk


class TestDifferentialFuzz:
    @pytest.mark.parametrize(
        "spec",
        [
            REAL_PLUS_TIMES.matmul_spec(),
            TROPICAL.matmul_spec(),
            MAX_MIN.matmul_spec(),
            CC_SPEC,
        ],
        ids=lambda s: s.name,
    )
    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_semiring_paths(self, spec, data):
        a, b, mask, complement, chunk = data.draw(_products(spec.monoid))
        _assert_identical(a, b, spec, mask, complement, chunk)

    @pytest.mark.parametrize(
        "spec, a_monoid",
        [(BELLMAN_FORD_SPEC, MULTPATH), (BRANDES_SPEC, CENTPATH)],
        ids=["multpath", "centpath"],
    )
    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_pathsum_paths(self, spec, a_monoid, data):
        a, b, mask, complement, chunk = data.draw(
            _products(a_monoid, WEIGHT_MONOID)
        )
        _assert_identical(a, b, spec, mask, complement, chunk)

    def test_scipy_point_is_bitwise(self, rng):
        # big enough that auto takes the compiled scipy plus-times path
        mask = rng.random((48, 48)) < 0.5
        r, c = mask.nonzero()
        vals = rng.integers(1, 9, len(r)).astype(np.float64)
        a = SpMat(48, 48, r, c, {"w": vals}, PlusMonoid())
        _assert_identical(a, a, REAL_PLUS_TIMES.matmul_spec(), None, False, 1 << 22)

    def test_empty_operands(self):
        for monoid, spec in [
            (MinMonoid(), TROPICAL.matmul_spec()),
            (MULTPATH, BELLMAN_FORD_SPEC),
        ]:
            a = SpMat.empty(4, 5, monoid)
            b = SpMat.empty(5, 3, WEIGHT_MONOID)
            _assert_identical(a, b, spec, None, False, 1 << 22)


# ---------------------------------------------------------------------------
# mask semantics (mode-independent)
# ---------------------------------------------------------------------------


class TestMaskSemantics:
    @pytest.fixture
    def abm(self, rng):
        a = cst.random_weight_spmat(rng, 8, 8, 0.4)
        b = cst.random_weight_spmat(rng, 8, 8, 0.4)
        mask = cst.random_weight_spmat(rng, 8, 8, 0.3)
        return a, b, mask

    @pytest.mark.parametrize("kernel", ["generic", "fast"])
    def test_mask_restricts_support(self, abm, kernel):
        a, b, mask = abm
        spec = TROPICAL.matmul_spec()
        full = spgemm(a, b, spec, kernel=kernel)
        kept = spgemm(a, b, spec, mask=mask, kernel=kernel)
        comp = spgemm(a, b, spec, mask=mask, mask_complement=True, kernel=kernel)
        mk = set(zip(mask.rows.tolist(), mask.cols.tolist()))
        kept_keys = set(zip(kept.matrix.rows.tolist(), kept.matrix.cols.tolist()))
        comp_keys = set(zip(comp.matrix.rows.tolist(), comp.matrix.cols.tolist()))
        full_keys = set(zip(full.matrix.rows.tolist(), full.matrix.cols.tolist()))
        assert kept_keys == full_keys & mk
        assert comp_keys == full_keys - mk
        # masked ops count only the surviving elementary products
        assert kept.ops + comp.ops == full.ops

    @pytest.mark.parametrize("kernel", ["generic", "fast"])
    def test_empty_mask(self, abm, kernel):
        a, b, _ = abm
        spec = TROPICAL.matmul_spec()
        empty = SpMat.empty(8, 8, WEIGHT_MONOID)
        out = spgemm(a, b, spec, mask=empty, kernel=kernel)
        assert out.matrix.nnz == 0 and out.ops == 0
        # complemented empty mask excludes nothing
        out = spgemm(a, b, spec, mask=empty, mask_complement=True, kernel=kernel)
        ref = spgemm(a, b, spec, kernel="generic")
        assert out.matrix.equals(ref.matrix) and out.ops == ref.ops

    def test_mask_shape_validated(self, abm):
        a, b, _ = abm
        bad = SpMat.empty(3, 3, WEIGHT_MONOID)
        with pytest.raises(ValueError):
            spgemm(a, b, TROPICAL.matmul_spec(), mask=bad)


# ---------------------------------------------------------------------------
# unified signature + deprecated alias
# ---------------------------------------------------------------------------


class TestUnifiedApi:
    def test_spgemm_with_ops_deprecated(self, rng):
        a = cst.random_weight_spmat(rng, 5, 5, 0.5)
        spec = TROPICAL.matmul_spec()
        with pytest.warns(DeprecationWarning, match="spgemm"):
            old = spgemm_with_ops(a, a, spec)
        new = spgemm(a, a, spec)
        assert old.matrix.equals(new.matrix) and old.ops == new.ops

    def test_result_shape(self, rng):
        a = cst.random_weight_spmat(rng, 5, 5, 0.5)
        res = spgemm(a, a, TROPICAL.matmul_spec())
        assert isinstance(res, SpGemmResult)
        mat, ops = res  # SpGemmResult unpacks like the old tuple
        assert mat is res.matrix and ops == res.ops


# ---------------------------------------------------------------------------
# end to end: the full MFBC pipeline is mode-invariant
# ---------------------------------------------------------------------------


class TestEndToEnd:
    def test_mfbc_sequential_bitwise(self):
        g = rmat_graph(scale=5, avg_degree=4, seed=3)
        ref = mfbc(g, engine=SequentialEngine(kernel="generic")).scores
        for mode in ("auto", "fast"):
            got = mfbc(g, engine=SequentialEngine(kernel=mode)).scores
            assert np.array_equal(ref, got), mode

    def test_mfbc_distributed_checked_fast(self):
        # full differential replay: every fast-path product is re-verified
        # against the generic oracle inside CheckedEngine
        g = rmat_graph(scale=4, avg_degree=4, seed=7)
        ref = mfbc(g, engine=SequentialEngine(kernel="generic")).scores
        machine = Machine(4, kernel="fast")
        engine = DistributedEngine(machine, check="full")
        got = mfbc(g, engine=engine).scores
        assert np.array_equal(ref, got)
        stats = engine.stats
        assert stats["mismatches"] == 0 and stats["replayed"] > 0


# ---------------------------------------------------------------------------
# replay cases carry masks (v2) and still load v1 archives
# ---------------------------------------------------------------------------


class TestReplayCases:
    def _case(self, rng, *, mask):
        a = cst.random_weight_spmat(rng, 6, 6, 0.5)
        b = cst.random_weight_spmat(rng, 6, 6, 0.5)
        got = spgemm(a, b, TROPICAL.matmul_spec(), mask=mask, kernel="generic")
        return ReplayCase(
            a=a,
            b=b,
            spec_name="tropical",
            got=got.matrix,
            got_ops=got.ops,
            mask=mask,
        )

    def test_masked_roundtrip(self, rng, tmp_path):
        mask = cst.random_weight_spmat(rng, 6, 6, 0.4)
        case = self._case(rng, mask=mask)
        path = tmp_path / "case.npz"
        save_case(case, path)
        loaded = load_case(path)
        assert loaded.mask is not None and loaded.mask.equals(mask)
        assert not loaded.mask_complement
        assert replay(loaded).matches

    def test_v1_archive_still_loads(self, rng, tmp_path):
        case = self._case(rng, mask=None)
        path = tmp_path / "case.npz"
        save_case(case, path)
        # rewrite the archive as a pre-mask v1 case
        data = dict(np.load(path))
        meta = json.loads(bytes(data["meta"]).decode())
        meta["version"] = 1
        del meta["mask_complement"]
        data["meta"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
        v1 = tmp_path / "case_v1.npz"
        np.savez(v1, **data)
        loaded = load_case(v1)
        assert loaded.mask is None and not loaded.mask_complement
        assert replay(loaded).matches
