"""SSSP kernels and APSP baselines as independent cross-checks."""

import numpy as np
import pytest
import scipy.sparse.csgraph

from repro.baselines import (
    bellman_ford_sssp,
    dijkstra_sssp,
    floyd_warshall,
    path_doubling_apsp,
)
from repro.baselines.apsp import dense_distance_matrix
from repro.baselines.brandes import brandes_bc, brandes_single_source
from repro.baselines.sssp import bfs_sssp
from repro.graphs import uniform_random_graph_nm, with_random_weights

from conftest import nx_reference_bc


def _cmp_dist(a, b):
    return np.allclose(np.nan_to_num(a, posinf=-1), np.nan_to_num(b, posinf=-1))


class TestSSSP:
    @pytest.mark.parametrize("seed", range(3))
    def test_bf_equals_dijkstra_weighted(self, seed):
        g = with_random_weights(
            uniform_random_graph_nm(40, 4.0, seed=seed), 1, 9, seed=seed
        )
        d1, s1 = bellman_ford_sssp(g, 0)
        d2, s2 = dijkstra_sssp(g, 0)
        assert _cmp_dist(d1, d2) and np.allclose(s1, s2)

    def test_bf_equals_bfs_unweighted(self, small_undirected):
        d1, s1 = bellman_ford_sssp(small_undirected, 3)
        d2, s2 = bfs_sssp(small_undirected, 3)
        assert _cmp_dist(d1, d2) and np.allclose(s1, s2)

    def test_distances_match_scipy(self, small_directed):
        d, _ = dijkstra_sssp(small_directed, 1)
        ref = scipy.sparse.csgraph.dijkstra(
            small_directed.adjacency_scipy(), indices=1, directed=True
        )
        assert _cmp_dist(d, ref)

    def test_multiplicity_diamond(self, diamond_graph):
        for fn in (bfs_sssp, dijkstra_sssp, bellman_ford_sssp):
            d, s = fn(diamond_graph, 0)
            assert d[3] == 2.0 and s[3] == 2.0, fn.__name__


class TestAPSP:
    def test_fw_matches_scipy(self, small_weighted):
        fw = floyd_warshall(small_weighted)
        ref = scipy.sparse.csgraph.shortest_path(small_weighted.adjacency_scipy())
        assert _cmp_dist(fw, ref)

    def test_path_doubling_matches_fw(self, small_weighted):
        fw = floyd_warshall(small_weighted)
        pd, rounds = path_doubling_apsp(small_weighted)
        assert _cmp_dist(fw, pd)
        # log-depth round count (§5.3.3's latency advantage)
        assert rounds <= int(np.ceil(np.log2(small_weighted.n))) + 1

    def test_dense_matrix_diagonal_zero(self, small_weighted):
        d = dense_distance_matrix(small_weighted)
        assert np.allclose(np.diag(d), 0.0)

    def test_directed_apsp(self):
        g = uniform_random_graph_nm(25, 3.0, directed=True, seed=2)
        fw = floyd_warshall(g)
        ref = scipy.sparse.csgraph.shortest_path(g.adjacency_scipy(), directed=True)
        assert _cmp_dist(fw, ref)


class TestBrandes:
    def test_matches_networkx(self, small_weighted_directed):
        got = brandes_bc(small_weighted_directed)
        assert np.allclose(got, nx_reference_bc(small_weighted_directed), atol=1e-8)

    def test_single_source_no_self_dependency(self, small_undirected):
        delta = brandes_single_source(small_undirected, 4)
        assert delta[4] == 0.0

    def test_sources_subset_additivity(self, small_undirected):
        a = brandes_bc(small_undirected, sources=np.array([0, 1]))
        b = brandes_bc(small_undirected, sources=np.array([2]))
        ab = brandes_bc(small_undirected, sources=np.array([0, 1, 2]))
        assert np.allclose(a + b, ab, atol=1e-10)
