"""The observability subsystem: tracer, metrics, hooks, export, reconciliation."""

import json
import time

import numpy as np
import pytest

from repro import obs
from repro.core.mfbc import mfbc
from repro.dist.engine import DistributedEngine
from repro.spgemm.selector import PinnedPolicy
from repro.graphs import uniform_random_graph_nm
from repro.machine.machine import Machine
from repro.obs.tracer import PID_MODELED, PID_WALL


@pytest.fixture(autouse=True)
def _no_leaked_sessions():
    """Every test must leave the global session stack empty."""
    yield
    while obs.disable() is not None:
        pass


@pytest.fixture
def traced_run():
    """One traced simulated MFBC run: (tracer, metrics, machine)."""
    g = uniform_random_graph_nm(100, 4.0, seed=3)
    machine = Machine(16)
    session = obs.enable()
    obs.set_modeled_clock(machine.ledger.critical_time)
    try:
        engine = DistributedEngine(machine)
        mfbc(g, batch_size=32, engine=engine, max_batches=2)
    finally:
        obs.disable()
    return session.tracer, session.metrics, machine


class TestSpanNesting:
    def test_parents_depths_and_attributes(self):
        tr = obs.Tracer()
        with tr.span("outer", cat="run", a=1) as outer:
            with tr.span("inner", cat="phase") as inner:
                inner.set(found=7)
            tr.complete("leaf", cat="collective", modeled_ts=0.0, modeled_dur=1.0)
        assert outer.parent is None and outer.depth == 0
        assert inner.parent == outer.index and inner.depth == 1
        leaf = tr.find("leaf")[0]
        assert leaf.parent == outer.index
        assert outer.args == {"a": 1}
        assert inner.args == {"found": 7}
        assert tr.roots() == [outer]
        assert tr.children(outer) == [inner, leaf]
        assert outer.closed and outer.wall_dur >= inner.wall_dur >= 0.0

    def test_mismatched_end_raises(self):
        tr = obs.Tracer()
        a = tr.begin("a")
        tr.begin("b")
        with pytest.raises(RuntimeError, match="stack corrupted"):
            tr.end(a)

    def test_modeled_clock_records_modeled_durations(self):
        clock = [0.0]
        tr = obs.Tracer(modeled_clock=lambda: clock[0])
        with tr.span("work") as sp:
            clock[0] += 2.5
        assert sp.modeled_ts == 0.0
        assert sp.modeled_dur == pytest.approx(2.5)


class TestChromeExport:
    def test_schema_valid_and_loadable(self, traced_run):
        tracer, _, _ = traced_run
        trace = obs.chrome_trace(tracer)
        obs.validate_chrome_trace(trace)  # must not raise
        # round-trips through JSON
        loaded = json.loads(json.dumps(trace))
        events = loaded["traceEvents"]
        x_events = [e for e in events if e["ph"] == "X"]
        assert x_events, "expected complete events"
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in x_events)
        pids = {e["pid"] for e in x_events}
        assert pids == {PID_WALL, PID_MODELED}
        # the interesting span categories all made it into the trace
        cats = {e["cat"] for e in x_events}
        assert {"run", "batch", "phase", "spgemm", "collective", "selector"} <= cats

    def test_spgemm_events_carry_variant_attrs(self, traced_run):
        tracer, _, _ = traced_run
        spg = tracer.find(cat="spgemm")
        assert spg
        for sp in spg:
            assert "variant" in sp.args and "product_nnz" in sp.args

    def test_collective_events_carry_traffic_attrs(self, traced_run):
        tracer, _, _ = traced_run
        colls = tracer.find(cat="collective")
        assert colls
        for sp in colls:
            assert sp.args["ranks"] >= 2
            assert sp.args["words"] >= 0 and sp.args["msgs"] >= 0
            assert sp.modeled_dur is not None and sp.modeled_dur >= 0

    def test_monotonic_consistency_rejects_bad_trace(self):
        bad = {
            "traceEvents": [
                {"name": "a", "ph": "X", "pid": 1, "tid": 0, "ts": -5.0, "dur": 1.0}
            ]
        }
        with pytest.raises(ValueError, match="invalid ts"):
            obs.validate_chrome_trace(bad)
        overlap = {
            "traceEvents": [
                {"name": "a", "ph": "X", "pid": 1, "tid": 0, "ts": 0.0, "dur": 10.0},
                {"name": "b", "ph": "X", "pid": 1, "tid": 0, "ts": 5.0, "dur": 10.0},
            ]
        }
        with pytest.raises(ValueError, match="overlaps"):
            obs.validate_chrome_trace(overlap)

    def test_ca_policy_overlapping_collectives_get_lanes(self):
        # Under the 3D CA policy, collectives over disjoint fiber groups
        # overlap in modeled time; chrome_trace must spread them over
        # extra thread rows so each row stays properly nested.
        g = uniform_random_graph_nm(100, 4.0, seed=3)
        machine = Machine(16)
        session = obs.enable()
        obs.set_modeled_clock(machine.ledger.critical_time)
        try:
            engine = DistributedEngine(machine, policy=PinnedPolicy.ca_mfbc(p=16, c=4))
            mfbc(g, batch_size=32, engine=engine, max_batches=1)
        finally:
            obs.disable()
        trace = obs.chrome_trace(session.tracer)
        obs.validate_chrome_trace(trace)  # must not raise
        coll_tids = {
            e["tid"]
            for e in trace["traceEvents"]
            if e["ph"] == "X" and e["pid"] == PID_MODELED and e["cat"] == "collective"
        }
        assert min(coll_tids) == 1
        assert len(coll_tids) > 1, "expected overlapping collectives on extra lanes"
        lane_names = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name" and e["pid"] == PID_MODELED
        }
        assert len(lane_names) == len(coll_tids)

    def test_write_files(self, traced_run, tmp_path):
        tracer, metrics, _ = traced_run
        trace = obs.write_chrome_trace(tracer, tmp_path / "trace.json")
        with open(tmp_path / "trace.json") as fh:
            assert json.load(fh) == json.loads(json.dumps(trace))
        n = obs.write_jsonl(tracer, tmp_path / "trace.jsonl", metrics=metrics)
        lines = (tmp_path / "trace.jsonl").read_text().strip().splitlines()
        assert len(lines) == n
        kinds = {json.loads(line)["kind"] for line in lines}
        assert kinds == {"span", "metric"}


class TestReconciliation:
    def test_span_totals_match_ledger_within_1pct(self, traced_run):
        tracer, _, machine = traced_run
        rec = obs.reconcile(tracer, machine.ledger)
        assert rec["ledger_seconds"] > 0
        assert rec["relative_error"] <= 0.01

    def test_trace_attribution_covers_comm_time(self, traced_run):
        from repro.analysis.report import format_trace_report, trace_attribution

        tracer, _, machine = traced_run
        rows = trace_attribution(tracer, machine.ledger)
        assert rows
        cats = {r["category"] for r in rows}
        assert "redistribute" in cats
        comm = sum(r["seconds"] for r in rows)
        # collective spans account for the ledger's comm critical path
        # (they are the only source of comm time charges)
        assert comm > 0
        assert comm <= machine.ledger.critical_time() + 1e-12
        text = format_trace_report(tracer, machine.ledger)
        assert "redistribute" in text and "% of critical" in text


class TestDisabledMode:
    def test_hooks_are_noops(self):
        assert not obs.enabled()
        sp = obs.span("x", cat="y", huge=1)
        assert sp is obs.NULL_SPAN
        with sp as inner:
            inner.set(anything=1)  # must not raise
        assert obs.complete("x", modeled_ts=0.0, modeled_dur=1.0) is None
        obs.count("c")
        obs.gauge("g", 1.0)
        obs.observe("h", 1.0)
        obs.set_attr(a=1)
        assert obs.tracer() is None and obs.metrics() is None

    def test_null_span_is_shared_singleton(self):
        assert obs.span("a") is obs.span("b")

    def test_set_modeled_clock_requires_session(self):
        with pytest.raises(RuntimeError, match="no active"):
            obs.set_modeled_clock(lambda: 0.0)

    def test_no_measurable_overhead(self):
        """The disabled fast path must stay within noise of a bare loop."""

        def bare(n):
            acc = 0
            for i in range(n):
                acc += i
            return acc

        def instrumented(n):
            acc = 0
            for i in range(n):
                if obs.enabled():
                    obs.count("hot.iteration", 1.0, i=i)
                acc += i
            return acc

        n = 50_000
        bare(n), instrumented(n)  # warm up

        def best(fn):  # best-of-5 for stability
            best_t = float("inf")
            for _ in range(5):
                t0 = time.perf_counter()
                fn(n)
                best_t = min(best_t, time.perf_counter() - t0)
            return best_t

        t_bare, t_inst = best(bare), best(instrumented)
        # loose bound: guarded hook adds one truthiness check per iteration
        assert t_inst < t_bare * 3 + 0.05

    def test_sequential_spgemm_identical_disabled(self):
        from repro.core.engine import SequentialEngine

        g = uniform_random_graph_nm(60, 4.0, seed=5)
        ref = mfbc(g, batch_size=30, engine=SequentialEngine()).scores
        session = obs.enable()
        try:
            traced = mfbc(g, batch_size=30, engine=SequentialEngine()).scores
        finally:
            obs.disable()
        assert np.allclose(ref, traced)
        assert session.tracer.find(cat="spgemm")


class TestMetrics:
    def test_counter_label_aggregation(self):
        m = obs.Metrics()
        m.count("words", 10.0, category="bcast", phase="fwd")
        m.count("words", 5.0, category="bcast", phase="bwd")
        m.count("words", 2.0, category="reduce", phase="fwd")
        assert m.get_count("words", category="bcast", phase="fwd") == 10.0
        assert m.total("words", category="bcast") == 15.0
        assert m.total("words", phase="fwd") == 12.0
        assert m.total("words") == 17.0
        # label order at the call site does not matter
        m.count("words", 1.0, phase="fwd", category="bcast")
        assert m.get_count("words", category="bcast", phase="fwd") == 11.0

    def test_gauge_and_histogram(self):
        m = obs.Metrics()
        m.gauge("imbalance", 1.5, p=4)
        m.gauge("imbalance", 1.2, p=4)
        assert m.get_gauge("imbalance", p=4) == 1.2
        for v in (1.0, 3.0, 2.0):
            m.observe("lat", v, op="bcast")
        h = m.get_histogram("lat", op="bcast")
        assert (h.count, h.min, h.max) == (3, 1.0, 3.0)
        assert h.mean == pytest.approx(2.0)
        assert m.names() == ["imbalance", "lat"]

    def test_snapshot_rows(self):
        m = obs.Metrics()
        m.count("c", 1.0, k="v")
        m.gauge("g", 2.0)
        m.observe("h", 3.0)
        rows = m.snapshot()
        assert {r["type"] for r in rows} == {"counter", "gauge", "histogram"}
        json.dumps(rows)  # exportable

    def test_traced_run_metrics(self, traced_run):
        _, metrics, machine = traced_run
        # the metric stream reconciles with the ledger's flat totals
        assert metrics.total("machine.words") == pytest.approx(
            machine.ledger.total_words
        )
        assert metrics.total("machine.msgs") == pytest.approx(
            machine.ledger.total_msgs
        )
        assert metrics.total("spgemm.products") > 0
        assert metrics.total("selector.selections") > 0
        # adjacency replication cache: first product misses, later ones hit
        assert metrics.get_count("spgemm.replication_cache", outcome="hit") >= 0


class TestSessionStack:
    def test_use_is_private_capture(self):
        outer = obs.enable()
        with obs.use() as inner_session:
            obs.count("x")
            with obs.span("inner-only"):
                pass
        obs.count("y")
        obs.disable()
        assert inner_session.metrics.get_count("x") == 1.0
        assert outer.metrics.get_count("x") == 0.0
        assert outer.metrics.get_count("y") == 1.0
        assert [s.name for s in inner_session.tracer.spans] == ["inner-only"]
        assert not outer.tracer.find("inner-only")

    def test_recording_engine_adapter(self):
        from repro.analysis._trace import RecordingEngine
        from repro.analysis.scaling import trace_combblas

        g = uniform_random_graph_nm(60, 4.0, seed=11)
        stats, srcs = trace_combblas(g, batch_size=30, max_batches=1)
        assert srcs == 30
        its = stats.batches[0].iterations
        assert its
        for it in its:
            assert it.phase == "real"
            assert it.ops >= 0 and it.product_nnz >= 0

        # the adapter must not disturb an outer session
        outer = obs.enable()
        eng = RecordingEngine()
        from repro.baselines.combblas_bc import combblas_bc

        combblas_bc(g, batch_size=30, engine=eng, max_batches=1)
        obs.disable()
        assert eng.records  # captured privately
        assert not outer.tracer.find(cat="spgemm")  # nothing leaked out
        assert outer.tracer.find("combblas")  # driver spans still outer


class TestTimer:
    def test_timed_records_into_default_metrics_without_session(self):
        before = obs.default_metrics().get_histogram("bench.op", tag="t")
        count0 = before.count if before else 0
        with obs.timed("bench.op", tag="t") as t:
            time.sleep(0.001)
        assert t.seconds >= 0.001
        h = obs.default_metrics().get_histogram("bench.op", tag="t")
        assert h.count == count0 + 1

    def test_timed_lands_in_active_session(self):
        session = obs.enable()
        with obs.timed("bench.op2"):
            pass
        obs.disable()
        assert session.metrics.get_histogram("bench.op2").count == 1
        spans = session.tracer.find("bench.op2", cat="timer")
        assert len(spans) == 1 and spans[0].wall_dur >= 0
