"""The extensibility showcase: BFS, SSSP, components, triangles — both
engines, against scipy/networkx oracles."""

import numpy as np
import pytest
import scipy.sparse.csgraph

from repro.apps import (
    bfs_levels,
    connected_components,
    sssp_distances,
    triangle_count,
    widest_path_widths,
)
from repro.dist import DistributedEngine
from repro.graphs import Graph, uniform_random_graph_nm, with_random_weights
from repro.machine import Machine


def _cmp(a, b):
    return np.allclose(np.nan_to_num(a, posinf=-1), np.nan_to_num(b, posinf=-1))


class TestBFS:
    @pytest.mark.parametrize("directed", [False, True])
    def test_matches_scipy(self, directed):
        g = uniform_random_graph_nm(50, 4.0, directed=directed, seed=61)
        got = bfs_levels(g, np.arange(5))
        ref = scipy.sparse.csgraph.shortest_path(
            g.adjacency_scipy(), unweighted=True, indices=np.arange(5),
            directed=directed,
        )
        assert _cmp(got, ref)

    def test_weights_ignored(self, small_weighted):
        got = bfs_levels(small_weighted, [0])
        ref = scipy.sparse.csgraph.shortest_path(
            small_weighted.adjacency_scipy(), unweighted=True, indices=0
        )
        assert _cmp(got[0], ref)

    def test_distributed(self, small_undirected):
        ref = bfs_levels(small_undirected, [0, 1])
        eng = DistributedEngine(Machine(4))
        got = bfs_levels(small_undirected, [0, 1], engine=eng)
        assert _cmp(got, ref)

    def test_empty_sources_raises(self, small_undirected):
        with pytest.raises(ValueError, match="empty"):
            bfs_levels(small_undirected, [])


class TestSSSP:
    @pytest.mark.parametrize("directed", [False, True])
    def test_matches_scipy(self, directed):
        g = uniform_random_graph_nm(40, 4.0, directed=directed, seed=63)
        g = with_random_weights(g, 1, 9, seed=63)
        got = sssp_distances(g, [0, 3, 7])
        ref = scipy.sparse.csgraph.shortest_path(
            g.adjacency_scipy(), indices=[0, 3, 7], directed=directed
        )
        assert _cmp(got, ref)

    def test_distributed(self, small_weighted):
        ref = sssp_distances(small_weighted, [2])
        eng = DistributedEngine(Machine(4))
        got = sssp_distances(small_weighted, [2], engine=eng)
        assert _cmp(got, ref)

    def test_max_iterations_guard(self, small_weighted):
        with pytest.raises(RuntimeError, match="converge"):
            sssp_distances(small_weighted, [0], max_iterations=1)


class TestConnectedComponents:
    def test_two_components(self):
        g = Graph(6, np.array([0, 1, 3, 4]), np.array([1, 2, 4, 5]))
        labels = connected_components(g)
        assert list(labels) == [0, 0, 0, 3, 3, 3]

    def test_matches_scipy(self, small_undirected):
        labels = connected_components(small_undirected)
        _, ref = scipy.sparse.csgraph.connected_components(
            small_undirected.adjacency_scipy(), directed=False
        )
        # same partition (label values differ)
        for comp in np.unique(ref):
            members = ref == comp
            assert len(np.unique(labels[members])) == 1

    def test_directed_weak(self):
        g = Graph(4, np.array([0, 2]), np.array([1, 3]), directed=True)
        labels = connected_components(g)
        assert labels[0] == labels[1] and labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_distributed(self, small_undirected):
        ref = connected_components(small_undirected)
        got = connected_components(
            small_undirected, engine=DistributedEngine(Machine(4))
        )
        assert np.array_equal(ref, got)


class TestTriangles:
    def test_single_triangle(self):
        g = Graph(3, np.array([0, 1, 2]), np.array([1, 2, 0]))
        assert triangle_count(g) == 1

    def test_clique(self):
        n = 6
        src, dst = np.triu_indices(n, k=1)
        g = Graph(n, src, dst)
        assert triangle_count(g) == n * (n - 1) * (n - 2) // 6

    def test_triangle_free(self, path_graph):
        assert triangle_count(path_graph) == 0

    def test_matches_networkx(self, small_undirected):
        import networkx as nx

        ref = sum(nx.triangles(small_undirected.to_networkx()).values()) // 3
        assert triangle_count(small_undirected) == ref

    def test_distributed(self, small_undirected):
        ref = triangle_count(small_undirected)
        got = triangle_count(
            small_undirected, engine=DistributedEngine(Machine(4))
        )
        assert got == ref


def widest_oracle(graph, source):
    """Modified Dijkstra maximizing the bottleneck capacity."""
    import heapq

    adj = graph.adjacency_scipy()
    width = np.full(graph.n, -np.inf)
    width[source] = np.inf
    heap = [(-np.inf, source)]  # max-heap via negation
    done = np.zeros(graph.n, dtype=bool)
    indptr, indices, data = adj.indptr, adj.indices, adj.data
    while heap:
        negw, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        for pos in range(indptr[u], indptr[u + 1]):
            v = indices[pos]
            cand = min(width[u], data[pos])
            if cand > width[v]:
                width[v] = cand
                heapq.heappush(heap, (-cand, v))
    return width


class TestWidestPath:
    @pytest.mark.parametrize("directed", [False, True])
    def test_matches_oracle(self, directed):
        g = uniform_random_graph_nm(40, 4.0, directed=directed, seed=67)
        g = with_random_weights(g, 1, 20, seed=67)
        got = widest_path_widths(g, [0, 5])
        for row, s in enumerate((0, 5)):
            ref = widest_oracle(g, s)
            assert np.allclose(
                np.nan_to_num(got[row], posinf=1e18, neginf=-1e18),
                np.nan_to_num(ref, posinf=1e18, neginf=-1e18),
            )

    def test_series_parallel(self):
        """Two routes: capacity 5 direct, capacity min(8, 7) = 7 via middle."""
        g = Graph(
            3,
            np.array([0, 0, 1]),
            np.array([2, 1, 2]),
            np.array([5.0, 8.0, 7.0]),
        )
        got = widest_path_widths(g, [0])
        assert got[0][2] == 7.0

    def test_distributed(self, small_weighted):
        ref = widest_path_widths(small_weighted, [1])
        got = widest_path_widths(
            small_weighted, [1], engine=DistributedEngine(Machine(4))
        )
        assert np.allclose(
            np.nan_to_num(got, posinf=1e18, neginf=-1e18),
            np.nan_to_num(ref, posinf=1e18, neginf=-1e18),
        )

    def test_empty_sources_raises(self, small_weighted):
        with pytest.raises(ValueError, match="empty"):
            widest_path_widths(small_weighted, [])
