"""Determinism: identical seeds produce bit-identical graphs and scores.

Two guarantees worth pinning separately from correctness:

* the graph generators are pure functions of their seed — same seed, same
  edge list, byte for byte (regressions here silently invalidate every
  cross-run comparison in the benchmark suite);
* MFBC itself is deterministic across *executor backends*: serial, thread
  pool, and process pool runs of the same problem produce bit-identical
  score vectors, not merely close ones (floating-point min/+ reductions are
  reassociation-sensitive, so this pins the merge order too).
"""

import numpy as np
import pytest

from repro.core import mfbc
from repro.dist import DistributedEngine
from repro.graphs import (
    rmat_graph,
    uniform_random_graph_nm,
    with_random_weights,
)
from repro.machine import Machine
from repro.machine.executor import ProcessExecutor, SerialExecutor, ThreadExecutor


def _edges(g):
    return g.src, g.dst, g.edge_weights()


class TestGeneratorDeterminism:
    @pytest.mark.parametrize("seed", [0, 1, 12345])
    def test_rmat_is_seed_deterministic(self, seed):
        g1 = rmat_graph(6, 6, seed=seed)
        g2 = rmat_graph(6, 6, seed=seed)
        for x, y in zip(_edges(g1), _edges(g2)):
            assert np.array_equal(x, y)

    def test_rmat_seeds_differ(self):
        g1 = rmat_graph(6, 6, seed=0)
        g2 = rmat_graph(6, 6, seed=1)
        assert not (
            np.array_equal(g1.src, g2.src) and np.array_equal(g1.dst, g2.dst)
        )

    @pytest.mark.parametrize("directed", [False, True])
    def test_uniform_is_seed_deterministic(self, directed):
        g1 = uniform_random_graph_nm(50, 4.0, directed=directed, seed=9)
        g2 = uniform_random_graph_nm(50, 4.0, directed=directed, seed=9)
        for x, y in zip(_edges(g1), _edges(g2)):
            assert np.array_equal(x, y)

    def test_weights_are_seed_deterministic(self):
        g = uniform_random_graph_nm(40, 4.0, seed=2)
        w1 = with_random_weights(g, 1, 10, seed=5).edge_weights()
        w2 = with_random_weights(g, 1, 10, seed=5).edge_weights()
        assert np.array_equal(w1, w2)
        w3 = with_random_weights(g, 1, 10, seed=6).edge_weights()
        assert not np.array_equal(w1, w3)


class TestScoreDeterminism:
    @pytest.fixture(scope="class")
    def graph(self):
        g = rmat_graph(5, 5, seed=3)
        return with_random_weights(g, 1, 5, seed=3)

    def test_repeat_runs_are_bit_identical(self, graph):
        s1 = mfbc(graph).scores
        s2 = mfbc(graph).scores
        assert np.array_equal(s1, s2)

    def test_backends_are_bit_identical(self, graph):
        ref = mfbc(graph, engine=DistributedEngine(Machine(4))).scores
        for make in (
            lambda: SerialExecutor(),
            lambda: ThreadExecutor(2, fanout_min_work=0),
            lambda: ProcessExecutor(2, fanout_min_work=0),
        ):
            ex = make()
            try:
                engine = DistributedEngine(Machine(4, executor=ex))
                got = mfbc(graph, engine=engine).scores
            finally:
                ex.close()
            assert np.array_equal(got, ref), ex.name

    def test_sequential_vs_distributed_bit_identical_batches(self, graph):
        """Batching changes the schedule, not the bits: the distributed run
        must reproduce the sequential scores exactly for this graph."""
        seq = mfbc(graph).scores
        dist = mfbc(graph, engine=DistributedEngine(Machine(4))).scores
        assert np.allclose(dist, seq, atol=1e-8)
