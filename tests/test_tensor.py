"""Sparse tensors and contractions vs numpy einsum references."""

import numpy as np
import pytest

from repro.algebra import REAL_PLUS_TIMES, TROPICAL
from repro.algebra.monoid import MinMonoid, PlusMonoid
from repro.tensor import SpTensor, contract
from repro.tensor.contract import contract_with_ops

PLUS = PlusMonoid()
MIN = MinMonoid()


def random_tensor(rng, shape, density, monoid=PLUS):
    size = int(np.prod(shape))
    nnz = max(1, int(size * density))
    flat = rng.choice(size, size=nnz, replace=False)
    coords = []
    rest = flat
    for s in reversed(shape[1:]):
        coords.append(rest % s)
        rest = rest // s
    coords.append(rest)
    coords = list(reversed(coords))
    vals = {"w": rng.integers(1, 9, nnz).astype(float)}
    return SpTensor(shape, coords, vals, monoid)


def dense(t: SpTensor, fill=0.0) -> np.ndarray:
    out = np.full(t.shape, fill)
    out[tuple(t.coords)] = t.vals["w"]
    return out


class TestSpTensorBasics:
    def test_canonicalization_dedups(self):
        t = SpTensor(
            (2, 2, 2),
            (np.array([0, 0]), np.array([1, 1]), np.array([0, 0])),
            {"w": np.array([2.0, 3.0])},
            PLUS,
        )
        assert t.nnz == 1 and t.get(0, 1, 0)["w"] == 5.0

    def test_identity_pruned(self):
        t = SpTensor(
            (2, 2),
            (np.array([0, 1]), np.array([0, 1])),
            {"w": np.array([0.0, 1.0])},
            PLUS,
        )
        assert t.nnz == 1

    def test_order_bounds(self):
        with pytest.raises(ValueError, match="order"):
            SpTensor((2, 2, 2, 2), (np.empty(0),) * 4, PLUS.empty(), PLUS)

    def test_out_of_bounds(self):
        with pytest.raises(ValueError, match="bounds"):
            SpTensor((2, 2), (np.array([5]), np.array([0])), {"w": np.ones(1)}, PLUS)

    def test_permute_roundtrip(self, rng):
        t = random_tensor(rng, (3, 4, 5), 0.3)
        p = t.permute((2, 0, 1))
        assert p.shape == (5, 3, 4)
        assert np.allclose(dense(p), np.transpose(dense(t), (2, 0, 1)))
        assert p.permute((1, 2, 0)).equals(t)

    def test_permute_invalid(self, rng):
        t = random_tensor(rng, (3, 4), 0.5)
        with pytest.raises(ValueError, match="permutation"):
            t.permute((0, 0))

    def test_unfold_fold_roundtrip(self, rng):
        t = random_tensor(rng, (3, 4, 5), 0.3)
        mat = t.unfold([0, 2])  # rows = (i, k), cols = (j)
        assert mat.shape == (15, 4)
        back = SpTensor.fold(mat, [3, 5], [4]).permute((0, 2, 1))
        assert back.equals(t)

    def test_unfold_dense_agreement(self, rng):
        t = random_tensor(rng, (3, 4, 5), 0.4)
        mat = t.unfold([1])  # rows = j, cols = (i, k) ascending modes
        ref = np.transpose(dense(t), (1, 0, 2)).reshape(4, 15)
        assert np.allclose(mat.to_dense("w", fill=0.0), ref)

    def test_combine_map_filter(self, rng):
        t = random_tensor(rng, (3, 4), 0.4)
        u = random_tensor(rng, (3, 4), 0.4)
        c = t.combine(u)
        assert np.allclose(dense(c), dense(t) + dense(u))
        doubled = t.map(lambda v: {"w": v["w"] * 2})
        assert np.allclose(dense(doubled), dense(t) * 2)
        big = t.filter(lambda v: v["w"] > 4)
        assert (dense(big) > 0).sum() <= (dense(t) > 0).sum()

    def test_from_spmat(self, rng):
        from conftest import random_weight_spmat

        m = random_weight_spmat(rng, 5, 6, 0.4)
        t = SpTensor.from_spmat(m)
        assert t.shape == (5, 6) and t.nnz == m.nnz


class TestContraction:
    SPEC = REAL_PLUS_TIMES.matmul_spec()

    def test_matrix_matrix(self, rng):
        a = random_tensor(rng, (4, 5), 0.5)
        b = random_tensor(rng, (5, 6), 0.5)
        c = contract(a, "ik", b, "kj", "ij", self.SPEC)
        ref = np.einsum("ik,kj->ij", dense(a), dense(b))
        assert np.allclose(dense(c), ref)

    def test_order3_times_matrix(self, rng):
        a = random_tensor(rng, (3, 4, 5), 0.3)
        b = random_tensor(rng, (5, 6), 0.5)
        c = contract(a, "ijk", b, "kl", "ijl", self.SPEC)
        ref = np.einsum("ijk,kl->ijl", dense(a), dense(b))
        assert np.allclose(dense(c), ref)

    def test_order3_times_matrix_middle_mode(self, rng):
        a = random_tensor(rng, (3, 4, 5), 0.3)
        b = random_tensor(rng, (4, 6), 0.5)
        c = contract(a, "ijk", b, "jl", "ikl", self.SPEC)
        ref = np.einsum("ijk,jl->ikl", dense(a), dense(b))
        assert np.allclose(dense(c), ref)

    def test_output_permutation(self, rng):
        a = random_tensor(rng, (3, 4, 5), 0.3)
        b = random_tensor(rng, (5, 6), 0.5)
        c = contract(a, "ijk", b, "kl", "lji", self.SPEC)
        ref = np.einsum("ijk,kl->lji", dense(a), dense(b))
        assert np.allclose(dense(c), ref)

    def test_matrix_vector(self, rng):
        a = random_tensor(rng, (4, 5), 0.5)
        v = random_tensor(rng, (5,), 0.6)
        c = contract(a, "ik", v, "k", "i", self.SPEC)
        ref = np.einsum("ik,k->i", dense(a), dense(v))
        assert np.allclose(dense(c), ref)

    def test_vector_order3(self, rng):
        a = random_tensor(rng, (4,), 0.7)
        t = random_tensor(rng, (4, 3, 5), 0.3)
        c = contract(a, "i", t, "ijk", "jk", self.SPEC)
        ref = np.einsum("i,ijk->jk", dense(a), dense(t))
        assert np.allclose(dense(c), ref)

    def test_tropical_contraction(self, rng):
        a = random_tensor(rng, (4, 5), 0.5, monoid=MIN)
        b = random_tensor(rng, (5, 4), 0.5, monoid=MIN)
        c = contract(a, "ik", b, "kj", "ij", TROPICAL.matmul_spec())
        da = np.where(dense(a, np.inf) == 0, np.inf, dense(a, np.inf))
        da = dense(a, np.inf)
        db = dense(b, np.inf)
        ref = np.min(da[:, :, None] + db[None, :, :], axis=1)
        got = dense(c, np.inf)
        assert np.allclose(
            np.where(np.isfinite(ref), ref, -1),
            np.where(np.isfinite(got), got, -1),
        )

    def test_ops_counted(self, rng):
        a = random_tensor(rng, (4, 5), 0.5)
        b = random_tensor(rng, (5, 6), 0.5)
        _, ops = contract_with_ops(a, "ik", b, "kj", "ij", self.SPEC)
        assert ops > 0

    def test_hypergraph_path_counting(self):
        """Order-3 incidence: T(author, paper, venue).  Contracting with a
        venue-weight vector counts weighted (author, paper) incidences —
        the hypergraph workload §6.1 alludes to."""
        # (author, paper, venue) incidences
        t = SpTensor(
            (2, 3, 2),
            (
                np.array([0, 0, 1, 1]),
                np.array([0, 1, 1, 2]),
                np.array([0, 1, 1, 0]),
            ),
            {"w": np.ones(4)},
            PLUS,
        )
        venue_w = SpTensor((2,), (np.array([0, 1]),), {"w": np.array([2.0, 3.0])}, PLUS)
        ap = contract(t, "apv", venue_w, "v", "ap", REAL_PLUS_TIMES.matmul_spec())
        assert ap.get(0, 0)["w"] == 2.0
        assert ap.get(0, 1)["w"] == 3.0
        assert ap.get(1, 1)["w"] == 3.0


class TestContractionProperties:
    """Hypothesis: contraction equals numpy einsum over random shapes."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        st.integers(0, 5000),
        st.integers(2, 5),
        st.integers(2, 5),
        st.integers(2, 5),
        st.integers(2, 4),
    )
    def test_order3_matrix_einsum(self, seed, i, j, k, l):
        rng = np.random.default_rng(seed)
        a = random_tensor(rng, (i, j, k), 0.4)
        b = random_tensor(rng, (k, l), 0.5)
        c = contract(a, "ijk", b, "kl", "ijl", REAL_PLUS_TIMES.matmul_spec())
        ref = np.einsum("ijk,kl->ijl", dense(a), dense(b))
        assert np.allclose(dense(c), ref)

    @given(st.integers(0, 5000))
    @settings(max_examples=30)
    def test_all_output_permutations(self, seed):
        rng = np.random.default_rng(seed)
        a = random_tensor(rng, (3, 4), 0.5)
        b = random_tensor(rng, (4, 5, 2), 0.3)
        import itertools

        for out in ("".join(p) for p in itertools.permutations("ijl")):
            c = contract(a, "ik", b, "kjl", out, REAL_PLUS_TIMES.matmul_spec())
            ref = np.einsum(f"ik,kjl->{out}", dense(a), dense(b))
            assert np.allclose(dense(c), ref), out


class TestContractionValidation:
    SPEC = REAL_PLUS_TIMES.matmul_spec()

    def test_no_shared_index(self, rng):
        a = random_tensor(rng, (3, 4), 0.5)
        b = random_tensor(rng, (5, 6), 0.5)
        with pytest.raises(ValueError, match="shared"):
            contract(a, "ij", b, "kl", "ijkl", self.SPEC)

    def test_extent_mismatch(self, rng):
        a = random_tensor(rng, (3, 4), 0.5)
        b = random_tensor(rng, (5, 6), 0.5)
        with pytest.raises(ValueError, match="extents"):
            contract(a, "ik", b, "kj", "ij", self.SPEC)

    def test_output_must_be_free_indices(self, rng):
        a = random_tensor(rng, (3, 4), 0.5)
        b = random_tensor(rng, (4, 5), 0.5)
        with pytest.raises(ValueError, match="free"):
            contract(a, "ik", b, "kj", "ik", self.SPEC)

    def test_scalar_output_rejected(self, rng):
        a = random_tensor(rng, (4,), 0.5)
        b = random_tensor(rng, (4,), 0.5)
        with pytest.raises(ValueError, match="scalar"):
            contract(a, "i", b, "i", "", self.SPEC)

    def test_order4_output_rejected(self, rng):
        a = random_tensor(rng, (2, 3, 4), 0.5)
        b = random_tensor(rng, (4, 2, 3), 0.5)
        with pytest.raises(ValueError, match="maximum"):
            contract(a, "ijk", b, "klm", "ijlm", self.SPEC)

    def test_index_length_mismatch(self, rng):
        a = random_tensor(rng, (3, 4), 0.5)
        b = random_tensor(rng, (4, 5), 0.5)
        with pytest.raises(ValueError, match="orders"):
            contract(a, "ijk", b, "kj", "i", self.SPEC)
