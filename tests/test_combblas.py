"""The CombBLAS-style baseline: correctness and behavioural contrasts."""

import numpy as np
import pytest

from repro.baselines import brandes_bc, combblas_bc
from repro.core import mfbc
from repro.dist import DistributedEngine
from repro.graphs import Graph, uniform_random_graph_nm
from repro.machine import Machine
from repro.spgemm import Square2DPolicy

from conftest import nx_reference_bc


class TestCorrectness:
    @pytest.mark.parametrize("directed", [False, True])
    def test_matches_networkx(self, directed):
        g = uniform_random_graph_nm(45, 4.0, directed=directed, seed=31)
        res = combblas_bc(g, batch_size=9)
        assert np.allclose(res.scores, nx_reference_bc(g), atol=1e-8)

    def test_matches_mfbc(self, small_undirected):
        ref = mfbc(small_undirected, batch_size=10).scores
        got = combblas_bc(small_undirected, batch_size=10).scores
        assert np.allclose(got, ref, atol=1e-8)

    @pytest.mark.parametrize("nb", [1, 4, 40])
    def test_batch_invariance(self, small_undirected, nb):
        ref = brandes_bc(small_undirected)
        got = combblas_bc(small_undirected, batch_size=nb).scores
        assert np.allclose(got, ref, atol=1e-8)

    def test_disconnected(self):
        g = Graph(6, np.array([0, 1, 3, 4]), np.array([1, 2, 4, 5]))
        assert np.allclose(combblas_bc(g).scores, nx_reference_bc(g), atol=1e-10)

    def test_sources_subset(self, small_undirected):
        sources = np.array([0, 5, 9])
        ref = brandes_bc(small_undirected, sources=sources)
        got = combblas_bc(small_undirected, sources=sources).scores
        assert np.allclose(got, ref, atol=1e-8)


class TestRestrictions:
    def test_weighted_raises(self, small_weighted):
        with pytest.raises(ValueError, match="unweighted"):
            combblas_bc(small_weighted)

    def test_distributed_square_grid(self, small_undirected):
        machine = Machine(4)
        eng = DistributedEngine(machine, policy=Square2DPolicy())
        ref = brandes_bc(small_undirected)
        res = combblas_bc(small_undirected, batch_size=10, engine=eng)
        assert np.allclose(res.scores, ref, atol=1e-8)
        assert machine.ledger.critical_words() > 0

    def test_nonsquare_grid_rejected(self, small_undirected):
        machine = Machine(8)
        eng = DistributedEngine(machine, policy=Square2DPolicy())
        with pytest.raises(ValueError, match="square"):
            combblas_bc(small_undirected, batch_size=10, engine=eng)


class TestCounters:
    def test_levels_recorded(self, small_undirected):
        res = combblas_bc(small_undirected, batch_size=small_undirected.n)
        assert len(res.levels_per_batch) == 1
        # BFS levels bounded by the hop diameter
        assert res.levels_per_batch[0] <= small_undirected.diameter_hops() + 1

    def test_matmuls_and_ops_counted(self, small_undirected):
        res = combblas_bc(small_undirected, batch_size=10)
        assert res.matmuls > 0 and res.ops > 0

    def test_teps_positive(self, small_undirected):
        res = combblas_bc(small_undirected, batch_size=10)
        assert res.teps(small_undirected) > 0

    def test_max_batches(self, small_undirected):
        res = combblas_bc(small_undirected, batch_size=10, max_batches=1)
        assert res._sources == 10
