"""The CTF-style index-notation API (§6.1)."""

import numpy as np
import pytest

from repro.algebra import MULTPATH, TROPICAL, bellman_ford_action
from repro.algebra.monoid import MinMonoid, PlusMonoid
from repro.ctfapi import Function, Kernel, Matrix, Transform
from repro.dist import DistributedEngine
from repro.machine import Machine
from repro.sparse import SpMat, spgemm

from conftest import random_weight_spmat

W = MinMonoid()


@pytest.fixture
def ab(rng):
    a = random_weight_spmat(rng, 12, 12, 0.3)
    b = random_weight_spmat(rng, 12, 12, 0.3)
    return a, b


class TestIndexNotation:
    def test_contraction_matches_spgemm(self, ab):
        a, b = ab
        A = Matrix.from_spmat(a)
        B = Matrix.from_spmat(b)
        C = Matrix(12, 12, W)
        K = Kernel(W, TROPICAL.matmul_spec().f, "minplus")
        C["ij"] = K(A["ik"], B["kj"])
        assert C.read().equals(spgemm(a, b, TROPICAL.matmul_spec()).matrix)

    def test_contraction_transposed_operand(self, ab):
        """C["ij"] = K(A["ik"], B["jk"]) contracts against Bᵀ."""
        a, b = ab
        A = Matrix.from_spmat(a)
        B = Matrix.from_spmat(b)
        C = Matrix(12, 12, W)
        K = Kernel(W, TROPICAL.matmul_spec().f)
        C["ij"] = K(A["ik"], B["jk"])
        ref = spgemm(a, b.transpose(), TROPICAL.matmul_spec()).matrix
        assert C.read().equals(ref)

    def test_contraction_swapped_order(self, ab):
        """C["ij"] = K(B["kj"], A["ik"]) — operand order is irrelevant,
        labels rule."""
        a, b = ab
        A = Matrix.from_spmat(a)
        B = Matrix.from_spmat(b)
        C = Matrix(12, 12, W)
        K = Kernel(W, TROPICAL.matmul_spec().f)
        C["ij"] = K(B["kj"], A["ik"])
        assert C.read().equals(spgemm(a, b, TROPICAL.matmul_spec()).matrix)

    def test_transpose_assignment(self, ab):
        a, _ = ab
        A = Matrix.from_spmat(a)
        D = Matrix(12, 12, W)
        D["ij"] = A["ji"]
        assert D.read().equals(a.transpose())

    def test_elementwise_sum(self, ab):
        a, b = ab
        A = Matrix.from_spmat(a)
        B = Matrix.from_spmat(b)
        C = Matrix(12, 12, W)
        C["ij"] = A["ij"] + B["ij"]
        assert C.read().equals(a.combine(b))

    def test_function_inversion(self, ab):
        """The paper's §6.1 example: B["ij"] = f(A["ij"]) with f = 1/x."""
        a, _ = ab
        A = Matrix.from_spmat(a)
        B = Matrix(12, 12, W)
        B["ij"] = Function(lambda v: {"w": 1.0 / v["w"]})(A["ij"])
        got = B.read()
        assert np.allclose(got.vals["w"], 1.0 / a.vals["w"])

    def test_transform_in_place(self, ab):
        a, _ = ab
        A = Matrix.from_spmat(a)
        Transform(A, lambda v: {"w": v["w"] * 2})
        assert np.allclose(A.read().vals["w"], a.vals["w"] * 2)

    def test_bellman_ford_kernel(self, ab):
        """The paper's MFBC snippet: Z["ij"] = BF(Z["ik"], A["kj"])."""
        _, adj = ab
        z0 = SpMat(
            2,
            12,
            np.array([0, 1]),
            np.array([0, 5]),
            MULTPATH.make([0.0, 0.0], [1.0, 1.0]),
            MULTPATH,
        )
        Z = Matrix.from_spmat(z0)
        A = Matrix.from_spmat(adj)
        BF = Kernel(MULTPATH, bellman_ford_action, "BF")
        Z["ij"] = BF(Z["ik"], A["kj"])
        from repro.algebra import MatMulSpec

        ref = spgemm(z0, adj, MatMulSpec(MULTPATH, bellman_ford_action)).matrix
        assert Z.read().equals(ref)


class TestValidation:
    def test_bad_indices(self, ab):
        a, _ = ab
        A = Matrix.from_spmat(a)
        with pytest.raises(ValueError, match="two distinct"):
            A["iii"]
        with pytest.raises(ValueError, match="two distinct"):
            A["ii"]

    def test_contraction_requires_one_shared(self, ab):
        a, b = ab
        A, B = Matrix.from_spmat(a), Matrix.from_spmat(b)
        K = Kernel(W, TROPICAL.matmul_spec().f)
        with pytest.raises(ValueError, match="shared"):
            K(A["ij"], B["ij"])

    def test_target_indices_must_match(self, ab):
        a, b = ab
        A, B = Matrix.from_spmat(a), Matrix.from_spmat(b)
        C = Matrix(12, 12, W)
        K = Kernel(W, TROPICAL.matmul_spec().f)
        with pytest.raises(ValueError, match="free indices"):
            C["xy"] = K(A["ik"], B["kj"])

    def test_assign_wrong_type(self, ab):
        a, _ = ab
        A = Matrix.from_spmat(a)
        with pytest.raises(TypeError):
            A["ij"] = 42

    def test_shape_mismatch(self, rng):
        a = random_weight_spmat(rng, 4, 6, 0.5)
        A = Matrix.from_spmat(a)
        D = Matrix(4, 6, W)
        with pytest.raises(ValueError, match="shape"):
            D["ij"] = A["ji"]


class TestTensorNotation:
    def test_contraction(self, rng):
        from repro.algebra import REAL_PLUS_TIMES
        from repro.ctfapi import Tensor, TensorKernel
        from repro.tensor import SpTensor

        a = SpTensor(
            (2, 3, 4),
            (np.array([0, 1]), np.array([1, 2]), np.array([2, 3])),
            {"w": np.array([2.0, 3.0])},
            REAL_PLUS_TIMES.add_monoid,
        )
        b = SpTensor(
            (4, 2),
            (np.array([2, 3]), np.array([0, 1])),
            {"w": np.array([5.0, 7.0])},
            REAL_PLUS_TIMES.add_monoid,
        )
        A = Tensor.from_sptensor(a)
        B = Tensor.from_sptensor(b)
        C = Tensor((2, 3, 2), REAL_PLUS_TIMES.add_monoid)
        K = TensorKernel(REAL_PLUS_TIMES.add_monoid, REAL_PLUS_TIMES.matmul_spec().f)
        C["ijl"] = K(A["ijk"], B["kl"])
        assert C.data.get(0, 1, 0)["w"] == 10.0
        assert C.data.get(1, 2, 1)["w"] == 21.0

    def test_permutation_assignment(self, rng):
        from repro.algebra.monoid import PlusMonoid
        from repro.ctfapi import Tensor
        from repro.tensor import SpTensor

        plus = PlusMonoid()
        t = SpTensor(
            (2, 3, 4),
            (np.array([1]), np.array([2]), np.array([3])),
            {"w": np.array([9.0])},
            plus,
        )
        A = Tensor.from_sptensor(t)
        B = Tensor((4, 2, 3), plus)
        B["kij"] = A["ijk"]
        assert B.data.get(3, 1, 2)["w"] == 9.0

    def test_bad_indices(self):
        from repro.algebra.monoid import PlusMonoid
        from repro.ctfapi import Tensor

        A = Tensor((2, 3), PlusMonoid())
        with pytest.raises(ValueError, match="distinct"):
            A["ii"]
        with pytest.raises(TypeError):
            A["ij"] = 3


class TestDistributedBackend:
    def test_contraction_on_machine(self, ab):
        a, b = ab
        engine = DistributedEngine(Machine(4))
        A = Matrix.from_spmat(a, engine=engine)
        B = Matrix.from_spmat(b, engine=engine)
        C = Matrix(12, 12, W, engine=engine)
        K = Kernel(W, TROPICAL.matmul_spec().f)
        C["ij"] = K(A["ik"], B["kj"])
        ref = spgemm(a, b, TROPICAL.matmul_spec()).matrix
        assert C.read().equals(ref)
        assert engine.machine.ledger.critical_words() > 0
