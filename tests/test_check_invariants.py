"""Unit tests for repro.check.invariants: each validator catches each break.

Clean objects built through the public constructors must validate clean
(the constructors canonicalize); broken ones are built by bypassing
canonicalization the same way a buggy kernel would — via the raw
``__slots__`` — and every rule must fire with the right ``rule`` tag.
"""

import numpy as np
import pytest
from hypothesis import given

from repro.algebra.monoid import MinMonoid
from repro.check import (
    CheckError,
    check_distmat,
    check_ledger,
    check_matrix,
    check_spmat,
    require_clean,
)
from repro.check import strategies as cst
from repro.dist.distmat import DistMat
from repro.machine import Machine
from repro.sparse import SpMat

W = MinMonoid()


def _raw_spmat(nrows, ncols, rows, cols, vals):
    """Build an SpMat without canonicalization (what a buggy kernel does)."""
    mat = SpMat.__new__(SpMat)
    mat.nrows = nrows
    mat.ncols = ncols
    mat.rows = np.asarray(rows, dtype=np.int64)
    mat.cols = np.asarray(cols, dtype=np.int64)
    mat.vals = {k: np.asarray(v, dtype=np.float64) for k, v in vals.items()}
    mat.monoid = W
    mat._rowptr = None
    return mat


def _rules(violations):
    return {v.rule for v in violations}


class TestCheckSpmat:
    @given(cst.spmats())
    def test_canonical_matrices_are_clean(self, mat):
        assert check_spmat(mat) == []

    def test_empty_is_clean(self):
        assert check_spmat(SpMat.empty(3, 4, W)) == []

    def test_unsorted(self):
        bad = _raw_spmat(3, 3, [2, 0], [0, 0], {"w": [1.0, 2.0]})
        assert "sorted" in _rules(check_spmat(bad))

    def test_duplicates(self):
        bad = _raw_spmat(3, 3, [1, 1], [2, 2], {"w": [1.0, 2.0]})
        assert "unique" in _rules(check_spmat(bad))

    def test_out_of_range(self):
        bad = _raw_spmat(3, 3, [0, 5], [0, 1], {"w": [1.0, 2.0]})
        assert "range" in _rules(check_spmat(bad))
        bad = _raw_spmat(3, 3, [0, 1], [-1, 1], {"w": [1.0, 2.0]})
        assert "range" in _rules(check_spmat(bad))

    def test_stored_identity(self):
        bad = _raw_spmat(3, 3, [0, 1], [0, 1], {"w": [1.0, np.inf]})
        assert "identity" in _rules(check_spmat(bad))

    def test_wrong_fields(self):
        bad = _raw_spmat(2, 2, [0], [1], {"x": [1.0]})
        assert "fields" in _rules(check_spmat(bad))

    def test_wrong_dtype(self):
        bad = _raw_spmat(2, 2, [0], [1], {"w": [1.0]})
        bad.vals["w"] = bad.vals["w"].astype(np.float32)
        assert "dtype" in _rules(check_spmat(bad))

    def test_length_mismatch(self):
        bad = _raw_spmat(2, 2, [0, 1], [0, 1], {"w": [1.0]})
        assert "length" in _rules(check_spmat(bad))

    def test_stale_rowptr(self):
        mat = SpMat(3, 3, np.array([0, 2]), np.array([1, 0]), {"w": [1.0, 2.0]}, W)
        mat.row_pointer()
        mat._rowptr = mat._rowptr.copy()
        mat._rowptr[1] = 99
        assert "rowptr" in _rules(check_spmat(mat))

    def test_site_is_reported(self):
        bad = _raw_spmat(3, 3, [0, 5], [0, 1], {"w": [1.0, 2.0]})
        (v,) = check_spmat(bad, site="spgemm.result")
        assert v.site == "spgemm.result"
        assert "spgemm.result" in str(v)


class TestCheckDistmat:
    def _dist(self, machine=None, n=10, nnz=20, seed=0):
        machine = machine or Machine(4)
        rng = np.random.default_rng(seed)
        flat = rng.choice(n * n, size=nnz, replace=False)
        rows, cols = np.divmod(flat, n)
        local = SpMat(n, n, rows, cols, {"w": np.ones(nnz)}, W)
        ranks2d = np.arange(machine.p).reshape(2, 2)
        return DistMat.distribute(local, machine, ranks2d)

    def test_clean_distribution(self):
        assert check_distmat(self._dist(), deep=True) == []

    def test_rank_out_of_machine(self):
        d = self._dist()
        d.ranks2d = d.ranks2d + 10
        assert "ranks" in _rules(check_distmat(d))

    def test_duplicate_owner(self):
        d = self._dist()
        d.ranks2d = np.zeros_like(d.ranks2d)
        assert "ranks" in _rules(check_distmat(d))

    def test_bad_splits(self):
        d = self._dist()
        d.row_splits = d.row_splits.copy()
        d.row_splits[-1] += 1
        assert "splits" in _rules(check_distmat(d))

    def test_block_shape_mismatch(self):
        d = self._dist()
        d.blocks[0][0] = SpMat.empty(1, 1, W)
        assert "shape" in _rules(check_distmat(d))

    def test_noncanonical_block_surfaces_with_block_site(self):
        d = self._dist()
        blk = d.blocks[1][1]
        bad = _raw_spmat(
            blk.nrows, blk.ncols, [0, 0], [1, 1], {"w": [1.0, 2.0]}
        )
        d.blocks[1][1] = bad
        out = check_distmat(d)
        assert "unique" in _rules(out)
        assert any("block[1,1]" in v.site for v in out)

    def test_deep_mode_does_not_charge(self):
        machine = Machine(4)
        d = self._dist(machine)
        before = machine.ledger.snapshot()
        check_distmat(d, deep=True)
        assert machine.ledger.snapshot() == before

    def test_check_matrix_dispatches(self):
        d = self._dist()
        assert check_matrix(d) == []
        assert check_matrix(d.blocks[0][0]) == []
        assert _rules(check_matrix(object())) == {"type"}


class TestCheckLedger:
    def test_fresh_machine_is_clean(self):
        assert check_ledger(Machine(4)) == []

    def test_real_run_is_clean(self):
        from repro.core import mfbc
        from repro.dist import DistributedEngine
        from repro.graphs import rmat_graph

        machine = Machine(4, memory_words=10**9)
        mfbc(rmat_graph(4, 4, seed=0), engine=DistributedEngine(machine))
        assert check_ledger(machine) == []

    def test_negative_accumulator(self):
        m = Machine(4)
        m.ledger.words[2] = -1.0
        assert "nonneg" in _rules(check_ledger(m))

    def test_non_finite(self):
        m = Machine(4)
        m.ledger.time[0] = np.nan
        assert "finite" in _rules(check_ledger(m))

    def test_comm_time_exceeding_alpha_beta_bound(self):
        m = Machine(4)
        m.ledger.comm_time[1] = 5.0
        m.ledger.time[1] = 6.0
        out = _rules(check_ledger(m))
        assert "alpha-beta" in out

    def test_comm_time_exceeding_total_time(self):
        m = Machine(2)
        m.world()  # no charge
        m.ledger.comm_time[0] = 1.0
        m.ledger.words[0] = 1e12  # keep the α-β bound satisfied
        assert "comm<=time" in _rules(check_ledger(m))

    def test_category_sum_mismatch(self):
        m = Machine(4)
        m.charge_collective(np.arange(4), 100.0, category="bcast")
        m.ledger.category_words["bcast"] += 7.0
        assert "categories" in _rules(check_ledger(m))

    def test_charges_satisfy_closed_forms(self):
        m = Machine(8)
        rng = np.random.default_rng(0)
        for _ in range(50):
            ranks = rng.choice(8, size=rng.integers(2, 9), replace=False)
            m.charge_collective(ranks, float(rng.integers(1, 1000)))
        for _ in range(20):
            s, d = rng.choice(8, size=2, replace=False)
            m.charge_pointtopoint(int(s), int(d), float(rng.integers(1, 100)))
        m.charge_compute(np.arange(8), 1e5)
        m.charge_overhead(1e-3)
        assert check_ledger(m) == []

    def test_peak_below_used(self):
        m = Machine(2)
        m.allocate(0, 100)
        m._mem_peak[0] = 5
        assert "mem-peak" in _rules(check_ledger(m))

    def test_theory_bound(self):
        from repro.core import mfbc
        from repro.dist import DistributedEngine
        from repro.graphs import rmat_graph

        g = rmat_graph(4, 4, seed=0)
        machine = Machine(4)
        res = mfbc(g, engine=DistributedEngine(machine))
        theory = {"n": g.n, "m": g.m, "p": 4, "batches": len(res.stats.batches)}
        assert check_ledger(machine, theory=theory) == []
        # an absurdly tight slack must trip the bound
        tight = dict(theory, slack=1e-9)
        assert "theory" in _rules(check_ledger(machine, theory=tight))


class TestRequireClean:
    def test_raises_with_all_violations(self):
        bad = _raw_spmat(3, 3, [0, 5], [0, 1], {"w": [np.inf, 1.0]})
        with pytest.raises(CheckError) as err:
            require_clean(check_spmat(bad), "operand A")
        assert "operand A" in str(err.value)
        assert len(err.value.violations) >= 2

    def test_empty_is_silent(self):
        require_clean([])
