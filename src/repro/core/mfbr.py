"""Maximal Frontier Brandes (Algorithm 2 of the paper).

Given the multpath matrix ``T`` from MFBF, computes the centpath matrix
``Z`` with ``Z(s, v).p = ζ(s, v) = δ(s, v)/σ̄(s, v)`` — the partial
centrality *factor* of [Sariyüce et al.] that the paper works with because it
makes the algebra (and the correctness proof) simpler than Brandes' δ.

Back-propagation walks the shortest-path DAG from its leaves toward each
source.  A vertex joins the frontier exactly when *all* of its DAG successors
have propagated their finalized factor; the centpath counter implements this
gate:

1. counters are initialized to the successor count ``nsucc(s, v)`` — found
   with one generalized product over the transposed adjacency matrix that
   counts, for each ``v``, the edges ``(v, u)`` with
   ``τ(s,u) − A(v,u) = τ(s,v)`` (the max-weight tie-count of the centpath
   monoid does the counting);
2. every frontier entry carries counter ``−1``; valid contributions (weight
   tie with ``τ(s,v)``) therefore decrement the receiver's counter while
   accumulating ``1/σ̄(s,u) + ζ(s,u)`` into its partial factor;
3. a counter hitting 0 fires the vertex into the next frontier with value
   ``(τ(s,v), Z(s,v).p + 1/σ̄(s,v), −1)`` and is then parked at ``−1`` so it
   can never fire twice (the paper's lines 7–11).

As in :mod:`repro.core.mfbf`, "empty" centpath entries are simply unstored
(the centpath identity is ``(−∞, 0, 0)``; see :mod:`repro.algebra.centpath`
for why the paper's ``(∞, 0, 0)`` marker is not a usable monoid identity).
"""

from __future__ import annotations

import numpy as np

from repro.algebra.centpath import CENTPATH
from repro.core.engine import Engine, SequentialEngine
from repro.core.specs import BRANDES_SPEC
from repro.core.stats import BatchStats, IterationStats

__all__ = ["mfbr"]


def mfbr(
    adj,
    t_mat,
    *,
    engine: Engine | None = None,
    stats: BatchStats | None = None,
    max_iterations: int | None = None,
):
    """Run MFBr over adjacency ``adj`` and MFBF output ``t_mat``.

    Parameters
    ----------
    adj:
        ``n × n`` adjacency matrix (engine representation).
    t_mat:
        ``nb × n`` multpath matrix of finalized distances/multiplicities.
    engine, stats, max_iterations:
        As in :func:`repro.core.mfbf.mfbf`.

    Returns
    -------
    Z:
        ``nb × n`` centpath matrix with ``Z(s, v).p = ζ(s, v)`` for every
        reachable pair; fired entries carry counter ``−1``.
    """
    engine = engine or SequentialEngine()
    n = adj.nrows
    if max_iterations is None:
        max_iterations = n + 1
    adj_t = adj.transpose()

    # --- initialize counters: one product counts DAG successors (lines 1-2).
    seed = t_mat.map(
        lambda tv: {"w": tv["w"], "p": np.zeros(len(tv["w"])), "c": np.ones(len(tv["w"]), dtype=np.int64)},
        monoid=CENTPATH,
    )
    # Only candidates landing on T's support can survive the zip_filter
    # below, so the product is masked to it — masked-out products are never
    # formed (the GraphBLAS idiom; values are untouched because masking
    # drops whole output coordinates before the reduction).
    cand, ops0 = engine.spgemm(seed, adj_t, BRANDES_SPEC, mask=t_mat)
    if stats is not None:
        stats.iterations.append(IterationStats("mfbr", seed.nnz, cand.nnz, ops0))
    # Keep only candidates matching the true distance: their tie-count is
    # nsucc.  Candidates at unreachable vertices vanish (no T entry).
    nsucc = cand.zip_filter(t_mat, lambda cv, tv: cv["w"] == tv["w"])

    # Z(s,v) = (τ, 0, nsucc) on the reachable support: reuse ``seed``'s
    # (τ, 0, 1) entries and overwrite the counter with the aligned successor
    # count (leaves have no nsucc entry, so they get the identity count 0).
    z_mat = seed.zip_map(
        nsucc,
        lambda zv, sv: {"w": zv["w"], "p": zv["p"], "c": sv["c"]},
        monoid=CENTPATH,
    )

    # --- initial frontier: DAG leaves, value (τ, 1/σ̄, −1) (lines 3-4).
    def fire(ready, t_ref):
        return ready.zip_map(
            t_ref,
            lambda zv, tv: {
                "w": zv["w"],
                "p": zv["p"] + 1.0 / tv["m"],
                "c": np.full(len(zv["w"]), -1, dtype=np.int64),
            },
            monoid=CENTPATH,
        )

    ready = z_mat.filter(lambda zv: zv["c"] == 0)
    frontier = fire(ready, t_mat)
    # Park fired counters at −1 (they are final; nothing arrives afterwards).
    z_mat = z_mat.map(
        lambda zv: {
            "w": zv["w"],
            "p": zv["p"],
            "c": np.where(zv["c"] == 0, -1, zv["c"]),
        }
    )

    for _ in range(max_iterations):
        if frontier.nnz == 0:
            return z_mat
        # Back-propagate the frontier of centralities (line 6), masked to
        # Z's support: contributions elsewhere cannot tie with a finalized
        # weight, so they would be dropped by the zip_filter anyway.
        product, ops = engine.spgemm(frontier, adj_t, BRANDES_SPEC, mask=z_mat)
        if stats is not None:
            stats.iterations.append(
                IterationStats("mfbr", frontier.nnz, product.nnz, ops)
            )
        # Valid contributions tie with τ(s, v); others are discarded — this is
        # the max-weight selection of ⊗ played against Z's finalized weights.
        valid = product.zip_filter(z_mat, lambda pv, zv: pv["w"] == zv["w"])
        # Accumulate centralities and decrement counters (line 8): the
        # centpath ⊗ sums p and c on the weight tie.
        z_mat = z_mat.combine(valid)
        # New frontier: counters that just reached zero (lines 9-11).
        ready = z_mat.filter(lambda zv: zv["c"] == 0)
        frontier = fire(ready, t_mat)
        z_mat = z_mat.map(
            lambda zv: {
                "w": zv["w"],
                "p": zv["p"],
                "c": np.where(zv["c"] == 0, -1, zv["c"]),
            }
        )
    raise RuntimeError(
        f"MFBr did not converge within {max_iterations} iterations; "
        "the shortest-path DAG counters are inconsistent (corrupt T input?)"
    )
