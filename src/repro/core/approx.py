"""Approximate betweenness centrality by source sampling.

The paper cites Bader, Kintali, Madduri & Mihail [4] for approximating BC;
production deployments virtually always sample sources because exact BC is
Θ(n) SSSP sweeps.  Two estimators are provided:

* :func:`approximate_bc` — the uniform estimator: run MFBC from ``k``
  sampled sources and scale by ``n/k`` (unbiased for every vertex, error
  ~ O(n/√k) in dependency mass);
* :func:`adaptive_vertex_bc` — Bader et al.'s adaptive estimator for one
  vertex of interest: sample sources until the accumulated dependency mass
  exceeds ``c·n``, giving a multiplicative guarantee for high-centrality
  vertices with very few samples.

Both run on any engine (sequential or simulated-distributed) since they
delegate to :func:`repro.core.mfbc.mfbc`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.engine import Engine
from repro.core.mfbc import mfbc
from repro.graphs.graph import Graph
from repro.utils.rng import as_rng

__all__ = ["approximate_bc", "adaptive_vertex_bc", "AdaptiveEstimate"]


def approximate_bc(
    graph: Graph,
    n_samples: int,
    *,
    seed: int | np.random.Generator | None = None,
    batch_size: int | None = None,
    engine: Engine | None = None,
) -> np.ndarray:
    """Unbiased sampled estimate of every vertex's betweenness centrality.

    Runs MFBC from ``n_samples`` sources drawn uniformly without replacement
    and scales the partial sums by ``n / n_samples``.
    """
    if not 1 <= n_samples <= graph.n:
        raise ValueError(
            f"n_samples must be in [1, n={graph.n}], got {n_samples}"
        )
    rng = as_rng(seed)
    sources = rng.choice(graph.n, size=n_samples, replace=False)
    result = mfbc(
        graph, batch_size=batch_size, sources=sources, engine=engine
    )
    return result.scores * (graph.n / n_samples)


@dataclass(frozen=True)
class AdaptiveEstimate:
    """Result of the adaptive single-vertex estimator."""

    vertex: int
    estimate: float
    samples_used: int
    converged: bool


def adaptive_vertex_bc(
    graph: Graph,
    vertex: int,
    *,
    c: float = 5.0,
    max_samples: int | None = None,
    seed: int | np.random.Generator | None = None,
    batch_size: int = 16,
    engine: Engine | None = None,
) -> AdaptiveEstimate:
    """Bader et al.'s adaptive sampling estimate of ``λ(vertex)``.

    Sources are sampled in batches until the accumulated dependency mass at
    ``vertex`` exceeds ``c·n`` (then ``n·S/k`` estimates λ with a
    multiplicative guarantee for vertices whose centrality is Ω(n)), or
    until ``max_samples`` sources have been used (the estimate is still
    returned, flagged unconverged).
    """
    if not 0 <= vertex < graph.n:
        raise ValueError(f"vertex {vertex} out of range")
    if c <= 0:
        raise ValueError(f"c must be positive, got {c}")
    rng = as_rng(seed)
    if max_samples is None:
        max_samples = graph.n
    max_samples = min(max_samples, graph.n)

    order = rng.permutation(graph.n)
    mass = 0.0
    used = 0
    threshold = c * graph.n
    while used < max_samples:
        batch = order[used : used + batch_size]
        res = mfbc(graph, batch_size=len(batch), sources=batch, engine=engine)
        mass += float(res.scores[vertex])
        used += len(batch)
        if mass >= threshold:
            return AdaptiveEstimate(
                vertex=vertex,
                estimate=graph.n * mass / used,
                samples_used=used,
                converged=True,
            )
    return AdaptiveEstimate(
        vertex=vertex,
        estimate=graph.n * mass / used if used else 0.0,
        samples_used=used,
        converged=False,
    )
