"""Approximate betweenness centrality by source sampling.

The paper cites Bader, Kintali, Madduri & Mihail [4] for approximating BC;
production deployments virtually always sample sources because exact BC is
Θ(n) SSSP sweeps.  Three estimators are provided:

* :func:`approximate_bc` — the uniform fixed-pivot estimator: run MFBC from
  ``k`` sampled sources and scale by ``n/k`` (unbiased for every vertex,
  error ~ O(n/√k) in dependency mass);
* :func:`adaptive_bc` — the adaptive (ε, δ) sampler in the style of
  van der Grinten & Meyerhenke's MPI-based adaptive sampling: draw source
  batches through the distributed MFBC driver, maintain per-shard running
  sums and sums-of-squares of the normalized per-source dependencies, and
  stop as soon as an empirical-Bernstein confidence bound certifies that
  every vertex's normalized score is within ε with probability ≥ 1 − δ;
* :func:`adaptive_vertex_bc` — Bader et al.'s adaptive estimator for one
  vertex of interest: sample sources until the accumulated dependency mass
  exceeds ``c·n``, giving a multiplicative guarantee for high-centrality
  vertices with very few samples.

All run on any engine (sequential or simulated-distributed) since they
delegate to :mod:`repro.core.mfbc`.

Estimator and guarantee of :func:`adaptive_bc`
----------------------------------------------

Draw sources ``s_1, s_2, ...`` i.i.d. uniform (with replacement).  Each
sample contributes, per vertex ``v``, the normalized dependency

    ``x_i(v) = δ_{s_i}(v) · n / ((n−1)(n−2)) ∈ [0, R]``,  ``R = n/(n−1)``,

whose expectation is exactly the normalized betweenness
``b(v) = λ(v)/((n−1)(n−2))`` — so the running mean is unbiased after any
number of samples.  After round ``r`` (``k`` samples total) the driver
computes the per-vertex empirical-Bernstein half-width
(Audibert–Munos–Szepesvári)

    ``w(v) = sqrt(2·V_k(v)·L_r / k) + 3·R·L_r / k``,

with ``V_k`` the per-vertex sample variance and the failure budget split
``L_r = ln(3·n·r(r+1)/δ)`` — a union bound over the ``n`` vertices and the
round schedule ``δ_r = δ/(r(r+1))`` (``Σ_r δ_r = δ``), so testing the
stopping condition after *every* batch costs no statistical validity.  The
run stops when ``max_v w(v) ≤ ε``; at that point
``P(∃v: |b̂(v) − b(v)| > ε) ≤ δ``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import Engine, SequentialEngine
from repro.core.mfbc import (
    default_batch_size,
    mfbc,
    mfbc_per_source,
    run_batch_with_recovery,
)
from repro.faults.checkpoint import (
    CheckpointState,
    CheckpointStore,
    resolve_checkpoint_store,
    sources_checksum,
)
from repro.graphs.graph import Graph
from repro.obs import api as obs
from repro.utils.rng import as_rng

__all__ = [
    "approximate_bc",
    "adaptive_bc",
    "adaptive_vertex_bc",
    "AdaptiveEstimate",
    "AdaptiveBCResult",
    "SamplerState",
    "bernstein_half_width",
    "planned_sample_bound",
    "validate_sample_count",
    "validate_epsilon_delta",
    "normalize_seed",
]


# ---------------------------------------------------------------------------
# shared parameter validation (single source of truth for the library and
# the serving layer — identical messages everywhere)
# ---------------------------------------------------------------------------


def validate_sample_count(n_samples, n: int, *, name: str = "n_samples") -> int:
    """Validate a sample-count parameter against an ``n``-vertex graph.

    Accepts anything integral, rejects non-integers and values outside
    ``[1, n]`` with the same message the core estimators raise — the
    serving layer funnels through here too, so a bad ``samples=`` query
    param reads identically to a bad library call.
    """
    try:
        count = int(n_samples)
    except (TypeError, ValueError):
        raise ValueError(
            f"{name} must be an integer, got {n_samples!r}"
        ) from None
    if count != n_samples:  # reject 3.5 without rejecting 3.0 / np.int64(3)
        raise ValueError(f"{name} must be an integer, got {n_samples!r}")
    if not 1 <= count <= n:
        raise ValueError(f"{name} must be in [1, n={n}], got {count}")
    return count


def validate_epsilon_delta(epsilon, delta) -> tuple[float, float]:
    """Validate an (ε, δ) accuracy target: ``ε > 0`` and ``0 < δ < 1``."""
    epsilon = float(epsilon)
    delta = float(delta)
    if not (epsilon > 0.0 and math.isfinite(epsilon)):
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    return epsilon, delta


def normalize_seed(seed, *, name: str = "seed") -> int:
    """Normalize a seed to a plain int (``None`` → 0).

    The adaptive driver re-derives its source schedule from
    ``(seed, batch_index)`` so a checkpointed run can resume bit-identically
    without persisting generator state — which rules out passing a live
    ``np.random.Generator`` (its state cannot be re-derived).
    """
    if seed is None:
        return 0
    if isinstance(seed, np.random.Generator):
        raise ValueError(
            f"{name} must be an integer (the source schedule is re-derived "
            f"from it on checkpoint resume), got a Generator"
        )
    try:
        value = int(seed)
    except (TypeError, ValueError):
        raise ValueError(f"{name} must be an integer, got {seed!r}") from None
    if value != seed:
        raise ValueError(f"{name} must be an integer, got {seed!r}")
    return value


# ---------------------------------------------------------------------------
# fixed-pivot estimator
# ---------------------------------------------------------------------------


def approximate_bc(
    graph: Graph,
    n_samples: int,
    *,
    seed: int | np.random.Generator | None = None,
    batch_size: int | None = None,
    engine: Engine | None = None,
) -> np.ndarray:
    """Unbiased sampled estimate of every vertex's betweenness centrality.

    Runs MFBC from ``n_samples`` sources drawn uniformly without replacement
    and scales the partial sums by ``n / n_samples``.
    """
    n_samples = validate_sample_count(n_samples, graph.n)
    rng = as_rng(seed)
    sources = rng.choice(graph.n, size=n_samples, replace=False)
    result = mfbc(
        graph, batch_size=batch_size, sources=sources, engine=engine
    )
    return result.scores * (graph.n / n_samples)


# ---------------------------------------------------------------------------
# adaptive (ε, δ) sampler
# ---------------------------------------------------------------------------


@dataclass
class SamplerState:
    """Per-shard running moments of the normalized dependency samples.

    The adaptive run's mutable statistical state is ``Σ x_i(v)`` and
    ``Σ x_i(v)²`` per vertex, split across ``shards`` logical shards —
    shard ``i % shards`` owns sample ``i``, a machine-size-independent
    assignment, so elastic shrink mid-run never reshuffles which partial a
    sample lives in.  :meth:`merged` folds the shards in canonical index
    order, which makes the global moments independent of how the shards
    were physically distributed; :meth:`merge` combines per-rank partial
    states and is exactly order-independent whenever the partials occupy
    disjoint shards (the distributed layout) because adding a zero shard
    is float-exact.
    """

    n: int
    shards: int
    counts: np.ndarray  # (shards,) samples folded into each shard
    sums: np.ndarray  # (shards, n) per-shard Σ x_i(v)
    sumsqs: np.ndarray  # (shards, n) per-shard Σ x_i(v)²

    @classmethod
    def empty(cls, n: int, shards: int) -> "SamplerState":
        if shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")
        return cls(
            n=int(n),
            shards=int(shards),
            counts=np.zeros(shards, dtype=np.int64),
            sums=np.zeros((shards, n), dtype=np.float64),
            sumsqs=np.zeros((shards, n), dtype=np.float64),
        )

    @property
    def total_samples(self) -> int:
        return int(self.counts.sum())

    def update(self, x_rows: np.ndarray, start_index: int) -> None:
        """Fold a batch of per-sample rows; row ``i`` is global sample
        ``start_index + i`` and lands in shard ``(start_index + i) % shards``."""
        x_rows = np.asarray(x_rows, dtype=np.float64)
        for i, row in enumerate(x_rows):
            shard = (start_index + i) % self.shards
            self.counts[shard] += 1
            self.sums[shard] += row
            self.sumsqs[shard] += row * row

    def merged(self) -> tuple[int, np.ndarray, np.ndarray]:
        """Global ``(k, Σx, Σx²)`` via a left fold in shard index order."""
        total = np.zeros(self.n, dtype=np.float64)
        totalsq = np.zeros(self.n, dtype=np.float64)
        for shard in range(self.shards):
            total += self.sums[shard]
            totalsq += self.sumsqs[shard]
        return self.total_samples, total, totalsq

    def mean_and_variance(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-vertex sample mean and (clipped, k−1 denominator) variance."""
        k, total, totalsq = self.merged()
        if k == 0:
            return np.zeros(self.n), np.zeros(self.n)
        mean = total / k
        if k < 2:
            return mean, np.zeros(self.n)
        var = np.maximum(totalsq - total * mean, 0.0) / (k - 1)
        return mean, var

    @classmethod
    def merge(cls, parts) -> "SamplerState":
        """Combine per-rank partial states by per-shard addition.

        All partials must agree on ``(n, shards)``.  When the partials
        occupy disjoint shards (each sample's moments live in exactly one
        partial — the distributed layout) the result is bit-identical in
        any merge order, since the only float additions are with zeros.
        """
        parts = list(parts)
        if not parts:
            raise ValueError("cannot merge zero sampler states")
        first = parts[0]
        out = cls.empty(first.n, first.shards)
        for part in parts:
            if (part.n, part.shards) != (first.n, first.shards):
                raise ValueError(
                    f"cannot merge sampler states with different shapes: "
                    f"(n={part.n}, shards={part.shards}) vs "
                    f"(n={first.n}, shards={first.shards})"
                )
            out.counts += part.counts
            out.sums += part.sums
            out.sumsqs += part.sumsqs
        return out

    def to_payload(self) -> dict:
        """JSON-compatible dict; floats round-trip exactly through JSON."""
        return {
            "n": int(self.n),
            "shards": int(self.shards),
            "counts": [int(c) for c in self.counts],
            "sums": [[float(x) for x in row] for row in self.sums],
            "sumsqs": [[float(x) for x in row] for row in self.sumsqs],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "SamplerState":
        state = cls(
            n=int(payload["n"]),
            shards=int(payload["shards"]),
            counts=np.asarray(payload["counts"], dtype=np.int64),
            sums=np.asarray(payload["sums"], dtype=np.float64),
            sumsqs=np.asarray(payload["sumsqs"], dtype=np.float64),
        )
        if state.sums.shape != (state.shards, state.n) or state.sumsqs.shape != (
            state.shards,
            state.n,
        ):
            raise ValueError("sampler payload shape mismatch")
        return state


def planned_sample_bound(n: int, epsilon: float, delta: float) -> int:
    """A-priori estimate of the samples an adaptive run needs.

    Drops the (usually negligible) variance term of the stopping rule and
    solves ``3·R·L/k ≤ ε/2`` for ``k``, with one fixed-point pass on the
    round schedule inside ``L`` — a planning number for admission pricing
    and benchmark sizing, not a guarantee (the run itself stops on the
    real empirical-Bernstein bound, and is capped by ``max_samples``).
    """
    epsilon, delta = validate_epsilon_delta(epsilon, delta)
    if n < 3:
        return 0
    value_range = n / (n - 1)
    rounds = 2.0
    k = 1.0
    for _ in range(2):
        log_term = math.log(3.0 * n * rounds * (rounds + 1.0) / delta)
        k = 6.0 * value_range * log_term / epsilon
        rounds = max(k / 32.0, 1.0)
    return int(min(math.ceil(k), max(4 * n, 256)))


def bernstein_half_width(
    var: np.ndarray, count: int, *, failure: float, value_range: float
) -> np.ndarray:
    """Empirical-Bernstein confidence half-width (Audibert et al. 2009).

    For ``count`` i.i.d. samples in ``[0, value_range]`` with sample
    variance ``var``, the mean is within the returned half-width of the
    true expectation with probability ≥ 1 − ``failure``.
    """
    if count < 1:
        return np.full_like(np.asarray(var, dtype=np.float64), np.inf)
    log_term = math.log(3.0 / failure)
    return (
        np.sqrt(2.0 * np.asarray(var, dtype=np.float64) * log_term / count)
        + 3.0 * value_range * log_term / count
    )


@dataclass
class AdaptiveBCResult:
    """Adaptive-sampling estimate plus convergence metadata.

    ``scores`` are on the same raw λ scale as :func:`repro.core.mfbc.mfbc`
    (ordered source/target pairs); ``width`` and ``epsilon`` live on the
    normalized scale ``λ/((n−1)(n−2))`` the guarantee is stated on.
    """

    scores: np.ndarray
    epsilon: float
    delta: float
    samples_used: int
    batches: int
    converged: bool
    width: float  # final max per-vertex half-width (normalized scale)
    width_history: list = field(default_factory=list)
    batch_size: int = 0
    elapsed_seconds: float = 0.0

    @property
    def normalized_scores(self) -> np.ndarray:
        """Scores divided by ``(n−1)(n−2)`` — the scale of the ε bound."""
        n = len(self.scores)
        denom = (n - 1) * (n - 2)
        return self.scores / denom if denom > 0 else self.scores.copy()


def _schedule_crc(n: int, seed: int, batch_size: int, shards: int) -> int:
    """Checksum of everything that pins the adaptive source schedule."""
    return sources_checksum(
        np.array([n, seed, batch_size, shards], dtype=np.int64)
    )


def _charge_state_reduction(machine, n: int) -> None:
    """Charge the allreduce that merges per-rank sampler partials.

    The simulation folds shards locally (so values are independent of the
    physical rank layout) but the modeled machine still pays for the
    collective: ``2n + 1`` words per rank (sums, sums-of-squares, count)
    through a reduce + broadcast, the same weight-2 pair
    :meth:`repro.machine.collectives.Group.allreduce` charges.  Routed
    through ``charge_collective`` so fault plans can crash ranks inside
    the reduction like any other collective.
    """
    if machine is None or machine.p <= 1:
        return
    ranks = np.arange(machine.p)
    words = 2.0 * n + 1.0
    machine.charge_collective(ranks, words, weight=2.0, category="reduce")
    machine.charge_collective(ranks, words, weight=2.0, category="bcast")


def adaptive_bc(
    graph: Graph,
    *,
    epsilon: float = 0.1,
    delta: float = 0.1,
    seed: int | None = 0,
    batch_size: int | None = None,
    max_samples: int | None = None,
    shards: int | None = None,
    engine: Engine | None = None,
    max_batches: int | None = None,
    checkpoint: "CheckpointStore | str | None" = None,
    resume_from: "CheckpointStore | str | None" = None,
    retries: int = 2,
    retry_backoff: float = 0.05,
    retry_jitter_seed: int | None = 0,
) -> AdaptiveBCResult:
    """Adaptive-sampling BC with a provable (ε, δ) error bound.

    Samples sources uniformly with replacement in batches, runs each batch
    through the distributed MFBC machinery (one k-wide MFBF + MFBr sweep
    per batch), and stops as soon as the empirical-Bernstein bound
    certifies ``|b̂(v) − b(v)| ≤ ε`` simultaneously for every vertex with
    probability ≥ 1 − δ, where ``b`` is the normalized centrality
    ``λ/((n−1)(n−2))`` (see the module docstring for the estimator).

    Parameters
    ----------
    graph:
        Input graph.
    epsilon, delta:
        Accuracy target: additive error ≤ ``epsilon`` on the normalized
        scale for all vertices, with probability ≥ 1 − ``delta``.
    seed:
        Integer schedule seed.  Batch ``i``'s sources are drawn from an RNG
        keyed on ``(seed, i)``, so a resumed run re-derives the identical
        schedule; live generators are rejected (see :func:`normalize_seed`).
    batch_size:
        Sources per sweep; defaults to :func:`~repro.core.mfbc.default_batch_size`.
    max_samples:
        Hard sample budget; the run returns unconverged (with its best
        estimate and honest final width) when the budget is exhausted
        before the bound is met.  Default ``max(4n, 256)``.
    shards:
        Logical sampler-state shards (defaults to the machine size, or 1
        sequentially); fixed for the whole run so elastic shrink never
        reshuffles sample-to-shard assignment.
    engine:
        Execution engine (sequential by default).
    max_batches:
        Stop after this many batches *in this call* (checkpoint-driven
        tests and partial runs); the run is then unconverged unless the
        bound was already met.
    checkpoint, resume_from:
        Same contract as :func:`~repro.core.mfbc.mfbc`; the persisted state
        additionally carries the sampler moments, and a resumed run is
        bit-identical to an uninterrupted one.
    retries, retry_backoff, retry_jitter_seed:
        The per-batch recovery ladder, exactly as on
        :func:`~repro.core.mfbc.mfbc` (elastic recovery included).
    """
    engine = engine or SequentialEngine()
    epsilon, delta = validate_epsilon_delta(epsilon, delta)
    seed = normalize_seed(seed)
    if retries < 0:
        raise ValueError(f"retries must be non-negative, got {retries}")
    if retry_backoff < 0:
        raise ValueError(f"retry_backoff must be non-negative, got {retry_backoff}")
    n = graph.n
    machine = getattr(engine, "machine", None)
    plan = getattr(machine, "faults", None)

    if n < 3:
        # no vertex can mediate an ordered pair; every score is exactly 0
        return AdaptiveBCResult(
            scores=np.zeros(n, dtype=np.float64),
            epsilon=epsilon,
            delta=delta,
            samples_used=0,
            batches=0,
            converged=True,
            width=0.0,
            batch_size=0,
        )

    if shards is None:
        shards = int(machine.p) if machine is not None else 1
    if shards < 1:
        raise ValueError(f"shards must be positive, got {shards}")
    if max_samples is None:
        max_samples = max(4 * n, 256)
    if max_samples < 1:
        raise ValueError(f"max_samples must be positive, got {max_samples}")

    store = None if checkpoint is None else resolve_checkpoint_store(checkpoint)
    state = None
    if resume_from is not None:
        resume_store = resolve_checkpoint_store(resume_from)
        state = resume_store.load()
        if state is None and not isinstance(resume_from, CheckpointStore):
            raise FileNotFoundError(
                f"no checkpoint to resume from at {resume_from!r}"
            )
    if state is not None:
        if state.sampler is None:
            raise ValueError(
                "checkpoint carries no sampler state — not an adaptive_bc run"
            )
        if state.n != n:
            raise ValueError(
                f"checkpoint is for a {state.n}-vertex graph, not {n}"
            )
        if batch_size is None:
            batch_size = state.batch_size
        elif batch_size != state.batch_size:
            raise ValueError(
                f"checkpoint used batch_size={state.batch_size}, "
                f"cannot resume with batch_size={batch_size}"
            )
        meta = state.sampler
        if (float(meta["epsilon"]), float(meta["delta"])) != (epsilon, delta):
            raise ValueError(
                f"checkpoint targeted (epsilon={meta['epsilon']}, "
                f"delta={meta['delta']}), cannot resume with "
                f"(epsilon={epsilon}, delta={delta})"
            )
    if batch_size is None:
        batch_size = default_batch_size(graph)
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")

    crc = _schedule_crc(n, seed, batch_size, shards)
    scale = n / ((n - 1) * (n - 2))  # per-sample normalization of δ_s
    value_range = n / (n - 1)  # x_i(v) ∈ [0, R]

    sampler = SamplerState.empty(n, shards)
    cursor = 0  # samples drawn so far
    batch_index = 0
    width = math.inf
    width_history: list[float] = []
    if state is not None:
        if state.sources_crc != crc:
            raise ValueError(
                "checkpoint was taken with a different sampling schedule "
                "(seed, batch size, or shard count)"
            )
        sampler = SamplerState.from_payload(state.sampler["state"])
        if sampler.n != n or sampler.shards != shards:
            raise ValueError(
                "checkpoint sampler state does not match this run's shape"
            )
        cursor = int(state.cursor)
        batch_index = int(state.batch_index)
        width_history = [float(w) for w in state.sampler.get("width_history", [])]
        width = width_history[-1] if width_history else math.inf
        if plan is not None:
            plan.note(
                "batch",
                "resumed",
                site="adaptive_bc",
                cursor=cursor,
                index=batch_index,
            )
        elif obs.enabled():
            obs.count("faults.resumed", 1.0, kind="batch")

    raw_denom = (n - 1) * (n - 2)
    converged = width <= epsilon
    executed = 0
    t0 = time.perf_counter()
    with obs.span(
        "adaptive_bc",
        cat="run",
        n=n,
        m=graph.nnz_adjacency,
        batch_size=batch_size,
        epsilon=epsilon,
        delta=delta,
    ):
        with obs.span("adjacency", cat="phase"):
            adj = engine.adjacency(graph)
        while not converged and cursor < max_samples:
            if max_batches is not None and executed >= max_batches:
                break
            count = min(batch_size, max_samples - cursor)
            # schedule keyed on (seed, batch index): resumable by construction
            batch = np.random.default_rng([seed, batch_index]).integers(
                0, n, size=count, dtype=np.int64
            )

            def attempt_batch(attempt, batch=batch, batch_index=batch_index):
                with obs.span(
                    "batch",
                    cat="batch",
                    index=batch_index,
                    sources=len(batch),
                    attempt=attempt,
                ):
                    rows = mfbc_per_source(graph, batch, engine=engine, adj=adj)
                    # merging the per-rank partials is paid for (and can
                    # fail) like any collective, so it sits inside the
                    # recovery ladder with the sweep itself
                    with obs.span("reduce_state", cat="phase"):
                        _charge_state_reduction(machine, n)
                return rows

            rows = run_batch_with_recovery(
                attempt_batch,
                engine=engine,
                batch_index=batch_index,
                retries=retries,
                retry_backoff=retry_backoff,
                retry_jitter_seed=retry_jitter_seed,
                site="adaptive_bc",
            )
            # fold exactly once per completed batch — retries and elastic
            # re-executions above never reach this line twice
            sampler.update(rows * scale, cursor)
            cursor += count
            batch_index += 1
            executed += 1

            mean, var = sampler.mean_and_variance()
            # round budget δ_r = δ/(r(r+1)) (Σ_r = δ), split over n vertices
            round_failure = delta / (n * batch_index * (batch_index + 1))
            width = float(
                bernstein_half_width(
                    var,
                    sampler.total_samples,
                    failure=round_failure,
                    value_range=value_range,
                ).max()
            )
            width_history.append(width)
            converged = width <= epsilon
            if obs.enabled():
                obs.count("approx.batches", 1.0, algorithm="adaptive_bc")
                obs.count(
                    "approx.samples", float(count), algorithm="adaptive_bc"
                )
                obs.gauge("approx.width", width, algorithm="adaptive_bc")

            if store is not None:
                store.save(
                    CheckpointState(
                        cursor=cursor,
                        batch_index=batch_index,
                        batch_size=batch_size,
                        n=n,
                        sources_crc=crc,
                        scores=mean * raw_denom,
                        stats=[],
                        sampler={
                            "epsilon": epsilon,
                            "delta": delta,
                            "seed": seed,
                            "width_history": width_history,
                            "state": sampler.to_payload(),
                        },
                    )
                )

    mean, _ = sampler.mean_and_variance()
    if obs.enabled():
        obs.count(
            "approx.runs",
            1.0,
            algorithm="adaptive_bc",
            converged=str(bool(converged)).lower(),
        )
    return AdaptiveBCResult(
        scores=mean * raw_denom,
        epsilon=epsilon,
        delta=delta,
        samples_used=sampler.total_samples,
        batches=batch_index,
        converged=bool(converged),
        width=float(width),
        width_history=width_history,
        batch_size=batch_size,
        elapsed_seconds=time.perf_counter() - t0,
    )


# ---------------------------------------------------------------------------
# Bader et al. single-vertex estimator
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AdaptiveEstimate:
    """Result of the adaptive single-vertex estimator."""

    vertex: int
    estimate: float
    samples_used: int
    converged: bool


def adaptive_vertex_bc(
    graph: Graph,
    vertex: int,
    *,
    c: float = 5.0,
    max_samples: int | None = None,
    seed: int | np.random.Generator | None = None,
    batch_size: int = 16,
    engine: Engine | None = None,
) -> AdaptiveEstimate:
    """Bader et al.'s adaptive sampling estimate of ``λ(vertex)``.

    Sources are sampled in batches until the accumulated dependency mass at
    ``vertex`` exceeds ``c·n`` (then ``n·S/k`` estimates λ with a
    multiplicative guarantee for vertices whose centrality is Ω(n)), or
    until ``max_samples`` sources have been used (the estimate is still
    returned, flagged unconverged).
    """
    if not 0 <= vertex < graph.n:
        raise ValueError(f"vertex {vertex} out of range")
    if c <= 0:
        raise ValueError(f"c must be positive, got {c}")
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    rng = as_rng(seed)
    if max_samples is None:
        max_samples = graph.n
    else:
        max_samples = validate_sample_count(
            max_samples, graph.n, name="max_samples"
        )

    order = rng.permutation(graph.n)
    mass = 0.0
    used = 0
    threshold = c * graph.n
    while used < max_samples:
        batch = order[used : used + batch_size]
        res = mfbc(graph, batch_size=len(batch), sources=batch, engine=engine)
        mass += float(res.scores[vertex])
        used += len(batch)
        if mass >= threshold:
            return AdaptiveEstimate(
                vertex=vertex,
                estimate=graph.n * mass / used,
                samples_used=used,
                converged=True,
            )
    return AdaptiveEstimate(
        vertex=vertex,
        estimate=graph.n * mass / used if used else 0.0,
        samples_used=used,
        converged=False,
    )
