"""MFBC: the batched betweenness-centrality driver (Algorithm 3).

Processes the graph's vertices in batches of ``nb`` sources.  Each batch runs
MFBF (distances + multiplicities) then MFBr (partial centrality factors) and
accumulates ``λ(v) += Σ_s ζ(s,v) · σ̄(s,v)`` — the scaling by multiplicities
that converts partial centrality *factors* back into Brandes dependencies
``δ(s,v)`` (Theorem 4.3).

The batch size is the paper's time/storage tradeoff knob: MFBC performs
``⌈n/nb⌉`` batches while holding an ``n × nb`` working matrix; §5.3's
analysis picks ``nb = c·m/n`` to fill the available memory.

The batch boundary is also the driver's fault-tolerance unit.  With
``checkpoint=`` the accumulated scores and source cursor are persisted
after every batch (see :mod:`repro.faults.checkpoint`), and
``resume_from=`` replays only the remaining batches — bit-identical to an
uninterrupted run, because partial sums accumulate in the same order
either way.  Injected failures (:class:`~repro.faults.FaultError`) inside
a batch are retried up to ``retries`` times with exponential backoff
charged to the machine's modeled clock.

When the machine carries an :class:`~repro.elastic.ElasticPolicy`, a
:class:`~repro.faults.RankFailure` takes the elastic path before burning a
retry: the engine shrinks onto the survivors
(:meth:`~repro.dist.engine.DistributedEngine.recover_from`) and only the
interrupted batch re-executes — no restart, and the final scores stay
bit-identical because completed batches' partial sums are untouched.
Recovery never consumes retry budget (each success strictly shrinks ``p``,
so storms terminate); when recovery itself is impossible
(:class:`~repro.elastic.RecoveryError`) the driver falls back to the plain
retry ladder.  :class:`~repro.faults.DeadlineExceeded` is terminal by
design — retrying a blown time budget would only spin.

:class:`~repro.machine.MemoryLimitExceeded` gets its own ladder
(:class:`~repro.memory.MemoryLadder`): shrink the batch width, spill cold
blocks to the checksummed store, drop replica redundancy — every rung
bit-identical, re-armed once pressure clears — before falling through to
the retry ladder above.  See docs/robustness.md, "The memory ladder".
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.algebra.monoid import PlusMonoid
from repro.core.engine import Engine, SequentialEngine
from repro.core.mfbf import mfbf
from repro.core.mfbr import mfbr
from repro.core.stats import BatchStats, MFBCStats
from repro.faults.checkpoint import (
    CheckpointState,
    CheckpointStore,
    resolve_checkpoint_store,
    sources_checksum,
    stats_from_dicts,
    stats_to_dicts,
)
from repro.faults.plan import DeadlineExceeded, FaultError, RankFailure
from repro.graphs.graph import Graph
from repro.machine.machine import MemoryLimitExceeded
from repro.memory.ladder import MemoryLadder
from repro.obs import api as obs

__all__ = [
    "mfbc",
    "mfbc_per_source",
    "betweenness_centrality",
    "run_batch_with_recovery",
    "MFBCResult",
    "default_batch_size",
]

_PLUS = PlusMonoid()


@dataclass
class MFBCResult:
    """Centrality scores plus run metadata."""

    scores: np.ndarray
    stats: MFBCStats
    batch_size: int
    elapsed_seconds: float

    def teps(self, graph: Graph) -> float:
        """Edge traversals per second (the paper's §7.1 performance metric).

        For BC, every adjacency nonzero is traversed once per starting
        vertex, so traversals = (sources processed) × nnz(A).
        """
        traversals = self.stats.sources_processed * graph.nnz_adjacency
        return traversals / self.elapsed_seconds if self.elapsed_seconds > 0 else 0.0


def default_batch_size(graph: Graph, memory_words: int | None = None) -> int:
    """The paper's memory-driven batch size ``nb = c·m/n`` (§5.3 proof).

    With no memory bound we default to ``max(average degree, 32)`` clamped to
    ``n`` — the shape the proof of Theorem 5.1 selects with c = 1.
    """
    n = graph.n
    nnz = max(graph.nnz_adjacency, 1)
    if memory_words is not None:
        # T needs O(n · nb) words; keep it within the budget.
        nb = max(1, memory_words // max(n, 1))
    else:
        nb = max(int(round(nnz / n)), 32)
    return int(min(max(nb, 1), n))


def mfbc(
    graph: Graph,
    batch_size: int | None = None,
    *,
    engine: Engine | None = None,
    sources: np.ndarray | None = None,
    max_batches: int | None = None,
    checkpoint: "CheckpointStore | str | None" = None,
    resume_from: "CheckpointStore | str | None" = None,
    retries: int = 2,
    retry_backoff: float = 0.05,
    retry_jitter_seed: int | None = 0,
) -> MFBCResult:
    """Compute betweenness centrality of every vertex of ``graph``.

    Parameters
    ----------
    graph:
        Input graph (directed or undirected, weighted or unweighted;
        weights must be positive).
    batch_size:
        Sources per batch (``nb``).  Defaults to :func:`default_batch_size`,
        or to the checkpoint's recorded batch size when resuming.
    engine:
        Execution engine (sequential by default; pass a
        :class:`~repro.dist.engine.DistributedEngine` to run on the
        simulated machine).
    sources:
        Restrict to these starting vertices (approximate / partial BC, and
        the building block of the per-batch benchmarks).  Default: all
        vertices.
    max_batches:
        Stop after this many batches *in this call* (for sampled
        benchmarking); scores are then partial sums over the processed
        sources.
    checkpoint:
        A :class:`~repro.faults.CheckpointStore` or file path; the driver
        persists scores + cursor after every completed batch.
    resume_from:
        A store or path holding a previous run's checkpoint; the driver
        restores its scores and replays only the remaining batches.
        Incompatible checkpoints (different graph size, source list, or an
        explicit conflicting ``batch_size``) are rejected.  Pass the same
        store as both ``checkpoint=`` and ``resume_from=`` for
        resume-if-present semantics (an empty store starts from scratch).
    retries:
        How many times to re-run a batch that died with an injected
        :class:`~repro.faults.FaultError` before giving up.  Each retry
        first calls the engine's ``recover()`` hook (when it has one).
    retry_backoff:
        Base backoff in modeled seconds, charged to the machine via
        ``charge_overhead`` — restarts are not free.
    retry_jitter_seed:
        Seed for the decorrelated-jitter backoff: each retry sleeps
        ``min(cap, U[base, 3·prev])`` with the RNG keyed on
        ``(seed, batch_index)``, so concurrent coalesced ladders (many
        service batches retrying the same fault storm) desynchronize
        instead of hammering the machine in lockstep, while a fixed seed
        keeps every run bit-reproducible.  ``None`` restores the legacy
        jitter-free ``base·2^(attempt-1)`` schedule.

    Returns
    -------
    :class:`MFBCResult` with ``scores[v] = λ(v) = Σ_{s,t} σ(s,t,v)/σ̄(s,t)``
    over ordered source/target pairs (the paper's convention; halve for the
    undirected unordered-pair convention).
    """
    engine = engine or SequentialEngine()
    if retries < 0:
        raise ValueError(f"retries must be non-negative, got {retries}")
    if retry_backoff < 0:
        raise ValueError(f"retry_backoff must be non-negative, got {retry_backoff}")
    if sources is None:
        sources = np.arange(graph.n, dtype=np.int64)
    else:
        sources = np.asarray(sources, dtype=np.int64)
    src_crc = sources_checksum(sources)

    store = None if checkpoint is None else resolve_checkpoint_store(checkpoint)
    state = None
    if resume_from is not None:
        resume_store = resolve_checkpoint_store(resume_from)
        state = resume_store.load()
        if state is None and not isinstance(resume_from, CheckpointStore):
            raise FileNotFoundError(
                f"no checkpoint to resume from at {resume_from!r}"
            )
    if state is not None:
        if state.n != graph.n:
            raise ValueError(
                f"checkpoint is for a {state.n}-vertex graph, not {graph.n}"
            )
        if state.sources_crc != src_crc:
            raise ValueError("checkpoint was taken with a different source list")
        if batch_size is None:
            batch_size = state.batch_size
        elif batch_size != state.batch_size:
            raise ValueError(
                f"checkpoint used batch_size={state.batch_size}, "
                f"cannot resume with batch_size={batch_size}"
            )
    if batch_size is None:
        batch_size = default_batch_size(graph)
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")

    scores = np.zeros(graph.n, dtype=np.float64)
    stats = MFBCStats()
    cursor = 0
    batch_index = 0
    machine = getattr(engine, "machine", None)
    plan = getattr(machine, "faults", None)
    if state is not None:
        scores[:] = state.scores
        cursor = int(state.cursor)
        batch_index = int(state.batch_index)
        stats.batches = stats_from_dicts(state.stats)
        if plan is not None:
            plan.note(
                "batch", "resumed", site="mfbc", cursor=cursor, index=batch_index
            )
        elif obs.enabled():
            obs.count("faults.resumed", 1.0, kind="batch")
    t0 = time.perf_counter()

    with obs.span(
        "mfbc",
        cat="run",
        n=graph.n,
        m=graph.nnz_adjacency,
        batch_size=batch_size,
    ):
        ladder = MemoryLadder(engine)
        with obs.span("adjacency", cat="phase"):
            while True:
                try:
                    adj = engine.adjacency(graph)
                    break
                except MemoryLimitExceeded as exc:
                    # only the spill / drop-redundancy rungs can help here
                    # (there is no batch to shrink yet)
                    if ladder.advance(exc) is None:
                        raise
        executed = 0
        lo = cursor
        while lo < len(sources):
            batch = sources[lo : lo + batch_size]
            while True:

                def attempt_batch(attempt, batch=batch, batch_index=batch_index):
                    batch_stats = BatchStats(sources=len(batch))
                    with obs.span(
                        "batch",
                        cat="batch",
                        index=batch_index,
                        sources=len(batch),
                        attempt=attempt,
                    ):
                        with obs.span("mfbf", cat="phase"):
                            t_mat = mfbf(adj, batch, engine=engine, stats=batch_stats)
                        with obs.span("mfbr", cat="phase"):
                            z_mat = mfbr(adj, t_mat, engine=engine, stats=batch_stats)
                        with obs.span("accumulate", cat="phase"):
                            terms = _accumulate(engine, graph.n, batch, t_mat, z_mat)
                    return terms, batch_stats

                try:
                    terms, batch_stats = run_batch_with_recovery(
                        attempt_batch,
                        engine=engine,
                        batch_index=batch_index,
                        retries=retries,
                        retry_backoff=retry_backoff,
                        retry_jitter_seed=retry_jitter_seed,
                    )
                    break
                except MemoryLimitExceeded as exc:
                    # the OOM degradation ladder: shrink the batch width,
                    # spill cold blocks, drop replica redundancy — every
                    # rung bit-identical — before the error turns terminal.
                    # (Per-source score rows are independent and cross-batch
                    # accumulation is strictly left-to-right, so narrower
                    # retries reproduce the exact same scores.)
                    rung = ladder.advance(exc, batch_width=len(batch))
                    if rung is None:
                        raise
                    if rung == "shrink_batch":
                        batch_size = ladder.batch_size
                        batch = sources[lo : lo + batch_size]
            ladder.after_success()
            # ordered in-place accumulation: see _accumulate on why this
            # keeps scores bit-identical across batch widths
            np.add.at(scores, terms[0], terms[1])
            stats.batches.append(batch_stats)
            batch_index += 1
            executed += 1
            lo += len(batch)
            if store is not None:
                store.save(
                    CheckpointState(
                        cursor=lo,
                        batch_index=batch_index,
                        batch_size=batch_size,
                        n=graph.n,
                        sources_crc=src_crc,
                        scores=scores,
                        stats=stats_to_dicts(stats.batches),
                    )
                )
            if max_batches is not None and executed >= max_batches:
                break

    elapsed = time.perf_counter() - t0
    return MFBCResult(
        scores=scores, stats=stats, batch_size=batch_size, elapsed_seconds=elapsed
    )


def mfbc_per_source(
    graph: Graph,
    sources: np.ndarray,
    *,
    engine: Engine | None = None,
    adj=None,
) -> np.ndarray:
    """One k-wide MFBF + MFBr sweep, split into per-source score rows.

    This is the batch entry point the serving layer's coalescer uses: k
    concurrent single-source BC queries cost *one* sweep of width k instead
    of k sweeps.  Returns a dense ``len(sources) × n`` array whose row ``i``
    equals ``mfbc(graph, sources=[sources[i]]).scores`` bit-identically —
    rows of the multpath/centpath matrices never interact (every SpGEMM
    entry ``(i, j)`` depends only on row ``i`` of the frontier), so batching
    changes neither the values nor the accumulation order within a row.

    Parameters
    ----------
    graph:
        Input graph.
    sources:
        The coalesced batch of starting vertices (length ``k``).
    engine:
        Execution engine (sequential by default).
    adj:
        Optional pre-distributed adjacency matrix in the engine's
        representation — the serving layer pins this once per graph version
        so repeated sweeps skip redistribution entirely.
    """
    engine = engine or SequentialEngine()
    sources = np.asarray(sources, dtype=np.int64)
    if len(sources) == 0:
        raise ValueError("empty source batch")
    with obs.span(
        "mfbc_per_source", cat="run", n=graph.n, sources=len(sources)
    ):
        ladder = MemoryLadder(engine, site="serve")
        if adj is None:
            with obs.span("adjacency", cat="phase"):
                while True:
                    try:
                        adj = engine.adjacency(graph)
                        break
                    except MemoryLimitExceeded as exc:
                        if ladder.advance(exc) is None:
                            raise
        while True:
            try:
                out = _per_source_sweep(engine, graph, adj, sources)
                break
            except MemoryLimitExceeded as exc:
                # the serve-side OOM ladder: halve the coalesced batch (rows
                # are independent, so stacking two half-sweeps is
                # bit-identical to one full sweep), then spill / drop
                # redundancy at width one
                rung = ladder.advance(exc, batch_width=len(sources))
                if rung is None:
                    raise
                if rung == "shrink_batch":
                    half = ladder.batch_size
                    out = np.vstack([
                        mfbc_per_source(
                            graph, sources[:half], engine=engine, adj=adj
                        ),
                        mfbc_per_source(
                            graph, sources[half:], engine=engine, adj=adj
                        ),
                    ])
                    break
        ladder.after_success()
    return out


def _per_source_sweep(engine, graph, adj, sources) -> np.ndarray:
    """One MFBF + MFBr sweep split into per-source rows (see caller)."""
    with obs.span("mfbf", cat="phase"):
        t_mat = mfbf(adj, sources, engine=engine)
    with obs.span("mfbr", cat="phase"):
        z_mat = mfbr(adj, t_mat, engine=engine)
    with obs.span("accumulate", cat="phase"):
        delta = z_mat.zip_map(
            t_mat,
            lambda zv, tv: {"w": zv["p"] * tv["m"]},
            monoid=_PLUS,
        )
        local = engine.gather(delta)
        keep = local.cols != sources[local.rows]
        out = np.zeros((len(sources), graph.n), dtype=np.float64)
        # canonical SpMat stores each (row, col) once, so this is a
        # plain scatter — no accumulation-order concerns
        out[local.rows[keep], local.cols[keep]] = local.vals["w"][keep]
    return out


def run_batch_with_recovery(
    run_batch,
    *,
    engine: Engine,
    batch_index: int,
    retries: int = 2,
    retry_backoff: float = 0.05,
    retry_jitter_seed: int | None = 0,
    site: str = "mfbc",
):
    """Execute one batch under the driver's full recovery ladder.

    ``run_batch(attempt)`` is called until it returns without raising a
    :class:`~repro.faults.FaultError`; its return value passes through.
    The ladder is the one documented on :func:`mfbc` — elastic recovery
    for :class:`~repro.faults.RankFailure` when the machine carries a
    policy (never burns a retry), then up to ``retries`` re-runs with
    decorrelated-jitter backoff charged to the machine's modeled clock,
    :class:`~repro.faults.DeadlineExceeded` always terminal.  Shared by
    ``mfbc`` and the adaptive sampler
    (:func:`repro.core.approx.adaptive_bc`); ``site`` tags the fault-plan
    notes with the calling driver.
    """
    machine = getattr(engine, "machine", None)
    plan = getattr(machine, "faults", None)
    attempt = 0
    jitter_rng = (
        None
        if retry_jitter_seed is None
        else np.random.default_rng([retry_jitter_seed, batch_index])
    )
    prev_backoff = retry_backoff
    while True:
        try:
            return run_batch(attempt)
        except FaultError as exc:
            if isinstance(exc, DeadlineExceeded):
                if plan is not None:
                    plan.note(
                        "batch",
                        "abandoned",
                        site=site,
                        index=batch_index,
                        attempts=attempt + 1,
                        error="DeadlineExceeded",
                    )
                raise
            if (
                isinstance(exc, RankFailure)
                and machine is not None
                and getattr(machine, "elastic", None) is not None
                and getattr(engine, "recover_from", None) is not None
                and _elastic_recover(engine, machine, exc, plan, batch_index, site)
            ):
                continue  # re-execute only this batch on the survivors
            attempt += 1
            if attempt > retries:
                if plan is not None:
                    plan.note(
                        "batch",
                        "abandoned",
                        site=site,
                        index=batch_index,
                        attempts=attempt,
                        error=type(exc).__name__,
                    )
                raise
            recover = getattr(engine, "recover", None)
            if recover is not None:
                recover()
            if jitter_rng is None:
                backoff = retry_backoff * (2.0 ** (attempt - 1))
            else:
                # decorrelated jitter: draw from [base, 3·prev],
                # capped at the legacy ladder's final rung
                cap = retry_backoff * (2.0 ** max(retries - 1, 0))
                backoff = min(
                    cap,
                    float(jitter_rng.uniform(retry_backoff, prev_backoff * 3.0)),
                )
                prev_backoff = backoff
            if machine is not None and backoff > 0:
                machine.charge_overhead(backoff)
            if plan is not None:
                plan.note(
                    "batch",
                    "recovered",
                    site=site,
                    index=batch_index,
                    attempt=attempt,
                    backoff_s=backoff,
                    error=type(exc).__name__,
                )


def _elastic_recover(
    engine, machine, failure, plan, batch_index, site="mfbc"
) -> bool:
    """One elastic recovery attempt; True means the batch can re-execute."""
    # deferred import: the coordinator pulls in repro.dist
    from repro.elastic.recovery import RecoveryError

    try:
        report = engine.recover_from(failure)
    except RecoveryError as err:
        if plan is not None:
            plan.note(
                "crash",
                "degraded",
                site=site,
                rank=getattr(failure, "rank", None),
                reason=str(err),
            )
        elif obs.enabled():
            obs.count("elastic.fallbacks", 1.0)
        return False
    if plan is not None:
        plan.note(
            "batch",
            "recovered",
            site=site,
            index=batch_index,
            mode="elastic",
            p=report.p_after,
        )
    elif obs.enabled():
        obs.count("faults.recovered", 1.0, kind="batch", mode="elastic")
    return True


def _accumulate(engine, n, batch, t_mat, z_mat) -> tuple[np.ndarray, np.ndarray]:
    """``λ(v) += Σ_s ζ(s,v) · σ̄(s,v)`` terms, excluding the source itself.

    The diagonal exclusion (pair ``v = s``) implements the convention
    ``σ(s, t, s) = 0``: a source accumulates back-propagated factors from its
    whole DAG, but its own centrality must not count paths it terminates.

    Returns the ``(target, weight)`` entry arrays in canonical
    (source-major, target-ascending) order *without* summing them: the
    driver folds them into the running scores with an ordered in-place
    ``np.add.at``, so the floating-point grouping per target is one strict
    left-to-right walk over sources — making the accumulated scores
    bit-identical for every batch width (what lets the OOM ladder's
    shrink-batch rung retry narrower without changing the answer).
    """
    delta = z_mat.zip_map(
        t_mat,
        lambda zv, tv: {"w": zv["p"] * tv["m"]},
        monoid=_PLUS,
    )
    local = engine.gather(delta)
    keep = local.cols != batch[local.rows]
    return local.cols[keep], local.vals["w"][keep]


def betweenness_centrality(
    graph: Graph,
    *,
    batch_size: int | None = None,
    normalized: bool = False,
    engine: Engine | None = None,
) -> np.ndarray:
    """Convenience wrapper returning only the score vector.

    Raw scores follow the paper's ordered-pair convention (undirected graphs
    count each unordered pair twice).  With ``normalized=True`` scores are
    divided by ``(n−1)(n−2)``, the number of ordered source/target pairs a
    vertex can mediate — this lands exactly on networkx's normalization for
    both directed and undirected graphs, because networkx's halved raw score
    meets its halved denominator.
    """
    result = mfbc(graph, batch_size=batch_size, engine=engine)
    scores = result.scores
    if normalized:
        denom = (graph.n - 1) * (graph.n - 2)
        if denom > 0:
            scores = scores / denom
    return scores
