"""The two generalized matmul operators MFBC is built from.

``BELLMAN_FORD_SPEC`` is ``•⟨⊕,f⟩`` of §4.1.2 (multpath monoid + BF action);
``BRANDES_SPEC`` is ``•⟨⊗,g⟩`` of §4.2.2 (centpath monoid + Brandes action).
"""

from repro.algebra.centpath import CENTPATH, brandes_action
from repro.algebra.matmul import MatMulSpec
from repro.algebra.multpath import MULTPATH, bellman_ford_action

__all__ = ["BELLMAN_FORD_SPEC", "BRANDES_SPEC"]

BELLMAN_FORD_SPEC = MatMulSpec(MULTPATH, bellman_ford_action, name="bellman-ford")
BRANDES_SPEC = MatMulSpec(CENTPATH, brandes_action, name="brandes")
