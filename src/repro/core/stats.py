"""Execution statistics collected by MFBC runs.

These mirror the quantities the paper's analysis is phrased in: per-iteration
frontier sizes ``nnz(F_i)`` and product sizes ``nnz(G_i)`` (§5.3), elementary
product counts ``ops`` (§5.1), matrix-multiplication counts, and — when run
on the simulated machine — the α-β communication ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["IterationStats", "BatchStats", "MFBCStats"]


@dataclass
class IterationStats:
    """One frontier relaxation (one generalized matrix multiplication)."""

    phase: str  # "mfbf" or "mfbr"
    frontier_nnz: int  # nnz(F_i), the product's sparse operand
    product_nnz: int  # nnz(G_i), the product output before filtering
    ops: int  # elementary nonzero products formed


@dataclass
class BatchStats:
    """All iterations for one batch of ``nb`` starting vertices."""

    sources: int
    iterations: list[IterationStats] = field(default_factory=list)

    @property
    def mfbf_iterations(self) -> int:
        return sum(1 for it in self.iterations if it.phase == "mfbf")

    @property
    def mfbr_iterations(self) -> int:
        return sum(1 for it in self.iterations if it.phase == "mfbr")

    @property
    def total_ops(self) -> int:
        return sum(it.ops for it in self.iterations)

    @property
    def total_frontier_nnz(self) -> int:
        return sum(it.frontier_nnz for it in self.iterations)

    @property
    def total_product_nnz(self) -> int:
        return sum(it.product_nnz for it in self.iterations)


@dataclass
class MFBCStats:
    """Whole-run statistics across all batches."""

    batches: list[BatchStats] = field(default_factory=list)

    @property
    def total_ops(self) -> int:
        return sum(b.total_ops for b in self.batches)

    @property
    def total_multiplications(self) -> int:
        return sum(len(b.iterations) for b in self.batches)

    @property
    def sources_processed(self) -> int:
        return sum(b.sources for b in self.batches)

    def summary(self) -> dict[str, int]:
        """Flat dict for reports."""
        return {
            "batches": len(self.batches),
            "sources": self.sources_processed,
            "matmuls": self.total_multiplications,
            "ops": self.total_ops,
            "frontier_nnz": sum(b.total_frontier_nnz for b in self.batches),
            "product_nnz": sum(b.total_product_nnz for b in self.batches),
        }
