"""Edge betweenness centrality from MFBC's T and Z matrices.

A natural extension of the paper's machinery (its conclusion explicitly
invites extending the formalism): the centrality of an *edge* (u, v) is
``λ(u,v) = Σ_{s,t} σ(s,t,(u,v))/σ̄(s,t)`` — the number of shortest paths
crossing the edge.  With MFBF's multpaths and MFBr's partial factors it has
the closed per-source form

    c(s, (u,v)) = σ̄(s,u) · (1/σ̄(s,v) + ζ(s,v))   if τ(s,u) + w(u,v) = τ(s,v)
                = 0                                otherwise,

i.e. the tail's multiplicity times exactly the value MFBr propagates when
``v`` fires.  Edge BC is the engine of Girvan–Newman community detection
(see ``examples/community_detection.py``).
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import Engine, SequentialEngine
from repro.core.mfbf import mfbf
from repro.core.mfbr import mfbr
from repro.graphs.graph import Graph

__all__ = ["edge_betweenness_centrality", "EdgeBCResult"]


class EdgeBCResult:
    """Edge scores aligned with ``graph.src``/``graph.dst``.

    For undirected graphs each stored edge's score already sums both
    traversal directions.
    """

    __slots__ = ("graph", "scores")

    def __init__(self, graph: Graph, scores: np.ndarray) -> None:
        self.graph = graph
        self.scores = scores

    def top_edges(self, k: int) -> list[tuple[int, int, float]]:
        """The ``k`` highest-scoring edges as (u, v, score)."""
        order = np.argsort(self.scores)[::-1][:k]
        return [
            (int(self.graph.src[i]), int(self.graph.dst[i]), float(self.scores[i]))
            for i in order
        ]

    def as_dict(self) -> dict[tuple[int, int], float]:
        return {
            (int(u), int(v)): float(s)
            for u, v, s in zip(self.graph.src, self.graph.dst, self.scores)
        }


def edge_betweenness_centrality(
    graph: Graph,
    *,
    batch_size: int | None = None,
    sources: np.ndarray | None = None,
    engine: Engine | None = None,
    edge_chunk: int = 1 << 20,
) -> EdgeBCResult:
    """Betweenness centrality of every edge (ordered-pair convention).

    Parameters mirror :func:`repro.core.mfbc.mfbc`; ``edge_chunk`` bounds
    the ``nb × edges`` working array materialized at once.
    """
    engine = engine or SequentialEngine()
    if sources is None:
        sources = np.arange(graph.n, dtype=np.int64)
    else:
        sources = np.asarray(sources, dtype=np.int64)
    if batch_size is None:
        batch_size = max(min(graph.n, 32), 1)
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")

    adj = engine.adjacency(graph)
    w = graph.edge_weights()
    src, dst = graph.src, graph.dst
    scores = np.zeros(graph.m)

    for lo in range(0, len(sources), batch_size):
        batch = sources[lo : lo + batch_size]
        t_mat = mfbf(adj, batch, engine=engine)
        z_mat = mfbr(adj, t_mat, engine=engine)
        t_local = engine.gather(t_mat)
        z_local = engine.gather(z_mat)
        tau = t_local.to_dense("w")
        sigma = t_local.to_dense("m", fill=0.0)
        zeta = z_local.to_dense("p", fill=0.0)
        # Φ(s, v) = 1/σ̄(s,v) + ζ(s,v) on reachable pairs
        with np.errstate(divide="ignore"):
            phi = np.where(sigma > 0, 1.0 / np.where(sigma > 0, sigma, 1.0), 0.0)
        phi = phi + zeta

        nb = len(batch)
        step = max(1, edge_chunk // max(nb, 1))
        for e_lo in range(0, graph.m, step):
            e_hi = min(e_lo + step, graph.m)
            u = src[e_lo:e_hi]
            v = dst[e_lo:e_hi]
            we = w[e_lo:e_hi]
            # forward orientation u -> v
            tie = tau[:, u] + we[None, :] == tau[:, v]
            contrib = np.where(tie, sigma[:, u] * phi[:, v], 0.0)
            if not graph.directed:
                tie_b = tau[:, v] + we[None, :] == tau[:, u]
                contrib = contrib + np.where(
                    tie_b, sigma[:, v] * phi[:, u], 0.0
                )
            scores[e_lo:e_hi] += contrib.sum(axis=0)

    return EdgeBCResult(graph, scores)
