"""The paper's primary contribution: Maximal Frontier Betweenness Centrality.

* :mod:`repro.core.mfbf` — Algorithm 1 (Maximal Frontier Bellman-Ford):
  shortest distances and multiplicities from a batch of sources;
* :mod:`repro.core.mfbr` — Algorithm 2 (Maximal Frontier Brandes):
  partial centrality factors ζ via counter-gated back-propagation;
* :mod:`repro.core.mfbc` — Algorithm 3: the batched driver combining both
  and accumulating λ, plus the top-level :func:`betweenness_centrality`
  convenience API;
* :mod:`repro.core.engine` — the execution-engine seam: the sequential
  engine runs on node-local :class:`~repro.sparse.SpMat`; the distributed
  engine (in :mod:`repro.dist`) runs the same algorithm over the simulated
  machine.
"""

from repro.core.approx import (
    AdaptiveBCResult,
    AdaptiveEstimate,
    SamplerState,
    adaptive_bc,
    adaptive_vertex_bc,
    approximate_bc,
)
from repro.core.ca_mfbc import ca_engine, ca_mfbc
from repro.core.edge_bc import EdgeBCResult, edge_betweenness_centrality
from repro.core.engine import Engine, SequentialEngine
from repro.core.mfbf import mfbf
from repro.core.mfbr import mfbr
from repro.core.mfbc import MFBCResult, betweenness_centrality, mfbc, mfbc_per_source
from repro.core.stats import BatchStats, IterationStats, MFBCStats

__all__ = [
    "Engine",
    "SequentialEngine",
    "mfbf",
    "mfbr",
    "mfbc",
    "mfbc_per_source",
    "MFBCResult",
    "betweenness_centrality",
    "MFBCStats",
    "BatchStats",
    "IterationStats",
    "approximate_bc",
    "adaptive_bc",
    "adaptive_vertex_bc",
    "AdaptiveBCResult",
    "AdaptiveEstimate",
    "SamplerState",
    "ca_mfbc",
    "ca_engine",
    "edge_betweenness_centrality",
    "EdgeBCResult",
]
