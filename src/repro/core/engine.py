"""Execution engines: where the generalized matrix products actually run.

MFBF/MFBr are written against a minimal engine protocol so the *same*
algorithm code drives both execution modes:

* :class:`SequentialEngine` — products run on node-local
  :class:`~repro.sparse.SpMat` via the vectorized kernel;
* :class:`repro.dist.engine.DistributedEngine` — products run on the
  simulated p-rank machine through the CTF-style algorithm selector,
  charging α-β communication costs.

Both matrix types share the elementwise method surface (``combine``,
``filter``, ``map``, ``zip_filter``, ``zip_map``, ``column_sums``), so the
engine protocol only needs to abstract construction and multiplication.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from repro.algebra.matmul import MatMulSpec
from repro.algebra.monoid import Monoid
from repro.obs import api as obs
from repro.sparse.spgemm import spgemm
from repro.sparse.spmatrix import SpMat

__all__ = ["Engine", "SequentialEngine"]


@runtime_checkable
class Engine(Protocol):
    """The seam between MFBC's algorithm code and its execution substrate.

    Both engines implement the full protocol, so algorithm code never
    feature-tests its engine: ``spgemm`` always returns the
    ``tuple[matrix, ops]`` pair, and ``register_invariant`` is always
    callable (a no-op where there is nothing to amortize).
    """

    def matrix(
        self,
        nrows: int,
        ncols: int,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: dict[str, np.ndarray],
        monoid: Monoid,
    ):
        """Build a matrix in this engine's representation."""
        ...

    def adjacency(self, graph) -> object:
        """This engine's representation of ``graph``'s adjacency matrix."""
        ...

    def register_invariant(self, mat) -> None:
        """Mark ``mat`` as loop-invariant so the engine may amortize work
        that depends only on its identity (replication, transposes)."""
        ...

    def spgemm(
        self, a, b, spec: MatMulSpec, *, mask=None, mask_complement: bool = False
    ) -> tuple[object, int]:
        """``(a •⟨⊕,f⟩ b, elementary product count)``.

        The unified return contract across engines: the product matrix in
        this engine's representation, and the number of elementary nonzero
        products formed (``ops(A, B)`` of §5.1; with a mask, only the
        products surviving the mask).  ``mask`` is an optional structural
        output mask in this engine's matrix representation;
        ``mask_complement`` inverts its support (the GraphBLAS
        complemented-mask idiom).
        """
        ...

    def gather(self, mat) -> SpMat:
        """Materialize an engine matrix as a node-local :class:`SpMat`."""
        ...


class SequentialEngine:
    """Single-node engine: matrices are plain :class:`SpMat`.

    Parameters
    ----------
    kernel:
        Kernel mode for the dispatch tier (``"generic"`` / ``"auto"`` /
        ``"fast"``), resolved at construction; ``None`` defers to the
        process default and ``$REPRO_KERNEL`` per product.
    """

    #: class-level default so subclasses that skip ``__init__`` still work
    kernel: str | None = None

    def __init__(self, *, kernel: str | None = None) -> None:
        if kernel is not None:
            from repro.sparse.dispatch import resolve_kernel_mode

            self.kernel = resolve_kernel_mode(kernel)

    def matrix(self, nrows, ncols, rows, cols, vals, monoid) -> SpMat:
        return SpMat(nrows, ncols, rows, cols, vals, monoid)

    def adjacency(self, graph) -> SpMat:
        return graph.adjacency()

    def register_invariant(self, mat: SpMat) -> None:
        """No-op: a single-node engine has no replication to amortize."""

    def spgemm(
        self,
        a: SpMat,
        b: SpMat,
        spec: MatMulSpec,
        *,
        mask: SpMat | None = None,
        mask_complement: bool = False,
    ) -> tuple[SpMat, int]:
        """``(a •⟨⊕,f⟩ b, elementary product count)`` — the unified
        :class:`Engine` contract."""
        if not obs.enabled():  # unguarded fast path: no span, no kwargs dict
            result = spgemm(
                a, b, spec, mask=mask, mask_complement=mask_complement,
                kernel=self.kernel,
            )
            return result.matrix, result.ops
        with obs.span(
            "spgemm", cat="spgemm", phase=spec.name, frontier_nnz=a.nnz
        ) as sp:
            result = spgemm(
                a, b, spec, mask=mask, mask_complement=mask_complement,
                kernel=self.kernel,
            )
            sp.set(product_nnz=result.matrix.nnz, ops=result.ops)
            obs.count("spgemm.products", 1.0, variant="sequential", phase=spec.name)
            obs.count(
                "spgemm.product_nnz",
                float(result.matrix.nnz),
                variant="sequential",
                phase=spec.name,
            )
            obs.count(
                "spgemm.ops", float(result.ops), variant="sequential", phase=spec.name
            )
        return result.matrix, result.ops

    def gather(self, mat: SpMat) -> SpMat:
        return mat


if TYPE_CHECKING:
    # static proof that SequentialEngine satisfies the Engine protocol
    _SEQUENTIAL_IS_ENGINE: Engine = SequentialEngine()
