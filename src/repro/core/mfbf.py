"""Maximal Frontier Bellman-Ford (Algorithm 1 of the paper).

Computes, for a batch of ``nb`` starting vertices ``s``, the multpath matrix
``T`` with ``T(s, v) = (τ(s,v), σ̄(s,v))``: shortest-path distance and
multiplicity.  Each iteration relaxes *all* edges adjacent to vertices whose
path information changed in the previous iteration — the maximal frontier —
via one generalized sparse matrix multiplication ``T̃ •⟨⊕,f⟩ A`` with the
Bellman-Ford action ``f`` and the multpath monoid ``⊕``.

Implementation notes relative to the paper's pseudocode:

* Initialization starts from the diagonal ``T(s, s) = (0, 1)`` with the
  frontier equal to it, rather than from the adjacency row; iteration ``j``
  then produces exactly the minimal-weight paths of exactly ``j`` edges
  (the proof's ``ĥ_j``), at the cost of one extra (cheap, nb-nonzero)
  product.  Seeding both the diagonal *and* the adjacency row, as a literal
  reading of line 1 suggests, would double-count one-edge paths.
* The paper stores dead frontier entries as the explicit marker ``(∞, 0)``;
  here dead entries are simply *unstored* — ``(∞, 0)`` is the multpath
  identity, and canonical :class:`SpMat` never stores identities.
"""

from __future__ import annotations

import numpy as np

from repro.algebra.multpath import MULTPATH
from repro.core.engine import Engine, SequentialEngine
from repro.core.specs import BELLMAN_FORD_SPEC
from repro.core.stats import BatchStats, IterationStats

__all__ = ["mfbf"]


def mfbf(
    adj,
    sources: np.ndarray,
    *,
    engine: Engine | None = None,
    stats: BatchStats | None = None,
    max_iterations: int | None = None,
):
    """Run MFBF from ``sources`` over adjacency matrix ``adj``.

    Parameters
    ----------
    adj:
        ``n × n`` adjacency matrix in the engine's representation (tropical
        weight monoid; unstored entries mean "no edge").
    sources:
        The batch's starting vertices (length ``nb``).
    engine:
        Execution engine; defaults to :class:`SequentialEngine`.
    stats:
        Optional :class:`BatchStats` to append per-iteration records to.
    max_iterations:
        Safety bound; defaults to ``n`` (no shortest path has ≥ n edges, so
        hitting the bound indicates a non-positive-weight cycle or a bug).

    Returns
    -------
    T:
        ``nb × n`` multpath matrix with ``T(s, v) = (τ(s,v), σ̄(s,v))``;
        unreachable pairs are unstored (≡ (∞, 0)).
    """
    engine = engine or SequentialEngine()
    sources = np.asarray(sources, dtype=np.int64)
    nb = len(sources)
    n = adj.nrows
    if nb == 0:
        raise ValueError("empty source batch")
    if sources.min() < 0 or sources.max() >= n:
        raise ValueError("source vertex out of range")
    if max_iterations is None:
        max_iterations = n + 1

    # T(s, s) = (0, 1): the empty path.  The frontier starts equal to T.
    t_mat = engine.matrix(
        nb,
        n,
        np.arange(nb, dtype=np.int64),
        sources,
        MULTPATH.make(np.zeros(nb), np.ones(nb)),
        MULTPATH,
    )
    frontier = t_mat

    for _ in range(max_iterations):
        if frontier.nnz == 0:
            return t_mat
        # Explore nodes adjacent to the frontier (line 4).
        product, ops = engine.spgemm(frontier, adj, BELLMAN_FORD_SPEC)
        if stats is not None:
            stats.iterations.append(
                IterationStats("mfbf", frontier.nnz, product.nnz, ops)
            )
        # Accumulate multiplicities (line 5): min weight wins, ties sum.
        t_mat = t_mat.combine(product)
        # New frontier (line 6): product entries that survived accumulation —
        # weight equal to the updated optimum.  (t.w ≤ p.w always holds.)
        frontier = product.zip_filter(
            t_mat, lambda pv, tv: pv["w"] <= tv["w"]
        )
    raise RuntimeError(
        f"MFBF did not converge within {max_iterations} iterations; "
        "the graph has a non-positive-weight cycle or inconsistent weights"
    )
