"""CA-MFBC: the communication-avoiding configuration of §6.

The paper implements two parallel versions: *CTF-MFBC* (CTF's dynamic
mapping search — our ``DistributedEngine`` with the default
:class:`~repro.spgemm.selector.AutoPolicy`) and *CA-MFBC*, which predefines
the 3D processor-grid layout used to minimize the theoretical communication
cost in the proof of Theorem 5.1 (``√(p/c) × √(p/c) × c`` with the adjacency
matrix replicated ``c``-fold).  This module is the convenience constructor
for the latter.
"""

from __future__ import annotations

import numpy as np

from repro.core.mfbc import MFBCResult, mfbc
from repro.dist.engine import DistributedEngine
from repro.graphs.graph import Graph
from repro.machine.machine import Machine
from repro.spgemm.selector import PinnedPolicy

__all__ = ["ca_mfbc", "ca_engine"]


def ca_engine(machine: Machine, c: int = 1) -> DistributedEngine:
    """A distributed engine pinned to the Theorem-5.1 grid.

    ``p/c`` must be a perfect square; the replication factor ``c`` must
    divide ``p``.
    """
    return DistributedEngine(machine, policy=PinnedPolicy.ca_mfbc(machine.p, c))


def ca_mfbc(
    graph: Graph,
    machine: Machine,
    *,
    c: int = 1,
    batch_size: int | None = None,
    sources: np.ndarray | None = None,
    max_batches: int | None = None,
) -> MFBCResult:
    """Run CA-MFBC on the simulated machine.

    The memory-optimal batch size of §5.3 (``nb = c·m/n``) is used when
    ``batch_size`` is not given.
    """
    if batch_size is None:
        batch_size = max(1, min(graph.n, c * graph.nnz_adjacency // max(graph.n, 1)))
    return mfbc(
        graph,
        batch_size=batch_size,
        engine=ca_engine(machine, c),
        sources=sources,
        max_batches=max_batches,
    )
