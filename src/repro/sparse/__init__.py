"""Single-node sparse matrices over arbitrary monoids.

:class:`~repro.sparse.spmatrix.SpMat` is a canonical COO matrix whose values
are columnar field arrays drawn from a monoid's carrier set — the node-local
building block that both the sequential MFBC engine and the per-rank blocks
of the distributed engine are made of.  The generalized SpGEMM kernel in
:mod:`repro.sparse.spgemm` implements ``C = A •⟨⊕,f⟩ B`` for any
:class:`~repro.algebra.matmul.MatMulSpec` with vectorized join + reduce,
with optional GraphBLAS-style output masks; :mod:`repro.sparse.dispatch`
routes recognized specs (plus-times, min-plus, max-min, multpath/centpath)
to bit-identical specialized fast paths.
"""

from repro.sparse.dispatch import (
    KERNEL_ENV,
    KERNEL_MODES,
    KernelTraits,
    recognize,
    register_fast_path,
    resolve_kernel_mode,
    set_default_kernel_mode,
)
from repro.sparse.spgemm import SpGemmResult, count_ops, spgemm, spgemm_with_ops
from repro.sparse.spmatrix import SpMat

__all__ = [
    "SpMat",
    "spgemm",
    "spgemm_with_ops",
    "SpGemmResult",
    "count_ops",
    "KERNEL_ENV",
    "KERNEL_MODES",
    "KernelTraits",
    "recognize",
    "register_fast_path",
    "resolve_kernel_mode",
    "set_default_kernel_mode",
]
