"""Single-node sparse matrices over arbitrary monoids.

:class:`~repro.sparse.spmatrix.SpMat` is a canonical COO matrix whose values
are columnar field arrays drawn from a monoid's carrier set — the node-local
building block that both the sequential MFBC engine and the per-rank blocks
of the distributed engine are made of.  The generalized SpGEMM kernel in
:mod:`repro.sparse.spgemm` implements ``C = A •⟨⊕,f⟩ B`` for any
:class:`~repro.algebra.matmul.MatMulSpec` with vectorized join + reduce.
"""

from repro.sparse.spmatrix import SpMat
from repro.sparse.spgemm import SpGemmResult, spgemm, spgemm_with_ops

__all__ = ["SpMat", "spgemm", "spgemm_with_ops", "SpGemmResult"]
