"""Canonical COO sparse matrices with monoid-valued entries.

An :class:`SpMat` stores nonzero coordinates plus a columnar field array of
values and the monoid the values are drawn from.  Canonical form means:
entries sorted by (row, col), coordinates unique (duplicates folded with the
monoid's ``⊕``), and no entry equal to the monoid identity (the identity is
the implicit value of unstored entries, following CTF's convention that the
additive identity defines sparsity).
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np
import scipy.sparse

from repro.algebra.fields import (
    FieldArray,
    concat_fields,
    fields_length,
    take_fields,
)
from repro.algebra.monoid import Monoid

__all__ = ["SpMat"]


class SpMat:
    """A sparse ``nrows × ncols`` matrix over ``monoid``'s carrier set.

    Parameters
    ----------
    nrows, ncols:
        Matrix dimensions.
    rows, cols:
        Nonzero coordinates (int64 arrays of equal length).
    vals:
        Field array of nonzero values, aligned with ``rows``/``cols``.
    monoid:
        The commutative monoid the values belong to; supplies the schema,
        identity, duplicate folding, and elementwise accumulation.
    canonical:
        Pass ``True`` when the inputs are already sorted/unique/pruned to
        skip canonicalization (internal fast path).
    """

    __slots__ = ("nrows", "ncols", "rows", "cols", "vals", "monoid", "_rowptr")

    def __init__(
        self,
        nrows: int,
        ncols: int,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: FieldArray,
        monoid: Monoid,
        *,
        canonical: bool = False,
    ) -> None:
        if nrows < 0 or ncols < 0:
            raise ValueError(f"negative dimensions ({nrows}, {ncols})")
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if len(rows) != len(cols):
            raise ValueError(f"rows/cols length mismatch: {len(rows)} vs {len(cols)}")
        nval = fields_length(vals)
        if nval != len(rows):
            raise ValueError(f"coords/vals length mismatch: {len(rows)} vs {nval}")
        vals = {
            name: np.asarray(vals[name], dtype=dtype)
            for name, dtype in monoid.field_spec
        }
        if len(rows) and (
            rows.min() < 0 or rows.max() >= nrows or cols.min() < 0 or cols.max() >= ncols
        ):
            raise ValueError("coordinate out of bounds")

        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self.monoid = monoid
        self._rowptr: np.ndarray | None = None
        if canonical:
            self.rows, self.cols, self.vals = rows, cols, vals
        else:
            self.rows, self.cols, self.vals = self._canonicalize(rows, cols, vals)

    # -- construction ------------------------------------------------------

    def _canonicalize(
        self, rows: np.ndarray, cols: np.ndarray, vals: FieldArray
    ) -> tuple[np.ndarray, np.ndarray, FieldArray]:
        keys = rows * self.ncols + cols
        keys, vals = self.monoid.reduce_by_key(keys, vals)
        keep = ~self.monoid.is_identity(vals)
        if not keep.all():
            keys = keys[keep]
            vals = take_fields(vals, keep.nonzero()[0])
        if self.ncols:
            return keys // self.ncols, keys % self.ncols, vals
        return keys[:0], keys[:0], vals

    @classmethod
    def empty(cls, nrows: int, ncols: int, monoid: Monoid) -> "SpMat":
        """An all-identity (empty) matrix."""
        z = np.empty(0, dtype=np.int64)
        return cls(nrows, ncols, z, z, monoid.empty(), monoid, canonical=True)

    @classmethod
    def from_scipy(
        cls, mat: scipy.sparse.spmatrix, monoid: Monoid, field: str = "w"
    ) -> "SpMat":
        """Wrap a scipy sparse matrix as a single-field :class:`SpMat`."""
        coo = mat.tocoo()
        if [field] != [n for n, _ in monoid.field_spec]:
            raise ValueError(
                f"from_scipy requires a single-field monoid with field {field!r}"
            )
        return cls(
            coo.shape[0],
            coo.shape[1],
            coo.row.astype(np.int64),
            coo.col.astype(np.int64),
            {field: coo.data},
            monoid,
        )

    @classmethod
    def from_triples(
        cls,
        nrows: int,
        ncols: int,
        triples: Mapping[str, np.ndarray] | None,
        rows: np.ndarray,
        cols: np.ndarray,
        monoid: Monoid,
    ) -> "SpMat":
        """Build from coordinate triples; duplicates fold with ``⊕``."""
        vals = triples if triples is not None else monoid.empty()
        return cls(nrows, ncols, rows, cols, vals, monoid)

    # -- basic properties ----------------------------------------------------

    @property
    def nnz(self) -> int:
        """Number of stored (non-identity) entries."""
        return len(self.rows)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.nrows, self.ncols)

    def nbytes(self) -> int:
        """Storage footprint of coordinates + values in bytes."""
        n = self.rows.nbytes + self.cols.nbytes
        return n + sum(col.nbytes for col in self.vals.values())

    def words(self) -> int:
        """Footprint in 8-byte words (the paper's memory unit)."""
        return (self.nbytes() + 7) // 8

    def copy(self) -> "SpMat":
        return SpMat(
            self.nrows,
            self.ncols,
            self.rows.copy(),
            self.cols.copy(),
            {k: v.copy() for k, v in self.vals.items()},
            self.monoid,
            canonical=True,
        )

    # -- conversion ----------------------------------------------------------

    def to_scipy(self, field: str = "w") -> scipy.sparse.coo_matrix:
        """Extract one value field as a scipy COO matrix (zeros are kept)."""
        return scipy.sparse.coo_matrix(
            (self.vals[field], (self.rows, self.cols)), shape=self.shape
        )

    def to_dense(self, field: str, fill: object | None = None) -> np.ndarray:
        """Densify one value field, filling unstored entries.

        ``fill`` defaults to the monoid identity's value for ``field``.
        """
        if fill is None:
            fill = self.monoid.identity[field]
        dtype = dict(self.monoid.field_spec)[field]
        out = np.full((self.nrows, self.ncols), fill, dtype=dtype)
        out[self.rows, self.cols] = self.vals[field]
        return out

    def keys(self) -> np.ndarray:
        """Linearized coordinates ``row * ncols + col`` (sorted ascending)."""
        return self.rows * self.ncols + self.cols

    def row_pointer(self) -> np.ndarray:
        """CSR-style row pointer (length ``nrows + 1``), computed lazily and
        cached.  Matrices are immutable after construction, so the cache is
        safe; it makes repeated joins against a fixed operand (MFBC reuses
        the adjacency matrix in every product) O(1) instead of
        O(nnz · log n) per product."""
        if self._rowptr is None:
            counts = np.bincount(self.rows, minlength=self.nrows)
            ptr = np.zeros(self.nrows + 1, dtype=np.int64)
            np.cumsum(counts, out=ptr[1:])
            self._rowptr = ptr
        return self._rowptr

    # -- elementwise operations ----------------------------------------------

    def combine(self, other: "SpMat") -> "SpMat":
        """Elementwise monoid accumulation ``self ⊕ other`` (union of supports)."""
        self._check_same_space(other)
        rows = np.concatenate([self.rows, other.rows])
        cols = np.concatenate([self.cols, other.cols])
        vals = concat_fields([self.vals, other.vals])
        return SpMat(self.nrows, self.ncols, rows, cols, vals, self.monoid)

    def filter(self, predicate: Callable[[FieldArray], np.ndarray]) -> "SpMat":
        """Keep entries where ``predicate(vals)`` is True (CTF ``sparsify``)."""
        keep = np.asarray(predicate(self.vals), dtype=bool)
        if keep.shape != self.rows.shape:
            raise ValueError("predicate must return a mask over stored entries")
        idx = keep.nonzero()[0]
        return SpMat(
            self.nrows,
            self.ncols,
            self.rows[idx],
            self.cols[idx],
            take_fields(self.vals, idx),
            self.monoid,
            canonical=True,
        )

    def map(
        self,
        fn: Callable[[FieldArray], FieldArray],
        monoid: Monoid | None = None,
    ) -> "SpMat":
        """Transform stored values with ``fn`` (CTF ``Transform``).

        ``monoid`` changes the output algebra (e.g. multpath → centpath).
        Results equal to the output identity are pruned.
        """
        monoid = monoid or self.monoid
        new_vals = fn({k: v.copy() for k, v in self.vals.items()})
        return SpMat(
            self.nrows, self.ncols, self.rows, self.cols, new_vals, monoid
        )

    def align_values(self, other: "SpMat") -> FieldArray:
        """For each stored entry of ``self``, the value of ``other`` at the
        same coordinate (``other``'s monoid identity where unstored).

        ``other`` must have the same shape but may use a different monoid.
        """
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        my_keys = self.keys()
        other_keys = other.keys()
        pos = np.searchsorted(other_keys, my_keys)
        pos_clipped = np.minimum(pos, max(len(other_keys) - 1, 0))
        if len(other_keys):
            found = other_keys[pos_clipped] == my_keys
        else:
            found = np.zeros(len(my_keys), dtype=bool)
        out: FieldArray = {}
        for name, dtype in other.monoid.field_spec:
            col = np.full(len(my_keys), other.monoid.identity[name], dtype=dtype)
            if found.any():
                col[found] = other.vals[name][pos_clipped[found]]
            out[name] = col
        return out

    def zip_filter(
        self,
        other: "SpMat",
        predicate: Callable[[FieldArray, FieldArray], np.ndarray],
    ) -> "SpMat":
        """Keep entries of ``self`` where ``predicate(self_vals, other_vals)``
        holds, with ``other_vals`` aligned by coordinate (identity where
        ``other`` has no entry)."""
        other_vals = self.align_values(other)
        keep = np.asarray(predicate(self.vals, other_vals), dtype=bool)
        idx = keep.nonzero()[0]
        return SpMat(
            self.nrows,
            self.ncols,
            self.rows[idx],
            self.cols[idx],
            take_fields(self.vals, idx),
            self.monoid,
            canonical=True,
        )

    def zip_map(
        self,
        other: "SpMat",
        fn: Callable[[FieldArray, FieldArray], FieldArray],
        monoid: Monoid | None = None,
    ) -> "SpMat":
        """Transform entries of ``self`` using ``other``'s aligned values.

        The support stays that of ``self`` (minus results equal to the output
        identity, which are pruned).
        """
        monoid = monoid or self.monoid
        other_vals = self.align_values(other)
        new_vals = fn({k: v.copy() for k, v in self.vals.items()}, other_vals)
        return SpMat(
            self.nrows, self.ncols, self.rows, self.cols, new_vals, monoid
        )

    def column_sums(self, field: str) -> np.ndarray:
        """Per-column sums of one numeric field (dense length-``ncols``)."""
        return np.bincount(
            self.cols, weights=self.vals[field], minlength=self.ncols
        )

    def row_sums(self, field: str) -> np.ndarray:
        """Per-row sums of one numeric field (dense length-``nrows``)."""
        return np.bincount(self.rows, weights=self.vals[field], minlength=self.nrows)

    # -- structural operations -------------------------------------------------

    def transpose(self) -> "SpMat":
        """The transposed matrix (values unchanged)."""
        return SpMat(
            self.ncols, self.nrows, self.cols, self.rows, self.vals, self.monoid
        )

    def block(self, r0: int, r1: int, c0: int, c1: int) -> "SpMat":
        """Extract rows [r0, r1) × cols [c0, c1) as a reindexed submatrix
        (CTF ``slice``)."""
        if not (0 <= r0 <= r1 <= self.nrows and 0 <= c0 <= c1 <= self.ncols):
            raise ValueError(
                f"block [{r0}:{r1}, {c0}:{c1}] out of bounds for shape {self.shape}"
            )
        mask = (self.rows >= r0) & (self.rows < r1) & (self.cols >= c0) & (self.cols < c1)
        idx = mask.nonzero()[0]
        return SpMat(
            r1 - r0,
            c1 - c0,
            self.rows[idx] - r0,
            self.cols[idx] - c0,
            take_fields(self.vals, idx),
            self.monoid,
            canonical=True,
        )

    def select_rows(self, row_ids: np.ndarray) -> "SpMat":
        """Gather the given rows (in order) into a ``len(row_ids) × ncols`` matrix."""
        row_ids = np.asarray(row_ids, dtype=np.int64)
        # invert: position of each stored row in row_ids, -1 if absent
        lookup = np.full(self.nrows, -1, dtype=np.int64)
        lookup[row_ids] = np.arange(len(row_ids))
        new_rows = lookup[self.rows]
        mask = new_rows >= 0
        idx = mask.nonzero()[0]
        return SpMat(
            len(row_ids),
            self.ncols,
            new_rows[idx],
            self.cols[idx],
            take_fields(self.vals, idx),
            self.monoid,
        )

    def get(self, row: int, col: int) -> dict[str, object]:
        """Read a single entry (identity if unstored) — for tests/debugging."""
        key = row * self.ncols + col
        pos = np.searchsorted(self.keys(), key)
        if pos < self.nnz and self.keys()[pos] == key:
            return {k: v[pos] for k, v in self.vals.items()}
        return dict(self.monoid.identity)

    # -- comparison --------------------------------------------------------

    def equals(self, other: "SpMat") -> bool:
        """Exact structural + value equality of canonical forms."""
        if self.shape != other.shape or self.nnz != other.nnz:
            return False
        if not (
            np.array_equal(self.rows, other.rows)
            and np.array_equal(self.cols, other.cols)
        ):
            return False
        return bool(np.all(self.monoid.equal(self.vals, other.vals)))

    def _check_same_space(self, other: "SpMat") -> None:
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        if self.monoid.field_spec != other.monoid.field_spec:
            raise ValueError("monoid schema mismatch")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpMat(shape={self.shape}, nnz={self.nnz}, "
            f"monoid={type(self.monoid).__name__})"
        )
