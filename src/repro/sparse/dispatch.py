"""Kernel dispatch tier: semiring-recognizing fast paths for SpGEMM.

The generalized monoid kernel in :mod:`repro.sparse.spgemm` pays a
"generality tax" — field-array dict plumbing, schema validation, and a
monoid-dispatch reduction — on every product.  This module recognizes
structure in a :class:`~repro.algebra.matmul.MatMulSpec` and routes it to a
specialized kernel, playing the role MKL's compiled sparse BLAS plays in the
paper's stack (§6.2):

* **plus-times** (:class:`PlusMonoid` + ``np.multiply`` semiring action) →
  scipy's compiled ``csr @ csr`` when eligible, else a structure-of-arrays
  path;
* **any single-field semiring action over plus/min/max** (tropical min-plus,
  bottleneck max-min, label-propagation min/left, …) → a structure-of-arrays
  path that skips the field-array plumbing;
* **multpath / centpath** (the Bellman-Ford and Brandes actions of §4.1/§4.2)
  → a fused path that replaces the generic sort-then-resort reduction with a
  single ``lexsort``.

Every fast path is **bit-identical** to the generic kernel after
canonicalization: it consumes the exact expansion chunks the generic kernel
would (:func:`repro.sparse.spgemm._expansion_chunks`, including in-expansion
mask filtering) and reduces them with the same primitive in the same order.
``repro.check`` differential replay recomputes references with
``kernel="generic"``, making the generic kernel the oracle for this tier.

The mode knob — ``spgemm(kernel=...)``, ``Machine(kernel=...)``, CLI
``--kernel``, or ``$REPRO_KERNEL`` — selects:

* ``generic``: never dispatch (the pure oracle kernel);
* ``auto`` (default): dispatch recognized specs, with a small-product guard
  on the scipy conversion;
* ``fast``: dispatch recognized specs unconditionally.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

import numpy as np
import scipy.sparse

from repro.algebra.centpath import CentpathMonoid, brandes_action
from repro.algebra.fields import FieldArray, concat_fields, take_fields
from repro.algebra.matmul import MatMulSpec
from repro.algebra.monoid import MaxMonoid, MinMonoid, PlusMonoid
from repro.algebra.multpath import MultpathMonoid, bellman_ford_action
from repro.algebra.semiring import SemiringAction
from repro.obs import api as obs
from repro.sparse.spgemm import SpGemmResult, _expansion_chunks, count_ops
from repro.sparse.spmatrix import SpMat

__all__ = [
    "KERNEL_ENV",
    "KERNEL_MODES",
    "KernelTraits",
    "recognize",
    "register_fast_path",
    "resolve_kernel_mode",
    "set_default_kernel_mode",
    "dispatch_spgemm",
]

#: Environment variable supplying the ambient kernel mode.
KERNEL_ENV = "REPRO_KERNEL"

#: Valid kernel modes, weakest dispatch first.
KERNEL_MODES = ("generic", "auto", "fast")

#: Below this ops count ``auto`` skips the scipy conversion (its fixed
#: CSR-build cost outweighs the compiled multiply on trivial products).
_SCIPY_MIN_OPS = 4096

_default_mode: str | None = None


def resolve_kernel_mode(mode: str | None = None) -> str:
    """Resolve a kernel mode: explicit > process default > env > ``auto``."""
    if mode is None:
        mode = _default_mode
    if mode is None:
        mode = os.environ.get(KERNEL_ENV) or "auto"
    mode = str(mode).strip().lower()
    if mode not in KERNEL_MODES:
        raise ValueError(
            f"unknown kernel mode {mode!r}; expected one of {KERNEL_MODES}"
        )
    return mode


def set_default_kernel_mode(mode: str | None) -> None:
    """Set (or with ``None`` clear) the process-wide default kernel mode.

    The default sits between explicit ``kernel=`` arguments and the
    ``$REPRO_KERNEL`` environment variable.
    """
    global _default_mode
    _default_mode = None if mode is None else resolve_kernel_mode(mode)


@dataclass(frozen=True)
class KernelTraits:
    """What the dispatcher recognized about a :class:`MatMulSpec`.

    Attributes
    ----------
    path:
        Registered fast-path name (``"plus-times"``, ``"soa-min"``,
        ``"soa-max"``, ``"soa-plus"``, ``"multpath"``, ``"centpath"``, or an
        extension's name).
    field:
        The single carrier field for semiring paths, ``None`` otherwise.
    """

    path: str
    field: str | None = None


#: impl(a, b, spec, traits, *, mask_keys, mask_complement, chunk, mode)
#: returning a result or ``None`` to decline (caller falls back to generic).
KernelImpl = Callable[..., "SpGemmResult | None"]

#: recognizer(spec) returning :class:`KernelTraits` or ``None``.
Recognizer = Callable[[MatMulSpec], "KernelTraits | None"]

_FAST_PATHS: list[tuple[Recognizer, KernelImpl]] = []


def register_fast_path(recognizer: Recognizer, impl: KernelImpl) -> None:
    """Extension hook: add a recognizer + kernel pair to the dispatch table.

    Later registrations are consulted after the built-ins.  A registered
    kernel MUST be bit-identical (post-canonicalization) to the generic
    kernel — ``repro.check`` replays will fail otherwise.
    """
    _FAST_PATHS.append((recognizer, impl))


def recognize(spec: MatMulSpec) -> KernelTraits | None:
    """The traits of the first fast path claiming ``spec``, if any."""
    for recognizer, _ in _FAST_PATHS:
        traits = recognizer(spec)
        if traits is not None:
            return traits
    return None


def dispatch_spgemm(
    a: SpMat,
    b: SpMat,
    spec: MatMulSpec,
    *,
    mask_keys: np.ndarray | None,
    mask_complement: bool,
    chunk: int,
    mode: str,
) -> SpGemmResult | None:
    """Route one product through the fast-path table.

    Returns ``None`` when no fast path applies — the caller runs the generic
    kernel.  Emits a ``kernel.dispatch`` counter per decision.
    """
    if a.nnz == 0 or b.nnz == 0:
        return None  # the generic empty path is already optimal
    for recognizer, impl in _FAST_PATHS:
        traits = recognizer(spec)
        if traits is None:
            continue
        result = impl(
            a,
            b,
            spec,
            traits,
            mask_keys=mask_keys,
            mask_complement=mask_complement,
            chunk=chunk,
            mode=mode,
        )
        if result is not None:
            _count_dispatch(traits.path, "hit", spec.name)
            return result
        _count_dispatch(traits.path, "declined", spec.name)
        return None
    _count_dispatch("generic", "unrecognized", spec.name)
    return None


def _count_dispatch(kernel: str, outcome: str, phase: str) -> None:
    if obs.enabled():
        obs.count("kernel.dispatch", 1.0, kernel=kernel, outcome=outcome, phase=phase)


# -- recognition (built-ins) -------------------------------------------------


def _recognize_semiring(spec: MatMulSpec) -> KernelTraits | None:
    f = spec.f
    if not isinstance(f, SemiringAction):
        return None
    monoid = spec.monoid
    if monoid.field_names != (f.field,):
        return None
    if isinstance(monoid, PlusMonoid):
        if f.multiply is np.multiply:
            return KernelTraits("plus-times", field=f.field)
        return KernelTraits("soa-plus", field=f.field)
    if isinstance(monoid, MinMonoid):
        return KernelTraits("soa-min", field=f.field)
    if isinstance(monoid, MaxMonoid):
        return KernelTraits("soa-max", field=f.field)
    return None


def _recognize_pathsum(spec: MatMulSpec) -> KernelTraits | None:
    if spec.f is bellman_ford_action and isinstance(spec.monoid, MultpathMonoid):
        return KernelTraits("multpath")
    if spec.f is brandes_action and isinstance(spec.monoid, CentpathMonoid):
        return KernelTraits("centpath")
    return None


# -- kernels -----------------------------------------------------------------


_SOA_REDUCERS = {
    "plus-times": np.add,
    "soa-plus": np.add,
    "soa-min": np.minimum,
    "soa-max": np.maximum,
}


def _semiring_kernel(
    a: SpMat,
    b: SpMat,
    spec: MatMulSpec,
    traits: KernelTraits,
    *,
    mask_keys: np.ndarray | None,
    mask_complement: bool,
    chunk: int,
    mode: str,
) -> SpGemmResult | None:
    if traits.path == "plus-times":
        result = _scipy_plus_times(
            a, b, spec, traits, mask_keys=mask_keys, chunk=chunk, mode=mode
        )
        if result is not None:
            return result
    return _soa_semiring(
        a,
        b,
        spec,
        traits,
        mask_keys=mask_keys,
        mask_complement=mask_complement,
        chunk=chunk,
    )


def _scipy_plus_times(
    a: SpMat,
    b: SpMat,
    spec: MatMulSpec,
    traits: KernelTraits,
    *,
    mask_keys: np.ndarray | None,
    chunk: int,
    mode: str,
) -> SpGemmResult | None:
    """Compiled ``csr @ csr`` for the (R, +, ×) semiring.

    Bit-identity with the generic kernel holds because scipy accumulates
    each C(i,j) over k ascending exactly as the generic single-chunk
    ``add.reduceat`` does (an initial ``+0.0`` can only differ on the sign
    of a zero, and zero results are pruned by both sides); it therefore
    declines multi-chunk products, whose per-chunk partial sums group
    differently, and masked products, which the SoA path handles
    in-expansion.
    """
    if mask_keys is not None:
        return None
    if spec.monoid.field_spec[0][1] != np.dtype(np.float64):
        return None
    total = count_ops(a, b)
    if total > chunk or (mode == "auto" and total < _SCIPY_MIN_OPS):
        return None
    field = traits.field
    sa = scipy.sparse.csr_matrix(
        (a.vals[field], (a.rows, a.cols)), shape=a.shape
    )
    sb = scipy.sparse.csr_matrix(
        (b.vals[field], (b.rows, b.cols)), shape=b.shape
    )
    c = sa @ sb
    # canonicalize: the CSC round-trip is two linear counting-sort passes,
    # measurably faster than csr_sort_indices' per-row comparison sorts on
    # the dense products this path exists for (and bit-identical to them)
    c = c.tocsc().tocsr()
    c.eliminate_zeros()
    coo = c.tocoo()
    mat = SpMat(
        a.nrows,
        b.ncols,
        coo.row.astype(np.int64),
        coo.col.astype(np.int64),
        {field: coo.data.astype(np.float64, copy=False)},
        spec.monoid,
        canonical=True,
    )
    return SpGemmResult(mat, total)


def _soa_semiring(
    a: SpMat,
    b: SpMat,
    spec: MatMulSpec,
    traits: KernelTraits,
    *,
    mask_keys: np.ndarray | None,
    mask_complement: bool,
    chunk: int,
) -> SpGemmResult:
    """Structure-of-arrays path for single-field semiring actions.

    Mirrors the generic kernel chunk-for-chunk — same expansion, same stable
    key sort, same ``reduceat`` — on bare value columns instead of
    field-array dicts, so the result is bitwise the generic one.
    """
    monoid = spec.monoid
    field = traits.field
    dtype = monoid.field_spec[0][1]
    reducer = _SOA_REDUCERS[traits.path]
    multiply = spec.f.multiply
    av, bv = a.vals[field], b.vals[field]
    ops_done = 0
    parts_k: list[np.ndarray] = []
    parts_v: list[FieldArray] = []
    for a_idx, b_idx, keys in _expansion_chunks(
        a, b, mask_keys, mask_complement, chunk
    ):
        ops_done += len(keys)
        if len(keys) == 0:
            continue
        vals = np.asarray(multiply(av[a_idx], bv[b_idx]))
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        vals = vals[order]
        uniq, starts = np.unique(keys, return_index=True)
        red = reducer.reduceat(vals, starts).astype(dtype, copy=False)
        parts_k.append(uniq)
        parts_v.append({field: red})
    return _assemble(a.nrows, b.ncols, parts_k, parts_v, monoid, ops_done)


def _pathsum_kernel(
    a: SpMat,
    b: SpMat,
    spec: MatMulSpec,
    traits: KernelTraits,
    *,
    mask_keys: np.ndarray | None,
    mask_complement: bool,
    chunk: int,
    mode: str,
) -> SpGemmResult:
    """Fused path for the multpath/centpath monoids (MFBF/MFBr hot loop).

    The generic reduction stable-sorts by key and then re-sorts each key
    group by weight; both sorts are stable, so their composition equals one
    ``lexsort((weight, key))`` on the raw expansion — ordering by (key,
    weight, original position) either way.  This path does that single
    lexsort and applies the same best-weight / tie-sum ``reduceat`` the
    monoid would, bitwise identically.
    """
    monoid = spec.monoid
    wf = monoid.weight_field
    negate = spec.f is brandes_action
    select_min = monoid.select == "min"
    dtypes = dict(monoid.field_spec)
    aw, bw = a.vals[wf], b.vals[wf]
    ops_done = 0
    parts_k: list[np.ndarray] = []
    parts_v: list[FieldArray] = []
    for a_idx, b_idx, keys in _expansion_chunks(
        a, b, mask_keys, mask_complement, chunk
    ):
        ops_done += len(keys)
        if len(keys) == 0:
            continue
        w = aw[a_idx] - bw[b_idx] if negate else aw[a_idx] + bw[b_idx]
        w_order = w if select_min else -w
        order = np.lexsort((w_order, keys))
        keys_s = keys[order]
        w_s = w[order]
        uniq, starts = np.unique(keys_s, return_index=True)
        best_w = w_s[starts]
        seg_id = np.searchsorted(starts, np.arange(len(keys_s)), side="right") - 1
        tied = w_s == best_w[seg_id]
        out: FieldArray = {wf: best_w}
        a_sorted = a_idx[order]
        for name in monoid.sum_fields:
            col = np.where(tied, a.vals[name][a_sorted], 0)
            out[name] = np.add.reduceat(col, starts).astype(dtypes[name], copy=False)
        parts_k.append(uniq)
        parts_v.append(out)
    return _assemble(a.nrows, b.ncols, parts_k, parts_v, monoid, ops_done)


def _assemble(
    nrows: int,
    ncols: int,
    parts_k: list[np.ndarray],
    parts_v: list[FieldArray],
    monoid,
    ops: int,
) -> SpGemmResult:
    """Final construction, matching the generic kernel's output exactly.

    Single-chunk partials are already key-unique and sorted, so the generic
    constructor's second reduce is the identity — skip it and prune identity
    entries directly.  Multi-chunk partials go through the canonicalizing
    constructor exactly as the generic kernel's do.
    """
    if not parts_k:
        return SpGemmResult(SpMat.empty(nrows, ncols, monoid), ops)
    divisor = np.int64(ncols)
    if len(parts_k) == 1:
        keys, vals = parts_k[0], parts_v[0]
        keep = ~monoid.is_identity(vals)
        if not keep.all():
            idx = keep.nonzero()[0]
            keys = keys[idx]
            vals = take_fields(vals, idx)
        mat = SpMat(
            nrows,
            ncols,
            keys // divisor,
            keys % divisor,
            vals,
            monoid,
            canonical=True,
        )
        return SpGemmResult(mat, ops)
    keys = np.concatenate(parts_k)
    vals = concat_fields(parts_v)
    mat = SpMat(nrows, ncols, keys // divisor, keys % divisor, vals, monoid)
    return SpGemmResult(mat, ops)


register_fast_path(_recognize_semiring, _semiring_kernel)
register_fast_path(_recognize_pathsum, _pathsum_kernel)
