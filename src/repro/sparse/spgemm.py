"""Vectorized generalized SpGEMM: ``C = A •⟨⊕,f⟩ B`` on node-local matrices.

This is the blockwise kernel that plays the role of MKL's sparse BLAS in the
paper's stack (§6.2): every distributed algorithm variant ultimately calls it
on local blocks, and the sequential MFBC engine calls it on whole matrices.

Algorithm (the *generic* kernel): a sort-free hash-free *expansion join* —

1. B is canonical (row-major sorted), so a row pointer is recovered with
   ``searchsorted``;
2. every nonzero ``A(i,k)`` is joined against all nonzeros of B's row ``k``
   by vectorized repetition (this enumerates exactly the ``ops(A, B)``
   nonzero products of the paper's cost model);
3. an optional GraphBLAS-style output mask drops joined pairs whose output
   coordinate falls outside (or, complemented, inside) the mask's support
   *before* any value work — masked-out products are never formed;
4. ``f`` maps the surviving joined value pairs;
5. the monoid's ``reduce_by_key`` folds products landing on the same
   ``C(i,j)``.

Large expansions are processed in bounded chunks so peak memory stays
proportional to ``chunk`` rather than ``ops(A, B)``.

The public :func:`spgemm` entry point routes recognized specs through the
kernel-dispatch tier (:mod:`repro.sparse.dispatch`) — scipy's compiled
plus-times path and structure-of-arrays specializations — all of which are
bit-identical (post-canonicalization) to the generic kernel here.
"""

from __future__ import annotations

import itertools
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.algebra.fields import concat_fields, take_fields
from repro.algebra.matmul import MatMulSpec
from repro.sparse.spmatrix import SpMat

__all__ = [
    "spgemm",
    "spgemm_with_ops",
    "SpGemmResult",
    "count_ops",
    "staged_chunks",
]

#: when armed (the memory ladder's spill rung), the generic kernel stages
#: each reduced expansion chunk to this spill store instead of keeping it
#: in memory until the final concatenation — same chunks, same order, so
#: staged and unstaged products are bit-identical
_CHUNK_SINK = None
_CHUNK_IDS = itertools.count()


@contextmanager
def staged_chunks(store, *, site: str = "spgemm"):
    """Stage generic-kernel expansion chunks to ``store`` inside the block.

    Bounds peak memory to roughly one chunk (plus the final assembly)
    instead of the whole reduced expansion.  Only kernels running in this
    process observe the sink: a process-pool executor's workers keep the
    in-memory path, which is safe — staging is a degradation, never a
    correctness requirement.
    """
    global _CHUNK_SINK
    prev = _CHUNK_SINK
    _CHUNK_SINK = (store, site)
    try:
        yield
    finally:
        _CHUNK_SINK = prev


@dataclass(frozen=True)
class SpGemmResult:
    """Product matrix plus the work metric the paper's model charges."""

    matrix: SpMat
    #: number of nonzero elementary products formed — ``ops(A, B)`` in §5.1.
    #: With a mask this counts only the products that survive the mask (the
    #: saved work is the point of masking).  ``None`` when the caller passed
    #: ``want_ops=False``.
    ops: int | None

    def __iter__(self):
        """Unpack like the historical ``(matrix, ops)`` tuple."""
        yield self.matrix
        yield self.ops


def count_ops(a: SpMat, b: SpMat) -> int:
    """``ops(A, B)``: nonzero products of ``A •  B`` without forming them."""
    if a.ncols != b.nrows:
        raise ValueError(f"inner dimension mismatch: {a.shape} × {b.shape}")
    if a.nnz == 0 or b.nnz == 0:
        return 0
    ptr = b.row_pointer()
    return int((ptr[a.cols + 1] - ptr[a.cols]).sum())


def spgemm(
    a: SpMat,
    b: SpMat,
    spec: MatMulSpec,
    *,
    mask: SpMat | None = None,
    mask_complement: bool = False,
    want_ops: bool = True,
    chunk: int = 1 << 22,
    kernel: str | None = None,
) -> SpGemmResult:
    """Compute ``C = A •⟨⊕,f⟩ B``, optionally masked, via the kernel tier.

    Parameters
    ----------
    a, b:
        Operand matrices; ``a.ncols`` must equal ``b.nrows``.  ``a`` holds
        elements of ``f``'s first domain, ``b`` of its second.
    spec:
        The ``•⟨⊕,f⟩`` operator; the output matrix lives over ``spec.monoid``.
    mask:
        Optional structural output mask with C's shape.  Only output
        coordinates in ``mask``'s support are computed (``mask_complement``
        inverts this: only coordinates *outside* the support — the
        ``mxmm_msa_cmask`` idiom that keeps frontier expansion from
        materializing settled vertices).  Values of ``mask`` are ignored.
    mask_complement:
        Complement the mask's support (requires ``mask``).
    want_ops:
        When False, ``result.ops`` is ``None`` (callers that only need the
        matrix).
    chunk:
        Upper bound on the number of joined pairs materialized at once.
    kernel:
        Kernel mode ``"generic"`` / ``"auto"`` / ``"fast"``; ``None`` falls
        back to the process default and then ``$REPRO_KERNEL`` (default
        ``auto``).  Every non-generic path is bit-identical to the generic
        kernel post-canonicalization.
    """
    if a.ncols != b.nrows:
        raise ValueError(f"inner dimension mismatch: {a.shape} × {b.shape}")
    if mask_complement and mask is None:
        raise ValueError("mask_complement=True requires a mask")
    out_shape = (a.nrows, b.ncols)
    if mask is not None and mask.shape != out_shape:
        raise ValueError(
            f"mask shape {mask.shape} != output shape {out_shape}"
        )
    # A non-complemented empty mask annihilates the product outright.
    if mask is not None and mask.nnz == 0 and not mask_complement:
        return SpGemmResult(
            SpMat.empty(*out_shape, spec.monoid), 0 if want_ops else None
        )
    # An empty complemented mask excludes nothing: treat as unmasked.
    mask_keys = mask.keys() if (mask is not None and mask.nnz) else None

    # deferred import: dispatch imports this module's internals
    from repro.sparse import dispatch

    mode = dispatch.resolve_kernel_mode(kernel)
    if mode != "generic":
        result = dispatch.dispatch_spgemm(
            a,
            b,
            spec,
            mask_keys=mask_keys,
            mask_complement=mask_complement,
            chunk=chunk,
            mode=mode,
        )
        if result is not None:
            return result if want_ops else SpGemmResult(result.matrix, None)
    result = _spgemm_generic(
        a, b, spec, mask_keys=mask_keys, mask_complement=mask_complement, chunk=chunk
    )
    return result if want_ops else SpGemmResult(result.matrix, None)


def spgemm_with_ops(
    a: SpMat,
    b: SpMat,
    spec: MatMulSpec,
    *,
    chunk: int = 1 << 22,
) -> SpGemmResult:
    """Deprecated alias for :func:`spgemm` (which now always reports ops)."""
    warnings.warn(
        "spgemm_with_ops is deprecated; call spgemm(a, b, spec) — it returns "
        "SpGemmResult directly",
        DeprecationWarning,
        stacklevel=2,
    )
    return spgemm(a, b, spec, chunk=chunk)


def _mask_keep(
    keys: np.ndarray, mask_keys: np.ndarray, complement: bool
) -> np.ndarray:
    """Membership mask of ``keys`` against the sorted ``mask_keys`` support."""
    if len(mask_keys) == 0:
        member = np.zeros(len(keys), dtype=bool)
    else:
        pos = np.searchsorted(mask_keys, keys)
        pos_clipped = np.minimum(pos, len(mask_keys) - 1)
        member = mask_keys[pos_clipped] == keys
    return ~member if complement else member


def _expansion_chunks(
    a: SpMat,
    b: SpMat,
    mask_keys: np.ndarray | None,
    mask_complement: bool,
    chunk: int,
) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Yield the (a_idx, b_idx, keys) expansion join in bounded chunks.

    The single source of truth for join enumeration and in-expansion mask
    filtering: the generic kernel and every structure-of-arrays fast path in
    :mod:`repro.sparse.dispatch` iterate these exact chunks, which is what
    makes their per-chunk reductions bit-identical.
    """
    ptr = b.row_pointer()
    b_start = ptr[a.cols]
    counts = ptr[a.cols + 1] - b_start
    if int(counts.sum()) == 0:
        return
    for lo, hi in _chunk_bounds(counts, chunk):
        c = counts[lo:hi]
        nz = c.nonzero()[0] + lo
        if len(nz) == 0:
            continue
        reps = counts[nz]
        a_idx = np.repeat(nz, reps)
        # b-side index: for each joined pair, offset within its B row run.
        offs = np.arange(len(a_idx)) - np.repeat(
            np.cumsum(reps) - reps, reps
        )
        b_idx = b_start[a_idx] + offs
        keys = a.rows[a_idx] * np.int64(b.ncols) + b.cols[b_idx]
        if mask_keys is not None:
            keep = _mask_keep(keys, mask_keys, mask_complement)
            if not keep.all():
                idx = keep.nonzero()[0]
                a_idx, b_idx, keys = a_idx[idx], b_idx[idx], keys[idx]
        yield a_idx, b_idx, keys


def _spgemm_generic(
    a: SpMat,
    b: SpMat,
    spec: MatMulSpec,
    *,
    mask_keys: np.ndarray | None = None,
    mask_complement: bool = False,
    chunk: int = 1 << 22,
) -> SpGemmResult:
    """The generic expansion-join kernel — correct for any MatMulSpec."""
    monoid = spec.monoid
    out_shape = (a.nrows, b.ncols)
    if a.nnz == 0 or b.nnz == 0:
        return SpGemmResult(SpMat.empty(*out_shape, monoid), 0)

    ops_done = 0
    sink = _CHUNK_SINK
    partial_keys: list[np.ndarray] = []
    partial_vals = []
    staged: list = []
    for a_idx, b_idx, keys in _expansion_chunks(
        a, b, mask_keys, mask_complement, chunk
    ):
        ops_done += len(keys)
        if len(keys) == 0:
            continue
        vals = spec.apply_f(take_fields(a.vals, a_idx), take_fields(b.vals, b_idx))
        keys, vals = monoid.reduce_by_key(keys, vals)
        if sink is not None:
            store, site = sink
            arrays = {"keys": keys}
            for name in monoid.field_names:
                arrays[f"f_{name}"] = np.asarray(vals[name])
            staged.append(store.stage_chunk(
                str(next(_CHUNK_IDS)), arrays, site=site
            ))
        else:
            partial_keys.append(keys)
            partial_vals.append(vals)

    for handle in staged:
        store, _site = sink
        data = store.fetch_chunk(handle)
        partial_keys.append(data["keys"])
        partial_vals.append({
            name: data[f"f_{name}"] for name in monoid.field_names
        })
    if not partial_keys:
        return SpGemmResult(SpMat.empty(*out_shape, monoid), ops_done)
    keys = np.concatenate(partial_keys)
    vals = concat_fields(partial_vals)
    rows = keys // np.int64(b.ncols)
    cols = keys % np.int64(b.ncols)
    c_mat = SpMat(out_shape[0], out_shape[1], rows, cols, vals, monoid)
    return SpGemmResult(c_mat, ops_done)


def _chunk_bounds(counts: np.ndarray, chunk: int) -> list[tuple[int, int]]:
    """Partition ``range(len(counts))`` so each part's count-sum ≤ chunk.

    A single index whose count exceeds ``chunk`` still gets its own part
    (it cannot be subdivided at this level).
    """
    if chunk <= 0:
        raise ValueError(f"chunk must be positive, got {chunk}")
    csum = np.concatenate([[0], np.cumsum(counts)])
    bounds: list[tuple[int, int]] = []
    lo = 0
    n = len(counts)
    while lo < n:
        hi = int(np.searchsorted(csum, csum[lo] + chunk, side="right")) - 1
        if hi <= lo:
            hi = lo + 1
        bounds.append((lo, hi))
        lo = hi
    return bounds
