"""Vectorized generalized SpGEMM: ``C = A •⟨⊕,f⟩ B`` on node-local matrices.

This is the blockwise kernel that plays the role of MKL's sparse BLAS in the
paper's stack (§6.2): every distributed algorithm variant ultimately calls it
on local blocks, and the sequential MFBC engine calls it on whole matrices.

Algorithm: a sort-free hash-free *expansion join* —

1. B is canonical (row-major sorted), so a row pointer is recovered with
   ``searchsorted``;
2. every nonzero ``A(i,k)`` is joined against all nonzeros of B's row ``k``
   by vectorized repetition (this enumerates exactly the ``ops(A, B)``
   nonzero products of the paper's cost model);
3. ``f`` maps the joined value pairs;
4. the monoid's ``reduce_by_key`` folds products landing on the same
   ``C(i,j)``.

Large expansions are processed in bounded chunks so peak memory stays
proportional to ``chunk`` rather than ``ops(A, B)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algebra.fields import concat_fields, take_fields
from repro.algebra.matmul import MatMulSpec
from repro.sparse.spmatrix import SpMat

__all__ = ["spgemm", "spgemm_with_ops", "SpGemmResult", "count_ops"]


@dataclass(frozen=True)
class SpGemmResult:
    """Product matrix plus the work metric the paper's model charges."""

    matrix: SpMat
    #: number of nonzero elementary products formed — ``ops(A, B)`` in §5.1.
    ops: int


def count_ops(a: SpMat, b: SpMat) -> int:
    """``ops(A, B)``: nonzero products of ``A •  B`` without forming them."""
    if a.ncols != b.nrows:
        raise ValueError(f"inner dimension mismatch: {a.shape} × {b.shape}")
    if a.nnz == 0 or b.nnz == 0:
        return 0
    ptr = b.row_pointer()
    return int((ptr[a.cols + 1] - ptr[a.cols]).sum())


def spgemm_with_ops(
    a: SpMat,
    b: SpMat,
    spec: MatMulSpec,
    *,
    chunk: int = 1 << 22,
) -> SpGemmResult:
    """Compute ``C = A •⟨⊕,f⟩ B`` and report the elementary-product count.

    Parameters
    ----------
    a, b:
        Operand matrices; ``a.ncols`` must equal ``b.nrows``.  ``a`` holds
        elements of ``f``'s first domain, ``b`` of its second.
    spec:
        The ``•⟨⊕,f⟩`` operator; the output matrix lives over ``spec.monoid``.
    chunk:
        Upper bound on the number of joined pairs materialized at once.
    """
    if a.ncols != b.nrows:
        raise ValueError(f"inner dimension mismatch: {a.shape} × {b.shape}")
    monoid = spec.monoid
    out_shape = (a.nrows, b.ncols)
    if a.nnz == 0 or b.nnz == 0:
        return SpGemmResult(SpMat.empty(*out_shape, monoid), 0)

    ptr = b.row_pointer()
    b_start = ptr[a.cols]
    counts = ptr[a.cols + 1] - b_start
    total_ops = int(counts.sum())
    if total_ops == 0:
        return SpGemmResult(SpMat.empty(*out_shape, monoid), 0)

    # Split A's nonzeros into chunks whose expansions fit the budget.
    bounds = _chunk_bounds(counts, chunk)
    partial_keys: list[np.ndarray] = []
    partial_vals = []
    for lo, hi in bounds:
        c = counts[lo:hi]
        nz = c.nonzero()[0] + lo
        if len(nz) == 0:
            continue
        reps = counts[nz]
        a_idx = np.repeat(nz, reps)
        # b-side index: for each joined pair, offset within its B row run.
        offs = np.arange(len(a_idx)) - np.repeat(
            np.cumsum(reps) - reps, reps
        )
        b_idx = b_start[a_idx] + offs
        vals = spec.apply_f(take_fields(a.vals, a_idx), take_fields(b.vals, b_idx))
        keys = a.rows[a_idx] * np.int64(b.ncols) + b.cols[b_idx]
        keys, vals = monoid.reduce_by_key(keys, vals)
        partial_keys.append(keys)
        partial_vals.append(vals)

    if not partial_keys:
        return SpGemmResult(SpMat.empty(*out_shape, monoid), total_ops)
    keys = np.concatenate(partial_keys)
    vals = concat_fields(partial_vals)
    rows = keys // np.int64(b.ncols)
    cols = keys % np.int64(b.ncols)
    c_mat = SpMat(out_shape[0], out_shape[1], rows, cols, vals, monoid)
    return SpGemmResult(c_mat, total_ops)


def spgemm(a: SpMat, b: SpMat, spec: MatMulSpec, *, chunk: int = 1 << 22) -> SpMat:
    """Convenience wrapper returning only the product matrix."""
    return spgemm_with_ops(a, b, spec, chunk=chunk).matrix


def _chunk_bounds(counts: np.ndarray, chunk: int) -> list[tuple[int, int]]:
    """Partition ``range(len(counts))`` so each part's count-sum ≤ chunk.

    A single index whose count exceeds ``chunk`` still gets its own part
    (it cannot be subdivided at this level).
    """
    if chunk <= 0:
        raise ValueError(f"chunk must be positive, got {chunk}")
    csum = np.concatenate([[0], np.cumsum(counts)])
    bounds: list[tuple[int, int]] = []
    lo = 0
    n = len(counts)
    while lo < n:
        hi = int(np.searchsorted(csum, csum[lo] + chunk, side="right")) - 1
        if hi <= lo:
            hi = lo + 1
        bounds.append((lo, hi))
        lo = hi
    return bounds
