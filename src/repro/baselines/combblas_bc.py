"""CombBLAS-style algebraic betweenness centrality.

This is the comparison target of §7: the Combinatorial BLAS library's BC
(Buluç & Gilbert) computes batched Brandes over *unweighted* graphs using
classical ``(+, ×)`` semiring SpGEMM:

* forward phase — level-synchronous batch BFS: the fringe is multiplied by
  the adjacency matrix and masked to unvisited vertices, accumulating the
  shortest-path counts ``σ̄`` level by level;
* backward phase — for each BFS level from deepest to shallowest, two
  elementwise products and one SpGEMM with ``Aᵀ`` push the Brandes
  dependency update ``δ(s,v) += σ̄(s,v)/σ̄(s,w) · (1 + δ(s,w))`` one level up.

Differences from MFBC that the paper's evaluation exercises:

* unweighted graphs only (weighted input raises);
* one frontier per BFS *level* — vertices enter exactly one fringe, so there
  is no counter machinery;
* the backward phase replays stored levels (requiring all levels to be kept,
  where MFBr recomputes structure on the fly — the §7.4 discussion of the
  patents graph);
* when run distributed, CombBLAS only supports square 2D process grids —
  pass an engine configured with a square-2D algorithm policy to reproduce
  its communication profile.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.algebra.semiring import REAL_PLUS_TIMES
from repro.core.engine import Engine, SequentialEngine
from repro.graphs.graph import Graph
from repro.obs import api as obs

__all__ = ["combblas_bc", "CombBLASResult"]

_SPEC = REAL_PLUS_TIMES.matmul_spec()


@dataclass
class CombBLASResult:
    """Scores plus the counters the benchmarks report."""

    scores: np.ndarray
    batch_size: int
    elapsed_seconds: float
    matmuls: int = 0
    ops: int = 0
    levels_per_batch: list[int] = field(default_factory=list)

    def teps(self, graph: Graph) -> float:
        """Edge traversals per second, same convention as MFBC (§7.1)."""
        traversals = len(self.scores) and self._sources * graph.nnz_adjacency
        return traversals / self.elapsed_seconds if self.elapsed_seconds > 0 else 0.0

    _sources: int = 0


def combblas_bc(
    graph: Graph,
    batch_size: int | None = None,
    *,
    engine: Engine | None = None,
    sources: np.ndarray | None = None,
    max_batches: int | None = None,
) -> CombBLASResult:
    """Betweenness centrality via CombBLAS-style batched algebraic Brandes.

    Raises :class:`ValueError` on weighted graphs — CombBLAS BC is a BFS
    algorithm (this restriction is itself one of the paper's points: MFBC
    generalizes to weights, CombBLAS does not).
    """
    if graph.weighted:
        raise ValueError(
            "CombBLAS-style BC supports unweighted graphs only; "
            "use repro.core.mfbc for weighted graphs"
        )
    engine = engine or SequentialEngine()
    if sources is None:
        sources = np.arange(graph.n, dtype=np.int64)
    else:
        sources = np.asarray(sources, dtype=np.int64)
    if batch_size is None:
        batch_size = min(max(graph.n // 8, 1), 512)
    adj = engine.adjacency(graph)
    adj_t = adj.transpose()
    n = graph.n
    scores = np.zeros(n)
    result = CombBLASResult(
        scores=scores, batch_size=batch_size, elapsed_seconds=0.0
    )
    t0 = time.perf_counter()

    with obs.span(
        "combblas", cat="run", n=n, m=graph.nnz_adjacency, batch_size=batch_size
    ):
        nbatches = 0
        for lo in range(0, len(sources), batch_size):
            batch = sources[lo : lo + batch_size]
            with obs.span("batch", cat="batch", index=nbatches, sources=len(batch)):
                _one_batch(engine, adj, adj_t, batch, n, scores, result)
            nbatches += 1
            result._sources += len(batch)
            if max_batches is not None and nbatches >= max_batches:
                break
    result.elapsed_seconds = time.perf_counter() - t0
    return result


def _one_batch(engine, adj, adj_t, batch, n, scores, result) -> None:
    nb = len(batch)
    plus = _SPEC.monoid

    # nsp(s, s) = 1: one empty path from each source to itself.
    nsp = engine.matrix(
        nb,
        n,
        np.arange(nb, dtype=np.int64),
        np.asarray(batch, dtype=np.int64),
        {"w": np.ones(nb)},
        plus,
    )
    # The depth-0 "level" is the sources themselves.
    levels = [nsp]
    fringe = nsp

    # ---- forward: batched BFS accumulating path counts per level.
    with obs.span("forward", cat="phase") as fwd:
        while True:
            # Complemented mask: only unvisited vertices (no nsp entry yet —
            # every stored count is positive) are expanded, so the settled
            # part of the frontier never even forms its products.  This is
            # the ``mxmm_msa_cmask`` idiom of GraphBLAS BC.
            fringe, ops = engine.spgemm(
                fringe, adj, _SPEC, mask=nsp, mask_complement=True
            )
            result.matmuls += 1
            result.ops += ops
            if fringe.nnz == 0:
                break
            nsp = nsp.combine(fringe)
            levels.append(fringe)
        fwd.set(levels=len(levels) - 1)
    result.levels_per_batch.append(len(levels) - 1)

    # ---- backward: replay levels from deepest to depth 1.
    # bcu(s, w) carries (1 + δ(s, w)); implicitly 1 where unstored, so we
    # store only the δ part and add the 1 when forming the update.
    with obs.span("backward", cat="phase"):
        delta = None  # lazily created sparse accumulator
        for d in range(len(levels) - 1, 0, -1):
            lvl = levels[d]
            # w1(s, w) = (1 + δ(s, w)) / σ̄(s, w) on level-d support.
            if delta is None:
                w1 = lvl.map(lambda lv: {"w": 1.0 / lv["w"]})
            else:
                w1 = lvl.zip_map(
                    delta, lambda lv, dv: {"w": (1.0 + dv["w"]) / lv["w"]}
                )
            # Only contributions landing on the previous level survive the
            # zip_map below (its support is levels[d-1]), so mask to it.
            back, ops = engine.spgemm(w1, adj_t, _SPEC, mask=levels[d - 1])
            result.matmuls += 1
            result.ops += ops
            # Keep contributions landing on the previous level, scale by
            # σ̄(s, v).
            upd = levels[d - 1].zip_map(back, lambda lv, bv: {"w": lv["w"] * bv["w"]})
            delta = upd if delta is None else delta.combine(upd)

        if delta is not None:
            local = engine.gather(delta)
            keep = local.cols != np.asarray(batch)[local.rows]
            scores += np.bincount(
                local.cols[keep], weights=local.vals["w"][keep], minlength=n
            )
