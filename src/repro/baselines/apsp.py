"""All-pairs shortest paths baselines (§5.3.2 comparison targets).

The paper contrasts MFBC's memory footprint and bandwidth cost with APSP
algorithms that materialize the full n² distance matrix: Floyd-Warshall and
min-plus path doubling (Tiskin's BSP APSP).  Both are provided as dense
kernels — they exist to (a) serve as independent distance oracles in tests
and (b) give the §5.3.2 analytical comparison concrete measured work/memory
numbers at small scale.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph

__all__ = ["floyd_warshall", "path_doubling_apsp", "dense_distance_matrix"]


def dense_distance_matrix(graph: Graph) -> np.ndarray:
    """The initial dense distance matrix: weights on edges, 0 diagonal, ∞ else."""
    n = graph.n
    dist = np.full((n, n), np.inf)
    r, c, w = graph._both_directions()
    # parallel duplicates were already reduced to min in Graph, but be safe
    np.minimum.at(dist, (r, c), w)
    np.fill_diagonal(dist, 0.0)
    return dist


def floyd_warshall(graph: Graph) -> np.ndarray:
    """Classic O(n³) Floyd-Warshall (vectorized over the inner two loops).

    Requires Θ(n²) memory — the cost the paper's Theorem 5.1 discussion
    contrasts with MFBC's O(c·m/p) per-processor footprint.
    """
    dist = dense_distance_matrix(graph)
    n = graph.n
    for k in range(n):
        # dist[i, j] = min(dist[i, j], dist[i, k] + dist[k, j])
        via = dist[:, k : k + 1] + dist[k : k + 1, :]
        np.minimum(dist, via, out=dist)
    return dist


def path_doubling_apsp(graph: Graph) -> tuple[np.ndarray, int]:
    """Min-plus path doubling: ⌈log₂ n⌉ squarings of the distance matrix.

    Returns the distance matrix and the number of min-plus multiplications
    performed (the latency-cost comparison point of §5.3.3: O(log) rounds
    versus Floyd-Warshall's n).
    """
    dist = dense_distance_matrix(graph)
    n = graph.n
    rounds = 0
    reach = 1
    while reach < max(n - 1, 1):
        dist = _minplus_square(dist)
        reach *= 2
        rounds += 1
    return dist, rounds


def _minplus_square(dist: np.ndarray) -> np.ndarray:
    """One min-plus matrix squaring, blocked to bound peak memory."""
    n = dist.shape[0]
    out = np.empty_like(dist)
    block = max(1, min(n, int(2**22 // max(n, 1)) or 1))
    for lo in range(0, n, block):
        hi = min(lo + block, n)
        # (hi-lo, n, n) broadcast reduced over the middle axis
        out[lo:hi] = np.min(dist[lo:hi, :, None] + dist[None, :, :], axis=1)
    return out
