"""The classic Brandes betweenness-centrality algorithm (Brandes, 2001).

The work-optimal sequential baseline and the library's correctness oracle:
one SSSP per source (BFS when unweighted, Dijkstra when weighted) followed by
dependency accumulation in non-increasing distance order via

    δ(s,v) = Σ_{w : v ∈ π(s,w)}  σ̄(s,v)/σ̄(s,w) · (1 + δ(s,w)).

Scores follow the paper's ordered-pair convention (matching
:func:`repro.core.mfbc.mfbc`): for undirected graphs every unordered pair is
counted twice.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graphs.graph import Graph

__all__ = ["brandes_bc", "brandes_single_source"]


def brandes_single_source(graph: Graph, source: int) -> np.ndarray:
    """Dependencies ``δ(source, ·)`` of one source on every vertex."""
    adj = graph.adjacency_scipy()
    n = graph.n
    indptr, indices, data = adj.indptr, adj.indices, adj.data

    dist = np.full(n, np.inf)
    sigma = np.zeros(n)
    dist[source] = 0.0
    sigma[source] = 1.0
    preds: list[list[int]] = [[] for _ in range(n)]
    order: list[int] = []

    if graph.weighted:
        done = np.zeros(n, dtype=bool)
        heap: list[tuple[float, int]] = [(0.0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if done[u] or d > dist[u]:
                continue
            done[u] = True
            order.append(u)
            for pos in range(indptr[u], indptr[u + 1]):
                v = indices[pos]
                nd = d + data[pos]
                if nd < dist[v]:
                    dist[v] = nd
                    sigma[v] = sigma[u]
                    preds[v] = [u]
                    heapq.heappush(heap, (nd, v))
                elif nd == dist[v]:
                    sigma[v] += sigma[u]
                    preds[v].append(u)
    else:
        frontier = [source]
        while frontier:
            nxt: list[int] = []
            for u in frontier:
                order.append(u)
            for u in frontier:
                du = dist[u]
                for pos in range(indptr[u], indptr[u + 1]):
                    v = indices[pos]
                    if np.isinf(dist[v]):
                        dist[v] = du + 1.0
                        nxt.append(v)
                    if dist[v] == du + 1.0:
                        sigma[v] += sigma[u]
                        preds[v].append(u)
            frontier = nxt

    delta = np.zeros(n)
    for w in reversed(order):
        coeff = (1.0 + delta[w]) / sigma[w]
        for v in preds[w]:
            delta[v] += sigma[v] * coeff
    delta[source] = 0.0
    return delta


def brandes_bc(graph: Graph, sources: np.ndarray | None = None) -> np.ndarray:
    """Betweenness centrality λ of every vertex.

    Parameters
    ----------
    graph:
        Input graph.
    sources:
        Restrict the outer loop to these sources (partial/approximate BC);
        default: all vertices.
    """
    if sources is None:
        sources = np.arange(graph.n, dtype=np.int64)
    scores = np.zeros(graph.n)
    for s in np.asarray(sources, dtype=np.int64):
        scores += brandes_single_source(graph, int(s))
    return scores
