"""Single-source shortest paths with multiplicity counting.

These kernels return ``(dist, sigma)`` — the shortest distance and the
number of distinct shortest paths from a source to every vertex — i.e. one
row of MFBF's output matrix ``T``.  They serve as independent oracles for
the MFBF property tests and as the inner loop of the reference Brandes
implementation.
"""

from __future__ import annotations

import heapq

import numpy as np
import scipy.sparse

from repro.graphs.graph import Graph

__all__ = ["dijkstra_sssp", "bellman_ford_sssp", "bfs_sssp"]


def _csr(graph: Graph) -> scipy.sparse.csr_matrix:
    return graph.adjacency_scipy()


def bfs_sssp(graph: Graph, source: int) -> tuple[np.ndarray, np.ndarray]:
    """BFS distances/multiplicities for unweighted graphs (level-synchronous,
    vectorized per level)."""
    adj = _csr(graph)
    n = graph.n
    dist = np.full(n, np.inf)
    sigma = np.zeros(n)
    dist[source] = 0.0
    sigma[source] = 1.0
    frontier = np.array([source], dtype=np.int64)
    level = 0.0
    while len(frontier):
        level += 1.0
        # Gather all neighbours of the frontier with path-count weights.
        indptr, indices = adj.indptr, adj.indices
        reps = indptr[frontier + 1] - indptr[frontier]
        src_rep = np.repeat(frontier, reps)
        offs = np.arange(len(src_rep)) - np.repeat(np.cumsum(reps) - reps, reps)
        nbrs = indices[indptr[src_rep] + offs]
        counts = np.bincount(nbrs, weights=sigma[src_rep], minlength=n)
        new_mask = np.isinf(dist) & (counts > 0)
        eq_mask = (dist == level) & (counts > 0)
        sigma[new_mask] += counts[new_mask]
        sigma[eq_mask] += 0.0  # new vertices only: BFS visits each level once
        dist[new_mask] = level
        frontier = np.nonzero(new_mask)[0]
    return dist, sigma


def dijkstra_sssp(graph: Graph, source: int) -> tuple[np.ndarray, np.ndarray]:
    """Dijkstra distances/multiplicities (lazy-deletion binary heap).

    Handles weighted graphs with positive weights; multiplicities accumulate
    on distance ties with exact float comparison, which is safe here because
    all test weights are small integers (sums stay exactly representable).
    """
    adj = _csr(graph)
    n = graph.n
    dist = np.full(n, np.inf)
    sigma = np.zeros(n)
    done = np.zeros(n, dtype=bool)
    dist[source] = 0.0
    sigma[source] = 1.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    indptr, indices, data = adj.indptr, adj.indices, adj.data
    while heap:
        d, u = heapq.heappop(heap)
        if done[u] or d > dist[u]:
            continue
        done[u] = True
        for pos in range(indptr[u], indptr[u + 1]):
            v = indices[pos]
            nd = d + data[pos]
            if nd < dist[v]:
                dist[v] = nd
                sigma[v] = sigma[u]
                heapq.heappush(heap, (nd, v))
            elif nd == dist[v]:
                sigma[v] += sigma[u]
    return dist, sigma


def bellman_ford_sssp(
    graph: Graph, source: int, max_iterations: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Frontier-driven Bellman-Ford with multiplicities.

    The scalar (non-algebraic) version of MFBF for a single source — an
    independent implementation used to cross-check the matrix formulation.
    """
    adj = _csr(graph)
    n = graph.n
    if max_iterations is None:
        max_iterations = n + 1
    dist = np.full(n, np.inf)
    sigma = np.zeros(n)
    dist[source] = 0.0
    sigma[source] = 1.0
    # frontier entries carry (vertex, weight, multiplicity of exactly-j-edge
    # minimal paths)
    f_vtx = np.array([source], dtype=np.int64)
    f_w = np.array([0.0])
    f_m = np.array([1.0])
    indptr, indices, data = adj.indptr, adj.indices, adj.data
    for _ in range(max_iterations):
        if len(f_vtx) == 0:
            return dist, sigma
        reps = indptr[f_vtx + 1] - indptr[f_vtx]
        src_rep = np.repeat(np.arange(len(f_vtx)), reps)
        offs = np.arange(len(src_rep)) - np.repeat(np.cumsum(reps) - reps, reps)
        pos = indptr[f_vtx[src_rep]] + offs
        cand_v = indices[pos]
        cand_w = f_w[src_rep] + data[pos]
        cand_m = f_m[src_rep]
        # reduce candidates per destination: min weight, sum multiplicities
        order = np.lexsort((cand_w, cand_v))
        cand_v, cand_w, cand_m = cand_v[order], cand_w[order], cand_m[order]
        uniq, starts = np.unique(cand_v, return_index=True)
        best_w = cand_w[starts]
        seg = np.searchsorted(starts, np.arange(len(cand_v)), side="right") - 1
        tied = cand_w == best_w[seg]
        best_m = np.add.reduceat(np.where(tied, cand_m, 0.0), starts)
        # merge into dist/sigma; survivors form the next frontier
        better = best_w < dist[uniq]
        equal = best_w == dist[uniq]
        sigma[uniq[better]] = best_m[better]
        dist[uniq[better]] = best_w[better]
        sigma[uniq[equal]] += best_m[equal]
        keep = better | equal
        f_vtx, f_w, f_m = uniq[keep], best_w[keep], best_m[keep]
    raise RuntimeError("Bellman-Ford did not converge: non-positive cycle?")
