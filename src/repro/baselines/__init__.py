"""Baseline algorithms the paper compares against (or builds on).

* :mod:`repro.baselines.brandes` — the classic Brandes algorithm (BFS for
  unweighted, Dijkstra for weighted graphs): the correctness oracle and the
  work-optimal sequential baseline;
* :mod:`repro.baselines.sssp` — single-source shortest path kernels with
  multiplicity counting (Bellman-Ford, Dijkstra);
* :mod:`repro.baselines.combblas_bc` — a CombBLAS-style batched algebraic
  BC (semiring SpGEMM batch-BFS + back-propagation, unweighted graphs,
  square 2D process grids): the performance comparison target of §7;
* :mod:`repro.baselines.apsp` — all-pairs shortest paths via Floyd-Warshall
  and min-plus path doubling, the §5.3.2 memory/bandwidth comparison point.
"""

from repro.baselines.brandes import brandes_bc
from repro.baselines.combblas_bc import combblas_bc
from repro.baselines.sssp import bellman_ford_sssp, dijkstra_sssp
from repro.baselines.apsp import floyd_warshall, path_doubling_apsp

__all__ = [
    "brandes_bc",
    "combblas_bc",
    "bellman_ford_sssp",
    "dijkstra_sssp",
    "floyd_warshall",
    "path_doubling_apsp",
]
