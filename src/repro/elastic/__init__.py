"""repro.elastic: in-flight rank-failure recovery.

Shrink the machine to the survivors, repair lost blocks from ABFT-style
checksummed replicas (or the retained source), rebuild the processor grid,
and resume the batch loop — no restart.  See :mod:`repro.elastic.policy`
for configuration and :mod:`repro.elastic.recovery` for the coordinator.
"""

from repro.elastic.policy import ELASTIC_ENV, ElasticPolicy, resolve_elastic

__all__ = [
    "ELASTIC_ENV",
    "ElasticPolicy",
    "resolve_elastic",
    "RecoveryError",
    "RecoveryReport",
    "recover_engine",
]

_LAZY = ("RecoveryError", "RecoveryReport", "recover_engine")


def __getattr__(name: str):
    # repro.elastic.recovery imports repro.dist, which imports
    # repro.machine.machine, which imports repro.elastic.policy — loading
    # the coordinator lazily keeps the package importable from the
    # machine layer without a cycle.
    if name in _LAZY:
        from repro.elastic import recovery

        return getattr(recovery, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
