"""Elastic-recovery policy: how lost blocks are reconstructed.

The policy answers one question — when a rank dies mid-run, where do its
blocks come from?

``replica``
    ABFT-style checksummed buddy replicas: :meth:`DistMat.distribute
    <repro.dist.distmat.DistMat.distribute>` keeps a deep copy of every
    block on a buddy rank (``(owner + stride) % p``) tagged with a CRC-32
    checksum, charging the replication collective to the ledger honestly
    (category ``"redundancy"``).  On failure, survivors restore a dead
    rank's blocks from verified replicas — no source data needed.

``source``
    Re-materialization: the distributed matrix retains a handle to its
    source :class:`~repro.core.spmat.SpMat` and re-slices only the lost
    blocks.  Free while healthy, but recovery depends on the source still
    being reachable (in the simulation it always is; on a real machine this
    models re-reading the input from the parallel filesystem).

The grammar mirrors :mod:`repro.faults.plan` and :mod:`repro.check.engine`:
a spec string, an :class:`ElasticPolicy`, or ``None`` to consult the
``REPRO_ELASTIC`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["ELASTIC_ENV", "ElasticPolicy", "resolve_elastic"]

ELASTIC_ENV = "REPRO_ELASTIC"

_REDUNDANCY_MODES = ("replica", "source")


@dataclass(frozen=True)
class ElasticPolicy:
    """Resolved elastic-recovery configuration.

    ``redundancy`` selects the primary block-reconstruction path
    (``"replica"`` or ``"source"``); ``stride`` is the buddy offset for
    replica placement (a replica of rank ``r``'s blocks lives on rank
    ``(r + stride) % p``, so ``stride`` must stay coprime-ish with common
    failure patterns — the default 1 survives any single failure, and any
    failure set that doesn't contain a full owner+buddy pair).
    """

    redundancy: str = "replica"
    stride: int = 1

    def __post_init__(self) -> None:
        if self.redundancy not in _REDUNDANCY_MODES:
            raise ValueError(
                f"unknown redundancy mode {self.redundancy!r}; "
                f"expected one of {_REDUNDANCY_MODES}"
            )
        if self.stride < 1:
            raise ValueError(f"replica stride must be >= 1, got {self.stride}")

    def describe(self) -> str:
        if self.redundancy == "replica" and self.stride != 1:
            return f"replica:{self.stride}"
        return self.redundancy


def _parse_spec(spec: str) -> ElasticPolicy | None:
    spec = spec.strip().lower()
    if spec in ("", "none", "off", "0", "false"):
        return None
    if spec in ("on", "replica", "1", "true"):
        return ElasticPolicy()
    if spec.startswith("replica:"):
        try:
            stride = int(spec.split(":", 1)[1])
        except ValueError:
            raise ValueError(f"bad replica stride in elastic spec {spec!r}") from None
        return ElasticPolicy(redundancy="replica", stride=stride)
    if spec == "source":
        return ElasticPolicy(redundancy="source")
    raise ValueError(
        f"unknown elastic spec {spec!r}; expected 'off', 'replica', "
        f"'replica:STRIDE', or 'source'"
    )


def resolve_elastic(spec, *, env: bool = True) -> ElasticPolicy | None:
    """Resolve ``spec`` into an :class:`ElasticPolicy` (or ``None``).

    Accepts an :class:`ElasticPolicy` (returned as-is), a spec string, or
    ``None`` — which consults ``REPRO_ELASTIC`` when ``env`` is true.
    """
    if isinstance(spec, ElasticPolicy):
        return spec
    if spec is None:
        if not env:
            return None
        spec = os.environ.get(ELASTIC_ENV, "")
    if isinstance(spec, str):
        return _parse_spec(spec)
    raise TypeError(f"cannot resolve elastic policy from {type(spec).__name__}")
