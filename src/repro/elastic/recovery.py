"""The recovery coordinator: shrink, repair, rebuild, resume.

When a collective raises :class:`~repro.faults.RankFailure` and the machine
carries an :class:`~repro.elastic.ElasticPolicy`, the MFBC driver hands the
engine to :func:`recover_engine`, which runs the four-step protocol of the
elastic design:

1. **Freeze** — synchronize the survivors' modeled clocks (a real recovery
   begins with failure detection + agreement, a barrier-class event) and
   open a ``recovery`` span in :mod:`repro.obs` linked to the fault step.
2. **Shrink** — pick the nearest rank count ``p' ≤ p - |dead|`` the active
   selection policy is feasible on (:func:`~repro.machine.grid.nearest_feasible_p`);
   survivors beyond ``p'`` are *retired* (alive but excluded, like MPI
   ranks outside the shrunken communicator).  :meth:`Machine.shrink
   <repro.machine.machine.Machine.shrink>` compacts the ledger onto the
   survivor numbering.
3. **Repair + rebuild** — every registered invariant matrix repairs its
   lost blocks in place (checksummed buddy replicas first, source
   re-materialization as fallback), then is redistributed onto the new
   near-square home grid; the redistribution traffic is charged honestly
   (category ``"recovery"``) and redundancy is re-established for the
   shrunken grid.  Rebuilt matrices are *adopted* into the original
   objects, so references held by the driver stay valid.
4. **Resume** — the policy is rescaled to ``p'``, the replication cache is
   dropped, memory accounting resets, and the driver re-executes only the
   interrupted batch.

Determinism: the survivor set is a pure function of the seeded fault plan,
and every step here (grid choice, block repair, redistribution order) is
deterministic given that set — so seeded runs make identical recovery
decisions, and the recomputed batch is bit-identical to a fault-free one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs import api as obs

__all__ = ["RecoveryError", "RecoveryReport", "recover_engine"]


class RecoveryError(RuntimeError):
    """Elastic recovery could not reconstruct the lost state.

    Raised when a lost block has no live replica and no retained source,
    or no feasible survivor grid exists.  Callers fall back to the next
    rung of the robustness ladder (retry from checkpoint, then abort).
    """


@dataclass(frozen=True)
class RecoveryReport:
    """What one completed recovery did (appended to ``machine.recoveries``)."""

    dead: tuple[int, ...]  # failed ranks (old numbering)
    retired: tuple[int, ...]  # alive ranks shed to reach a feasible grid
    p_before: int
    p_after: int
    blocks_replica: int = 0  # lost blocks restored from checksummed replicas
    blocks_source: int = 0  # lost blocks re-materialized from the source
    words_restored: int = 0
    detail: dict = field(default_factory=dict)


def recover_engine(engine, failure) -> RecoveryReport:
    """Recover ``engine`` in place from a :class:`RankFailure`.

    Returns the :class:`RecoveryReport`; raises :class:`RecoveryError`
    when no feasible grid or reconstruction path exists.
    """
    machine = engine.machine
    if machine.elastic is None:
        raise RecoveryError(
            "machine has no elastic policy; construct it with elastic=... "
            "or set REPRO_ELASTIC"
        )
    rank = int(getattr(failure, "rank", -1))
    step = int(getattr(failure, "step", -1))
    site = str(getattr(failure, "site", ""))
    dead = sorted({rank} if 0 <= rank < machine.p else set())
    if not dead:
        raise RecoveryError(f"failure {failure!r} names no recoverable rank")

    # The recovery window is injection-free: its collectives are charged
    # (and the deadline guard still applies) but the fault plan's delivery
    # hook stands down, so a storm manifests as the *next* batch failing —
    # which re-enters recovery with strictly fewer ranks, guaranteeing
    # termination without partially-rebuilt state.
    hook = machine._fault_hook
    machine._fault_hook = None
    try:
        return _recover_locked(engine, machine, rank, step, site, dead)
    finally:
        machine._fault_hook = hook


def _recover_locked(engine, machine, rank, step, site, dead) -> RecoveryReport:
    # deferred imports: this module is reached from engine/mfbc at runtime,
    # after repro.dist and repro.machine are fully initialized
    from repro.dist.distmat import DistMat
    from repro.machine.grid import near_square_shape, nearest_feasible_p

    with obs.span(
        "recovery",
        cat="recovery",
        rank=rank,
        fault_step=step,
        site=site,
        p_before=machine.p,
    ) as sp:
        # 1. freeze: survivors agree on the failure before reconfiguring
        machine.barrier()

        # 2. pick the nearest feasible survivor grid; retire the excess
        p_before = machine.p
        try:
            p_target = nearest_feasible_p(
                p_before - len(dead), engine.policy.feasible_p
            )
        except ValueError as exc:
            raise RecoveryError(str(exc)) from exc
        survivors = [r for r in range(p_before) if r not in dead]
        retired = survivors[p_target:]
        removed = sorted(dead + retired)

        # 3a. repair the dead ranks' blocks while the old numbering (and
        # the replica map keyed on it) is still in force
        blocks_replica = blocks_source = words_restored = 0
        bases = list(engine._invariant_bases)
        for mat in bases:
            stats = mat.repair_lost(dead)
            blocks_replica += stats["replica"]
            blocks_source += stats["source"]
            words_restored += stats["words"]

        machine.shrink(removed)
        pr, pc = near_square_shape(p_target)
        engine.home_ranks2d = np.arange(p_target).reshape(pr, pc)

        # 3b. rebuild every invariant on the survivor grid.  The repaired
        # global matrix is re-scattered (one collective, charged as
        # category "recovery") and redundancy is re-established for the
        # new grid — both paid for, so post-recovery ledger invariants
        # hold without special-casing.
        engine._invariants.clear()
        engine._invariant_ids.clear()
        engine._invariant_bases.clear()
        for mat in bases:
            full = mat.gather(charge=False)
            if machine.p > 1:
                machine.charge_collective(
                    np.arange(machine.p),
                    full.words(),
                    weight=1.0,
                    category="recovery",
                )
            rebuilt = DistMat.distribute(
                full, machine, engine.home_ranks2d, charge=False
            )
            # re-arm redundancy for the new grid, charging its collective
            # (category "redundancy") like the original installation did
            rebuilt._install_redundancy(full, machine.elastic, charge=True)
            mat._adopt(rebuilt)
            engine.register_invariant(mat)

        # 4. resume: fresh caches, rescaled policy, clean memory accounting
        engine._replication_cache.clear()
        engine.policy = engine.policy.rescale(p_target)
        machine.reset_memory()

        report = RecoveryReport(
            dead=tuple(dead),
            retired=tuple(retired),
            p_before=p_before,
            p_after=p_target,
            blocks_replica=blocks_replica,
            blocks_source=blocks_source,
            words_restored=words_restored,
            detail={"site": site, "fault_step": step},
        )
        machine.recoveries.append(report)
        if machine.faults is not None:
            machine.faults.note(
                "crash",
                "recovered",
                site=site or "recovery",
                rank=rank,
                p_before=p_before,
                p_after=p_target,
                retired=len(retired),
                blocks_replica=blocks_replica,
                blocks_source=blocks_source,
            )
        if obs.enabled():
            sp.set(
                p_after=p_target,
                retired=len(retired),
                blocks_replica=blocks_replica,
                blocks_source=blocks_source,
                words_restored=words_restored,
            )
            obs.count("elastic.recoveries", 1.0, site=site or "recovery")
    return report
