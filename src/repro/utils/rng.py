"""Seeded random-number-generator plumbing.

Every stochastic component in the library (graph generators, vertex
relabeling, randomized layouts) accepts either an integer seed, an existing
:class:`numpy.random.Generator`, or ``None`` and normalizes it through
:func:`as_rng` so experiments are reproducible end to end.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_rng", "spawn_rngs"]


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Normalize ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged so callers can thread
    one generator through a pipeline of stochastic steps.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, k: int) -> list[np.random.Generator]:
    """Derive ``k`` statistically independent child generators from ``seed``.

    Used when a workload (e.g. a weak-scaling sweep) needs one independent
    stream per experiment point.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    root = as_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=k, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
