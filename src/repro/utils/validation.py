"""Argument-validation helpers used across the library.

These raise uniform, descriptive exceptions so user errors fail fast at the
public API boundary rather than deep inside a kernel.
"""

from __future__ import annotations

__all__ = ["require", "check_positive_int", "check_probability", "check_square"]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in [0, 1] and return it as a float."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_square(nrows: int, ncols: int, what: str = "matrix") -> None:
    """Raise unless the given shape is square."""
    if nrows != ncols:
        raise ValueError(f"{what} must be square, got shape ({nrows}, {ncols})")
