"""Small shared utilities: validation helpers and seeded RNG plumbing."""

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.validation import (
    check_positive_int,
    check_probability,
    check_square,
    require,
)

__all__ = [
    "as_rng",
    "spawn_rngs",
    "check_positive_int",
    "check_probability",
    "check_square",
    "require",
]
