"""Graph preprocessing used before running BC.

The paper's §7.1: "Our CTF-MFBC code preprocessed all graphs to remove
completely disconnected vertices", and §5.2's load-balance assumption relies
on randomized vertex order.  Both transformations live here, along with the
largest-connected-component extraction used to build well-posed test cases.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse
import scipy.sparse.csgraph

from repro.graphs.graph import Graph
from repro.utils.rng import as_rng

__all__ = [
    "remove_isolated_vertices",
    "largest_connected_component",
    "randomize_vertex_order",
    "relabel",
]


def relabel(g: Graph, new_of_old: np.ndarray, n_new: int | None = None) -> Graph:
    """Relabel vertices by the mapping ``old id → new_of_old[old id]``.

    Entries mapped to ``-1`` are dropped (with their edges).
    """
    new_of_old = np.asarray(new_of_old, dtype=np.int64)
    if len(new_of_old) != g.n:
        raise ValueError("mapping length must equal vertex count")
    if n_new is None:
        n_new = int(new_of_old.max()) + 1 if len(new_of_old) else 0
    ns, nd = new_of_old[g.src], new_of_old[g.dst]
    keep = (ns >= 0) & (nd >= 0)
    w = g.weight[keep] if g.weight is not None else None
    return Graph(
        max(n_new, 1), ns[keep], nd[keep], w, directed=g.directed, name=g.name
    )


def remove_isolated_vertices(g: Graph) -> Graph:
    """Drop vertices with no incident edges, compacting labels."""
    touched = np.zeros(g.n, dtype=bool)
    touched[g.src] = True
    touched[g.dst] = True
    if touched.all():
        return g
    new_of_old = np.full(g.n, -1, dtype=np.int64)
    new_of_old[touched] = np.arange(int(touched.sum()))
    return relabel(g, new_of_old, int(touched.sum()))


def largest_connected_component(g: Graph) -> Graph:
    """Restrict to the largest (weakly) connected component."""
    adj = g.adjacency_scipy()
    ncomp, labels = scipy.sparse.csgraph.connected_components(
        adj, directed=g.directed, connection="weak"
    )
    if ncomp <= 1:
        return g
    sizes = np.bincount(labels, minlength=ncomp)
    big = int(np.argmax(sizes))
    new_of_old = np.full(g.n, -1, dtype=np.int64)
    members = labels == big
    new_of_old[members] = np.arange(int(members.sum()))
    return relabel(g, new_of_old, int(members.sum()))


def randomize_vertex_order(
    g: Graph, seed: int | np.random.Generator | None = 0
) -> Graph:
    """Apply a uniformly random vertex relabeling.

    Satisfies the balls-into-bins load-balance assumption of §5.2: after
    randomization every contiguous block of an adjacency matrix holds a
    number of nonzeros proportional to its area, with high probability.
    """
    rng = as_rng(seed)
    return relabel(g, rng.permutation(g.n).astype(np.int64), g.n)
