"""Edge-weight assignment.

The paper's weighted experiments (Fig. 1c) draw integer weights uniformly
from [1, 100]; :func:`with_random_weights` reproduces that and generalizes
the range.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.utils.rng import as_rng

__all__ = ["with_random_weights"]


def with_random_weights(
    g: Graph,
    low: int = 1,
    high: int = 100,
    *,
    seed: int | np.random.Generator | None = None,
) -> Graph:
    """Return ``g`` with integer edge weights drawn uniformly from [low, high]."""
    if not (0 < low <= high):
        raise ValueError(f"need 0 < low <= high, got [{low}, {high}]")
    rng = as_rng(seed)
    w = rng.integers(low, high + 1, size=g.m).astype(np.float64)
    return Graph(g.n, g.src, g.dst, w, directed=g.directed, name=g.name)
