"""The :class:`Graph` container used throughout the library.

A graph is a vertex count, a directedness flag, and parallel edge arrays
``(src, dst, weight)``.  Undirected graphs store each edge once; adjacency
accessors materialize both orientations.  The adjacency matrix follows the
paper's convention ``A(i,j) = w(i,j)`` for edges and ``∞`` (i.e. unstored
under the tropical monoid) otherwise; the diagonal is never stored —
self-loops are irrelevant to shortest paths and are dropped on construction.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse

from repro.algebra.monoid import MinMonoid
from repro.sparse.spmatrix import SpMat
from repro.utils.validation import check_positive_int

__all__ = ["Graph"]

#: Shared single-field monoid for adjacency matrices (tropical weights).
WEIGHT_MONOID = MinMonoid()


class Graph:
    """An edge-list graph with optional weights.

    Parameters
    ----------
    n:
        Number of vertices (labeled ``0 .. n-1``).
    src, dst:
        Edge endpoint arrays.  For undirected graphs each edge appears once
        (orientation arbitrary).
    weight:
        Edge weights (positive); ``None`` means unweighted (all 1.0).
    directed:
        Edge interpretation.
    name:
        Optional label used in reports.
    """

    __slots__ = ("n", "src", "dst", "weight", "directed", "name")

    def __init__(
        self,
        n: int,
        src: np.ndarray,
        dst: np.ndarray,
        weight: np.ndarray | None = None,
        *,
        directed: bool = False,
        name: str = "",
    ) -> None:
        check_positive_int(n, "n")
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src/dst length mismatch")
        if len(src) and (src.min() < 0 or src.max() >= n or dst.min() < 0 or dst.max() >= n):
            raise ValueError("edge endpoint out of range")
        if weight is not None:
            weight = np.asarray(weight, dtype=np.float64)
            if weight.shape != src.shape:
                raise ValueError("weight length mismatch")
            if len(weight) and not np.all(weight > 0):
                # also rejects NaN (NaN > 0 is False) and ±inf via the
                # finite check below
                raise ValueError("edge weights must be positive")
            if len(weight) and not np.all(np.isfinite(weight)):
                raise ValueError("edge weights must be finite")

        # Drop self-loops, then deduplicate (keeping the minimum weight for
        # parallel edges, the shortest-path-relevant one).
        keep = src != dst
        src, dst = src[keep], dst[keep]
        w = weight[keep] if weight is not None else None
        if not directed:
            lo = np.minimum(src, dst)
            hi = np.maximum(src, dst)
            src, dst = lo, hi
        key = src * np.int64(n) + dst
        order = np.argsort(key, kind="stable")
        key, src, dst = key[order], src[order], dst[order]
        if w is not None:
            w = w[order]
        uniq, starts = np.unique(key, return_index=True)
        if len(uniq) != len(key):
            if w is not None:
                w = np.minimum.reduceat(w, starts) if len(w) else w
            src = src[starts]
            dst = dst[starts]

        self.n = int(n)
        self.src = src
        self.dst = dst
        self.weight = w
        self.directed = bool(directed)
        self.name = name

    # -- basic properties ----------------------------------------------------

    @property
    def m(self) -> int:
        """Number of stored edges (undirected edges counted once)."""
        return len(self.src)

    @property
    def weighted(self) -> bool:
        return self.weight is not None

    @property
    def nnz_adjacency(self) -> int:
        """Stored entries in the adjacency matrix (2m when undirected)."""
        return self.m if self.directed else 2 * self.m

    def edge_weights(self) -> np.ndarray:
        """Weights array (all ones when unweighted)."""
        if self.weight is not None:
            return self.weight
        return np.ones(self.m, dtype=np.float64)

    def degrees(self) -> np.ndarray:
        """Out-degree per vertex for directed graphs, degree otherwise."""
        deg = np.bincount(self.src, minlength=self.n)
        if not self.directed:
            deg = deg + np.bincount(self.dst, minlength=self.n)
        return deg

    def average_degree(self) -> float:
        return float(self.degrees().mean()) if self.n else 0.0

    def max_degree(self) -> int:
        deg = self.degrees()
        return int(deg.max()) if len(deg) else 0

    # -- adjacency views -------------------------------------------------------

    def _both_directions(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        w = self.edge_weights()
        if self.directed:
            return self.src, self.dst, w
        return (
            np.concatenate([self.src, self.dst]),
            np.concatenate([self.dst, self.src]),
            np.concatenate([w, w]),
        )

    def adjacency(self) -> SpMat:
        """The adjacency matrix over the tropical weight monoid."""
        r, c, w = self._both_directions()
        return SpMat(self.n, self.n, r, c, {"w": w}, WEIGHT_MONOID)

    def adjacency_scipy(self, transpose: bool = False) -> scipy.sparse.csr_matrix:
        """CSR adjacency with weight data (for scipy-based baselines).

        Unstored entries are *absent*, not ∞; callers must not interpret
        explicit zeros (there are none — weights are positive).
        """
        r, c, w = self._both_directions()
        if transpose:
            r, c = c, r
        return scipy.sparse.csr_matrix((w, (r, c)), shape=(self.n, self.n))

    def to_networkx(self):
        """Convert to a networkx graph (weights as the ``weight`` attribute)."""
        import networkx as nx

        g = nx.DiGraph() if self.directed else nx.Graph()
        g.add_nodes_from(range(self.n))
        w = self.edge_weights()
        g.add_weighted_edges_from(
            zip(self.src.tolist(), self.dst.tolist(), w.tolist())
        )
        return g

    # -- transformations -------------------------------------------------------

    def unweighted(self) -> "Graph":
        """This graph with weights dropped."""
        return Graph(
            self.n, self.src, self.dst, None, directed=self.directed, name=self.name
        )

    def reversed(self) -> "Graph":
        """Edge-reversed graph (no-op for undirected)."""
        if not self.directed:
            return self
        return Graph(
            self.n,
            self.dst,
            self.src,
            self.weight,
            directed=True,
            name=self.name,
        )

    # -- metrics ----------------------------------------------------------------

    def effective_diameter(
        self, percentile: float = 0.9, samples: int = 16, seed: int | None = 0
    ) -> float:
        """Approximate ``percentile`` effective diameter via sampled BFS.

        Matches the 90-percentile effective diameter column ``d̄`` of the
        paper's Table 2 (computed on hop counts, ignoring weights).
        """
        from repro.utils.rng import as_rng

        if self.m == 0:
            return 0.0
        adj = self.adjacency_scipy()
        rng = as_rng(seed)
        sources = rng.choice(self.n, size=min(samples, self.n), replace=False)
        dists = scipy.sparse.csgraph.breadth_first_order  # noqa: F841 (doc aid)
        hops = scipy.sparse.csgraph.shortest_path(
            adj, method="D", unweighted=True, indices=sources, directed=self.directed
        )
        finite = hops[np.isfinite(hops)]
        finite = finite[finite > 0]
        if len(finite) == 0:
            return 0.0
        return float(np.quantile(finite, percentile))

    def diameter_hops(self, exact_limit: int = 2000, seed: int | None = 0) -> int:
        """Hop diameter of the (largest reachable part of the) graph.

        Exact for graphs up to ``exact_limit`` vertices; otherwise a sampled
        lower bound (sufficient for reports — Table 2's ``d`` column).
        """
        if self.m == 0:
            return 0
        adj = self.adjacency_scipy()
        if self.n <= exact_limit:
            hops = scipy.sparse.csgraph.shortest_path(
                adj, unweighted=True, directed=self.directed
            )
        else:
            from repro.utils.rng import as_rng

            rng = as_rng(seed)
            sources = rng.choice(self.n, size=32, replace=False)
            hops = scipy.sparse.csgraph.shortest_path(
                adj, unweighted=True, indices=sources, directed=self.directed
            )
        finite = hops[np.isfinite(hops)]
        return int(finite.max()) if len(finite) else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "directed" if self.directed else "undirected"
        w = "weighted" if self.weighted else "unweighted"
        label = f" {self.name!r}" if self.name else ""
        return f"Graph(n={self.n}, m={self.m}, {kind}, {w}{label})"
