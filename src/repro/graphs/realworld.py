"""Synthetic stand-ins for the paper's SNAP graphs (Table 2).

The paper benchmarks on four SNAP graphs — Friendster (frd), Orkut (ork),
LiveJournal (ljm), and the patent citation graph (cit).  Those datasets are
1.8B–16.5M edges and are not available offline, so we generate scaled-down
synthetic analogues that preserve the structural properties the paper's
per-graph performance effects hinge on:

* relative density ordering: ork ≫ ljm > cit (average degree 75 / 29 / 8.7);
* directedness: frd/ork undirected, ljm/cit directed;
* diameter regime: ork/ljm small-diameter social networks, cit a
  larger-diameter citation DAG-like graph (its large ``d`` is what makes it
  the hardest case in §7.2 and Table 3);
* heavy-tailed degree distributions for the social graphs (R-MAT body) and
  a flatter distribution for the citation graph.

The default scale factor reduces vertex counts ~256× so every experiment
runs on one machine; the knobs are exposed so users with more memory can
regenerate closer to paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.rmat import rmat_graph
from repro.graphs.preprocess import remove_isolated_vertices
from repro.utils.rng import as_rng

__all__ = ["SnapStandinSpec", "SNAP_STANDINS", "snap_standin"]


@dataclass(frozen=True)
class SnapStandinSpec:
    """Recipe for one SNAP stand-in graph.

    ``paper_n``/``paper_m``/``paper_d`` record the original graph's numbers
    from Table 2 for EXPERIMENTS.md comparisons.
    """

    graph_id: str
    title: str
    directed: bool
    scale: int  # log2 vertices at default size
    avg_degree: int
    diameter_stretch: int  # chain length multiplier for high-diameter graphs
    paper_n: float
    paper_m: float
    paper_d: int
    paper_deff: float


#: Stand-in recipes keyed by the paper's graph IDs.
SNAP_STANDINS: dict[str, SnapStandinSpec] = {
    "frd": SnapStandinSpec(
        "frd", "Friendster (stand-in)", False, 15, 55, 1, 65.6e6, 1.8e9, 32, 5.8
    ),
    "ork": SnapStandinSpec(
        "ork", "Orkut social network (stand-in)", False, 13, 75, 1, 3.1e6, 117e6, 9, 4.8
    ),
    "ljm": SnapStandinSpec(
        "ljm", "LiveJournal membership (stand-in)", True, 13, 29, 1, 4.8e6, 70e6, 16, 6.5
    ),
    "cit": SnapStandinSpec(
        "cit", "Patent citation graph (stand-in)", True, 12, 9, 4, 3.8e6, 16.5e6, 22, 9.4
    ),
}


def snap_standin(
    graph_id: str,
    *,
    scale_offset: int = 0,
    seed: int | np.random.Generator | None = 0,
) -> Graph:
    """Generate the stand-in for one of the paper's graphs.

    Parameters
    ----------
    graph_id:
        One of ``frd``, ``ork``, ``ljm``, ``cit`` (Table 2 IDs).
    scale_offset:
        Added to the recipe's log2 vertex count, e.g. ``-2`` for a 4× smaller
        test-sized graph, ``+2`` for a 4× larger one.
    seed:
        RNG seed or generator.
    """
    if graph_id not in SNAP_STANDINS:
        raise KeyError(
            f"unknown graph id {graph_id!r}; choose from {sorted(SNAP_STANDINS)}"
        )
    spec = SNAP_STANDINS[graph_id]
    rng = as_rng(seed)
    scale = max(spec.scale + scale_offset, 6)
    g = rmat_graph(
        scale,
        spec.avg_degree,
        directed=spec.directed,
        seed=rng,
        name=spec.graph_id,
    )
    if spec.diameter_stretch > 1:
        g = _stretch_diameter(g, spec.diameter_stretch, rng)
    g = remove_isolated_vertices(g)
    return Graph(g.n, g.src, g.dst, g.weight, directed=g.directed, name=spec.graph_id)


def _stretch_diameter(g: Graph, factor: int, rng: np.random.Generator) -> Graph:
    """Raise a graph's diameter by threading long paths through it.

    Citation graphs have much larger diameters than social networks at the
    same size.  We splice ``factor`` vertex-disjoint paths, each of length
    ``≈ factor · log2(n)``, whose interior vertices are new, and attach the
    endpoints to random existing vertices.  This adds a negligible number of
    edges but forces the BFS/Bellman-Ford frontier to run long and thin —
    exactly the behaviour that penalizes BC on the patent graph in §7.2.
    """
    path_len = max(2, factor * int(np.log2(max(g.n, 2))))
    npaths = factor
    new_vertices = npaths * path_len
    n_new = g.n + new_vertices
    src_parts = [g.src]
    dst_parts = [g.dst]
    next_id = g.n
    for _ in range(npaths):
        chain = np.arange(next_id, next_id + path_len, dtype=np.int64)
        next_id += path_len
        anchor_in = rng.integers(0, g.n)
        anchor_out = rng.integers(0, g.n)
        s = np.concatenate([[anchor_in], chain])
        t = np.concatenate([chain, [anchor_out]])
        src_parts.append(s)
        dst_parts.append(t)
    weight = None
    if g.weight is not None:
        extra = np.ones(sum(len(p) for p in src_parts[1:]), dtype=np.float64)
        weight = np.concatenate([g.weight, extra])
    return Graph(
        n_new,
        np.concatenate(src_parts),
        np.concatenate(dst_parts),
        weight,
        directed=g.directed,
        name=g.name,
    )
