"""R-MAT recursive-matrix graph generator (Chakrabarti et al., SDM'04).

The paper's synthetic power-law workloads (§7, Fig. 1c) are R-MAT graphs
parameterized by a scale ``S`` (``n ≈ 2^S`` vertices) and an average degree
``E``; we use the Graph500-style partition probabilities (a, b, c, d) =
(0.57, 0.19, 0.19, 0.05) by default, which produce the skewed degree
distributions characteristic of social networks.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive_int, require

__all__ = ["rmat_graph"]


def rmat_graph(
    scale: int,
    avg_degree: int,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    directed: bool = False,
    seed: int | np.random.Generator | None = None,
    name: str | None = None,
) -> Graph:
    """Generate an R-MAT graph with ``2**scale`` vertices.

    Parameters
    ----------
    scale:
        log2 of the vertex count (the paper's ``S``).
    avg_degree:
        Target average degree (the paper's ``E``); ``avg_degree * 2**scale / 2``
        undirected edge slots are sampled (half that many stored edges per
        endpoint, so the realized average degree ≈ ``avg_degree`` before
        dedup).  Duplicates and self-loops are removed by :class:`Graph`, so
        the realized degree is slightly below the target, as with any R-MAT
        sampler.
    a, b, c:
        Quadrant probabilities; ``d = 1 - a - b - c``.
    directed:
        Generate a directed graph (each sample is one arc).
    seed:
        RNG seed or generator.
    name:
        Label; defaults to ``rmat_s{scale}_e{avg_degree}``.
    """
    check_positive_int(scale, "scale")
    check_positive_int(avg_degree, "avg_degree")
    d = 1.0 - a - b - c
    require(min(a, b, c, d) >= 0.0, "quadrant probabilities must be non-negative")
    rng = as_rng(seed)
    n = 1 << scale
    nsamples = (avg_degree * n) if directed else (avg_degree * n) // 2
    src = np.zeros(nsamples, dtype=np.int64)
    dst = np.zeros(nsamples, dtype=np.int64)

    # Vectorized recursive descent: one random draw per bit level.
    p_src1 = c + d  # probability the source bit is 1 (lower half of matrix)
    for level in range(scale):
        u = rng.random(nsamples)
        bit_src = u >= (a + b)
        # conditional probability the dst bit is 1 given the src bit
        p_dst1_given = np.where(bit_src, d / max(c + d, 1e-300), b / max(a + b, 1e-300))
        v = rng.random(nsamples)
        bit_dst = v < p_dst1_given
        src = (src << 1) | bit_src
        dst = (dst << 1) | bit_dst
    _ = p_src1

    # Randomize vertex labels so block distributions are load balanced
    # (the paper's balls-into-bins assumption, §5.2).
    perm = rng.permutation(n)
    src = perm[src]
    dst = perm[dst]
    return Graph(
        n,
        src,
        dst,
        None,
        directed=directed,
        name=name if name is not None else f"rmat_s{scale}_e{avg_degree}",
    )
