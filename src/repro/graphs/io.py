"""Edge-list I/O in the SNAP text format, plus crash-safe streamed ingestion.

Files are whitespace-separated ``src dst [weight]`` lines; ``#`` lines are
comments.  Vertex IDs need not be contiguous — they are compacted on read,
matching how SNAP datasets are customarily loaded.

Two ingestion paths share one line parser:

* :func:`read_edgelist` — one-shot, chunked reads (peak memory bounded by
  the chunk size plus the final arrays), with malformed lines reported as
  ``file:line: malformed edge line '...'``.
* :func:`ingest_edgelist` / :func:`read_edgelist_streamed` — sharded
  ingestion for inputs that should not be re-read from scratch after a
  crash.  Edges land in ``.npz`` shards written atomically
  (:func:`~repro.faults.checkpoint.atomic_save_npz`), each CRC-32
  checksummed in a ``manifest.json`` that also records the source byte
  range per shard.  A crashed (or torn — the ``tear`` fault kind)
  ingest resumes from the last shard that verifies, re-reading only the
  bytes after it; the assembled graph is bit-identical to a one-shot read.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import zipfile
import zlib

import numpy as np

from repro.faults.checkpoint import atomic_save_npz
from repro.graphs.graph import Graph
from repro.obs import api as obs

__all__ = [
    "read_edgelist",
    "write_edgelist",
    "ingest_edgelist",
    "read_edgelist_streamed",
    "IngestError",
    "IngestManifest",
]

#: edges per parse chunk for the one-shot reader (bounds peak list memory)
_CHUNK_EDGES = 1 << 18
#: edges per shard for streamed ingestion
_SHARD_EDGES = 1 << 18
#: edges per formatting batch for the writer
_WRITE_BATCH = 1 << 16

_MANIFEST = "manifest.json"
_MANIFEST_VERSION = 1


class IngestError(ValueError):
    """A shard directory's manifest is unusable for the requested source."""


def write_edgelist(
    g: Graph, path: str | os.PathLike, *, batch: int = _WRITE_BATCH
) -> None:
    """Write ``g`` as a SNAP-style edge list (weights included if present).

    Lines are formatted in batches of ``batch`` edges and written with one
    ``write`` call per batch (the ``np.savetxt`` strategy) instead of one
    per edge.  Weights are emitted with shortest-round-trip ``repr``
    formatting, so a read-back reproduces them bit-exactly.
    """
    if batch <= 0:
        raise ValueError(f"batch must be positive, got {batch}")
    with open(path, "w") as fh:
        fh.write(f"# Nodes: {g.n} Edges: {g.m} Directed: {int(g.directed)}\n")
        for lo in range(0, g.m, batch):
            hi = min(lo + batch, g.m)
            src = g.src[lo:hi].tolist()
            dst = g.dst[lo:hi].tolist()
            if g.weight is None:
                lines = [f"{s}\t{d}" for s, d in zip(src, dst)]
            else:
                wts = g.weight[lo:hi].tolist()
                lines = [
                    f"{s}\t{d}\t{w!r}" for s, d, w in zip(src, dst, wts)
                ]
            fh.write("\n".join(lines) + "\n")


class _EdgeParser:
    """Shared line parser: accumulates edge chunks as compact arrays.

    Peak memory is one chunk of Python ints plus the already-frozen
    ``int64``/``float64`` arrays — never a Python list of every edge.
    """

    #: the header :func:`write_edgelist` emits (SNAP files carry a similar
    #: comment); when present, ``n`` and directedness survive a round trip
    #: even with isolated vertices
    _HEADER = re.compile(
        r"#\s*Nodes:\s*(\d+).*?(?:Directed:\s*(\d+))?\s*$"
    )

    def __init__(self, path: str, chunk_edges: int) -> None:
        self.path = path
        self.chunk_edges = chunk_edges
        self.src_parts: list[np.ndarray] = []
        self.dst_parts: list[np.ndarray] = []
        self.wt_parts: list[np.ndarray] = []
        self._srcs: list[int] = []
        self._dsts: list[int] = []
        self._wts: list[float] = []
        self.have_weights: bool | None = None
        self.edges = 0
        self.declared_n: int | None = None
        self.declared_directed: bool | None = None

    def feed(self, line: str, lineno: int) -> None:
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            m = self._HEADER.match(stripped)
            if m and self.declared_n is None:
                self.declared_n = int(m.group(1))
                if m.group(2) is not None:
                    self.declared_directed = bool(int(m.group(2)))
            return
        parts = stripped.split()
        if len(parts) < 2:
            raise ValueError(
                f"{self.path}:{lineno}: malformed edge line {stripped!r} "
                f"(expected 'src dst [weight]')"
            )
        try:
            s = int(parts[0])
            d = int(parts[1])
        except ValueError:
            raise ValueError(
                f"{self.path}:{lineno}: malformed edge line {stripped!r} "
                f"(endpoints must be integers)"
            ) from None
        if len(parts) >= 3:
            if self.have_weights is False:
                raise ValueError(
                    f"{self.path}:{lineno}: malformed edge line {stripped!r} "
                    f"(mixed weighted/unweighted lines: this line carries a "
                    f"weight, earlier lines do not)"
                )
            self.have_weights = True
            try:
                self._wts.append(float(parts[2]))
            except ValueError:
                raise ValueError(
                    f"{self.path}:{lineno}: malformed edge line {stripped!r} "
                    f"(weight must be a number)"
                ) from None
        else:
            if self.have_weights is True:
                raise ValueError(
                    f"{self.path}:{lineno}: malformed edge line {stripped!r} "
                    f"(mixed weighted/unweighted lines: earlier lines carry "
                    f"weights, this line does not)"
                )
            self.have_weights = False
        self._srcs.append(s)
        self._dsts.append(d)
        self.edges += 1
        if len(self._srcs) >= self.chunk_edges:
            self._freeze()

    def _freeze(self) -> None:
        if not self._srcs:
            return
        self.src_parts.append(np.asarray(self._srcs, dtype=np.int64))
        self.dst_parts.append(np.asarray(self._dsts, dtype=np.int64))
        self._srcs.clear()
        self._dsts.clear()
        if self._wts:
            self.wt_parts.append(np.asarray(self._wts, dtype=np.float64))
            self._wts.clear()

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        self._freeze()
        if not self.src_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), None
        src = np.concatenate(self.src_parts)
        dst = np.concatenate(self.dst_parts)
        wts = np.concatenate(self.wt_parts) if self.wt_parts else None
        self.src_parts.clear()
        self.dst_parts.clear()
        self.wt_parts.clear()
        return src, dst, wts


def _compact_graph(
    src: np.ndarray,
    dst: np.ndarray,
    weight: np.ndarray | None,
    *,
    directed: bool,
    name: str,
    declared_n: int | None = None,
) -> Graph:
    """Build a :class:`Graph`, compacting raw vertex IDs when necessary.

    A header-declared vertex count that covers every endpoint is trusted
    verbatim — IDs are kept and isolated vertices survive, so a
    :func:`write_edgelist` → :func:`read_edgelist` round trip is exact.
    Otherwise (SNAP-style arbitrary IDs) endpoints are compacted to
    ``0..n-1`` in sorted-ID order.
    """
    m = len(src)
    if m and declared_n is not None:
        lo = min(int(src.min()), int(dst.min()))
        hi = max(int(src.max()), int(dst.max()))
        if 0 <= lo and hi < declared_n:
            return Graph(
                declared_n, src, dst, weight, directed=directed, name=name
            )
    if m:
        ids, inverse = np.unique(
            np.concatenate([src, dst]), return_inverse=True
        )
        src = inverse[:m].astype(np.int64)
        dst = inverse[m:].astype(np.int64)
        n = len(ids)
    else:
        n = declared_n or 1
    return Graph(max(n, 1), src, dst, weight, directed=directed, name=name)


def read_edgelist(
    path: str | os.PathLike,
    *,
    directed: bool | None = None,
    name: str = "",
    chunk_edges: int = _CHUNK_EDGES,
) -> Graph:
    """Read a SNAP-style edge list.

    A ``# Nodes: N ... Directed: D`` header (as written by
    :func:`write_edgelist`) fixes the vertex count and — unless ``directed``
    is passed explicitly — the directedness; without one, vertex IDs are
    compacted to ``0..n-1`` in sorted-ID order and the graph defaults to
    undirected.  A third column, when present, is parsed as the edge
    weight.  Malformed input raises :class:`ValueError` naming the file,
    line number, and offending text.
    """
    path = os.fspath(path)
    parser = _EdgeParser(path, chunk_edges)
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            parser.feed(line, lineno)
    src, dst, weight = parser.arrays()
    if directed is None:
        directed = bool(parser.declared_directed)
    return _compact_graph(
        src,
        dst,
        weight,
        directed=directed,
        name=name,
        declared_n=parser.declared_n,
    )


# -- streamed, sharded ingestion ----------------------------------------------


class IngestManifest:
    """The durable record of a sharded ingest (see module docstring).

    ``shards`` entries record per shard: ``name``, ``edges``, ``weighted``,
    ``crc`` (CRC-32 over the shard's edge bytes), the source byte range
    ``[start_offset, end_offset)`` it was parsed from, and the 1-based
    ``start_lineno`` — enough to verify durability and to resume parsing
    right after the last shard that still verifies.
    """

    def __init__(self, directory: str, source: str) -> None:
        self.directory = directory
        self.source = source
        self.shards: list[dict] = []
        self.complete = False
        self.declared_n: int | None = None
        self.declared_directed: bool | None = None

    # -- persistence ---------------------------------------------------------

    @property
    def path(self) -> str:
        return os.path.join(self.directory, _MANIFEST)

    def save(self) -> None:
        payload = {
            "version": _MANIFEST_VERSION,
            "source": self.source,
            "complete": self.complete,
            "declared_n": self.declared_n,
            "declared_directed": self.declared_directed,
            "shards": self.shards,
        }
        tmp = self.path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(payload, fh, indent=1)
        os.replace(tmp, self.path)

    @classmethod
    def load(cls, directory: str) -> "IngestManifest | None":
        path = os.path.join(directory, _MANIFEST)
        if not os.path.exists(path):
            return None
        try:
            with open(path) as fh:
                payload = json.load(fh)
        except (ValueError, OSError):
            return None  # torn manifest: start over
        if payload.get("version") != _MANIFEST_VERSION:
            return None
        out = cls(directory, payload.get("source", ""))
        out.shards = list(payload.get("shards", []))
        out.complete = bool(payload.get("complete", False))
        out.declared_n = payload.get("declared_n")
        directed = payload.get("declared_directed")
        out.declared_directed = None if directed is None else bool(directed)
        return out

    # -- shard verification ---------------------------------------------------

    def shard_path(self, record: dict) -> str:
        return os.path.join(self.directory, record["name"])

    def load_shard(self, record: dict):
        """Load and CRC-verify one shard; ``None`` when torn/missing."""
        path = self.shard_path(record)
        if not os.path.exists(path):
            return None
        try:
            with np.load(path) as data:
                src = data["src"]
                dst = data["dst"]
                wts = data["wts"] if record.get("weighted") else None
        except (ValueError, KeyError, EOFError, OSError, zipfile.BadZipFile):
            return None
        if _edges_crc(src, dst, wts) != record["crc"]:
            return None
        return src, dst, wts

    def durable_prefix(self) -> int:
        """Number of leading shards that verify on disk right now."""
        for idx, record in enumerate(self.shards):
            if self.load_shard(record) is None:
                return idx
        return len(self.shards)


def _edges_crc(
    src: np.ndarray, dst: np.ndarray, wts: np.ndarray | None
) -> int:
    crc = zlib.crc32(np.ascontiguousarray(src).tobytes())
    crc = zlib.crc32(np.ascontiguousarray(dst).tobytes(), crc)
    if wts is not None:
        crc = zlib.crc32(np.ascontiguousarray(wts).tobytes(), crc)
    return crc


def _tear_shard(path: str) -> None:
    """Truncate a just-written shard mid-file (injected torn write)."""
    size = os.path.getsize(path)
    with open(path, "r+b") as fh:
        fh.truncate(max(size // 2, 1))


def ingest_edgelist(
    path: str | os.PathLike,
    shard_dir: str | os.PathLike,
    *,
    shard_edges: int = _SHARD_EDGES,
    faults=None,
) -> IngestManifest:
    """Stream ``path`` into CRC-checksummed ``.npz`` edge shards.

    Peak memory is bounded by one shard (``shard_edges`` edges) regardless
    of input size.  The per-shard manifest makes the ingest crash-safe:
    rerunning after an interruption (or a torn shard write — the ``tear``
    fault kind fires here when a :class:`~repro.faults.FaultPlan` is
    passed) verifies the existing shards and resumes parsing at the byte
    offset right after the last durable one.  Already-complete manifests
    whose shards all verify return immediately.
    """
    path = os.fspath(path)
    shard_dir = os.fspath(shard_dir)
    os.makedirs(shard_dir, exist_ok=True)
    if shard_edges <= 0:
        raise ValueError(f"shard_edges must be positive, got {shard_edges}")

    manifest = IngestManifest.load(shard_dir)
    if manifest is not None and manifest.source != path:
        raise IngestError(
            f"shard directory {shard_dir!r} holds an ingest of "
            f"{manifest.source!r}, not {path!r}"
        )
    resumed = False
    if manifest is None:
        manifest = IngestManifest(shard_dir, path)
    else:
        durable = manifest.durable_prefix()
        torn = len(manifest.shards) - durable
        if manifest.complete and torn == 0:
            return manifest
        resumed = True
        if faults is not None:
            faults.note(
                "tear" if torn else "crash",
                "detected",
                site="ingest",
                durable_shards=durable,
                torn_shards=torn,
            )
        elif obs.enabled():
            obs.count("ingest.resumes", 1.0, torn=str(bool(torn)))
        manifest.shards = manifest.shards[:durable]
        manifest.complete = False

    if manifest.shards:
        last = manifest.shards[-1]
        offset = int(last["end_offset"])
        lineno = int(last["end_lineno"])
        weighted = bool(last["weighted"])
    else:
        offset = 0
        lineno = 0
        weighted = None

    parser = _EdgeParser(path, shard_edges)
    parser.have_weights = weighted
    shard_start_offset = offset
    shard_start_lineno = lineno + 1

    def flush_shard(end_offset: int, end_lineno: int) -> None:
        nonlocal shard_start_offset, shard_start_lineno
        src, dst, wts = parser.arrays()
        if not len(src):
            shard_start_offset = end_offset
            shard_start_lineno = end_lineno + 1
            return
        name = f"shard-{len(manifest.shards):05d}.npz"
        spath = os.path.join(shard_dir, name)
        arrays = {"src": src, "dst": dst}
        if wts is not None:
            arrays["wts"] = wts
        atomic_save_npz(spath, arrays)
        if faults is not None and faults.take_tear("ingest"):
            faults.note("tear", "injected", site="ingest", shard=name)
            _tear_shard(spath)
        record = {
            "name": name,
            "edges": int(len(src)),
            "weighted": wts is not None,
            "crc": _edges_crc(src, dst, wts),
            "start_offset": int(shard_start_offset),
            "end_offset": int(end_offset),
            "start_lineno": int(shard_start_lineno),
            "end_lineno": int(end_lineno),
        }
        manifest.shards.append(record)
        manifest.save()
        if obs.enabled():
            obs.count("ingest.shards", 1.0)
            obs.count("ingest.edges", float(record["edges"]))
        shard_start_offset = end_offset
        shard_start_lineno = end_lineno + 1

    with open(path, "rb") as fh:
        fh.seek(offset)
        while True:
            raw = fh.readline()
            if not raw:
                break
            lineno += 1
            parser.feed(raw.decode("utf-8", errors="replace"), lineno)
            if parser.edges and parser.edges % shard_edges == 0:
                flush_shard(fh.tell(), lineno)
                parser.edges = 0
        flush_shard(fh.tell(), lineno)
    # the header lives on line 1, so only a fresh (non-resumed) parse sees
    # it — a resumed manifest keeps the values recorded by the first run
    if parser.declared_n is not None:
        manifest.declared_n = parser.declared_n
    if parser.declared_directed is not None:
        manifest.declared_directed = parser.declared_directed

    # self-heal: a shard torn *this* run (injected after the atomic rename)
    # is caught by the final verification sweep and re-ingested from its
    # recorded source byte range before the manifest goes complete
    for idx, record in enumerate(manifest.shards):
        if manifest.load_shard(record) is not None:
            continue
        if faults is not None:
            faults.note("tear", "detected", site="ingest", shard=record["name"])
        elif obs.enabled():
            obs.count("ingest.torn_shards", 1.0)
        reparser = _EdgeParser(path, shard_edges)
        reparser.have_weights = record["weighted"] or None
        with open(path, "rb") as fh:
            fh.seek(int(record["start_offset"]))
            relineno = int(record["start_lineno"]) - 1
            while fh.tell() < int(record["end_offset"]):
                raw = fh.readline()
                if not raw:
                    break
                relineno += 1
                reparser.feed(raw.decode("utf-8", errors="replace"), relineno)
        src, dst, wts = reparser.arrays()
        arrays = {"src": src, "dst": dst}
        if wts is not None:
            arrays["wts"] = wts
        atomic_save_npz(manifest.shard_path(record), arrays)
        record["crc"] = _edges_crc(src, dst, wts)
        record["edges"] = int(len(src))
        manifest.shards[idx] = record
        if faults is not None:
            faults.note("tear", "recovered", site="ingest", shard=record["name"])
        elif obs.enabled():
            obs.count("ingest.healed_shards", 1.0)
    manifest.complete = True
    manifest.save()
    if resumed and faults is not None:
        faults.note(
            "crash", "recovered", site="ingest", shards=len(manifest.shards)
        )
    return manifest


def read_edgelist_streamed(
    path: str | os.PathLike,
    *,
    shard_dir: str | os.PathLike | None = None,
    directed: bool | None = None,
    name: str = "",
    shard_edges: int = _SHARD_EDGES,
    faults=None,
) -> Graph:
    """Read an edge list through the sharded ingest path.

    Equivalent to :func:`read_edgelist` (bit-identical graph), but parsing
    goes through :func:`ingest_edgelist` first: with a persistent
    ``shard_dir`` an interrupted read is resumed instead of restarted, and
    a repeated read skips parsing entirely.  ``shard_dir=None`` uses a
    throwaway temporary directory (still bounds peak parse memory).
    """
    if shard_dir is None:
        with tempfile.TemporaryDirectory(prefix="repro-ingest-") as tmp:
            manifest = ingest_edgelist(
                path, tmp, shard_edges=shard_edges, faults=faults
            )
            return _graph_from_manifest(
                manifest, directed=directed, name=name
            )
    manifest = ingest_edgelist(
        path, shard_dir, shard_edges=shard_edges, faults=faults
    )
    return _graph_from_manifest(manifest, directed=directed, name=name)


def _graph_from_manifest(
    manifest: IngestManifest, *, directed: bool | None, name: str
) -> Graph:
    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    wt_parts: list[np.ndarray] = []
    weighted = False
    for record in manifest.shards:
        loaded = manifest.load_shard(record)
        if loaded is None:
            raise IngestError(
                f"shard {record['name']!r} failed verification after a "
                f"completed ingest (corrupt at rest?)"
            )
        src, dst, wts = loaded
        src_parts.append(src)
        dst_parts.append(dst)
        if wts is not None:
            weighted = True
            wt_parts.append(wts)
    if src_parts:
        src = np.concatenate(src_parts)
        dst = np.concatenate(dst_parts)
        wts = np.concatenate(wt_parts) if weighted else None
    else:
        src = np.empty(0, dtype=np.int64)
        dst = np.empty(0, dtype=np.int64)
        wts = None
    if directed is None:
        directed = bool(manifest.declared_directed)
    return _compact_graph(
        src,
        dst,
        wts,
        directed=directed,
        name=name,
        declared_n=manifest.declared_n,
    )
