"""Edge-list I/O in the SNAP text format.

Files are whitespace-separated ``src dst [weight]`` lines; ``#`` lines are
comments.  Vertex IDs need not be contiguous — they are compacted on read,
matching how SNAP datasets are customarily loaded.
"""

from __future__ import annotations

import os

import numpy as np

from repro.graphs.graph import Graph

__all__ = ["read_edgelist", "write_edgelist"]


def write_edgelist(g: Graph, path: str | os.PathLike) -> None:
    """Write ``g`` as a SNAP-style edge list (weights included if present)."""
    with open(path, "w") as fh:
        fh.write(f"# Nodes: {g.n} Edges: {g.m} Directed: {int(g.directed)}\n")
        if g.weight is None:
            for s, d in zip(g.src.tolist(), g.dst.tolist()):
                fh.write(f"{s}\t{d}\n")
        else:
            for s, d, w in zip(g.src.tolist(), g.dst.tolist(), g.weight.tolist()):
                fh.write(f"{s}\t{d}\t{w:g}\n")


def read_edgelist(
    path: str | os.PathLike,
    *,
    directed: bool = False,
    name: str = "",
) -> Graph:
    """Read a SNAP-style edge list.

    Vertex IDs are compacted to ``0..n-1`` preserving order of first
    appearance by sorted ID.  A third column, when present, is parsed as the
    edge weight.
    """
    srcs: list[int] = []
    dsts: list[int] = []
    wts: list[float] = []
    have_weights = False
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"malformed edge line: {line!r}")
            srcs.append(int(parts[0]))
            dsts.append(int(parts[1]))
            if len(parts) >= 3:
                have_weights = True
                wts.append(float(parts[2]))
            elif have_weights:
                raise ValueError("mixed weighted/unweighted lines")
    src = np.asarray(srcs, dtype=np.int64)
    dst = np.asarray(dsts, dtype=np.int64)
    ids = np.unique(np.concatenate([src, dst])) if len(src) else np.empty(0, np.int64)
    lookup = {int(v): i for i, v in enumerate(ids)}
    src = np.asarray([lookup[int(v)] for v in src], dtype=np.int64)
    dst = np.asarray([lookup[int(v)] for v in dst], dtype=np.int64)
    n = max(len(ids), 1)
    weight = np.asarray(wts, dtype=np.float64) if have_weights else None
    return Graph(n, src, dst, weight, directed=directed, name=name)
