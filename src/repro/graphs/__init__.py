"""Graph substrate: representation, generators, preprocessing, and I/O.

The paper evaluates on three graph families (§7): real-world SNAP graphs,
synthetic R-MAT (power-law) graphs, and Erdős–Rényi/uniform random graphs.
This package provides all three — the SNAP graphs as scaled-down synthetic
stand-ins with matched structural character (see DESIGN.md substitutions) —
plus the preprocessing the paper applies (disconnected-vertex removal).
"""

from repro.graphs.graph import Graph
from repro.graphs.rmat import rmat_graph
from repro.graphs.random_uniform import (
    uniform_random_graph,
    uniform_random_graph_nm,
)
from repro.graphs.realworld import SNAP_STANDINS, snap_standin
from repro.graphs.preprocess import (
    largest_connected_component,
    randomize_vertex_order,
    remove_isolated_vertices,
)
from repro.graphs.weights import with_random_weights
from repro.graphs.io import (
    IngestError,
    IngestManifest,
    ingest_edgelist,
    read_edgelist,
    read_edgelist_streamed,
    write_edgelist,
)

__all__ = [
    "Graph",
    "rmat_graph",
    "uniform_random_graph",
    "uniform_random_graph_nm",
    "SNAP_STANDINS",
    "snap_standin",
    "remove_isolated_vertices",
    "largest_connected_component",
    "randomize_vertex_order",
    "with_random_weights",
    "read_edgelist",
    "write_edgelist",
    "read_edgelist_streamed",
    "ingest_edgelist",
    "IngestError",
    "IngestManifest",
]
