"""Erdős–Rényi / uniform random graph generators.

The paper's weak-scaling experiments (§7.3, Fig. 2) use uniform random
graphs where every vertex has the same expected degree and every edge exists
with uniform probability.  Two parameterizations are provided, matching the
two weak-scaling modes:

* :func:`uniform_random_graph` — ``G(n, f)``: edge *fraction* ``f`` of the
  n² possible entries (edge weak scaling holds n²/p and f constant);
* :func:`uniform_random_graph_nm` — ``G(n, k)``: average *degree* ``k``
  (vertex weak scaling holds n/p and k constant).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive_int, check_probability

__all__ = ["uniform_random_graph", "uniform_random_graph_nm"]


def _sample_edges(
    n: int, nedges: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``nedges`` endpoint pairs uniformly (with replacement).

    Duplicates/self-loops are pruned by :class:`Graph`; for the sparse
    regimes used here the loss is a vanishing fraction, mirroring how
    G(n, m) samplers are used in practice.
    """
    src = rng.integers(0, n, size=nedges, dtype=np.int64)
    dst = rng.integers(0, n, size=nedges, dtype=np.int64)
    return src, dst


def uniform_random_graph(
    n: int,
    edge_fraction: float,
    *,
    directed: bool = False,
    seed: int | np.random.Generator | None = None,
    name: str | None = None,
) -> Graph:
    """``G(n, f)``: adjacency density ``f = m / n²`` (the paper's
    ``f = 100·m/n²`` percentage, here as a fraction)."""
    check_positive_int(n, "n")
    check_probability(edge_fraction, "edge_fraction")
    rng = as_rng(seed)
    target_nnz = edge_fraction * float(n) * float(n)
    nedges = int(round(target_nnz if directed else target_nnz / 2.0))
    src, dst = _sample_edges(n, nedges, rng)
    return Graph(
        n,
        src,
        dst,
        None,
        directed=directed,
        name=name if name is not None else f"uniform_n{n}_f{edge_fraction:g}",
    )


def uniform_random_graph_nm(
    n: int,
    avg_degree: float,
    *,
    directed: bool = False,
    seed: int | np.random.Generator | None = None,
    name: str | None = None,
) -> Graph:
    """``G(n, k)``: average degree ``k = m / n`` (vertex weak scaling)."""
    check_positive_int(n, "n")
    if avg_degree <= 0:
        raise ValueError(f"avg_degree must be positive, got {avg_degree}")
    rng = as_rng(seed)
    total_endpoint_slots = avg_degree * n
    nedges = int(round(total_endpoint_slots if directed else total_endpoint_slots / 2.0))
    src, dst = _sample_edges(n, nedges, rng)
    return Graph(
        n,
        src,
        dst,
        None,
        directed=directed,
        name=name if name is not None else f"uniform_n{n}_k{avg_degree:g}",
    )
