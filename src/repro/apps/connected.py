"""Connected components via algebraic min-label propagation.

Every vertex starts labeled with its own id; each round propagates the
minimum label across edges (a generalized product over the min monoid with
the "take the neighbour's label" action) until no label changes.  The number
of rounds is bounded by the largest component's diameter.
"""

from __future__ import annotations

import numpy as np

from repro.algebra.monoid import MinMonoid
from repro.algebra.semiring import Semiring, left_project
from repro.core.engine import Engine, SequentialEngine
from repro.graphs.graph import Graph

__all__ = ["connected_components"]

_MIN = MinMonoid()
#: action: a frontier label crosses an edge unchanged — the (min, left)
#: semiring, named so the kernel-dispatch tier recognizes it
_SPEC = Semiring(
    add_monoid=_MIN, multiply=left_project, name="cc"
).matmul_spec()


def connected_components(
    graph: Graph,
    *,
    engine: Engine | None = None,
) -> np.ndarray:
    """Component labels (the smallest vertex id in each component).

    Directed graphs are treated as their underlying undirected graph
    (weak components).
    """
    engine = engine or SequentialEngine()
    n = graph.n
    # symmetrize: weak connectivity
    und = Graph(n, graph.src, graph.dst, None, directed=False, name=graph.name)
    adj = engine.adjacency(und)

    ids = np.arange(n, dtype=np.int64)
    labels = engine.matrix(
        1,
        n,
        np.zeros(n, dtype=np.int64),
        ids,
        {"w": ids.astype(np.float64)},
        _MIN,
    )
    frontier = labels
    for _ in range(n + 1):
        if frontier.nnz == 0:
            out = engine.gather(labels).to_dense("w")[0]
            # isolated vertices keep their own id (their row is its label)
            return out.astype(np.int64)
        product, _ = engine.spgemm(frontier, adj, _SPEC)
        # keep only strict improvements (smaller labels)
        frontier = product.zip_filter(labels, lambda pv, lv: pv["w"] < lv["w"])
        labels = labels.combine(frontier)
    raise RuntimeError("label propagation failed to converge")
