"""Other graph algorithms on the MFBC machinery.

The paper's conclusion: "The algebraic formalism we use for propagating
information through graphs enables intuitive expression of frontiers and
edge relaxations, making it extensible to other graph problems."  This
package demonstrates that extensibility: each algorithm here is a few dozen
lines over the same monoid + generalized-SpGEMM + engine stack, and runs
unchanged on the sequential engine or the simulated distributed machine.

* :func:`~repro.apps.bfs.bfs_levels` — the §2.3 introductory example:
  level-synchronous BFS over the tropical monoid;
* :func:`~repro.apps.sssp.sssp_distances` — frontier-driven Bellman-Ford
  (MFBF without multiplicities);
* :func:`~repro.apps.connected.connected_components` — min-label
  propagation to a fixpoint;
* :func:`~repro.apps.triangles.triangle_count` — masked A² over (+, ×);
* :func:`~repro.apps.widest_path.widest_path_widths` — bottleneck/widest
  paths over the max-min algebra (toward the max-flow extensions the
  conclusion names).
"""

from repro.apps.bfs import bfs_levels
from repro.apps.connected import connected_components
from repro.apps.sssp import sssp_distances
from repro.apps.triangles import triangle_count
from repro.apps.widest_path import widest_path_widths

__all__ = [
    "bfs_levels",
    "sssp_distances",
    "connected_components",
    "triangle_count",
    "widest_path_widths",
]
