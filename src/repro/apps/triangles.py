"""Triangle counting via masked sparse matrix multiplication.

A classic SpGEMM application: with a 0/1 adjacency matrix ``B``,
``(B²)(i,j)`` counts the 2-paths from i to j; masking by the adjacency and
summing counts every triangle six times (ordered vertex pairs of each
triangle).  Runs through the same generalized-matmul stack as MFBC.
"""

from __future__ import annotations

from repro.algebra.semiring import REAL_PLUS_TIMES
from repro.core.engine import Engine, SequentialEngine
from repro.graphs.graph import Graph

__all__ = ["triangle_count"]

_SPEC = REAL_PLUS_TIMES.matmul_spec()


def triangle_count(graph: Graph, *, engine: Engine | None = None) -> int:
    """Number of triangles in the (undirected view of the) graph."""
    engine = engine or SequentialEngine()
    und = Graph(
        graph.n, graph.src, graph.dst, None, directed=False, name=graph.name
    )
    # adjacency over (+, ×): all stored weights are 1 for unweighted graphs
    from repro.algebra.monoid import PlusMonoid

    plus = PlusMonoid()
    base = und.adjacency()
    ones = engine.matrix(
        graph.n, graph.n, base.rows, base.cols, {"w": base.vals["w"] * 0 + 1.0}, plus
    )
    two_paths, _ = engine.spgemm(ones, ones, _SPEC)
    wedges_on_edges = two_paths.zip_filter(ones, lambda pv, av: av["w"] > 0)
    local = engine.gather(wedges_on_edges)
    total = float(local.vals["w"].sum()) if local.nnz else 0.0
    return int(round(total / 6.0))
