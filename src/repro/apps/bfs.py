"""Algebraic breadth-first search (the paper's §2.3 example).

BFS from a batch of roots is iterated multiplication of a sparse frontier
with the adjacency matrix over the tropical monoid ``(W, min)`` with the
``+`` action; the frontier retains only vertices whose distance was just
set (the "screening" step of §2.3).
"""

from __future__ import annotations

import numpy as np

from repro.algebra.monoid import MinMonoid
from repro.algebra.semiring import TROPICAL
from repro.core.engine import Engine, SequentialEngine
from repro.graphs.graph import Graph

__all__ = ["bfs_levels"]

_MIN = MinMonoid()
# min-plus as a named semiring action so the kernel-dispatch tier
# recognizes it (and repro.check can serialize it by name)
_SPEC = TROPICAL.matmul_spec(name="bfs")


def bfs_levels(
    graph: Graph,
    sources: np.ndarray | list[int],
    *,
    engine: Engine | None = None,
    adj=None,
) -> np.ndarray:
    """Hop distances from each source to every vertex.

    Returns a dense ``len(sources) × n`` float array; unreachable entries
    are ``inf``.  Edge weights are ignored (every edge counts one hop).
    ``adj`` optionally supplies a pre-built *unweighted* adjacency matrix in
    the engine's representation (the serving layer pins one per graph
    version so repeated queries skip redistribution).
    """
    engine = engine or SequentialEngine()
    sources = np.asarray(sources, dtype=np.int64)
    if len(sources) == 0:
        raise ValueError("empty source list")
    if adj is None:
        adj = engine.adjacency(graph.unweighted())
    n = graph.n
    nb = len(sources)

    levels = engine.matrix(
        nb,
        n,
        np.arange(nb, dtype=np.int64),
        sources,
        {"w": np.zeros(nb)},
        _MIN,
    )
    frontier = levels
    for _ in range(n + 1):
        if frontier.nnz == 0:
            return engine.gather(levels).to_dense("w")
        # screen (§2.3) as a complemented mask: a BFS label, once set, is
        # final, so only unlabeled vertices can join the frontier — and
        # their products are never even formed
        frontier, _ = engine.spgemm(
            frontier, adj, _SPEC, mask=levels, mask_complement=True
        )
        levels = levels.combine(frontier)
    raise RuntimeError("BFS failed to converge — inconsistent adjacency")
