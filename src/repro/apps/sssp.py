"""Algebraic single-source shortest paths: MFBF without multiplicities.

Frontier-driven Bellman-Ford over the tropical monoid — the distance half
of Algorithm 1, usable on its own when path counts are not needed (e.g. as
the relaxation core for routing or max-flow style applications).
"""

from __future__ import annotations

import numpy as np

from repro.algebra.monoid import MinMonoid
from repro.algebra.semiring import TROPICAL
from repro.core.engine import Engine, SequentialEngine
from repro.graphs.graph import Graph

__all__ = ["sssp_distances"]

_MIN = MinMonoid()
# min-plus as a named semiring action so the kernel-dispatch tier
# recognizes it (Bellman-Ford relaxations may *improve* stored distances,
# so — unlike BFS — the product is deliberately not masked)
_SPEC = TROPICAL.matmul_spec(name="sssp")


def sssp_distances(
    graph: Graph,
    sources: np.ndarray | list[int],
    *,
    engine: Engine | None = None,
    max_iterations: int | None = None,
    adj=None,
) -> np.ndarray:
    """Shortest-path distances from each source (weighted; positive weights).

    Returns a dense ``len(sources) × n`` float array with ``inf`` for
    unreachable vertices.  ``adj`` optionally supplies a pre-built adjacency
    matrix in the engine's representation (skips redistribution).
    """
    engine = engine or SequentialEngine()
    sources = np.asarray(sources, dtype=np.int64)
    if len(sources) == 0:
        raise ValueError("empty source list")
    if adj is None:
        adj = engine.adjacency(graph)
    n = graph.n
    nb = len(sources)
    if max_iterations is None:
        max_iterations = n + 1

    dist = engine.matrix(
        nb,
        n,
        np.arange(nb, dtype=np.int64),
        sources,
        {"w": np.zeros(nb)},
        _MIN,
    )
    frontier = dist
    for _ in range(max_iterations):
        if frontier.nnz == 0:
            return engine.gather(dist).to_dense("w")
        product, _ = engine.spgemm(frontier, adj, _SPEC)
        # relaxations that strictly improve the tentative distance
        frontier = product.zip_filter(dist, lambda pv, dv: pv["w"] < dv["w"])
        dist = dist.combine(frontier)
    raise RuntimeError(
        "Bellman-Ford did not converge: non-positive-weight cycle?"
    )
