"""Widest (bottleneck) paths: the max-min "semiring" as a monoid + action.

A step toward the maximum-flow extensions the paper's conclusion invites:
the *widest path* from s to t maximizes the minimum edge capacity along the
path — the capacity of the best single augmenting path.  Algebraically it is
frontier relaxation over the max monoid with the min action

    relax(width, capacity) = min(width, capacity),   combine = max

which drops straight into the same machinery as MFBF.
"""

from __future__ import annotations

import numpy as np

from repro.algebra.monoid import MaxMonoid
from repro.algebra.semiring import MAX_MIN
from repro.core.engine import Engine, SequentialEngine
from repro.graphs.graph import Graph

__all__ = ["widest_path_widths"]

_MAX = MaxMonoid()
# max-min as a named semiring action so the kernel-dispatch tier
# recognizes it (relaxations may widen stored entries: not maskable)
_SPEC = MAX_MIN.matmul_spec(name="widest")


def widest_path_widths(
    graph: Graph,
    sources: np.ndarray | list[int],
    *,
    engine: Engine | None = None,
    max_iterations: int | None = None,
    adj=None,
) -> np.ndarray:
    """Bottleneck capacity of the widest path from each source to every
    vertex (edge weights are the capacities).

    Returns a dense ``len(sources) × n`` array; unreachable entries are
    ``−inf``, and each source's own entry is ``+inf`` (the empty path has
    unbounded capacity).  ``adj`` optionally supplies a pre-built adjacency
    matrix in the engine's representation (skips redistribution).
    """
    engine = engine or SequentialEngine()
    sources = np.asarray(sources, dtype=np.int64)
    if len(sources) == 0:
        raise ValueError("empty source list")
    if adj is None:
        adj = engine.adjacency(graph)
    n = graph.n
    nb = len(sources)
    if max_iterations is None:
        max_iterations = n + 1

    width = engine.matrix(
        nb,
        n,
        np.arange(nb, dtype=np.int64),
        sources,
        {"w": np.full(nb, np.inf)},
        _MAX,
    )
    frontier = width
    for _ in range(max_iterations):
        if frontier.nnz == 0:
            return engine.gather(width).to_dense("w")
        product, _ = engine.spgemm(frontier, adj, _SPEC)
        # keep only strict improvements (wider bottlenecks)
        frontier = product.zip_filter(width, lambda pv, wv: pv["w"] > wv["w"])
        width = width.combine(frontier)
    raise RuntimeError("widest-path relaxation failed to converge")
