"""Entry point for ``python -m repro``."""

import sys

from repro.cli import main

__all__ = ["main"]

sys.exit(main())
