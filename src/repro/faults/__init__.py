"""repro.faults — deterministic fault injection and fault tolerance.

The injection half lives in :mod:`repro.faults.plan`: a seeded
:class:`FaultPlan` threaded through the machine, the collectives, and the
local executors (rank crashes, payload corruption, stragglers, worker-pool
death, memory pressure), every event recorded as a structured
:class:`FaultEvent` on the ``repro.obs`` streams.

The tolerance half lives in :mod:`repro.faults.checkpoint` (per-batch
checkpoint/restart stores for the MFBC driver) and in the consumers: the
``mfbc`` retry loop (``retries=``/``resume_from=``) and the executors'
graceful degradation chain (process → thread → serial).

See ``docs/robustness.md`` for the fault model and walkthroughs.
"""

from repro.faults.checkpoint import (
    CheckpointState,
    CheckpointStore,
    CorruptCheckpoint,
    JsonCheckpointStore,
    MemoryCheckpointStore,
    NpzCheckpointStore,
    resolve_checkpoint_store,
    sources_checksum,
    stats_from_dicts,
    stats_to_dicts,
)
from repro.faults.plan import (
    FAULTS_ENV,
    CorruptPayload,
    DeadlineExceeded,
    FaultError,
    FaultEvent,
    FaultPlan,
    RankFailure,
    ScriptedFault,
    WorkerPoolDied,
    corrupt_copy,
    format_fault_report,
    payload_checksum,
    resolve_fault_plan,
)

__all__ = [
    # plan / injection
    "FAULTS_ENV",
    "FaultPlan",
    "FaultEvent",
    "ScriptedFault",
    "FaultError",
    "RankFailure",
    "CorruptPayload",
    "WorkerPoolDied",
    "DeadlineExceeded",
    "resolve_fault_plan",
    "corrupt_copy",
    "payload_checksum",
    "format_fault_report",
    # checkpoint / restart
    "CheckpointState",
    "CheckpointStore",
    "CorruptCheckpoint",
    "MemoryCheckpointStore",
    "JsonCheckpointStore",
    "NpzCheckpointStore",
    "resolve_checkpoint_store",
    "sources_checksum",
    "stats_to_dicts",
    "stats_from_dicts",
]
