"""Per-batch checkpoint/restart for the MFBC driver.

The batched structure of Algorithm 3 is a natural checkpoint boundary:
after each batch the driver's entire mutable state is the accumulated
score vector, the source cursor, and the run statistics.  A
:class:`CheckpointStore` persists exactly that as a :class:`CheckpointState`,
and ``mfbc(..., resume_from=store)`` replays only the remaining batches —
with scores bit-identical to an uninterrupted run, because batch partial
sums are accumulated in the same order either way.

Three stores cover the practical deployments:

* :class:`MemoryCheckpointStore` — in-process (tests, notebook retries);
* :class:`JsonCheckpointStore` — a human-readable JSON file.  Floats
  round-trip exactly (``json`` emits ``repr`` shortest-round-trip
  literals), so resumed scores stay bit-identical;
* :class:`NpzCheckpointStore` — a NumPy ``.npz`` archive for large score
  vectors (binary-exact by construction).

File-backed stores write atomically (temp file + ``os.replace``) so a
crash *during* checkpointing never corrupts the previous checkpoint, and
they are hardened against corruption *at rest*: the score vector carries a
CRC-32 verified on load, each save rotates the previous file into a
numbered older generation (``path.1``, ``path.2``, ... up to ``keep``),
and ``load`` falls back to the newest generation that verifies — raising
:class:`CorruptCheckpoint` (a ``ValueError``) only when every generation
is torn, truncated, version-incompatible, or checksum-broken.
"""

from __future__ import annotations

import json
import os
import warnings
import zipfile
import zlib
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "CheckpointState",
    "CheckpointStore",
    "CorruptCheckpoint",
    "MemoryCheckpointStore",
    "JsonCheckpointStore",
    "NpzCheckpointStore",
    "atomic_save_npz",
    "resolve_checkpoint_store",
    "sources_checksum",
    "stats_to_dicts",
    "stats_from_dicts",
]


def atomic_save_npz(path, arrays: dict, meta: dict | None = None) -> None:
    """Write ``arrays`` (plus an optional JSON ``meta`` blob under the key
    ``"meta"``, stored as a uint8 array) to ``path`` atomically.

    The write goes to ``path + ".tmp"`` and lands with ``os.replace``, so a
    crash mid-write never corrupts an existing file.  Shared by the NPZ
    checkpoint store and :mod:`repro.check.replay`'s repro-case emitter.
    """
    path = os.fspath(path)
    payload = dict(arrays)
    if meta is not None:
        payload["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    tmp = f"{path}.tmp"
    try:
        with open(tmp, "wb") as fh:
            np.savez(fh, **payload)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):  # failed mid-write; don't leave litter
            os.remove(tmp)

#: bump when the persisted layout changes incompatibly.
#: v2 added ``scores_crc`` (load-time integrity check); v3 added the
#: optional ``sampler`` blob (adaptive-sampling state, see
#: :mod:`repro.core.approx`).  v1/v2 files — the same layout minus those
#: fields — still load.
CHECKPOINT_VERSION = 3

_COMPATIBLE_VERSIONS = (1, 2, 3)


class CorruptCheckpoint(ValueError):
    """Every on-disk checkpoint generation failed to load.

    Carries the per-generation failure reasons (torn file, CRC mismatch,
    unsupported checkpoint version, ...) so the operator can tell *why*
    the run cannot resume.
    """

    def __init__(self, path: str, errors: list[tuple[str, str]]) -> None:
        self.path = path
        self.errors = list(errors)
        detail = "; ".join(
            f"{os.path.basename(p)}: {msg}" for p, msg in self.errors
        )
        super().__init__(f"no loadable checkpoint at {path!r}: {detail}")


def sources_checksum(sources: np.ndarray) -> int:
    """CRC-32 of the source list — guards a resume against the wrong run."""
    return zlib.crc32(np.ascontiguousarray(sources, dtype=np.int64).tobytes())


def _scores_checksum(scores: np.ndarray) -> int:
    """CRC-32 of the float64 score bytes — detects at-rest corruption."""
    return zlib.crc32(np.ascontiguousarray(scores, dtype=np.float64).tobytes())


@dataclass
class CheckpointState:
    """Everything ``mfbc`` needs to continue after batch ``batch_index - 1``."""

    cursor: int  # next offset into the source list
    batch_index: int  # batches completed so far (== next batch's index)
    batch_size: int
    n: int  # graph vertices (compatibility check)
    sources_crc: int  # checksum of the full source list
    scores: np.ndarray  # accumulated λ over completed batches
    stats: list = field(default_factory=list)  # serialized BatchStats rows
    #: adaptive-sampling state (sums / sums-of-squares per shard, see
    #: :meth:`repro.core.approx.SamplerState.to_payload`); ``None`` for
    #: plain mfbc runs.  JSON floats round-trip exactly, so a restored
    #: sampler resumes bit-identically.
    sampler: dict | None = None
    version: int = CHECKPOINT_VERSION

    def to_payload(self) -> dict:
        """JSON-compatible dict (scores as a list of floats, plus CRC)."""
        return {
            "version": self.version,
            "cursor": int(self.cursor),
            "batch_index": int(self.batch_index),
            "batch_size": int(self.batch_size),
            "n": int(self.n),
            "sources_crc": int(self.sources_crc),
            "scores_crc": _scores_checksum(np.asarray(self.scores)),
            "scores": [float(x) for x in self.scores],
            "stats": self.stats,
            "sampler": self.sampler,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CheckpointState":
        version = int(payload.get("version", -1))
        if version not in _COMPATIBLE_VERSIONS:
            raise ValueError(
                f"unsupported checkpoint version {version} "
                f"(this build writes {CHECKPOINT_VERSION})"
            )
        scores = np.asarray(payload["scores"], dtype=np.float64)
        stored_crc = payload.get("scores_crc")  # absent in v1 files
        if stored_crc is not None:
            actual = _scores_checksum(scores)
            if int(stored_crc) != actual:
                raise ValueError(
                    f"checkpoint scores failed CRC-32 verification "
                    f"(stored {int(stored_crc)}, computed {actual})"
                )
        return cls(
            cursor=int(payload["cursor"]),
            batch_index=int(payload["batch_index"]),
            batch_size=int(payload["batch_size"]),
            n=int(payload["n"]),
            sources_crc=int(payload["sources_crc"]),
            scores=scores,
            stats=list(payload.get("stats", [])),
            sampler=payload.get("sampler"),  # absent in v1/v2 files
            version=version,
        )


# -- BatchStats (de)serialization --------------------------------------------
#
# Imported lazily: repro.core.mfbc imports this module, so a module-level
# import of repro.core.stats would close a cycle during package init.


def stats_to_dicts(batches) -> list[dict]:
    """Serialize a list of :class:`~repro.core.stats.BatchStats` rows."""
    return [
        {
            "sources": b.sources,
            "iterations": [
                {
                    "phase": it.phase,
                    "frontier_nnz": int(it.frontier_nnz),
                    "product_nnz": int(it.product_nnz),
                    "ops": int(it.ops),
                }
                for it in b.iterations
            ],
        }
        for b in batches
    ]


def stats_from_dicts(rows) -> list:
    """Rebuild :class:`~repro.core.stats.BatchStats` rows from JSON dicts."""
    from repro.core.stats import BatchStats, IterationStats

    out = []
    for row in rows:
        b = BatchStats(sources=int(row["sources"]))
        b.iterations = [
            IterationStats(
                phase=it["phase"],
                frontier_nnz=int(it["frontier_nnz"]),
                product_nnz=int(it["product_nnz"]),
                ops=int(it["ops"]),
            )
            for it in row.get("iterations", [])
        ]
        out.append(b)
    return out


# ---------------------------------------------------------------------------
# stores
# ---------------------------------------------------------------------------


class CheckpointStore:
    """Persistence surface: :meth:`save` after each batch, :meth:`load` once.

    ``load`` returns ``None`` when no checkpoint exists yet, so drivers can
    pass the same store as both ``checkpoint=`` and ``resume_from=`` for
    "resume if anything is there" semantics (the CLI does exactly this).
    """

    def save(self, state: CheckpointState) -> None:
        raise NotImplementedError

    def load(self) -> CheckpointState | None:
        raise NotImplementedError

    def clear(self) -> None:
        """Drop the stored checkpoint (no-op when empty)."""
        raise NotImplementedError


class MemoryCheckpointStore(CheckpointStore):
    """Keep the latest state in process memory (copied, not aliased)."""

    def __init__(self) -> None:
        self._state: CheckpointState | None = None

    def save(self, state: CheckpointState) -> None:
        self._state = CheckpointState(
            cursor=state.cursor,
            batch_index=state.batch_index,
            batch_size=state.batch_size,
            n=state.n,
            sources_crc=state.sources_crc,
            scores=np.array(state.scores, dtype=np.float64, copy=True),
            stats=[dict(row) for row in state.stats],
            # deep-copy through JSON: the driver mutates its sampler arrays
            # in place after every batch, and an aliased dict would let
            # those writes leak into the "persisted" snapshot
            sampler=(
                None
                if state.sampler is None
                else json.loads(json.dumps(state.sampler))
            ),
            version=state.version,
        )

    def load(self) -> CheckpointState | None:
        return self._state

    def clear(self) -> None:
        self._state = None


class _FileStore(CheckpointStore):
    """Shared plumbing for the file-backed stores: atomic writes,
    generation rotation, and corruption fallback.

    Each :meth:`save` rotates the previous checkpoint into numbered older
    generations (``path.1``, ``path.2``, ...), keeping the last ``keep``.
    :meth:`load` returns the newest generation that parses and verifies,
    warning when it had to skip a corrupt newer one, and raises
    :class:`CorruptCheckpoint` only when generations exist but none loads.
    """

    #: exceptions that mean "this generation is unusable, try an older one":
    #: torn/truncated archives, JSON decode errors, CRC/version rejections,
    #: missing keys, and I/O failures.
    _LOAD_ERRORS = (ValueError, KeyError, EOFError, OSError, zipfile.BadZipFile)

    def __init__(self, path, keep: int = 2) -> None:
        self.path = os.fspath(path)
        if keep < 1:
            raise ValueError(f"keep must be at least 1, got {keep}")
        self.keep = int(keep)

    def _generation(self, i: int) -> str:
        return self.path if i == 0 else f"{self.path}.{i}"

    def _rotate(self) -> None:
        if self.keep <= 1 or not os.path.exists(self.path):
            return
        oldest = self._generation(self.keep - 1)
        if os.path.exists(oldest):
            os.remove(oldest)
        for i in range(self.keep - 2, -1, -1):
            src = self._generation(i)
            if os.path.exists(src):
                os.replace(src, self._generation(i + 1))

    def clear(self) -> None:
        for i in range(self.keep):
            try:
                os.remove(self._generation(i))
            except FileNotFoundError:
                pass

    def _atomic_write(self, write_fn) -> None:
        self._rotate()
        tmp = f"{self.path}.tmp"
        try:
            write_fn(tmp)
            os.replace(tmp, self.path)
        finally:
            if os.path.exists(tmp):  # failed mid-write; don't leave litter
                os.remove(tmp)

    def _load_one(self, path: str) -> CheckpointState:
        raise NotImplementedError

    def load(self) -> CheckpointState | None:
        errors: list[tuple[str, str]] = []
        found = False
        for i in range(self.keep):
            path = self._generation(i)
            if not os.path.exists(path):
                continue
            found = True
            try:
                state = self._load_one(path)
            except self._LOAD_ERRORS as exc:
                errors.append((path, f"{type(exc).__name__}: {exc}"))
                continue
            if errors:
                warnings.warn(
                    f"checkpoint {self.path!r} restored from older "
                    f"generation {os.path.basename(path)!r}; newer "
                    f"generation(s) were corrupt: "
                    + "; ".join(msg for _, msg in errors),
                    RuntimeWarning,
                    stacklevel=2,
                )
            return state
        if not found:
            return None
        raise CorruptCheckpoint(self.path, errors)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.path!r}, keep={self.keep})"


class JsonCheckpointStore(_FileStore):
    """One JSON document per checkpoint; float-exact and greppable."""

    def save(self, state: CheckpointState) -> None:
        payload = state.to_payload()
        self._atomic_write(
            lambda tmp: open(tmp, "w").write(json.dumps(payload))
        )

    def _load_one(self, path: str) -> CheckpointState:
        with open(path) as fh:
            return CheckpointState.from_payload(json.load(fh))


class NpzCheckpointStore(_FileStore):
    """Scores as a binary array plus a JSON metadata blob, in one .npz."""

    def save(self, state: CheckpointState) -> None:
        meta = state.to_payload()
        del meta["scores"]
        self._rotate()
        atomic_save_npz(
            self.path,
            {"scores": np.asarray(state.scores, dtype=np.float64)},
            meta=meta,
        )

    def _load_one(self, path: str) -> CheckpointState:
        with np.load(path) as archive:
            meta = json.loads(bytes(archive["meta"]).decode())
            meta["scores"] = archive["scores"]
            return CheckpointState.from_payload(meta)


def resolve_checkpoint_store(spec) -> CheckpointStore:
    """Normalize a checkpoint specification into a store.

    A :class:`CheckpointStore` passes through; a path string selects
    :class:`NpzCheckpointStore` for ``.npz`` and
    :class:`JsonCheckpointStore` otherwise.
    """
    if isinstance(spec, CheckpointStore):
        return spec
    if isinstance(spec, (str, os.PathLike)):
        path = os.fspath(spec)
        if path.endswith(".npz"):
            return NpzCheckpointStore(path)
        return JsonCheckpointStore(path)
    raise TypeError(
        f"checkpoint must be a CheckpointStore or a path, got {spec!r}"
    )
