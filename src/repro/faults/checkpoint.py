"""Per-batch checkpoint/restart for the MFBC driver.

The batched structure of Algorithm 3 is a natural checkpoint boundary:
after each batch the driver's entire mutable state is the accumulated
score vector, the source cursor, and the run statistics.  A
:class:`CheckpointStore` persists exactly that as a :class:`CheckpointState`,
and ``mfbc(..., resume_from=store)`` replays only the remaining batches —
with scores bit-identical to an uninterrupted run, because batch partial
sums are accumulated in the same order either way.

Three stores cover the practical deployments:

* :class:`MemoryCheckpointStore` — in-process (tests, notebook retries);
* :class:`JsonCheckpointStore` — a human-readable JSON file.  Floats
  round-trip exactly (``json`` emits ``repr`` shortest-round-trip
  literals), so resumed scores stay bit-identical;
* :class:`NpzCheckpointStore` — a NumPy ``.npz`` archive for large score
  vectors (binary-exact by construction).

File-backed stores write atomically (temp file + ``os.replace``) so a
crash *during* checkpointing never corrupts the previous checkpoint.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "CheckpointState",
    "CheckpointStore",
    "MemoryCheckpointStore",
    "JsonCheckpointStore",
    "NpzCheckpointStore",
    "atomic_save_npz",
    "resolve_checkpoint_store",
    "sources_checksum",
    "stats_to_dicts",
    "stats_from_dicts",
]


def atomic_save_npz(path, arrays: dict, meta: dict | None = None) -> None:
    """Write ``arrays`` (plus an optional JSON ``meta`` blob under the key
    ``"meta"``, stored as a uint8 array) to ``path`` atomically.

    The write goes to ``path + ".tmp"`` and lands with ``os.replace``, so a
    crash mid-write never corrupts an existing file.  Shared by the NPZ
    checkpoint store and :mod:`repro.check.replay`'s repro-case emitter.
    """
    path = os.fspath(path)
    payload = dict(arrays)
    if meta is not None:
        payload["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    tmp = f"{path}.tmp"
    try:
        with open(tmp, "wb") as fh:
            np.savez(fh, **payload)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):  # failed mid-write; don't leave litter
            os.remove(tmp)

#: bump when the persisted layout changes incompatibly.
CHECKPOINT_VERSION = 1


def sources_checksum(sources: np.ndarray) -> int:
    """CRC-32 of the source list — guards a resume against the wrong run."""
    return zlib.crc32(np.ascontiguousarray(sources, dtype=np.int64).tobytes())


@dataclass
class CheckpointState:
    """Everything ``mfbc`` needs to continue after batch ``batch_index - 1``."""

    cursor: int  # next offset into the source list
    batch_index: int  # batches completed so far (== next batch's index)
    batch_size: int
    n: int  # graph vertices (compatibility check)
    sources_crc: int  # checksum of the full source list
    scores: np.ndarray  # accumulated λ over completed batches
    stats: list = field(default_factory=list)  # serialized BatchStats rows
    version: int = CHECKPOINT_VERSION

    def to_payload(self) -> dict:
        """JSON-compatible dict (scores as a list of floats)."""
        return {
            "version": self.version,
            "cursor": int(self.cursor),
            "batch_index": int(self.batch_index),
            "batch_size": int(self.batch_size),
            "n": int(self.n),
            "sources_crc": int(self.sources_crc),
            "scores": [float(x) for x in self.scores],
            "stats": self.stats,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CheckpointState":
        version = int(payload.get("version", -1))
        if version != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {version} "
                f"(this build writes {CHECKPOINT_VERSION})"
            )
        return cls(
            cursor=int(payload["cursor"]),
            batch_index=int(payload["batch_index"]),
            batch_size=int(payload["batch_size"]),
            n=int(payload["n"]),
            sources_crc=int(payload["sources_crc"]),
            scores=np.asarray(payload["scores"], dtype=np.float64),
            stats=list(payload.get("stats", [])),
            version=version,
        )


# -- BatchStats (de)serialization --------------------------------------------
#
# Imported lazily: repro.core.mfbc imports this module, so a module-level
# import of repro.core.stats would close a cycle during package init.


def stats_to_dicts(batches) -> list[dict]:
    """Serialize a list of :class:`~repro.core.stats.BatchStats` rows."""
    return [
        {
            "sources": b.sources,
            "iterations": [
                {
                    "phase": it.phase,
                    "frontier_nnz": int(it.frontier_nnz),
                    "product_nnz": int(it.product_nnz),
                    "ops": int(it.ops),
                }
                for it in b.iterations
            ],
        }
        for b in batches
    ]


def stats_from_dicts(rows) -> list:
    """Rebuild :class:`~repro.core.stats.BatchStats` rows from JSON dicts."""
    from repro.core.stats import BatchStats, IterationStats

    out = []
    for row in rows:
        b = BatchStats(sources=int(row["sources"]))
        b.iterations = [
            IterationStats(
                phase=it["phase"],
                frontier_nnz=int(it["frontier_nnz"]),
                product_nnz=int(it["product_nnz"]),
                ops=int(it["ops"]),
            )
            for it in row.get("iterations", [])
        ]
        out.append(b)
    return out


# ---------------------------------------------------------------------------
# stores
# ---------------------------------------------------------------------------


class CheckpointStore:
    """Persistence surface: :meth:`save` after each batch, :meth:`load` once.

    ``load`` returns ``None`` when no checkpoint exists yet, so drivers can
    pass the same store as both ``checkpoint=`` and ``resume_from=`` for
    "resume if anything is there" semantics (the CLI does exactly this).
    """

    def save(self, state: CheckpointState) -> None:
        raise NotImplementedError

    def load(self) -> CheckpointState | None:
        raise NotImplementedError

    def clear(self) -> None:
        """Drop the stored checkpoint (no-op when empty)."""
        raise NotImplementedError


class MemoryCheckpointStore(CheckpointStore):
    """Keep the latest state in process memory (copied, not aliased)."""

    def __init__(self) -> None:
        self._state: CheckpointState | None = None

    def save(self, state: CheckpointState) -> None:
        self._state = CheckpointState(
            cursor=state.cursor,
            batch_index=state.batch_index,
            batch_size=state.batch_size,
            n=state.n,
            sources_crc=state.sources_crc,
            scores=np.array(state.scores, dtype=np.float64, copy=True),
            stats=[dict(row) for row in state.stats],
            version=state.version,
        )

    def load(self) -> CheckpointState | None:
        return self._state

    def clear(self) -> None:
        self._state = None


class _FileStore(CheckpointStore):
    """Shared atomic-write plumbing for the file-backed stores."""

    def __init__(self, path) -> None:
        self.path = os.fspath(path)

    def clear(self) -> None:
        try:
            os.remove(self.path)
        except FileNotFoundError:
            pass

    def _atomic_write(self, write_fn) -> None:
        tmp = f"{self.path}.tmp"
        try:
            write_fn(tmp)
            os.replace(tmp, self.path)
        finally:
            if os.path.exists(tmp):  # failed mid-write; don't leave litter
                os.remove(tmp)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.path!r})"


class JsonCheckpointStore(_FileStore):
    """One JSON document per checkpoint; float-exact and greppable."""

    def save(self, state: CheckpointState) -> None:
        payload = state.to_payload()
        self._atomic_write(
            lambda tmp: open(tmp, "w").write(json.dumps(payload))
        )

    def load(self) -> CheckpointState | None:
        try:
            with open(self.path) as fh:
                return CheckpointState.from_payload(json.load(fh))
        except FileNotFoundError:
            return None


class NpzCheckpointStore(_FileStore):
    """Scores as a binary array plus a JSON metadata blob, in one .npz."""

    def save(self, state: CheckpointState) -> None:
        meta = state.to_payload()
        del meta["scores"]
        atomic_save_npz(
            self.path,
            {"scores": np.asarray(state.scores, dtype=np.float64)},
            meta=meta,
        )

    def load(self) -> CheckpointState | None:
        try:
            with np.load(self.path) as archive:
                meta = json.loads(bytes(archive["meta"]).decode())
                meta["scores"] = archive["scores"]
                return CheckpointState.from_payload(meta)
        except FileNotFoundError:
            return None


def resolve_checkpoint_store(spec) -> CheckpointStore:
    """Normalize a checkpoint specification into a store.

    A :class:`CheckpointStore` passes through; a path string selects
    :class:`NpzCheckpointStore` for ``.npz`` and
    :class:`JsonCheckpointStore` otherwise.
    """
    if isinstance(spec, CheckpointStore):
        return spec
    if isinstance(spec, (str, os.PathLike)):
        path = os.fspath(spec)
        if path.endswith(".npz"):
            return NpzCheckpointStore(path)
        return JsonCheckpointStore(path)
    raise TypeError(
        f"checkpoint must be a CheckpointStore or a path, got {spec!r}"
    )
