"""Deterministic fault injection: the plan, the events, the exceptions.

Long-running distributed BC jobs die mid-flight — the paper's Blue Waters
runs (§7) sit exactly in the regime where ranks crash, interconnects flip
bits, and node-local worker pools disappear.  This module provides the
*injection* half of the robustness story: a :class:`FaultPlan` is a seeded,
fully deterministic schedule of failures threaded through the simulated
machine (:class:`~repro.machine.machine.Machine`), the collectives
(:class:`~repro.machine.collectives.Group`), and the local-execution
backends (:mod:`repro.machine.executor`).

Fault kinds
-----------
``crash``
    A participating rank raises :class:`RankFailure` inside
    ``Machine.charge_collective`` / ``charge_pointtopoint`` — the modeled
    analogue of a node dying during a collective.
``corrupt``
    A collective payload is perturbed in flight (a copy is perturbed; the
    sender's buffer is never mutated).  With the opt-in checksum guard
    (``checksum:1``) the receiving :class:`Group` collective detects the
    mismatch and raises :class:`CorruptPayload`; without it the corruption
    propagates silently, as on real hardware.
``straggle``
    One participant's modeled clock is skewed forward by a random factor of
    ``skew`` seconds, charged straight to the ledger — a slow rank
    lengthening the critical path.
``poolkill``
    The local executor's worker pool dies mid-batch (the process backend
    SIGKILLs one of its own workers; the thread backend raises
    :class:`WorkerPoolDied`).  Recovery is the executor's graceful
    degradation chain (process → thread → serial).
``mem``
    Memory pressure: the machine's per-rank budget is tightened by a
    factor at construction, so allocations/plans that would have fit now
    raise ``MemoryLimitExceeded``.
``tear``
    A spill-segment or ingest-shard write is torn mid-file (truncated
    after the atomic rename).  The spill store's write-then-verify
    read-back and the ingest manifest's per-shard CRCs must detect the
    damage and keep the data resident / re-ingest the shard.

Determinism
-----------
All stochastic decisions come from one ``numpy`` generator seeded at
construction, and every decision site is visited in the simulation's
deterministic order — so one seed yields one exact :class:`FaultEvent`
sequence, run after run.  A plan is *stateful* (the generator advances);
call :meth:`FaultPlan.reset` or build a fresh plan to replay a schedule.

Spec grammar
------------
``FaultPlan.from_spec`` (also the ``REPRO_FAULTS`` environment variable
and the CLI ``--faults`` flag) accepts comma-separated tokens::

    seed:3,crash:0.05,corrupt:0.01,straggle:0.1,poolkill:0.02,
    checksum:1,mem:0.5,skew:1e-4,limit:10,crash@12,corrupt@7,straggle@9:2

* ``seed:N`` — generator seed (default 0);
* ``crash|corrupt|straggle|poolkill|tear:RATE`` — per-decision
  probabilities in ``[0, 1]``;
* ``checksum:0|1`` — arm the payload checksum guard on Group collectives;
* ``mem:FACTOR`` — multiply the machine's memory budget by ``FACTOR``
  in ``(0, 1]``;
* ``skew:SECONDS`` — modeled straggler skew scale (default ``1e-4``);
* ``limit:N`` — stop injecting after ``N`` faults (lets retries succeed);
* ``KIND@STEP[:RANK]`` — a scripted event at collective-charge step
  ``STEP`` (``crash``/``straggle`` take an optional explicit rank;
  ``corrupt`` fires at the first payload delivery at-or-after the step).

``""``, ``"none"`` and ``"off"`` parse to ``None`` (no injection).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.obs import api as obs
from repro.sparse.spmatrix import SpMat

__all__ = [
    "FAULTS_ENV",
    "FaultError",
    "RankFailure",
    "CorruptPayload",
    "WorkerPoolDied",
    "DeadlineExceeded",
    "FaultEvent",
    "ScriptedFault",
    "FaultPlan",
    "resolve_fault_plan",
    "corrupt_copy",
    "payload_checksum",
    "format_fault_report",
]

#: environment variable consulted when ``Machine(faults=None)``.
FAULTS_ENV = "REPRO_FAULTS"

#: default modeled straggler skew scale, in seconds.
DEFAULT_SKEW_SECONDS = 1e-4


# ---------------------------------------------------------------------------
# exceptions
# ---------------------------------------------------------------------------


class FaultError(RuntimeError):
    """Base class of every injected failure (what retry loops catch)."""


class RankFailure(FaultError):
    """A simulated rank died during a collective."""

    def __init__(self, rank: int, step: int, site: str) -> None:
        super().__init__(
            f"rank {rank} failed during {site!r} (fault step {step})"
        )
        self.rank = rank
        self.step = step
        self.site = site


class CorruptPayload(FaultError):
    """The checksum guard caught a payload corrupted in flight."""

    def __init__(self, site: str, step: int) -> None:
        super().__init__(
            f"payload checksum mismatch in {site!r} (fault step {step})"
        )
        self.site = site
        self.step = step


class WorkerPoolDied(FaultError):
    """A local executor's worker pool died mid-batch."""

    def __init__(self, backend: str, site: str) -> None:
        super().__init__(f"{backend} worker pool died during {site!r}")
        self.backend = backend
        self.site = site


class DeadlineExceeded(FaultError):
    """The machine's modeled critical-path time overran its deadline budget.

    Raised by :class:`~repro.machine.machine.Machine` charge paths when
    ``Machine(deadline=)`` is set.  A :class:`FaultError` so existing
    handlers recognize it as a fault-domain failure, but drivers must *not*
    retry it — the clock only moves forward, so a retry storm would spin
    until abort.  The overrunning charge is already on the ledger when this
    raises (deadlines are detected, not predicted).
    """

    def __init__(self, deadline: float, modeled: float, site: str) -> None:
        super().__init__(
            f"modeled critical-path time {modeled:.6g}s exceeded the "
            f"deadline budget {deadline:.6g}s during {site!r}"
        )
        self.deadline = deadline
        self.modeled = modeled
        self.site = site


# ---------------------------------------------------------------------------
# events
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultEvent:
    """One injected, detected, or recovered fault."""

    kind: str  # crash | corrupt | straggle | pool | mem | batch
    action: str  # injected | detected | recovered | degraded | resumed | abandoned
    step: int  # the plan's collective-charge counter at the event
    site: str  # where it happened ("bcast", "spgemm", "mfbc.batch", ...)
    rank: int | None = None
    detail: dict = field(default_factory=dict)

    def signature(self) -> tuple:
        """Comparable identity (used by the determinism tests)."""
        return (self.kind, self.action, self.step, self.site, self.rank)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "action": self.action,
            "step": self.step,
            "site": self.site,
            "rank": self.rank,
            **{f"detail.{k}": v for k, v in self.detail.items()},
        }


class ScriptedFault:
    """An explicit fault at a chosen step (``KIND@STEP[:RANK]``)."""

    __slots__ = ("kind", "step", "rank", "fired")

    def __init__(self, kind: str, step: int, rank: int | None = None) -> None:
        if kind not in ("crash", "straggle", "corrupt", "poolkill", "tear"):
            raise ValueError(f"unknown scripted fault kind {kind!r}")
        if step <= 0:
            raise ValueError(f"scripted fault step must be positive, got {step}")
        self.kind = kind
        self.step = int(step)
        self.rank = None if rank is None else int(rank)
        self.fired = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tail = "" if self.rank is None else f":{self.rank}"
        return f"{self.kind}@{self.step}{tail}"


# ---------------------------------------------------------------------------
# payload corruption + checksums
# ---------------------------------------------------------------------------


def payload_checksum(payload) -> int:
    """CRC-32 over a collective payload's raw bytes (order-deterministic).

    Covers the same payload shapes
    :func:`~repro.machine.collectives.payload_words` sizes: ``SpMat``,
    ndarray, ``None``, and lists/tuples/dicts thereof.
    """
    crc = 0

    def walk(p, crc):
        if p is None:
            return zlib.crc32(b"\x00", crc)
        if isinstance(p, SpMat):
            crc = walk(p.rows, crc)
            crc = walk(p.cols, crc)
            for name in p.monoid.field_names:
                crc = walk(np.asarray(p.vals[name]), crc)
            return crc
        if isinstance(p, np.ndarray):
            return zlib.crc32(np.ascontiguousarray(p).tobytes(), crc)
        if isinstance(p, (list, tuple)):
            for x in p:
                crc = walk(x, crc)
            return crc
        if isinstance(p, dict):
            for k in sorted(p, key=str):
                crc = walk(p[k], crc)
            return crc
        raise TypeError(f"cannot checksum payload of type {type(p).__name__}")

    return walk(payload, crc)


def _corrupt_array(arr: np.ndarray, rng: np.random.Generator):
    """A perturbed *copy* of ``arr``, or ``arr`` itself if uncorruptible."""
    if arr.size == 0:
        return arr
    out = arr.copy()
    flat = out.reshape(-1)
    i = int(rng.integers(flat.size))
    if np.issubdtype(out.dtype, np.floating):
        # multiplicative + additive perturbation: stays finite and positive
        # for the weight/multiplicity fields, so corrupted runs terminate
        flat[i] = flat[i] * 1.5 + 1.0
    elif np.issubdtype(out.dtype, np.integer):
        flat[i] = flat[i] ^ 1  # single bit flip
    elif out.dtype == np.bool_:
        flat[i] = ~flat[i]
    else:
        return arr
    return out


def corrupt_copy(payload, rng: np.random.Generator):
    """Return a copy of ``payload`` with one buffer perturbed.

    The original payload is never mutated (only the in-flight copy is
    damaged).  Returns ``payload`` unchanged when there is nothing to
    corrupt (``None``, empty arrays, non-numeric buffers).
    """
    if payload is None:
        return payload
    if isinstance(payload, np.ndarray):
        return _corrupt_array(payload, rng)
    if isinstance(payload, SpMat):
        for name in payload.monoid.field_names:
            arr = np.asarray(payload.vals[name])
            hit = _corrupt_array(arr, rng)
            if hit is not arr:
                vals = {
                    n: (hit if n == name else np.asarray(payload.vals[n]))
                    for n in payload.monoid.field_names
                }
                return SpMat(
                    payload.nrows,
                    payload.ncols,
                    payload.rows,
                    payload.cols,
                    vals,
                    payload.monoid,
                    canonical=True,
                )
        return payload
    if isinstance(payload, (list, tuple)):
        for i, x in enumerate(payload):
            hit = corrupt_copy(x, rng)
            if hit is not x:
                out = list(payload)
                out[i] = hit
                return type(payload)(out)
        return payload
    if isinstance(payload, dict):
        for k in payload:
            hit = corrupt_copy(payload[k], rng)
            if hit is not payload[k]:
                out = dict(payload)
                out[k] = hit
                return out
        return payload
    return payload


# ---------------------------------------------------------------------------
# the plan
# ---------------------------------------------------------------------------


class FaultPlan:
    """A seeded, deterministic schedule of injected failures.

    Parameters (all keyword-only except ``seed``) mirror the spec grammar
    in the module docstring.  A plan with every rate at zero, no script,
    no checksum guard, and no memory factor is *inert*: the machine skips
    its hooks entirely, so the hot paths pay nothing (see
    ``benchmarks/bench_fault_overhead.py``).
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        crash: float = 0.0,
        corrupt: float = 0.0,
        straggle: float = 0.0,
        poolkill: float = 0.0,
        tear: float = 0.0,
        skew: float = DEFAULT_SKEW_SECONDS,
        checksum: bool = False,
        mem: float | None = None,
        limit: int | None = None,
        script: "tuple | list" = (),
    ) -> None:
        for name, rate in (
            ("crash", crash),
            ("corrupt", corrupt),
            ("straggle", straggle),
            ("poolkill", poolkill),
            ("tear", tear),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} rate must be in [0, 1], got {rate}")
        if skew < 0:
            raise ValueError(f"skew must be non-negative, got {skew}")
        if mem is not None and not 0.0 < mem <= 1.0:
            raise ValueError(f"mem factor must be in (0, 1], got {mem}")
        if limit is not None and limit <= 0:
            raise ValueError(f"limit must be positive, got {limit}")
        self.seed = int(seed)
        self.crash = float(crash)
        self.corrupt = float(corrupt)
        self.straggle = float(straggle)
        self.poolkill = float(poolkill)
        self.tear = float(tear)
        self.skew = float(skew)
        self.checksum = bool(checksum)
        self.mem = mem if mem is None else float(mem)
        self.limit = limit if limit is None else int(limit)
        self.script = [
            sc if isinstance(sc, ScriptedFault) else ScriptedFault(*sc)
            for sc in script
        ]
        self.reset()

    # -- lifecycle -----------------------------------------------------------

    def reset(self) -> None:
        """Rewind the plan to its initial state (replay the same schedule)."""
        self.rng = np.random.default_rng(self.seed)
        self.step = 0
        self.injected = 0
        self.events: list[FaultEvent] = []
        for sc in self.script:
            sc.fired = False

    @property
    def armed(self) -> bool:
        """True when any hook can do anything (machine skips inert plans)."""
        return bool(
            self.crash
            or self.corrupt
            or self.straggle
            or self.poolkill
            or self.tear
            or self.checksum
            or self.mem is not None
            or self.script
        )

    def signature(self) -> list[tuple]:
        """The event sequence as comparable tuples (determinism checks)."""
        return [ev.signature() for ev in self.events]

    # -- parsing -------------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan | None":
        """Parse the ``REPRO_FAULTS`` / ``--faults`` grammar; see module doc."""
        spec = spec.strip()
        if not spec or spec.lower() in ("none", "off"):
            return None
        kwargs: dict = {}
        script: list[ScriptedFault] = []
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            if "@" in token:
                kind, _, at = token.partition("@")
                at, _, rank = at.partition(":")
                try:
                    script.append(
                        ScriptedFault(
                            kind.strip(),
                            int(at),
                            int(rank) if rank else None,
                        )
                    )
                except ValueError as exc:
                    raise ValueError(
                        f"bad scripted fault {token!r}: {exc}"
                    ) from exc
                continue
            key, sep, value = token.partition(":")
            key = key.strip().lower()
            if not sep:
                raise ValueError(
                    f"bad fault spec token {token!r} (expected key:value "
                    f"or kind@step)"
                )
            try:
                if key == "seed":
                    kwargs["seed"] = int(value)
                elif key in (
                    "crash", "corrupt", "straggle", "poolkill", "tear", "skew"
                ):
                    kwargs[key] = float(value)
                elif key == "checksum":
                    kwargs["checksum"] = bool(int(value))
                elif key == "mem":
                    kwargs["mem"] = float(value)
                elif key == "limit":
                    kwargs["limit"] = int(value)
                else:
                    raise ValueError(f"unknown fault spec key {key!r}")
            except ValueError as exc:
                if "unknown fault spec key" in str(exc):
                    raise
                raise ValueError(
                    f"bad value in fault spec token {token!r}: {exc}"
                ) from exc
        return cls(script=script, **kwargs)

    # -- recording -----------------------------------------------------------

    def note(
        self,
        kind: str,
        action: str,
        *,
        site: str = "",
        rank: int | None = None,
        **detail,
    ) -> FaultEvent:
        """Record one fault event (and mirror it onto the obs streams)."""
        ev = FaultEvent(
            kind=kind,
            action=action,
            step=self.step,
            site=site,
            rank=rank,
            detail=detail,
        )
        self.events.append(ev)
        if action == "injected":
            self.injected += 1
        if obs.enabled():
            obs.complete(
                f"fault.{kind}",
                cat="fault",
                args=ev.to_dict(),
            )
            obs.count(f"faults.{action}", 1.0, kind=kind)
        return ev

    def _may_inject(self) -> bool:
        return self.limit is None or self.injected < self.limit

    # -- decision hooks (called by machine / collectives / executor) ---------

    def on_collective(self, machine, ranks, site: str) -> None:
        """Called once per charged collective; may straggle or crash.

        Raises :class:`RankFailure` when a crash fires.  Straggler skew is
        charged directly to the machine's ledger.
        """
        self.step += 1
        step = self.step
        ranks = np.asarray(ranks)
        for sc in self.script:
            if sc.fired or sc.step != step:
                continue
            if sc.kind == "straggle":
                sc.fired = True
                rank = sc.rank if sc.rank is not None else int(ranks[0])
                self._straggle(machine, rank, site)
            elif sc.kind == "crash":
                sc.fired = True
                rank = sc.rank if sc.rank is not None else int(ranks[0])
                self._crash(rank, site)
        if (
            self.straggle
            and self._may_inject()
            and self.rng.random() < self.straggle
        ):
            self._straggle(machine, int(self.rng.choice(ranks)), site)
        if self.crash and self._may_inject() and self.rng.random() < self.crash:
            self._crash(int(self.rng.choice(ranks)), site)

    def _straggle(self, machine, rank: int, site: str) -> None:
        skew = self.skew * (0.5 + 1.5 * float(self.rng.random()))
        machine.ledger.time[rank] += skew
        self.note("straggle", "injected", site=site, rank=rank, skew_s=skew)

    def _crash(self, rank: int, site: str) -> None:
        self.note("crash", "injected", site=site, rank=rank)
        raise RankFailure(rank, self.step, site)

    def deliver(self, payload, site: str):
        """Possibly corrupt one in-flight payload → ``(payload, corrupted)``.

        Called by :class:`~repro.machine.collectives.Group` after charging
        a collective; the checksum guard (when armed) is the *Group's* job,
        so detection is a real mechanism rather than a flag.
        """
        fire = False
        for sc in self.script:
            if not sc.fired and sc.kind == "corrupt" and sc.step <= self.step:
                sc.fired = True
                fire = True
                break
        if (
            not fire
            and self.corrupt
            and self._may_inject()
            and self.rng.random() < self.corrupt
        ):
            fire = True
        if not fire:
            return payload, False
        damaged = corrupt_copy(payload, self.rng)
        if damaged is payload:  # nothing corruptible in this payload
            return payload, False
        self.note("corrupt", "injected", site=site)
        return damaged, True

    def take_poolkill(self, site: str) -> bool:
        """Should the executor's worker pool die before this batch?"""
        for sc in self.script:
            if not sc.fired and sc.kind == "poolkill" and sc.step <= self.step:
                sc.fired = True
                return True
        if (
            self.poolkill
            and self._may_inject()
            and self.rng.random() < self.poolkill
        ):
            return True
        return False

    def take_tear(self, site: str) -> bool:
        """Should this spill-segment write be torn mid-file?

        Consumed by :class:`~repro.memory.SpillStore` immediately after the
        atomic rename: the written segment is truncated to half its size, so
        the store's write-then-verify read-back must catch it.
        """
        for sc in self.script:
            if not sc.fired and sc.kind == "tear" and sc.step <= self.step:
                sc.fired = True
                return True
        if self.tear and self._may_inject() and self.rng.random() < self.tear:
            return True
        return False

    def tighten_memory(self, budget: int) -> int:
        """Apply the memory-pressure factor to a per-rank budget."""
        if self.mem is None:
            return budget
        tightened = max(1, int(budget * self.mem))
        self.note(
            "mem",
            "injected",
            site="machine",
            budget_words=budget,
            tightened_words=tightened,
            factor=self.mem,
        )
        return tightened

    # -- reporting -----------------------------------------------------------

    def describe(self) -> str:
        parts = [f"seed:{self.seed}"]
        for key in ("crash", "corrupt", "straggle", "poolkill", "tear"):
            rate = getattr(self, key)
            if rate:
                parts.append(f"{key}:{rate:g}")
        if self.checksum:
            parts.append("checksum:1")
        if self.mem is not None:
            parts.append(f"mem:{self.mem:g}")
        if self.limit is not None:
            parts.append(f"limit:{self.limit}")
        parts.extend(repr(sc) for sc in self.script)
        return ",".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.describe()}, events={len(self.events)})"


def resolve_fault_plan(
    spec: "FaultPlan | str | None", *, env: bool = True
) -> "FaultPlan | None":
    """Normalize a faults specification into a plan (or ``None``).

    ``spec`` may be a :class:`FaultPlan` (returned as-is), a spec string
    (parsed; ``""``/``"none"``/``"off"`` disable), or ``None`` — in which
    case the ``REPRO_FAULTS`` environment variable is consulted (unless
    ``env=False``) and no-injection is the fallback.
    """
    if isinstance(spec, FaultPlan):
        return spec
    if spec is None:
        if not env:
            return None
        import os

        spec = os.environ.get(FAULTS_ENV) or ""
    if not isinstance(spec, str):
        raise TypeError(
            f"faults must be a FaultPlan, spec string, or None, got {spec!r}"
        )
    return FaultPlan.from_spec(spec)


#: action columns of the fault summary table, in lifecycle order — injection
#: first, then detection, then every recovery outcome, then the fatal ends.
_REPORT_ACTIONS = (
    "injected",
    "detected",
    "recovered",
    "degraded",
    "resumed",
    "retired",
    "abandoned",
)


def format_fault_report(plan: "FaultPlan | None") -> str:
    """Text summary of a plan's event stream (the ``repro trace`` section).

    Events are grouped by ``(kind, site)`` with one column per action, so a
    crash that was injected at ``bcast`` and later elastically recovered
    reads as one row — injected vs. recovered vs. fatal (``abandoned``)
    outcomes are distinguishable at a glance instead of being scattered
    over per-action tallies.
    """
    if plan is None:
        return "faults: no fault plan attached"
    lines = [f"fault injection summary (plan {plan.describe()}):"]
    if not plan.events:
        lines.append("  no fault events recorded")
        return "\n".join(lines)
    by_row: dict[tuple[str, str], dict[str, int]] = {}
    extra_actions: list[str] = []
    for ev in plan.events:
        row = by_row.setdefault((ev.kind, ev.site), {})
        row[ev.action] = row.get(ev.action, 0) + 1
        if ev.action not in _REPORT_ACTIONS and ev.action not in extra_actions:
            extra_actions.append(ev.action)
    actions = [
        a
        for a in (*_REPORT_ACTIONS, *extra_actions)
        if any(a in row for row in by_row.values())
    ]
    kind_w = max(4, max(len(k) for k, _ in by_row))
    site_w = max(4, max(len(s) for _, s in by_row))
    header = f"  {'kind':<{kind_w}}  {'site':<{site_w}}"
    for a in actions:
        header += f"  {a:>9}"
    lines.append(header)
    for (kind, site), row in sorted(by_row.items()):
        line = f"  {kind:<{kind_w}}  {site:<{site_w}}"
        for a in actions:
            line += f"  {row.get(a, 0) or '-':>9}"
        lines.append(line)
    lines.append("  events:")
    for ev in plan.events:
        rank = "-" if ev.rank is None else str(ev.rank)
        detail = (
            " " + " ".join(f"{k}={v}" for k, v in ev.detail.items())
            if ev.detail
            else ""
        )
        lines.append(
            f"    step {ev.step:>5}  {ev.kind:<8} {ev.action:<9} "
            f"rank {rank:>3}  {ev.site}{detail}"
        )
    return "\n".join(lines)
