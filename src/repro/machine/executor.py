"""Pluggable local-execution backends for the simulated machine.

The simulated machine models ``p`` ranks, but the process hosting the
simulation is a single Python interpreter: historically every rank's local
kernel ran serially, so modeled time scaled with ``p`` while wall-clock
time did not.  On the real machines the paper ran on, the ``p`` local
SpGEMMs between two collectives execute *concurrently* — that concurrency
is exactly what this module recovers on the host: the independent per-rank
local products inside the §5.2 variant executors, the per-block elementwise
operations of :class:`~repro.dist.distmat.DistMat`, and redistribution
block packing all fan out across host cores.

Three backends implement one surface (:class:`LocalExecutor`):

* :class:`SerialExecutor` — runs every task inline (the default; zero
  overhead, reference semantics);
* :class:`ThreadExecutor` — a lazily created thread pool.  The sparse
  kernels are dominated by large-array NumPy primitives (``argsort``,
  ``searchsorted``, ``reduceat``, fancy indexing) that release the GIL, so
  threads overlap on multi-core hosts while still sharing operands
  zero-copy;
* :class:`ProcessExecutor` — a lazily created (fork-context) process pool
  for workloads whose kernels hold the GIL.  Operand and result ndarrays
  cross the process boundary through :mod:`multiprocessing.shared_memory`
  segments rather than pickle streams; operands repeated within a batch
  (e.g. a replicated adjacency matrix) are exported once.

Two guarantees hold for every backend:

* **Determinism** — results are collected in submission order and merged
  on the simulation thread, and ledger charges are issued on the
  simulation thread in serial iteration order, so gathered matrices and
  ``ledger.snapshot()`` are bit-identical to serial execution.
* **Cost-aware dispatch** — a batch fans out only when its estimated work
  (elementary products via :func:`~repro.sparse.spgemm.count_ops`, or
  nonzeros touched for packing/elementwise tasks) amortizes the executor's
  per-batch overhead; otherwise it runs inline on the simulation thread.

Selection is threaded through :class:`~repro.machine.machine.Machine`
(``Machine(p=64, executor="thread")``), the ``REPRO_EXECUTOR`` environment
variable (``serial`` | ``thread[:N]`` | ``process[:N]``), and the
``repro`` CLI's ``--executor`` flag.

**Graceful degradation** — worker pools die on real machines (OOM killer,
container limits, a segfaulting extension).  When a fanned-out batch hits
a pool failure (:class:`concurrent.futures.BrokenExecutor` or an injected
:class:`~repro.faults.WorkerPoolDied`), the executor closes the broken
pool, builds its fallback backend (process → thread → serial), transfers
any attached fault plan, records a ``pool/degraded`` event, and re-runs
the batch there — callers see the same bit-identical results, one backend
slower.  All pool-owning executors register for interpreter-exit cleanup
so a crashed run cannot leak shared-memory segments.
"""

from __future__ import annotations

import atexit
import os
import signal
import time
import weakref
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Sequence

import numpy as np

from repro.faults.plan import WorkerPoolDied
from repro.obs import api as obs
from repro.sparse.spgemm import SpGemmResult, count_ops, spgemm
from repro.sparse.spmatrix import SpMat

__all__ = [
    "EXECUTOR_ENV",
    "POOL_FAILURES",
    "LocalExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "available_backends",
    "resolve_executor",
    "executor_skew_report",
]

#: exception classes treated as "the worker pool died" → degrade and re-run.
#: ``BrokenExecutor`` covers ``BrokenProcessPool``/``BrokenThreadPool``.
POOL_FAILURES = (BrokenExecutor, WorkerPoolDied)

#: live pool-owning executors, closed at interpreter exit so a crashed or
#: abandoned run cannot leak shared-memory segments or worker processes.
_LIVE_EXECUTORS: "weakref.WeakSet[LocalExecutor]" = weakref.WeakSet()


@atexit.register
def _close_live_executors() -> None:  # pragma: no cover - exit path
    for ex in list(_LIVE_EXECUTORS):
        try:
            ex.close()
        except Exception:
            pass

#: environment variable consulted when no explicit executor is configured.
EXECUTOR_ENV = "REPRO_EXECUTOR"

#: estimated-work floors (work units ≈ elementary kernel ops) below which a
#: batch runs inline.  Thread dispatch costs ~100 µs per batch; process
#: dispatch additionally pays shared-memory export/import, hence the higher
#: floor.  At the default ``compute_rate`` of 1e9 ops/s these floors
#: correspond to ~0.2 ms / ~2 ms of modeled local work.
THREAD_FANOUT_MIN_WORK = 200_000
PROCESS_FANOUT_MIN_WORK = 2_000_000


def _worker_default() -> int:
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux hosts
        return max(1, os.cpu_count() or 1)


class LocalExecutor:
    """Common surface of the local execution backends.

    Subclasses override :meth:`_submit_thunks` (arbitrary callables; used
    by elementwise and packing fan-out, requires ``supports_closures``) and
    :meth:`_submit_spgemm` (local generalized products).  Batch entry
    points :meth:`run_tasks` / :meth:`run_spgemm` apply the dispatch gate,
    record observability events, and preserve submission order.
    """

    #: backend identifier (``serial`` / ``thread`` / ``process``)
    name = "serial"
    #: worker slots the backend can occupy concurrently
    workers = 1
    #: whether arbitrary closures can be shipped to the workers
    supports_closures = True
    #: estimated-work floor for fan-out; ``inf`` means never fan out
    fanout_min_work: float = float("inf")
    #: backends to fall back to, in order, when the worker pool dies
    fallback_chain: tuple[str, ...] = ()
    #: fault plan consulted before each fanned-out batch (set by Machine)
    fault_plan = None
    #: kernel-dispatch mode forwarded to every local product (set by Machine)
    kernel_mode: str | None = None
    #: replacement backend after degradation; batches delegate to it
    _successor: "LocalExecutor | None" = None

    # -- dispatch gate -------------------------------------------------------

    def should_fanout(self, n_tasks: int, est_work: float) -> bool:
        """True when a batch's estimated work amortizes dispatch overhead."""
        return (
            self.workers > 1 and n_tasks > 1 and est_work >= self.fanout_min_work
        )

    # -- batch entry points --------------------------------------------------

    def run_tasks(
        self,
        thunks: Sequence[Callable[[], object]],
        *,
        site: str,
        est_work: float,
        ranks: Sequence[int] | None = None,
    ) -> list:
        """Run zero-argument callables; results in submission order.

        Falls back to inline execution when the gate rejects the batch or
        the backend cannot ship closures (:class:`ProcessExecutor`).  A
        pool failure mid-batch degrades to the fallback backend and
        re-runs the whole batch there.
        """
        if self._successor is not None:
            return self._successor.run_tasks(
                thunks, site=site, est_work=est_work, ranks=ranks
            )
        if not (self.supports_closures and self.should_fanout(len(thunks), est_work)):
            self._note_inline(site, len(thunks))
            return [fn() for fn in thunks]
        try:
            self._maybe_inject_pool_fault(site)
            return self._fanout(
                site, ranks, lambda: self._submit_thunks(list(thunks))
            )
        except POOL_FAILURES as exc:
            fallback = self._degrade(exc, site)
            return fallback.run_tasks(
                thunks, site=site, est_work=est_work, ranks=ranks
            )

    def run_spgemm(
        self,
        pairs: Sequence[tuple[SpMat, SpMat]],
        spec,
        *,
        masks: Sequence[SpMat | None] | None = None,
        mask_complement: bool = False,
        site: str = "spgemm",
        ranks: Sequence[int] | None = None,
    ) -> list[SpGemmResult]:
        """Run a batch of independent local products ``C_t = A_t • B_t``.

        ``masks`` (aligned with ``pairs``; ``None`` entries unmasked) are
        per-task structural output masks, all sharing ``mask_complement``.
        The work estimate is the unmasked elementary-product count
        (:func:`count_ops`) — an upper bound under a mask, computed only
        when fan-out is possible at all.  A pool failure mid-batch degrades
        to the fallback backend and re-runs the whole batch there.
        """
        if masks is None:
            masks = [None] * len(pairs)
        if self._successor is not None:
            return self._successor.run_spgemm(
                pairs,
                spec,
                masks=masks,
                mask_complement=mask_complement,
                site=site,
                ranks=ranks,
            )
        if self.workers > 1 and len(pairs) > 1:
            est_work = float(sum(count_ops(x, y) for x, y in pairs))
            if self.should_fanout(len(pairs), est_work):
                try:
                    self._maybe_inject_pool_fault(site)
                    return self._fanout(
                        site,
                        ranks,
                        lambda: self._submit_spgemm(
                            list(pairs), spec, list(masks), mask_complement
                        ),
                    )
                except POOL_FAILURES as exc:
                    fallback = self._degrade(exc, site)
                    return fallback.run_spgemm(
                        pairs,
                        spec,
                        masks=masks,
                        mask_complement=mask_complement,
                        site=site,
                        ranks=ranks,
                    )
        self._note_inline(site, len(pairs))
        return [
            spgemm(
                x,
                y,
                spec,
                mask=mk,
                mask_complement=mask_complement,
                kernel=self.kernel_mode,
            )
            for (x, y), mk in zip(pairs, masks)
        ]

    # -- fault injection + graceful degradation ------------------------------

    def _maybe_inject_pool_fault(self, site: str) -> None:
        """Consult the fault plan just before a fanned-out batch dispatches."""
        plan = self.fault_plan
        if plan is None or not plan.take_poolkill(site):
            return
        plan.note("pool", "injected", site=site, backend=self.name)
        self._kill_pool_for_injection(site)

    def _kill_pool_for_injection(self, site: str) -> None:
        """Make the pool die; backends with real workers kill one for real."""
        raise WorkerPoolDied(self.name, site)

    def _degrade(self, exc: BaseException, site: str) -> "LocalExecutor":
        """Swap in the fallback backend after a pool failure.

        The broken pool is closed, the fallback inherits this executor's
        worker count, fan-out floor, and fault plan, and becomes the
        :attr:`_successor` every later batch delegates to.  Re-raises when
        the chain is exhausted (serial has no fallback — but serial also
        never fans out, so it cannot get here).
        """
        try:
            self.close()
        except Exception:  # a broken pool may fail its own shutdown
            pass
        if not self.fallback_chain:
            raise exc
        name = self.fallback_chain[0]
        fallback = _BACKENDS[name](
            None if name == "serial" else self.workers,
            fanout_min_work=self.fanout_min_work,
        )
        fallback.fault_plan = self.fault_plan
        fallback.kernel_mode = self.kernel_mode
        self._successor = fallback
        if self.fault_plan is not None:
            self.fault_plan.note(
                "pool",
                "degraded",
                site=site,
                backend=self.name,
                fallback=name,
                error=type(exc).__name__,
            )
        elif obs.enabled():
            obs.count(
                "faults.degraded", 1.0, kind="pool", backend=self.name, fallback=name
            )
        return fallback

    def close(self) -> None:
        """Release pool resources (idempotent; closes any successor too)."""
        if self._successor is not None:
            self._successor.close()

    def __enter__(self) -> "LocalExecutor":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(workers={self.workers})"

    # -- backend hooks -------------------------------------------------------

    def _submit_thunks(self, thunks: list) -> list[tuple[object, float]]:
        """Run callables concurrently → ``[(result, wall_seconds), ...]``."""
        raise NotImplementedError

    def _submit_spgemm(
        self, pairs: list, spec, masks: list, mask_complement: bool
    ) -> list[tuple[object, float]]:
        """Run products concurrently → ``[(SpGemmResult, wall_seconds), ...]``."""
        raise NotImplementedError

    # -- shared bookkeeping --------------------------------------------------

    def _note_inline(self, site: str, n_tasks: int) -> None:
        if obs.enabled():
            obs.count("executor.batches", 1.0, backend=self.name, site=site, mode="inline")
            obs.count("executor.tasks", float(n_tasks), backend=self.name, site=site, mode="inline")

    def _fanout(self, site, ranks, submit) -> list:
        """Dispatch one batch, record per-rank wall times and utilization."""
        t0 = time.perf_counter()
        timed = submit()  # [(result, task_wall_seconds), ...] in order
        elapsed = time.perf_counter() - t0
        if obs.enabled():
            busy = 0.0
            for idx, (_, dt) in enumerate(timed):
                busy += dt
                rank = int(ranks[idx]) if ranks is not None else idx
                obs.observe(
                    "executor.rank_wall_seconds", dt, rank=rank, backend=self.name
                )
            obs.count("executor.batches", 1.0, backend=self.name, site=site, mode="fanout")
            obs.count("executor.tasks", float(len(timed)), backend=self.name, site=site, mode="fanout")
            if elapsed > 0:
                obs.gauge(
                    "executor.utilization",
                    busy / (elapsed * self.workers),
                    backend=self.name,
                    site=site,
                )
            obs.complete(
                f"executor.{site}",
                cat="executor",
                wall_dur=elapsed,
                args={"backend": self.name, "tasks": len(timed), "busy_seconds": busy},
            )
        return [result for result, _ in timed]


class SerialExecutor(LocalExecutor):
    """Run every task inline on the simulation thread (reference backend)."""

    name = "serial"
    workers = 1

    def __init__(self, workers: int | None = None, *, fanout_min_work=None) -> None:
        # accepted (and ignored) so every backend shares a constructor shape
        del workers, fanout_min_work


def _timed_call(fn) -> tuple[object, float]:
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def _timed_spgemm(
    x: SpMat,
    y: SpMat,
    spec,
    mask: SpMat | None = None,
    mask_complement: bool = False,
    kernel: str | None = None,
) -> tuple[SpGemmResult, float]:
    t0 = time.perf_counter()
    out = spgemm(x, y, spec, mask=mask, mask_complement=mask_complement, kernel=kernel)
    return out, time.perf_counter() - t0


class ThreadExecutor(LocalExecutor):
    """Fan tasks across a host-local thread pool (lazily created)."""

    name = "thread"
    supports_closures = True
    fallback_chain = ("serial",)

    def __init__(
        self, workers: int | None = None, *, fanout_min_work: float | None = None
    ) -> None:
        self.workers = int(workers) if workers else _worker_default()
        self.fanout_min_work = (
            THREAD_FANOUT_MIN_WORK if fanout_min_work is None else float(fanout_min_work)
        )
        self._pool: ThreadPoolExecutor | None = None
        _LIVE_EXECUTORS.add(self)

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-exec"
            )
        return self._pool

    def _submit_thunks(self, thunks: list) -> list[tuple[object, float]]:
        pool = self._ensure_pool()
        futures = [pool.submit(_timed_call, fn) for fn in thunks]
        return [f.result() for f in futures]

    def _submit_spgemm(
        self, pairs: list, spec, masks: list, mask_complement: bool
    ) -> list[tuple[object, float]]:
        pool = self._ensure_pool()
        futures = [
            pool.submit(
                _timed_spgemm, x, y, spec, mk, mask_complement, self.kernel_mode
            )
            for (x, y), mk in zip(pairs, masks)
        ]
        return [f.result() for f in futures]

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        super().close()


# ---------------------------------------------------------------------------
# process backend: shared-memory ndarray transfer
# ---------------------------------------------------------------------------
#
# An SpMat is exported as one shared-memory segment holding the byte-
# concatenation of its coordinate and value arrays, plus a picklable
# manifest (segment name, dims, per-array dtype/length, monoid).  Workers
# attach and rebuild zero-copy views; results travel back the same way.
# With the fork start method the resource-tracker process is shared by
# parent and workers, so create/attach registrations and the single unlink
# stay consistent.


def _export_spmat(mat: SpMat):
    """Pack ``mat``'s arrays into a shared-memory segment → (manifest, shm)."""
    from multiprocessing import shared_memory

    arrays = [("rows", mat.rows), ("cols", mat.cols)] + [
        (f"v:{name}", mat.vals[name]) for name in mat.vals
    ]
    layout = []
    offset = 0
    for label, arr in arrays:
        arr = np.ascontiguousarray(arr)
        layout.append((label, str(arr.dtype), len(arr), offset))
        offset += arr.nbytes
    shm = None
    segment = None
    if offset > 0:  # SharedMemory rejects zero-size segments
        shm = shared_memory.SharedMemory(create=True, size=offset)
        segment = shm.name
        for (label, dtype, length, off), (_, arr) in zip(layout, arrays):
            view = np.ndarray((length,), dtype=dtype, buffer=shm.buf, offset=off)
            view[:] = np.ascontiguousarray(arr)
    manifest = {
        "segment": segment,
        "nrows": mat.nrows,
        "ncols": mat.ncols,
        "monoid": mat.monoid,
        "layout": layout,
    }
    return manifest, shm


def _import_spmat(manifest, *, copy: bool):
    """Rebuild an SpMat from a manifest → (mat, shm or None).

    With ``copy=False`` the arrays are zero-copy views into the segment:
    the caller must keep the returned shm object alive while using them.
    """
    from multiprocessing import shared_memory

    shm = None
    parts: dict[str, np.ndarray] = {}
    if manifest["segment"] is not None:
        shm = shared_memory.SharedMemory(name=manifest["segment"])
    for label, dtype, length, off in manifest["layout"]:
        if shm is None:
            arr = np.empty(0, dtype=dtype)
        else:
            arr = np.ndarray((length,), dtype=dtype, buffer=shm.buf, offset=off)
            if copy:
                arr = arr.copy()
        parts[label] = arr
    monoid = manifest["monoid"]
    vals = {name: parts[f"v:{name}"] for name in monoid.field_names}
    mat = SpMat(
        manifest["nrows"],
        manifest["ncols"],
        parts["rows"],
        parts["cols"],
        vals,
        monoid,
        canonical=True,
    )
    return mat, shm


def _release(shm, *, unlink: bool) -> None:
    if shm is not None:
        shm.close()
        if unlink:
            shm.unlink()


def _spgemm_shm_worker(
    a_manifest, b_manifest, spec, mask_manifest=None, mask_complement=False, kernel=None
):
    """Worker-side product: attach operands, compute, export the result."""
    a, a_shm = _import_spmat(a_manifest, copy=False)
    b, b_shm = _import_spmat(b_manifest, copy=False)
    mask, mask_shm = (
        _import_spmat(mask_manifest, copy=False)
        if mask_manifest is not None
        else (None, None)
    )
    try:
        t0 = time.perf_counter()
        res = spgemm(
            a, b, spec, mask=mask, mask_complement=mask_complement, kernel=kernel
        )
        dt = time.perf_counter() - t0
    finally:
        del a, b, mask  # drop the zero-copy views before detaching
        _release(a_shm, unlink=False)
        _release(b_shm, unlink=False)
        _release(mask_shm, unlink=False)
    out_manifest, out_shm = _export_spmat(res.matrix)
    _release(out_shm, unlink=False)  # parent copies out, then unlinks
    return out_manifest, res.ops, dt


class ProcessExecutor(LocalExecutor):
    """Fan local products across a (fork-context) process pool.

    Sidesteps the GIL entirely, at the price of moving operands and
    results between address spaces — done through shared-memory segments,
    with operands repeated inside a batch exported only once.  Closure
    batches (:meth:`run_tasks`) are not shippable and run inline; the
    products this backend accelerates are where the profile concentrates.
    """

    name = "process"
    supports_closures = False
    fallback_chain = ("thread", "serial")

    def __init__(
        self, workers: int | None = None, *, fanout_min_work: float | None = None
    ) -> None:
        self.workers = int(workers) if workers else _worker_default()
        self.fanout_min_work = (
            PROCESS_FANOUT_MIN_WORK
            if fanout_min_work is None
            else float(fanout_min_work)
        )
        self._pool: ProcessPoolExecutor | None = None
        _LIVE_EXECUTORS.add(self)

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            import multiprocessing

            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=ctx
            )
        return self._pool

    def _submit_spgemm(
        self, pairs: list, spec, masks: list, mask_complement: bool
    ) -> list[tuple[object, float]]:
        pool = self._ensure_pool()
        # export each distinct operand once, even when it appears in many
        # tasks (replicated adjacency matrices do, every batch)
        exported: dict[int, tuple[dict, object]] = {}
        for (x, y), mk in zip(pairs, masks):
            for mat in (x, y) + (() if mk is None else (mk,)):
                if id(mat) not in exported:
                    exported[id(mat)] = _export_spmat(mat)
        try:
            futures = [
                pool.submit(
                    _spgemm_shm_worker,
                    exported[id(x)][0],
                    exported[id(y)][0],
                    spec,
                    None if mk is None else exported[id(mk)][0],
                    mask_complement,
                    self.kernel_mode,
                )
                for (x, y), mk in zip(pairs, masks)
            ]
            out: list[tuple[object, float]] = []
            try:
                for f in futures:
                    manifest, ops, dt = f.result()
                    matrix, shm = _import_spmat(manifest, copy=True)
                    _release(shm, unlink=True)
                    out.append((SpGemmResult(matrix, ops), dt))
            except Exception:
                self._drain_result_segments(futures[len(out):])
                raise
            return out
        finally:
            for _, shm in exported.values():
                _release(shm, unlink=True)

    @staticmethod
    def _drain_result_segments(futures) -> None:
        """Unlink result segments of tasks that completed before a failure.

        When the pool breaks mid-batch, tasks that already finished have
        exported result segments the parent never imported; without this
        they would outlive the run (until atexit/resource-tracker cleanup).
        """
        from multiprocessing import shared_memory

        for f in futures:
            if not f.done() or f.cancelled():
                continue
            try:
                manifest, _, _ = f.result()
            except Exception:
                continue
            if manifest["segment"] is None:
                continue
            try:
                shm = shared_memory.SharedMemory(name=manifest["segment"])
            except FileNotFoundError:  # pragma: no cover - already reclaimed
                continue
            _release(shm, unlink=True)

    def _kill_pool_for_injection(self, site: str) -> None:
        """SIGKILL one live pool worker — a real death, not a simulated one.

        The subsequent batch submission then observes ``BrokenProcessPool``
        exactly as it would after an OOM-killed worker.  Workers spawn
        lazily, so a no-op task is run first to guarantee one exists.
        """
        pool = self._ensure_pool()
        pool.submit(int).result()
        procs = list(getattr(pool, "_processes", {}).values())
        if not procs:  # pragma: no cover - defensive
            raise WorkerPoolDied(self.name, site)
        os.kill(procs[0].pid, signal.SIGKILL)

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        super().close()


# ---------------------------------------------------------------------------
# selection
# ---------------------------------------------------------------------------

_BACKENDS: dict[str, type[LocalExecutor]] = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`resolve_executor` and ``REPRO_EXECUTOR``."""
    return tuple(_BACKENDS)


def resolve_executor(spec: "str | LocalExecutor | None" = None) -> LocalExecutor:
    """Turn an executor specification into a backend instance.

    ``spec`` may be an executor instance (returned as-is), a string
    ``"name"`` or ``"name:workers"`` (e.g. ``"thread:8"``), or ``None`` —
    in which case the ``REPRO_EXECUTOR`` environment variable is consulted
    and ``serial`` is the fallback.
    """
    if isinstance(spec, LocalExecutor):
        return spec
    if spec is None:
        spec = os.environ.get(EXECUTOR_ENV) or "serial"
    if not isinstance(spec, str):
        raise TypeError(
            f"executor must be a backend name or LocalExecutor, got {spec!r}"
        )
    name, _, workers_str = spec.partition(":")
    name = name.strip().lower()
    if name not in _BACKENDS:
        raise ValueError(
            f"unknown executor {name!r}; available: {', '.join(_BACKENDS)}"
        )
    workers = None
    if workers_str:
        workers = int(workers_str)
        if workers <= 0:
            raise ValueError(f"executor workers must be positive, got {workers}")
    return _BACKENDS[name](workers)


# ---------------------------------------------------------------------------
# reporting
# ---------------------------------------------------------------------------


def executor_skew_report(metrics, machine) -> str:
    """Per-rank real-vs-modeled skew table from captured metrics.

    For every simulated rank with fanned-out work, compares the wall-clock
    seconds its tasks actually took (the ``executor.rank_wall_seconds``
    histogram) against the ledger's modeled local-compute seconds.  The
    skew column is wall / modeled: uniform skew means the α-β model and the
    host kernel disagree only by a constant; non-uniform skew exposes ranks
    whose local work the model mis-prices.
    """
    series = metrics.series("executor.rank_wall_seconds")
    if not series:
        return "executor: no fanned-out batches recorded"
    per_rank: dict[int, tuple[float, int]] = {}
    for labels, hist in series.items():
        rank = int(dict(labels).get("rank", -1))
        total, count = per_rank.get(rank, (0.0, 0))
        per_rank[rank] = (total + hist.total, count + hist.count)
    rate = machine.cost.compute_rate
    lines = ["executor per-rank wall vs modeled compute:"]
    lines.append(f"{'rank':>6} {'tasks':>7} {'wall ms':>10} {'modeled ms':>11} {'skew':>7}")
    for rank in sorted(per_rank):
        wall, count = per_rank[rank]
        modeled = (
            float(machine.ledger.compute_per_rank[rank]) / rate
            if 0 <= rank < machine.p
            else 0.0
        )
        skew = f"{wall / modeled:7.2f}" if modeled > 0 else "      -"
        lines.append(
            f"{rank:>6} {count:>7} {wall * 1e3:>10.3f} {modeled * 1e3:>11.3f} {skew}"
        )
    return "\n".join(lines)
