"""The simulated distributed-memory machine.

The paper ran on Blue Waters with MPI; this package substitutes a simulated
bulk-synchronous p-rank machine (see DESIGN.md).  It provides:

* :class:`~repro.machine.machine.Machine` — p ranks, an α-β communication
  cost model (§5.1), per-rank memory accounting, and a critical-path ledger
  that reproduces §7.4's methodology: for each collective over a set of
  processors, the critical-path costs are max-merged over the participants
  before the collective's cost is added;
* :class:`~repro.machine.collectives.Group` — broadcast / reduce /
  allreduce / scatter / gather / allgather / sparse-reduce operations that
  both *move real payloads* between rank-local stores and charge the model
  costs, so distribution logic is genuinely exercised;
* :class:`~repro.machine.grid.Grid` — 1/2/3-dimensional processor grids
  with axis subgroup enumeration, the substrate of the SpGEMM variants;
* :mod:`~repro.machine.executor` — pluggable local-execution backends
  (serial / thread-pool / process-pool with shared-memory ndarray
  transfer) that fan the independent per-rank local kernels across host
  cores while keeping results and ledger totals bit-identical, and that
  degrade gracefully (process → thread → serial) when a pool dies.

Fault injection (``Machine(p, faults=...)``) lives in :mod:`repro.faults`
and hooks into every layer above; see ``docs/robustness.md``.
"""

from repro.machine.executor import (
    EXECUTOR_ENV,
    POOL_FAILURES,
    LocalExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    available_backends,
    executor_skew_report,
    resolve_executor,
)
from repro.machine.machine import CostParams, Ledger, Machine, MemoryLimitExceeded
from repro.machine.collectives import Group, payload_words
from repro.machine.grid import Grid, near_square_shape

__all__ = [
    "Machine",
    "CostParams",
    "Ledger",
    "MemoryLimitExceeded",
    "Group",
    "payload_words",
    "Grid",
    "near_square_shape",
    "EXECUTOR_ENV",
    "POOL_FAILURES",
    "LocalExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "available_backends",
    "resolve_executor",
    "executor_skew_report",
]
