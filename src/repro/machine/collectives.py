"""Collective operations over rank groups: real data movement + model costs.

A :class:`Group` is an ordered set of ranks.  Its collectives take a list of
per-participant payloads (index ``i`` belongs to ``group.ranks[i]``), return
the moved payloads, and charge the machine's ledger with the α-β cost of the
operation, sized by the *actual* payload sizes — so the simulator's cost
reports reflect what the distribution logic really shipped.

Payloads are :class:`~repro.sparse.SpMat` matrices, numpy arrays, or
``None``; :func:`payload_words` measures them in 8-byte words.

Bad wiring fails loudly: group construction rejects empty, duplicate, and
out-of-range rank sets; every rooted collective validates its ``root``
index; payload lists must match the group size exactly.

When the machine carries an armed :class:`~repro.faults.FaultPlan`, the
moving payloads of ``bcast`` / ``reduce`` / ``sparse_reduce`` /
``allgather`` pass through the plan's delivery hook, which may perturb an
in-flight *copy* (senders' buffers are never mutated).  With the plan's
opt-in checksum guard (``checksum:1``) each such collective verifies a
CRC-32 of the payload across the transfer and raises
:class:`~repro.faults.CorruptPayload` on mismatch; without the guard the
corruption propagates silently, as it would on real hardware.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.faults.plan import CorruptPayload, payload_checksum
from repro.sparse.spmatrix import SpMat

__all__ = ["Group", "payload_words"]


def payload_words(payload) -> int:
    """Size of a payload in 8-byte words."""
    if payload is None:
        return 0
    if isinstance(payload, SpMat):
        return payload.words()
    if isinstance(payload, np.ndarray):
        return (payload.nbytes + 7) // 8
    if isinstance(payload, (list, tuple)):
        return sum(payload_words(x) for x in payload)
    if isinstance(payload, dict):
        return sum(payload_words(x) for x in payload.values())
    raise TypeError(f"cannot size payload of type {type(payload).__name__}")


class Group:
    """An ordered set of ranks participating in collectives."""

    def __init__(self, machine, ranks: np.ndarray) -> None:
        ranks = np.asarray(ranks, dtype=np.int64)
        if len(np.unique(ranks)) != len(ranks):
            raise ValueError("group ranks must be distinct")
        if len(ranks) == 0:
            raise ValueError("empty group")
        if ranks.min() < 0 or ranks.max() >= machine.p:
            raise ValueError(f"rank out of range for machine with p={machine.p}")
        self.machine = machine
        self.ranks = ranks
        # captured at construction: an elastic shrink renumbers ranks, so a
        # group built against the old numbering must fail loudly, not
        # silently charge the wrong survivors
        self._epoch = getattr(machine, "epoch", 0)

    @property
    def size(self) -> int:
        return len(self.ranks)

    def _check(self, payloads: Sequence) -> None:
        if self._epoch != getattr(self.machine, "epoch", 0):
            raise RuntimeError(
                f"group built at machine epoch {self._epoch} used after a "
                f"shrink (epoch is now {self.machine.epoch}); rebuild groups "
                f"from the recovered layout"
            )
        if len(payloads) != self.size:
            raise ValueError(
                f"expected {self.size} payloads (one per rank), got {len(payloads)}"
            )

    def _check_root(self, root: int) -> None:
        if not 0 <= root < self.size:
            raise ValueError(
                f"root index {root} out of range for group of size {self.size}"
            )

    def _deliver(self, payload, site: str):
        """Run one moving payload through the fault plan's delivery hook.

        Returns the payload (possibly a corrupted copy).  With the
        checksum guard armed, verifies a CRC-32 across the transfer and
        raises :class:`CorruptPayload` on mismatch — detection is a real
        mechanism here, not a flag set by the injector.
        """
        plan = self.machine._fault_hook
        if plan is None:
            return payload
        sent_crc = payload_checksum(payload) if plan.checksum else None
        payload, _ = plan.deliver(payload, site)
        if plan.checksum:
            received_crc = payload_checksum(payload)
            if received_crc != sent_crc:
                plan.note(
                    "corrupt",
                    "detected",
                    site=site,
                    sent_crc=sent_crc,
                    received_crc=received_crc,
                )
                raise CorruptPayload(site, plan.step)
        return payload

    # -- collectives -----------------------------------------------------------

    def bcast(self, payloads: Sequence, root: int = 0) -> list:
        """Broadcast the root's payload to every participant.

        ``root`` is an index into the group, not a global rank.
        """
        self._check(payloads)
        self._check_root(root)
        data = payloads[root]
        self.machine.charge_collective(self.ranks, payload_words(data), weight=2.0)
        data = self._deliver(data, "bcast")
        return [data for _ in range(self.size)]

    def reduce(
        self, payloads: Sequence, combine: Callable, root: int = 0
    ) -> object:
        """Fold all payloads with ``combine`` onto the root; returns the result.

        The charged size is the maximum of input and output sizes (each
        processor "owns x words at the start or end" — §5.1).
        """
        self._check(payloads)
        self._check_root(root)
        present = [p for p in payloads if p is not None]
        if not present:
            return None
        acc = present[0]
        for nxt in present[1:]:
            acc = combine(acc, nxt)
        x = max(
            max(payload_words(p) for p in payloads),
            payload_words(acc),
        )
        self.machine.charge_collective(self.ranks, x, weight=2.0)
        return self._deliver(acc, "reduce")

    def allreduce(self, payloads: Sequence, combine: Callable) -> list:
        """Reduce + broadcast (charged as both)."""
        self._check(payloads)
        acc = self.reduce(payloads, combine)
        out = self.bcast([acc] * self.size, root=0)
        return out

    def sparse_reduce(self, payloads: Sequence, combine: Callable, root: int = 0):
        """Sparse reduction: cost scales with the *output* nonzeros (§5.1).

        Charged ``O(β·x_out + α·log q)`` with weight 2, where ``x_out`` is
        the reduced result's size — cheaper than a dense reduce when inputs
        overlap little.
        """
        self._check(payloads)
        self._check_root(root)
        present = [p for p in payloads if p is not None]
        if not present:
            return None
        acc = present[0]
        for nxt in present[1:]:
            acc = combine(acc, nxt)
        self.machine.charge_collective(self.ranks, payload_words(acc), weight=2.0)
        return self._deliver(acc, "sparse_reduce")

    def scatter(self, parts: Sequence, root: int = 0) -> list:
        """Distribute ``parts[i]`` (held by the root) to participant ``i``."""
        self._check(parts)
        self._check_root(root)
        x = max(payload_words(p) for p in parts)
        self.machine.charge_collective(self.ranks, x, weight=1.0)
        return list(parts)

    def gather(self, payloads: Sequence, root: int = 0) -> list:
        """Collect every participant's payload at the root (returns the list)."""
        self._check(payloads)
        self._check_root(root)
        x = sum(payload_words(p) for p in payloads)
        self.machine.charge_collective(self.ranks, x, weight=1.0)
        return list(payloads)

    def allgather(self, payloads: Sequence) -> list[list]:
        """Every participant receives every payload."""
        self._check(payloads)
        x = sum(payload_words(p) for p in payloads)
        self.machine.charge_collective(self.ranks, x, weight=1.0)
        shipped = self._deliver(list(payloads), "allgather")
        return [list(shipped) for _ in range(self.size)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Group(ranks={self.ranks.tolist()})"
