"""Processor grids: mapping ranks to 1/2/3-D coordinates.

All SpGEMM variants (§5.2) operate on processor grids: 1D algorithms on a
``p`` vector, 2D on ``pr × pc``, 3D on ``p1 × p2 × p3``.  A :class:`Grid`
wraps a machine with a row-major rank ↔ coordinate mapping and enumerates
the axis subgroups (grid rows / columns / fibers) collectives run over.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from repro.machine.machine import Machine

__all__ = [
    "Grid",
    "factorizations",
    "near_square_shape",
    "nearest_feasible_p",
    "survivor_map",
]


def near_square_shape(p: int) -> tuple[int, int]:
    """The most-square ``pr × pc`` factorization of ``p`` (pr ≤ pc).

    The canonical helper for picking a resting 2D layout; the distributed
    engine and the tests import it from here.
    """
    best = (1, p)
    for d in range(1, int(math.isqrt(p)) + 1):
        if p % d == 0:
            best = (d, p // d)
    return best


def nearest_feasible_p(p_max: int, feasible=None) -> int:
    """The largest rank count ``q ≤ p_max`` the active variant can run on.

    ``feasible`` is a predicate on candidate rank counts (``None`` accepts
    everything — the :class:`~repro.spgemm.selector.AutoPolicy` case, which
    enumerates grids for any ``p``).  Pinned/restricted policies constrain
    the shape (CombBLAS needs a perfect square; CA-MFBC needs ``p/c`` a
    perfect square), so after losing ranks the elastic recovery layer asks
    this helper for the nearest grid it can actually rebuild.
    """
    if p_max < 1:
        raise ValueError(f"no feasible grid at or below p={p_max}")
    for q in range(int(p_max), 0, -1):
        if feasible is None or feasible(q):
            return q
    raise ValueError(
        f"no feasible grid at or below p={p_max} for the active variant"
    )


def survivor_map(p: int, dead) -> np.ndarray:
    """Old-rank → new-rank renumbering after removing ``dead`` ranks.

    Survivors are compacted in ascending order onto ``0..p'-1``; removed
    ranks map to ``-1``.  This is the canonical renumbering
    :meth:`~repro.machine.machine.Machine.shrink` applies to its ledger and
    the recovery layer applies to every resting block layout.
    """
    dead = np.asarray(sorted(set(int(r) for r in dead)), dtype=np.int64)
    if len(dead) and (dead.min() < 0 or dead.max() >= p):
        raise ValueError(f"dead ranks {dead.tolist()} out of range for p={p}")
    if len(dead) >= p:
        raise ValueError(f"cannot remove all {p} ranks")
    mapping = np.full(p, -1, dtype=np.int64)
    alive = np.setdiff1d(np.arange(p, dtype=np.int64), dead)
    mapping[alive] = np.arange(len(alive), dtype=np.int64)
    return mapping


class Grid:
    """A d-dimensional processor grid over all ranks of ``machine``."""

    def __init__(self, machine: Machine, dims: tuple[int, ...]) -> None:
        dims = tuple(int(d) for d in dims)
        if any(d <= 0 for d in dims):
            raise ValueError(f"grid dims must be positive, got {dims}")
        if math.prod(dims) != machine.p:
            raise ValueError(
                f"grid {dims} has {math.prod(dims)} cells but machine has "
                f"p={machine.p} ranks"
            )
        self.machine = machine
        self.dims = dims

    @property
    def ndim(self) -> int:
        return len(self.dims)

    # -- rank/coordinate mapping (row-major) -----------------------------------

    def rank(self, coords: tuple[int, ...]) -> int:
        if len(coords) != self.ndim:
            raise ValueError(f"expected {self.ndim} coordinates, got {len(coords)}")
        r = 0
        for c, d in zip(coords, self.dims):
            if not 0 <= c < d:
                raise ValueError(f"coordinate {coords} out of grid {self.dims}")
            r = r * d + c
        return r

    def coords(self, rank: int) -> tuple[int, ...]:
        if not 0 <= rank < self.machine.p:
            raise ValueError(f"rank {rank} out of range")
        out = []
        for d in reversed(self.dims):
            out.append(rank % d)
            rank //= d
        return tuple(reversed(out))

    def all_coords(self):
        """Iterate every coordinate tuple in rank order."""
        return itertools.product(*(range(d) for d in self.dims))

    # -- subgroups ----------------------------------------------------------------

    def axis_ranks(self, axis: int, fixed: tuple[int, ...]) -> np.ndarray:
        """Ranks of the fiber along ``axis`` with the other coordinates fixed.

        ``fixed`` gives the coordinates of the *other* axes in axis order
        (skipping ``axis`` itself).
        """
        if not 0 <= axis < self.ndim:
            raise ValueError(f"axis {axis} out of range for {self.ndim}-d grid")
        if len(fixed) != self.ndim - 1:
            raise ValueError(
                f"need {self.ndim - 1} fixed coordinates, got {len(fixed)}"
            )
        ranks = []
        for i in range(self.dims[axis]):
            coords = list(fixed)
            coords.insert(axis, i)
            ranks.append(self.rank(tuple(coords)))
        return np.asarray(ranks, dtype=np.int64)

    def axis_group(self, axis: int, fixed: tuple[int, ...]):
        return self.machine.group(self.axis_ranks(axis, fixed))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Grid(dims={self.dims})"


def factorizations(p: int, ndim: int) -> list[tuple[int, ...]]:
    """All ordered factorizations of ``p`` into ``ndim`` positive factors.

    The search space of the CTF-style mapping selector: e.g. ``p=8, ndim=3``
    yields (1,1,8), (1,2,4), (2,2,2), (8,1,1), ...
    """
    if ndim == 1:
        return [(p,)]
    out: list[tuple[int, ...]] = []
    for d in range(1, p + 1):
        if p % d == 0:
            for rest in factorizations(p // d, ndim - 1):
                out.append((d,) + rest)
    return out
