"""The simulated machine: ranks, the α-β cost model, and the cost ledger.

Cost model (§5.1 of the paper): sending a message of ``x`` words costs
``α + β·x``; a collective (scatter, gather, broadcast, reduction,
allreduction) over ``q`` processors where each processor owns at most ``x``
words costs ``O(β·x + α·log q)``.  The concrete constants follow the
paper's §7.4 profiling methodology: broadcast and reduce of ``x`` words over
``q`` processors cost ``2x·β + 2⌈log₂ q⌉·α`` — twice scatter/allgather.

Critical-path accounting also follows §7.4: every rank carries running
critical-path totals (modeled time, words, messages); a collective first
max-merges each total over its participants, then adds its own cost to all
of them.  At the end of a run, the maximum over ranks is "the greatest
amount of data communicated along any dependent sequence of collectives".
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field

import numpy as np

from repro.faults.plan import DeadlineExceeded, FaultPlan, resolve_fault_plan
from repro.machine.executor import LocalExecutor, resolve_executor
from repro.obs import api as obs

__all__ = [
    "CostParams",
    "Ledger",
    "Machine",
    "MemoryLimitExceeded",
    "MEMORY_ENV",
    "SPILL_DIR_ENV",
]

#: environment variables consulted when ``Machine(memory_words=None)`` /
#: ``Machine(spill_dir=None)`` — the ambient budget knob CI's
#: memory-pressure leg turns (see docs/robustness.md).
MEMORY_ENV = "REPRO_MEMORY"
SPILL_DIR_ENV = "REPRO_SPILL_DIR"


class MemoryLimitExceeded(RuntimeError):
    """A rank's tracked allocation exceeded the machine's memory budget."""


@dataclass(frozen=True)
class CostParams:
    """Machine constants.

    Defaults model a Cray-class interconnect in rough orders of magnitude:
    ~1 µs latency, ~1 ns/word effective inverse bandwidth (8 GB/s per rank),
    and 10⁹ elementary sparse-kernel operations/second per rank.  The
    absolute values only set the α/β/compute balance — the paper's claims
    are about relative costs, which these ratios (α ≫ β, per §5.1) preserve.
    """

    alpha: float = 1.0e-6  # seconds per message
    beta: float = 1.25e-9  # seconds per 8-byte word
    compute_rate: float = 1.0e9  # elementary kernel ops per second per rank
    #: modeled node-local spill I/O (the out-of-core path): per-segment
    #: setup latency and per-word transfer, ~0.8 GB/s effective — an order
    #: of magnitude slower than the interconnect, which is what makes
    #: spilling a degradation rather than a free lunch.
    spill_alpha: float = 1.0e-4  # seconds per spilled segment
    spill_beta: float = 1.0e-8  # seconds per 8-byte word spilled
    #: fixed per-generalized-matmul overhead per rank (kernel setup, sparse
    #: format conversion, mapping decisions — §6.2's redistribution/setup
    #: machinery).  This is what makes high-diameter graphs (many small
    #: products) slower per edge even at low processor counts, as the paper
    #: observes for the patent citation graph (§7.2).
    product_overhead: float = 5.0e-5

    def __post_init__(self) -> None:
        if self.alpha < self.beta:
            raise ValueError(
                f"cost model requires alpha >= beta (§5.1), got "
                f"alpha={self.alpha}, beta={self.beta}"
            )


@dataclass
class Ledger:
    """Per-rank running totals and critical-path accumulators."""

    p: int
    # critical-path accumulators (max-merged at collectives)
    time: np.ndarray = field(default=None)  # modeled seconds, comm + compute
    comm_time: np.ndarray = field(default=None)  # modeled seconds, comm only
    words: np.ndarray = field(default=None)  # words along dependent chains
    msgs: np.ndarray = field(default=None)  # messages along dependent chains
    # flat totals (not path-maxed): useful for traffic volume reports
    total_words: float = 0.0
    total_msgs: float = 0.0
    compute_ops: float = 0.0
    #: traffic volume per operation category ("bcast", "reduce",
    #: "redistribute", "input", ...) — answers "where do the words go?"
    category_words: dict = None

    #: per-rank elementary-operation totals (set in __post_init__)
    compute_per_rank: np.ndarray = None

    def __post_init__(self) -> None:
        self.time = np.zeros(self.p)
        self.comm_time = np.zeros(self.p)
        self.words = np.zeros(self.p)
        self.msgs = np.zeros(self.p)
        self.category_words = {}
        self.compute_per_rank = np.zeros(self.p)

    # -- critical-path reads ------------------------------------------------

    def critical_time(self) -> float:
        """Modeled end-to-end execution time (max over ranks)."""
        return float(self.time.max()) if self.p else 0.0

    def critical_comm_time(self) -> float:
        return float(self.comm_time.max()) if self.p else 0.0

    def critical_words(self) -> float:
        """Paper's ``W``: words along the heaviest dependent chain."""
        return float(self.words.max()) if self.p else 0.0

    def critical_msgs(self) -> float:
        """Paper's ``S``: messages along the longest dependent chain."""
        return float(self.msgs.max()) if self.p else 0.0

    def snapshot(self) -> dict[str, float]:
        return {
            "time": self.critical_time(),
            "comm_time": self.critical_comm_time(),
            "words": self.critical_words(),
            "msgs": self.critical_msgs(),
            "total_words": self.total_words,
            "total_msgs": self.total_msgs,
            "compute_ops": self.compute_ops,
        }

    def load_imbalance(self) -> float:
        """Max/mean ratio of per-rank elementary operations (1.0 = perfect).

        The quantity behind §5.2's balls-into-bins load-balance assumption:
        after random vertex relabeling, oblivious blocks receive work
        proportional to their area, so this ratio stays near 1.
        """
        mean = self.compute_per_rank.mean()
        if mean <= 0:
            return 1.0
        return float(self.compute_per_rank.max() / mean)

    def traffic_breakdown(self) -> dict[str, float]:
        """Word volume per operation category, sorted descending —
        'where do the words go?' (cf. the §7.4 profiling discussion)."""
        return dict(
            sorted(self.category_words.items(), key=lambda kv: -kv[1])
        )


class Machine:
    """A simulated p-rank distributed-memory machine.

    Parameters
    ----------
    p:
        Number of ranks (the paper benchmarks powers of four, but any
        positive count works).
    cost:
        α-β model constants (keyword-only).
    memory_words:
        Optional per-rank memory budget ``M`` in 8-byte words
        (keyword-only); ``None`` consults the ``REPRO_MEMORY`` environment
        variable.  Tracked allocations beyond it first trigger
        spill-to-disk relief (:mod:`repro.memory`) and only then raise
        :class:`MemoryLimitExceeded`, modeling the paper's
        ``M = Ω(c·m/p)`` feasibility constraints.
    spill_dir:
        Directory for the spill store's evicted-block segments
        (keyword-only); ``None`` consults ``REPRO_SPILL_DIR`` and falls
        back to a private temporary directory on first eviction.
    executor:
        Local-execution backend for the independent per-rank kernels
        (keyword-only): a :class:`~repro.machine.executor.LocalExecutor`
        instance, a backend name like ``"thread"`` / ``"process:8"``, or
        ``None`` to consult the ``REPRO_EXECUTOR`` environment variable
        (default ``serial``).  Results and ledger totals are bit-identical
        across backends; only host wall-clock time changes.
    faults:
        Deterministic fault injection (keyword-only): a
        :class:`~repro.faults.FaultPlan`, a spec string like
        ``"seed:3,crash:0.05"`` (see :mod:`repro.faults.plan` for the
        grammar; ``""``/``"none"`` disable), or ``None`` to consult the
        ``REPRO_FAULTS`` environment variable (default: no injection).
        An armed plan hooks the charge paths, the collectives' payload
        delivery, and the executor's batch dispatch; an inert plan (all
        rates zero, no script) costs the hot paths nothing.
    check:
        Default correctness-checking level for engines built on this
        machine (keyword-only): a :class:`~repro.check.engine.CheckConfig`,
        a spec string (``"cheap"`` / ``"full"`` / ``"sample:N"``), or
        ``None`` to consult the ``REPRO_CHECK`` environment variable.
        The machine itself never checks anything — the resolved config is
        stored on ``self.check`` for :class:`~repro.dist.DistributedEngine`
        to pick up at construction.
    deadline:
        Optional modeled-time budget in seconds (keyword-only).  When the
        critical-path clock passes it, the next charge raises
        :class:`~repro.faults.DeadlineExceeded` — a ledger-charged, clean
        termination for straggler pile-ups and recovery storms that would
        otherwise spin forever.
    elastic:
        In-flight rank-failure recovery (keyword-only): an
        :class:`~repro.elastic.ElasticPolicy`, a spec string
        (``"replica"`` / ``"replica:STRIDE"`` / ``"source"``; ``"off"``
        disables), or ``None`` to consult the ``REPRO_ELASTIC``
        environment variable.  The machine only stores the resolved
        policy; :class:`~repro.dist.DistributedEngine` maintains the
        redundancy and the MFBC driver triggers the recovery.
    kernel:
        Kernel-dispatch mode for the local SpGEMM tier (keyword-only):
        ``"generic"`` / ``"auto"`` / ``"fast"``, or ``None`` to defer to
        the process default and the ``REPRO_KERNEL`` environment variable
        per product (see :mod:`repro.sparse.dispatch`).  Every mode is
        bit-identical; only host wall-clock time changes.
    """

    def __init__(
        self,
        p: int,
        *,
        cost: CostParams | None = None,
        memory_words: int | None = None,
        executor: "LocalExecutor | str | None" = None,
        faults: "FaultPlan | str | None" = None,
        check=None,
        deadline: float | None = None,
        elastic=None,
        kernel: str | None = None,
        spill_dir: str | None = None,
    ) -> None:
        if p <= 0:
            raise ValueError(f"p must be positive, got {p}")
        self.p = int(p)
        self.cost = cost or CostParams()
        self.faults = resolve_fault_plan(faults)
        #: the hot-path guard: None unless the plan can actually fire
        self._fault_hook = (
            self.faults if self.faults is not None and self.faults.armed else None
        )
        if memory_words is None:
            env = os.environ.get(MEMORY_ENV, "").strip()
            if env and env.lower() not in ("none", "off"):
                memory_words = int(env)
        if memory_words is not None and memory_words <= 0:
            raise ValueError(
                f"memory_words must be positive, got {memory_words}"
            )
        if self._fault_hook is not None and memory_words is not None:
            memory_words = self.faults.tighten_memory(memory_words)
        self.memory_words = memory_words
        if spill_dir is None:
            spill_dir = os.environ.get(SPILL_DIR_ENV) or None
        # deferred import: repro.memory imports repro.faults → fine, but
        # keep the constructor import-light like the other subsystems
        from repro.memory.manager import MemoryManager

        #: the spill/eviction manager (see docs/robustness.md, memory ladder)
        self.memory = MemoryManager(self, spill_dir=spill_dir)
        self.executor = resolve_executor(executor)
        if self._fault_hook is not None:
            self.executor.fault_plan = self.faults
        if kernel is not None:
            from repro.sparse.dispatch import resolve_kernel_mode

            kernel = resolve_kernel_mode(kernel)
            self.executor.kernel_mode = kernel
        self.kernel = kernel
        if check is not None:
            # deferred import: repro.check imports repro.dist → this module
            from repro.check.engine import resolve_check_config

            check = resolve_check_config(check, env=False)
        self.check = check
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        self.deadline = deadline
        # deferred import: repro.elastic.recovery imports repro.dist → here
        from repro.elastic.policy import resolve_elastic

        self.elastic = resolve_elastic(elastic)
        #: machine reconfiguration counter; bumped by :meth:`shrink` so
        #: stale rank-indexed objects (groups, layouts) fail loudly.
        self.epoch = 0
        #: :class:`~repro.elastic.RecoveryReport` per completed recovery.
        self.recoveries: list = []
        self.ledger = Ledger(self.p)
        self._mem_used = np.zeros(self.p, dtype=np.int64)
        self._mem_peak = np.zeros(self.p, dtype=np.int64)

    # -- memory tracking -----------------------------------------------------

    def allocate(self, rank: int, words: int, *, site: str = "allocate") -> None:
        """Track ``words`` of new allocation on ``rank``.

        Over budget, the memory manager first tries to *relieve* the rank
        by spilling cold blocks (see :mod:`repro.memory`); only when that
        cannot free enough does :class:`MemoryLimitExceeded` raise — and
        the failed allocation is rolled back, so the peak only ever
        records allocations that actually fit (``tracked peak ≤ budget``
        whenever a budgeted run completes).
        """
        rank = int(rank)
        words = int(words)
        self._mem_used[rank] += words
        budget = self.memory_words
        if budget is not None and self._mem_used[rank] > budget:
            self.memory.relieve(
                rank, int(self._mem_used[rank] - budget), site=site
            )
            if self._mem_used[rank] > budget:
                needed = int(self._mem_used[rank])
                self._mem_used[rank] -= words  # failed allocation rolls back
                pressured = (
                    self.faults is not None and self.faults.mem is not None
                )
                if self.faults is not None:
                    self.faults.note(
                        "mem",
                        "detected",
                        site=site,
                        rank=rank,
                        needed_words=needed,
                        budget_words=int(budget),
                    )
                elif obs.enabled():
                    obs.count("memory.oom", 1.0, site=site)
                raise MemoryLimitExceeded(
                    f"rank {rank} needs {needed} words but the per-rank "
                    f"memory budget is {budget}"
                    + (
                        " (tightened by injected memory pressure)"
                        if pressured
                        else ""
                    )
                )
        if self._mem_used[rank] > self._mem_peak[rank]:
            self._mem_peak[rank] = self._mem_used[rank]

    def charge_allocation(
        self, charges: dict[int, int], *, site: str = "allocate"
    ) -> None:
        """Atomically track a multi-rank allocation (all ranks or none).

        Used by :class:`~repro.dist.DistMat` to charge its blocks: a raise
        partway through must not leave earlier ranks charged, or the
        driver's retry after a ladder rung would double-count them.
        """
        done: list[tuple[int, int]] = []
        try:
            for rank, words in charges.items():
                self.allocate(rank, words, site=site)
                done.append((rank, words))
        except MemoryLimitExceeded:
            for rank, words in done:
                self.free(rank, words)
            raise

    def free(self, rank: int, words: int) -> None:
        self._mem_used[rank] = max(0, self._mem_used[rank] - int(words))

    def memory_used(self, rank: int | None = None) -> int:
        if rank is None:
            return int(self._mem_used.max()) if self.p else 0
        return int(self._mem_used[rank])

    def memory_peak(self, rank: int | None = None) -> int:
        """High-water mark of tracked allocation (per rank or machine-wide)."""
        if rank is None:
            return int(self._mem_peak.max()) if self.p else 0
        return int(self._mem_peak[rank])

    def reset_memory(self) -> None:
        """Forget all tracked allocations *and* the per-rank peaks.

        Repeated runs on one machine must start from a clean slate: a
        stale high-water mark would misreport the new run's footprint and
        leaked usage from a crashed run would eat the budget
        (see the regression test in test_machine.py).
        """
        self._mem_used[:] = 0
        self._mem_peak[:] = 0

    # -- cost charging ---------------------------------------------------------

    def charge_collective(
        self,
        ranks: np.ndarray | list[int],
        words_per_rank: float,
        weight: float = 2.0,
        category: str = "collective",
    ) -> None:
        """Charge one collective over ``ranks``.

        ``words_per_rank`` is the maximum words any participant owns at the
        start or end (the paper's ``x``); ``weight`` is 2 for
        broadcast/reduce-class collectives and 1 for scatter/gather-class
        ones (§7.4's constants).  ``category`` tags the traffic for the
        per-category volume breakdown.
        """
        ranks = np.asarray(ranks, dtype=np.int64)
        q = len(ranks)
        if q <= 1:
            return  # single-rank collectives are free (no communication)
        if self._fault_hook is not None:
            # may skew a straggler's clock or raise RankFailure
            self._fault_hook.on_collective(self, ranks, category)
        lg = math.ceil(math.log2(q))
        t = weight * (words_per_rank * self.cost.beta + lg * self.cost.alpha)
        msgs = weight * lg
        led = self.ledger
        # §7.4: max-merge each critical-path accumulator over participants,
        # then add the collective's cost.
        start = float(led.time[ranks].max())
        led.time[ranks] = start + t
        led.comm_time[ranks] = led.comm_time[ranks].max() + t
        led.words[ranks] = led.words[ranks].max() + weight * words_per_rank
        led.msgs[ranks] = led.msgs[ranks].max() + msgs
        led.total_words += weight * words_per_rank * q
        led.total_msgs += msgs * q
        led.category_words[category] = (
            led.category_words.get(category, 0.0) + weight * words_per_rank * q
        )
        if obs.enabled():
            obs.complete(
                category,
                cat="collective",
                modeled_ts=start,
                modeled_dur=t,
                args={
                    "ranks": q,
                    "words": weight * words_per_rank,
                    "msgs": msgs,
                    "volume_words": weight * words_per_rank * q,
                },
            )
            obs.count("machine.collectives", 1.0, category=category)
            obs.count("machine.words", weight * words_per_rank * q, category=category)
            obs.count("machine.msgs", msgs * q, category=category)
        if self.deadline is not None:
            self._check_deadline(category)

    def charge_pointtopoint(self, src: int, dst: int, words: float) -> None:
        """Charge one point-to-point message (used by redistribution)."""
        if self._fault_hook is not None:
            self._fault_hook.on_collective(self, [src, dst], "p2p")
        t = self.cost.alpha + words * self.cost.beta
        led = self.ledger
        start = max(led.time[src], led.time[dst])
        led.time[[src, dst]] = start + t
        cstart = max(led.comm_time[src], led.comm_time[dst])
        led.comm_time[[src, dst]] = cstart + t
        wstart = max(led.words[src], led.words[dst])
        led.words[[src, dst]] = wstart + words
        mstart = max(led.msgs[src], led.msgs[dst])
        led.msgs[[src, dst]] = mstart + 1
        led.total_words += words
        led.total_msgs += 1
        led.category_words["p2p"] = led.category_words.get("p2p", 0.0) + words
        if obs.enabled():
            obs.complete(
                "p2p",
                cat="collective",
                modeled_ts=float(start),
                modeled_dur=t,
                args={"ranks": 2, "words": words, "msgs": 1, "volume_words": words},
            )
            obs.count("machine.collectives", 1.0, category="p2p")
            obs.count("machine.words", words, category="p2p")
            obs.count("machine.msgs", 1.0, category="p2p")
        if self.deadline is not None:
            self._check_deadline("p2p")

    def charge_compute(self, ranks: np.ndarray | list[int], ops_per_rank: float) -> None:
        """Charge local computation (modeled time only; no traffic)."""
        ranks = np.asarray(ranks, dtype=np.int64)
        self.ledger.time[ranks] += ops_per_rank / self.cost.compute_rate
        self.ledger.compute_ops += ops_per_rank * len(ranks)
        self.ledger.compute_per_rank[ranks] += ops_per_rank
        if self.deadline is not None:
            self._check_deadline("compute")

    def charge_overhead(self, seconds: float) -> None:
        """Charge a fixed per-operation overhead on every rank (bulk
        synchronous: all ranks pay it together)."""
        self.ledger.time += seconds
        if self.deadline is not None:
            self._check_deadline("overhead")

    def charge_spill(
        self, rank: int | None, words: int, *, op: str = "spill"
    ) -> None:
        """Charge one spill-store segment transfer (modeled local I/O).

        ``rank=None`` charges the busiest rank (machine-wide staging).
        Spill traffic is node-local, so only the rank's modeled clock and
        the ``"spill"`` volume category move — never the critical-path
        words/messages, which track interconnect traffic.
        """
        if self.p == 0 or words <= 0:
            return
        if rank is None:
            rank = int(np.argmax(self.ledger.time))
        t = self.cost.spill_alpha + float(words) * self.cost.spill_beta
        led = self.ledger
        led.time[rank] += t
        led.total_words += float(words)
        led.category_words["spill"] = (
            led.category_words.get("spill", 0.0) + float(words)
        )
        if self.deadline is not None:
            self._check_deadline(op)

    def _check_deadline(self, site: str) -> None:
        """Raise once the modeled critical path overruns the budget.

        The charge that tripped the guard stays on the ledger — the machine
        spent the time before noticing it was over budget, exactly like a
        wall-clock job limit.
        """
        modeled = float(self.ledger.time.max()) if self.p else 0.0
        if modeled <= self.deadline:
            return
        if self.faults is not None:
            self.faults.note(
                "deadline",
                "detected",
                site=site,
                modeled=modeled,
                deadline=self.deadline,
            )
        elif obs.enabled():
            obs.count("machine.deadline", 1.0, site=site)
        raise DeadlineExceeded(self.deadline, modeled, site)

    # -- elasticity ----------------------------------------------------------

    def shrink(self, dead) -> np.ndarray:
        """Remove ``dead`` ranks, compacting survivors onto ``0..p'-1``.

        Returns the old-rank → new-rank mapping (``-1`` for removed ranks)
        from :func:`~repro.machine.grid.survivor_map`.  Survivors keep their
        ledger history — critical-path clocks, per-rank compute and memory
        accounting are sliced, never reset — so post-recovery ledger
        invariants still hold.  Bumps :attr:`epoch`; groups built before the
        shrink refuse to operate afterwards.
        """
        # deferred import: grid.py imports this module at the top level
        from repro.machine.grid import survivor_map

        mapping = survivor_map(self.p, dead)
        alive = np.flatnonzero(mapping >= 0)
        led = self.ledger
        led.time = led.time[alive].copy()
        led.comm_time = led.comm_time[alive].copy()
        led.words = led.words[alive].copy()
        led.msgs = led.msgs[alive].copy()
        led.compute_per_rank = led.compute_per_rank[alive].copy()
        led.p = len(alive)
        self._mem_used = self._mem_used[alive].copy()
        self._mem_peak = self._mem_peak[alive].copy()
        self.p = len(alive)
        self.epoch += 1
        return mapping

    def barrier(self) -> None:
        """Synchronize all ranks' modeled clocks (bulk-synchronous step)."""
        led = self.ledger
        led.time[:] = led.time.max()

    # -- groups -------------------------------------------------------------

    def group(self, ranks) -> "Group":
        from repro.machine.collectives import Group

        return Group(self, np.asarray(ranks, dtype=np.int64))

    def world(self) -> "Group":
        return self.group(np.arange(self.p))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        faults = f", faults={self.faults.describe()}" if self.faults else ""
        deadline = f", deadline={self.deadline}" if self.deadline is not None else ""
        elastic = f", elastic={self.elastic.describe()}" if self.elastic else ""
        kernel = f", kernel={self.kernel}" if self.kernel is not None else ""
        return (
            f"Machine(p={self.p}, M={self.memory_words}, "
            f"executor={self.executor.name}{faults}{deadline}{elastic}{kernel})"
        )
