"""The differential :class:`CheckedEngine` and the ``REPRO_CHECK`` grammar.

``CheckedEngine`` wraps any :class:`~repro.core.engine.Engine` and turns
every product into a self-checking one:

* the operands and the result of each ``spgemm`` are validated against the
  structural invariants in :mod:`repro.check.invariants` (deep —
  gathered-consistency included — in ``full`` mode, shallow otherwise);
* the wrapped machine's cost ledger, when there is one, is validated after
  every product;
* a configurable sample of products is *differentially replayed*: the
  operands are gathered (uncharged) and pushed through the sequential
  kernel, and the distributed result must match — coordinates, schema,
  and elementary-product count exactly (``ops`` is partition-invariant,
  so any disagreement is a bug, not noise), float values within
  reassociation tolerance (see
  :func:`~repro.check.replay.matrices_match`);
* on a mismatch the engine shrinks the operands while the divergence
  persists, serializes the minimized case through the NPZ checkpoint
  plumbing, writes a standalone replay script, emits a ``repro.obs``
  event, and raises :class:`CheckFailure` pointing at both artifacts.

Enablement — all three roads lead to :func:`resolve_check_config`:

* ``DistributedEngine(machine, check="full")`` or
  ``Machine(p, check="cheap")``;
* the ``REPRO_CHECK`` environment variable
  (``off`` / ``cheap`` / ``full`` / ``sample:N`` — same spirit as
  ``REPRO_FAULTS``);
* the CLI's ``--check`` flag.

When checking is off nothing wraps anything: the hot paths are exactly the
unchecked ones.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.check.invariants import (
    CheckError,
    Violation,
    check_ledger,
    check_matrix,
    check_spmat,
    require_clean,
)
from repro.check.replay import ReplayCase, emit_case, matrices_match
from repro.obs import api as obs
from repro.sparse.spgemm import spgemm
from repro.sparse.spmatrix import SpMat

__all__ = [
    "CHECK_ENV",
    "CheckConfig",
    "CheckFailure",
    "CheckedEngine",
    "maybe_checked",
    "resolve_check_config",
]

#: environment variable consulted when no explicit ``check=`` is given.
CHECK_ENV = "REPRO_CHECK"

#: where mismatch artifacts land when the config doesn't say.
ARTIFACT_DIR_ENV = "REPRO_CHECK_DIR"


@dataclass(frozen=True)
class CheckConfig:
    """Resolved checking level.

    ``mode`` is ``"cheap"`` (shallow invariants, no replay), ``"full"``
    (deep invariants, replay every product), or ``"sample"`` (shallow
    invariants, replay every ``sample``-th product).  ``sample == 0`` means
    never replay.
    """

    mode: str
    sample: int = 0
    #: where to write mismatch repro cases; ``None`` → ``$REPRO_CHECK_DIR``
    #: or the current directory.
    artifact_dir: str | None = None

    def __post_init__(self) -> None:
        if self.mode not in ("cheap", "full", "sample"):
            raise ValueError(f"unknown check mode {self.mode!r}")
        if self.sample < 0:
            raise ValueError(f"sample must be non-negative, got {self.sample}")

    @property
    def deep(self) -> bool:
        return self.mode == "full"

    def describe(self) -> str:
        if self.mode == "sample":
            return f"sample:{self.sample}"
        return self.mode


def resolve_check_config(
    spec: "CheckConfig | str | None" = None, *, env: bool = True
) -> CheckConfig | None:
    """Normalize a check specification; ``None`` means checking is off.

    Accepts a :class:`CheckConfig` (passed through), a spec string
    (``""``/``"none"``/``"off"`` → off, ``"cheap"``, ``"full"``,
    ``"sample:N"``), or ``None`` — which consults ``$REPRO_CHECK`` when
    ``env`` is true and otherwise resolves to off.
    """
    if isinstance(spec, CheckConfig):
        return spec
    if spec is None:
        if not env:
            return None
        spec = os.environ.get(CHECK_ENV)
        if spec is None:
            return None
    if not isinstance(spec, str):
        raise TypeError(
            f"check must be a CheckConfig, a spec string, or None, got {spec!r}"
        )
    s = spec.strip().lower()
    if s in ("", "none", "off", "0", "false"):
        return None
    if s == "cheap":
        return CheckConfig("cheap")
    if s == "full":
        return CheckConfig("full", sample=1)
    if s.startswith("sample:"):
        try:
            n = int(s.split(":", 1)[1])
        except ValueError:
            raise ValueError(f"bad sample count in check spec {spec!r}") from None
        if n <= 0:
            raise ValueError(f"sample count must be positive, got {n}")
        return CheckConfig("sample", sample=n)
    raise ValueError(
        f"unknown check spec {spec!r} (expected off/cheap/full/sample:N)"
    )


class CheckFailure(CheckError):
    """A checked product failed; points at the emitted repro artifacts."""

    def __init__(
        self,
        violations: list[Violation],
        note: str = "",
        *,
        case_path: str | None = None,
        script_path: str | None = None,
    ) -> None:
        super().__init__(violations, note)
        self.case_path = case_path
        self.script_path = script_path


def _subset(mat: SpMat, keep: np.ndarray) -> SpMat:
    idx = np.flatnonzero(keep)
    vals = {name: col[idx] for name, col in mat.vals.items()}
    return SpMat(mat.nrows, mat.ncols, mat.rows[idx], mat.cols[idx], vals, mat.monoid)


def _fresh(engine, mat: SpMat):
    """Rebuild ``mat`` in ``engine``'s representation (fresh arrays)."""
    return engine.matrix(
        mat.nrows,
        mat.ncols,
        mat.rows.copy(),
        mat.cols.copy(),
        {name: col.copy() for name, col in mat.vals.items()},
        mat.monoid,
    )


class CheckedEngine:
    """An :class:`~repro.core.engine.Engine` that distrusts its inner engine.

    Everything outside the protocol surface (``machine``, ``recover``,
    ``plan_log``, …) is delegated via ``__getattr__``, so a wrapped engine
    drops into any code that feature-tests with ``getattr``.
    """

    def __init__(self, engine, check: "CheckConfig | str" = "cheap") -> None:
        cfg = resolve_check_config(check, env=False)
        if cfg is None:
            # Explicitly constructing a CheckedEngine means the caller wants
            # checking; "off" degenerates to the cheapest level, not to a
            # silent pass-through.
            cfg = CheckConfig("cheap")
        self.engine = engine
        self.config = cfg
        self.products = 0
        self.stats = {"validated": 0, "replayed": 0, "mismatches": 0}

    def __getattr__(self, name: str):
        if name == "engine":  # guard: unpickling calls __getattr__ pre-init
            raise AttributeError(name)
        return getattr(self.engine, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CheckedEngine({self.engine!r}, check={self.config.describe()!r})"

    # -- validation helpers --------------------------------------------------

    def _validate(self, mat, site: str) -> None:
        require_clean(check_matrix(mat, site=site, deep=self.config.deep))
        self.stats["validated"] += 1

    def _validate_ledger(self) -> None:
        machine = getattr(self.engine, "machine", None)
        if machine is not None:
            require_clean(check_ledger(machine))

    def _local(self, mat) -> SpMat:
        """A node-local view of ``mat`` without touching the ledger."""
        if isinstance(mat, SpMat):
            return mat
        return mat.gather(charge=False)

    # -- the Engine protocol -------------------------------------------------

    def matrix(self, nrows, ncols, rows, cols, vals, monoid):
        out = self.engine.matrix(nrows, ncols, rows, cols, vals, monoid)
        self._validate(out, "matrix")
        return out

    def adjacency(self, graph):
        out = self.engine.adjacency(graph)
        self._validate(out, "adjacency")
        return out

    def register_invariant(self, mat) -> None:
        self._validate(mat, "invariant")
        self.engine.register_invariant(mat)

    def gather(self, mat) -> SpMat:
        out = self.engine.gather(mat)
        require_clean(check_spmat(out, site="gather"))
        self._validate_ledger()
        return out

    def spgemm(self, a, b, spec, *, mask=None, mask_complement=False):
        self._validate(a, "spgemm.operand_a")
        self._validate(b, "spgemm.operand_b")
        out, ops = self.engine.spgemm(
            a, b, spec, mask=mask, mask_complement=mask_complement
        )
        self.products += 1
        self._validate(out, "spgemm.result")
        self._validate_ledger()
        if self._should_replay():
            self._replay(a, b, spec, out, ops, mask, mask_complement)
        return out, ops

    def recover(self) -> None:
        recover = getattr(self.engine, "recover", None)
        if recover is not None:
            recover()

    # -- differential replay -------------------------------------------------

    def _should_replay(self) -> bool:
        if self.config.sample <= 0:
            return False
        machine = getattr(self.engine, "machine", None)
        if machine is not None and getattr(machine, "_fault_hook", None) is not None:
            # injected corruption *intends* to diverge from the reference;
            # replaying it would report the fault plan, not a bug.
            return False
        return self.products % self.config.sample == 0

    def _replay(self, a, b, spec, out, ops, mask=None, mask_complement=False) -> None:
        ga, gb, gout = self._local(a), self._local(b), self._local(out)
        gmask = None if mask is None else self._local(mask)
        # reference via the *generic* kernel: the dispatch tier's fast paths
        # are among the things differential replay must be able to indict
        ref = spgemm(
            ga, gb, spec, mask=gmask, mask_complement=mask_complement,
            kernel="generic",
        )
        self.stats["replayed"] += 1
        if matrices_match(ref.matrix, gout) and int(ref.ops) == int(ops):
            return
        self.stats["mismatches"] += 1
        self._fail(ga, gb, spec, gout, int(ops), ref, gmask, mask_complement)

    def _diverges(self, ca: SpMat, cb: SpMat, spec, mask, mask_complement):
        """Re-run a candidate through the inner engine.

        Returns ``(got, ops)`` when the candidate still diverges from the
        sequential kernel (a crash counts: it yields an empty ``got`` and
        ``ops = -1``), or ``None`` when the candidate behaves.
        """
        try:
            dmask = None if mask is None else _fresh(self.engine, mask)
            got, ops = self.engine.spgemm(
                _fresh(self.engine, ca),
                _fresh(self.engine, cb),
                spec,
                mask=dmask,
                mask_complement=mask_complement,
            )
            gout = self._local(got)
        except Exception:
            return SpMat.empty(ca.nrows, cb.ncols, spec.monoid), -1
        ref = spgemm(
            ca, cb, spec, mask=mask, mask_complement=mask_complement,
            kernel="generic",
        )
        if matrices_match(ref.matrix, gout) and int(ref.ops) == int(ops):
            return None
        return gout, int(ops)

    def _minimize(self, ga, gb, spec, got, ops, mask, mask_complement, budget: int = 48):
        """Greedy ddmin-style shrink: drop entry blocks while still diverging."""
        a, b = ga, gb
        for sel in ("a", "b"):
            mat = a if sel == "a" else b
            chunk = max(1, mat.nnz // 2)
            while chunk >= 1 and budget > 0:
                i, shrunk = 0, False
                while i < mat.nnz and budget > 0:
                    keep = np.ones(mat.nnz, dtype=bool)
                    keep[i : i + chunk] = False
                    cand = _subset(mat, keep)
                    ca, cb = (cand, b) if sel == "a" else (a, cand)
                    budget -= 1
                    res = self._diverges(ca, cb, spec, mask, mask_complement)
                    if res is not None:
                        mat = cand
                        if sel == "a":
                            a = cand
                        else:
                            b = cand
                        got, ops = res
                        shrunk = True  # stay at i: new entries shifted in
                    else:
                        i += chunk
                if not shrunk:
                    chunk //= 2
        return a, b, got, ops

    def _fail(self, ga, gb, spec, gout, ops, ref, mask=None, mask_complement=False) -> None:
        if obs.enabled():
            obs.complete(
                "check.mismatch",
                cat="check",
                args={
                    "spec": spec.name,
                    "product": self.products,
                    "expected_nnz": ref.matrix.nnz,
                    "got_nnz": gout.nnz,
                    "expected_ops": int(ref.ops),
                    "got_ops": ops,
                },
            )
            obs.count("check.mismatches", 1.0, spec=spec.name)
        try:
            ma, mb, mgot, mops = self._minimize(
                ga, gb, spec, gout, ops, mask, mask_complement
            )
        except Exception:  # minimization is best-effort, never load-bearing
            ma, mb, mgot, mops = ga, gb, gout, ops
        case = ReplayCase(
            a=ma,
            b=mb,
            spec_name=spec.name,
            got=mgot,
            got_ops=mops,
            info={
                "engine": type(self.engine).__name__,
                "product_index": self.products,
                "original_nnz": {"a": ga.nnz, "b": gb.nnz},
                "minimized_nnz": {"a": ma.nnz, "b": mb.nnz},
            },
            mask=mask,
            mask_complement=mask_complement,
        )
        case_path = script_path = None
        artifact_note = ""
        directory = self.config.artifact_dir or os.environ.get(
            ARTIFACT_DIR_ENV, os.getcwd()
        )
        try:
            case_path, script_path = emit_case(
                case, directory, f"check-case-{self.products}"
            )
            artifact_note = f"; repro script: {script_path}"
        except Exception as exc:  # e.g. an unregistered ad-hoc spec/monoid
            artifact_note = f"; no repro artifact ({exc})"
        violation = Violation(
            "spgemm.replay",
            "differential",
            f"product {self.products} ({spec.name}) diverges from the "
            f"sequential kernel",
            {
                "expected_nnz": ref.matrix.nnz,
                "got_nnz": gout.nnz,
                "expected_ops": int(ref.ops),
                "got_ops": ops,
            },
        )
        raise CheckFailure(
            [violation],
            f"differential replay failed{artifact_note}",
            case_path=case_path,
            script_path=script_path,
        )


def maybe_checked(engine, check: "CheckConfig | str | None" = None):
    """Wrap ``engine`` when checking is enabled; return it untouched otherwise.

    ``check=None`` consults ``$REPRO_CHECK``.  Already-checked engines pass
    through, so layering ``maybe_checked`` is idempotent.
    """
    if isinstance(engine, CheckedEngine):
        return engine
    cfg = resolve_check_config(check)
    if cfg is None:
        return engine
    return CheckedEngine(engine, cfg)


if TYPE_CHECKING:
    from repro.core.engine import Engine, SequentialEngine

    # static proof that CheckedEngine satisfies the Engine protocol
    _CHECKED_IS_ENGINE: Engine = CheckedEngine(SequentialEngine())
