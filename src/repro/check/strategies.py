"""Shared hypothesis strategies for the whole test suite.

One generator vocabulary for tests, fuzzers, and the repro-case tooling —
extracted from the per-file copies that used to live in
``test_spgemm_local.py``, ``test_cross_engine_fuzz.py``,
``test_first_principles.py``, and ``test_properties.py``.

This module imports :mod:`hypothesis`, which is a test-only extra, so it is
deliberately *not* re-exported from ``repro.check``'s package ``__init__``;
import it directly::

    from repro.check import strategies as cst

    @given(cst.graphs(weighted=True))
    def test_something(g): ...

Non-hypothesis helpers (:func:`random_weight_spmat`) take a numpy
``Generator`` instead and work without the extra installed.
"""

from __future__ import annotations

import itertools

import numpy as np
from hypothesis import assume
from hypothesis import strategies as st

from repro.algebra.centpath import CENTPATH
from repro.algebra.matmul import MatMulSpec
from repro.algebra.monoid import MaxMonoid, MinMonoid, Monoid, PlusMonoid
from repro.algebra.multpath import MULTPATH
from repro.graphs import (
    Graph,
    rmat_graph,
    uniform_random_graph_nm,
    with_random_weights,
)
from repro.sparse.spmatrix import SpMat

__all__ = [
    "WEIGHT_MONOID",
    "random_weight_spmat",
    "monoids",
    "values_for",
    "spmats",
    "graphs",
    "tiny_graphs",
    "generated_graphs",
    "grids",
    "survivor_sets",
    "matmul_specs",
    "pipelines",
    "sampler_states",
    "epsilon_delta_params",
]

#: the single-field tropical weight monoid most tests operate over.
WEIGHT_MONOID = MinMonoid()


def random_weight_spmat(
    rng: np.random.Generator, m: int, n: int, density: float
) -> SpMat:
    """A random single-field (tropical weight) sparse matrix."""
    mask = rng.random((m, n)) < density
    r, c = mask.nonzero()
    vals = rng.integers(1, 20, len(r)).astype(np.float64)
    return SpMat(m, n, r, c, {"w": vals}, WEIGHT_MONOID)


# ---------------------------------------------------------------------------
# monoids and their values
# ---------------------------------------------------------------------------


def monoids() -> st.SearchStrategy[Monoid]:
    """One of the library's concrete monoids (single- and multi-field)."""
    return st.sampled_from(
        [MinMonoid(), PlusMonoid(), MaxMonoid(), MULTPATH, CENTPATH]
    )


@st.composite
def values_for(draw, monoid: Monoid, size: int) -> dict[str, np.ndarray]:
    """``size`` non-identity values matching ``monoid``'s field schema.

    Values are small positive integers cast to the schema dtype, so every
    downstream float computation is exact.
    """
    vals: dict[str, np.ndarray] = {}
    for name, dtype in monoid.field_spec:
        col = draw(
            st.lists(st.integers(1, 9), min_size=size, max_size=size)
        )
        vals[name] = np.array(col, dtype=dtype)
    return vals


@st.composite
def spmats(
    draw,
    monoid: Monoid | None = None,
    min_side: int = 1,
    max_side: int = 12,
    shape: tuple[int, int] | None = None,
) -> SpMat:
    """A canonical :class:`SpMat` over ``monoid`` (drawn when ``None``)."""
    if monoid is None:
        monoid = draw(monoids())
    if shape is None:
        nrows = draw(st.integers(min_side, max_side))
        ncols = draw(st.integers(min_side, max_side))
    else:
        nrows, ncols = shape
    cells = nrows * ncols
    nnz = draw(st.integers(0, min(cells, 4 * max(nrows, ncols))))
    flat = draw(
        st.lists(
            st.integers(0, cells - 1), min_size=nnz, max_size=nnz, unique=True
        )
        if cells
        else st.just([])
    )
    flat_arr = np.array(sorted(flat), dtype=np.int64)
    rows, cols = np.divmod(flat_arr, max(ncols, 1))
    vals = draw(values_for(monoid, len(flat_arr)))
    return SpMat(nrows, ncols, rows, cols, vals, monoid)


# ---------------------------------------------------------------------------
# graphs
# ---------------------------------------------------------------------------


@st.composite
def graphs(
    draw,
    weighted: bool | None = None,
    directed: bool | None = None,
    min_n: int = 2,
    max_n: int = 14,
    max_weight: int = 5,
) -> Graph:
    """A small random graph: random edge list, optional weights/direction.

    ``weighted``/``directed`` pin the respective property; ``None`` draws
    it.  At least one non-self-loop edge is guaranteed.
    """
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    max_edges = n * (n - 1) // 2
    nedges = draw(st.integers(min_value=1, max_value=max(min(max_edges, 3 * n), 1)))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=nedges,
            max_size=nedges,
        )
    )
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    assume(np.any(src != dst))
    if directed is None:
        directed = draw(st.booleans())
    if weighted is None:
        weighted = draw(st.booleans())
    weight = None
    if weighted:
        weight = np.array(
            draw(
                st.lists(
                    st.integers(1, max_weight),
                    min_size=nedges,
                    max_size=nedges,
                )
            ),
            dtype=np.float64,
        )
    return Graph(n, src, dst, weight, directed=directed)


@st.composite
def tiny_graphs(draw, max_n: int = 7, max_weight: int = 4) -> Graph:
    """Graphs small enough for exhaustive path enumeration oracles.

    Edges are drawn from the ordered-pair universe (no self-loops), with at
    least two distinct edges so the graph is never degenerate.
    """
    n = draw(st.integers(3, max_n))
    pairs = list(itertools.permutations(range(n), 2))
    nedges = draw(st.integers(2, min(len(pairs), 12)))
    chosen = draw(
        st.lists(st.sampled_from(pairs), min_size=nedges, max_size=nedges)
    )
    src = np.array([e[0] for e in chosen], dtype=np.int64)
    dst = np.array([e[1] for e in chosen], dtype=np.int64)
    assume(len(np.unique(src * n + dst)) >= 2)
    directed = draw(st.booleans())
    weighted = draw(st.booleans())
    weight = None
    if weighted:
        weight = np.array(
            draw(
                st.lists(
                    st.integers(1, max_weight),
                    min_size=nedges,
                    max_size=nedges,
                )
            ),
            dtype=np.float64,
        )
    return Graph(n, src, dst, weight, directed=directed)


@st.composite
def generated_graphs(draw, max_scale: int = 5) -> Graph:
    """A graph from the library's own generators (R-MAT / uniform),
    optionally weighted — the family the paper benchmarks on (§7.1)."""
    seed = draw(st.integers(0, 10_000))
    kind = draw(st.sampled_from(["rmat", "uniform"]))
    directed = draw(st.booleans())
    if kind == "rmat":
        scale = draw(st.integers(3, max_scale))
        g = rmat_graph(
            scale,
            draw(st.integers(2, 6)),
            directed=directed,
            seed=seed,
        )
    else:
        n = draw(st.integers(8, 1 << max_scale))
        g = uniform_random_graph_nm(
            n, draw(st.integers(2, 6)), directed=directed, seed=seed
        )
    assume(g.m >= 1)
    if draw(st.booleans()):
        g = with_random_weights(g, 1, 9, seed=seed)
    return g


# ---------------------------------------------------------------------------
# machines, grids, specs, pipelines
# ---------------------------------------------------------------------------


@st.composite
def grids(draw, p: int | None = None, max_p: int = 8) -> np.ndarray:
    """A 2D rank layout ``ranks2d`` for ``p`` ranks (drawn when ``None``)."""
    if p is None:
        p = draw(st.integers(1, max_p))
    shapes = [(d, p // d) for d in range(1, p + 1) if p % d == 0]
    pr, pc = draw(st.sampled_from(shapes))
    perm = draw(st.permutations(range(p)))
    return np.array(perm, dtype=np.int64).reshape(pr, pc)


@st.composite
def survivor_sets(
    draw, p: int | None = None, min_p: int = 2, max_p: int = 12
) -> tuple[int, tuple[int, ...]]:
    """``(p, dead)`` — a machine size and a proper subset of failed ranks.

    At least one rank dies and at least one survives, covering the shapes
    elastic recovery must renumber (:func:`repro.machine.grid.survivor_map`):
    single failures, bursts, failures at the boundary ranks 0 and ``p-1``,
    and owner+buddy pairs.
    """
    if p is None:
        p = draw(st.integers(min_p, max_p))
    n_dead = draw(st.integers(1, p - 1))
    dead = draw(
        st.lists(
            st.integers(0, p - 1), min_size=n_dead, max_size=n_dead, unique=True
        )
    )
    return p, tuple(sorted(dead))


@st.composite
def epsilon_delta_params(draw) -> tuple[float, float]:
    """An ``(epsilon, delta)`` accuracy target for the adaptive sampler.

    Drawn from the practically relevant ranges (ε in [0.01, 1], δ in
    (0, 0.5]); both are finite and positive, so
    :func:`repro.core.approx.validate_epsilon_delta` always accepts them.
    """
    epsilon = draw(
        st.floats(0.01, 1.0, allow_nan=False, allow_infinity=False)
    )
    delta = draw(
        st.floats(0.001, 0.5, allow_nan=False, allow_infinity=False)
    )
    return float(epsilon), float(delta)


@st.composite
def sampler_states(
    draw,
    max_n: int = 10,
    max_shards: int = 4,
    max_samples: int = 12,
) -> "SamplerState":
    """A populated adaptive-sampler state (running sums over shards).

    Vertex values are small dyadic rationals (multiples of 1/4), so sums
    and sums-of-squares are exact in binary floating point — merge-order
    and serialization round-trip properties can assert bit identity.
    The state may be empty (zero samples folded in).
    """
    from repro.core.approx import SamplerState

    n = draw(st.integers(3, max_n))
    shards = draw(st.integers(1, max_shards))
    k = draw(st.integers(0, max_samples))
    rows = np.array(
        draw(
            st.lists(
                st.lists(st.integers(0, 8), min_size=n, max_size=n),
                min_size=k,
                max_size=k,
            )
        ),
        dtype=np.float64,
    ).reshape(k, n) / 4.0
    start = draw(st.integers(0, 64))
    state = SamplerState.empty(n, shards)
    state.update(rows, start)
    return state


def matmul_specs() -> st.SearchStrategy[MatMulSpec]:
    """One of the library's replayable generalized-matmul operators."""
    from repro.check.replay import _spec_registry

    reg = _spec_registry()
    return st.sampled_from(
        sorted({spec.name: spec for spec in reg.values()}.values(),
               key=lambda s: s.name)
    )


@st.composite
def pipelines(draw):
    """``(n, seed, p, ops)`` — a random program over n×n weight matrices."""
    n = draw(st.integers(6, 18))
    seed = draw(st.integers(0, 10_000))
    p = draw(st.sampled_from([2, 3, 4, 6, 8]))
    ops = draw(
        st.lists(
            st.sampled_from(["mul", "combine", "filter", "map", "transpose"]),
            min_size=1,
            max_size=5,
        )
    )
    return n, seed, p, ops
