"""Structural invariant validators for matrices, distributions, and charges.

Every validator returns a ``list[Violation]`` — empty when the object is
sound — rather than raising on first failure, so a caller can collect the
full damage report (the :class:`~repro.check.engine.CheckedEngine` raises a
single :class:`CheckError` carrying all of them).

The invariants validated here are exactly the ones the reproduction's
correctness argument rests on:

* **SpMat canonical form** (:func:`check_spmat`) — entries sorted by
  ``(row, col)``, coordinates unique and in range, no stored
  monoid-identity values (the identity is the implicit value of unstored
  entries), and value columns matching the monoid's field schema.
* **DistMat distribution** (:func:`check_distmat`) — splits tile the index
  space, every block sits on a distinct in-range owning rank, block shapes
  agree with the splits, every block is itself canonical over the shared
  monoid, and (``deep=True``) the gathered matrix is canonical with no
  cross-block coordinate collisions.
* **Ledger accounting** (:func:`check_ledger`) — every accumulator is
  finite and non-negative; each rank's communication time is bounded by
  the α-β closed form ``β·words + α·msgs`` (each collective charges
  exactly ``weight·(x·β + ⌈log₂ q⌉·α)`` after a max-merge, so the bound
  follows by induction — see §5.1/§7.4); communication time never exceeds
  total modeled time; flat totals dominate critical-path totals; traffic
  categories sum to the flat total; and peak memory is a true high-water
  mark (monotone within an epoch, i.e. ``peak ≥ used`` until the next
  ``reset_memory``).  Optionally, critical-path words are checked against
  the paper's MFBC bandwidth closed form from
  :mod:`repro.analysis.theory` with a caller-supplied slack.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dist.distmat import DistMat
from repro.sparse.spmatrix import SpMat

__all__ = [
    "Violation",
    "CheckError",
    "check_spmat",
    "check_distmat",
    "check_ledger",
    "check_matrix",
    "require_clean",
]


@dataclass(frozen=True)
class Violation:
    """One broken invariant: where, which rule, and the evidence."""

    site: str  #: where the object came from, e.g. ``"spgemm.operand_a"``
    rule: str  #: short rule identifier, e.g. ``"sorted"``, ``"identity"``
    message: str  #: human-readable statement of the breakage
    context: dict = field(default_factory=dict)  #: supporting numbers

    def __str__(self) -> str:
        ctx = ""
        if self.context:
            pairs = ", ".join(f"{k}={v}" for k, v in sorted(self.context.items()))
            ctx = f" ({pairs})"
        return f"[{self.site}] {self.rule}: {self.message}{ctx}"


class CheckError(AssertionError):
    """Raised by :func:`require_clean` with the full violation list attached."""

    def __init__(self, violations: list[Violation], note: str = "") -> None:
        self.violations = list(violations)
        lines = ([note] if note else []) + [str(v) for v in self.violations]
        super().__init__("invariant violation(s):\n  " + "\n  ".join(lines))


def require_clean(violations: list[Violation], note: str = "") -> None:
    """Raise :class:`CheckError` if ``violations`` is non-empty."""
    if violations:
        raise CheckError(violations, note)


# ---------------------------------------------------------------------------
# SpMat canonical form
# ---------------------------------------------------------------------------


def check_spmat(mat: SpMat, *, site: str = "spmat") -> list[Violation]:
    """Validate canonical COO form (cheap: a few vectorized passes over nnz)."""
    out: list[Violation] = []

    def bad(rule: str, message: str, **context) -> None:
        out.append(Violation(site, rule, message, context))

    if mat.nrows < 0 or mat.ncols < 0:
        bad("shape", "negative dimensions", nrows=mat.nrows, ncols=mat.ncols)
        return out
    if mat.rows.dtype != np.int64 or mat.cols.dtype != np.int64:
        bad(
            "dtype",
            "coordinates must be int64",
            rows=str(mat.rows.dtype),
            cols=str(mat.cols.dtype),
        )
    nnz = len(mat.rows)
    if len(mat.cols) != nnz:
        bad("length", "rows/cols length mismatch", rows=nnz, cols=len(mat.cols))
        return out

    spec = mat.monoid.field_spec
    names = tuple(name for name, _ in spec)
    if tuple(mat.vals.keys()) != names:
        bad(
            "fields",
            "value fields do not match the monoid schema",
            have=tuple(mat.vals.keys()),
            want=names,
        )
        return out
    for name, dtype in spec:
        col = mat.vals[name]
        if len(col) != nnz:
            bad("length", f"field {name!r} length mismatch", field=len(col), coords=nnz)
            return out
        if col.dtype != dtype:
            bad(
                "dtype",
                f"field {name!r} has dtype {col.dtype}, schema says {dtype}",
                field=name,
            )

    if nnz == 0:
        return out

    if mat.rows.min() < 0 or mat.rows.max() >= mat.nrows:
        bad(
            "range",
            "row coordinate out of bounds",
            min=int(mat.rows.min()),
            max=int(mat.rows.max()),
            nrows=mat.nrows,
        )
    if mat.cols.min() < 0 or mat.cols.max() >= mat.ncols:
        bad(
            "range",
            "column coordinate out of bounds",
            min=int(mat.cols.min()),
            max=int(mat.cols.max()),
            ncols=mat.ncols,
        )
    if not out:  # keys are only meaningful once coordinates are in range
        keys = mat.rows * mat.ncols + mat.cols
        diffs = np.diff(keys)
        if np.any(diffs < 0):
            bad(
                "sorted",
                "entries are not sorted by (row, col)",
                first_inversion=int(np.argmax(diffs < 0)),
            )
        elif np.any(diffs == 0):
            bad(
                "unique",
                "duplicate coordinates stored",
                duplicates=int(np.count_nonzero(diffs == 0)),
            )

    stored_identity = mat.monoid.is_identity(mat.vals)
    if np.any(stored_identity):
        bad(
            "identity",
            "stored entries equal to the monoid identity",
            count=int(np.count_nonzero(stored_identity)),
        )

    cached = mat._rowptr
    if cached is not None:
        expect = np.zeros(mat.nrows + 1, dtype=np.int64)
        np.cumsum(np.bincount(mat.rows, minlength=mat.nrows), out=expect[1:])
        if not np.array_equal(cached, expect):
            bad("rowptr", "cached row pointer is stale")
    return out


# ---------------------------------------------------------------------------
# DistMat distribution
# ---------------------------------------------------------------------------


def _check_splits(splits: np.ndarray, extent: int, axis: str, site: str) -> list[Violation]:
    out: list[Violation] = []
    if splits[0] != 0 or splits[-1] != extent:
        out.append(
            Violation(
                site,
                "splits",
                f"{axis} splits do not cover [0, {extent})",
                {"first": int(splits[0]), "last": int(splits[-1])},
            )
        )
    if np.any(np.diff(splits) < 0):
        out.append(
            Violation(site, "splits", f"{axis} splits are not non-decreasing", {})
        )
    return out


def check_distmat(
    dmat: DistMat, *, site: str = "distmat", deep: bool = False
) -> list[Violation]:
    """Validate a block distribution.

    ``deep=True`` additionally gathers the matrix (uncharged — validation
    must not perturb the cost model) and verifies that blocks tile
    disjointly: the gathered canonical form must hold exactly the union of
    the block entries, with nothing folded across blocks.
    """
    out: list[Violation] = []
    pr, pc = dmat.grid_shape

    ranks = dmat.ranks2d.ravel()
    p = dmat.machine.p
    if len(ranks) and (ranks.min() < 0 or ranks.max() >= p):
        out.append(
            Violation(
                site,
                "ranks",
                "block owner outside the machine",
                {"min": int(ranks.min()), "max": int(ranks.max()), "p": p},
            )
        )
    if len(np.unique(ranks)) != len(ranks):
        out.append(
            Violation(
                site,
                "ranks",
                "two blocks share an owning rank (home layouts are 1:1)",
                {"grid": (pr, pc)},
            )
        )

    out += _check_splits(dmat.row_splits, dmat.nrows, "row", site)
    out += _check_splits(dmat.col_splits, dmat.ncols, "col", site)

    schema = dmat.monoid.field_spec
    for i in range(pr):
        for j in range(pc):
            blk = dmat.blocks[i][j]
            expect = (
                int(dmat.row_splits[i + 1] - dmat.row_splits[i]),
                int(dmat.col_splits[j + 1] - dmat.col_splits[j]),
            )
            bsite = f"{site}.block[{i},{j}]"
            if blk.shape != expect:
                out.append(
                    Violation(
                        bsite,
                        "shape",
                        "block shape disagrees with the splits",
                        {"have": blk.shape, "want": expect},
                    )
                )
                continue
            if blk.monoid.field_spec != schema:
                out.append(
                    Violation(bsite, "monoid", "block monoid schema differs", {})
                )
                continue
            out += check_spmat(blk, site=bsite)

    if deep and not out:
        gathered = dmat.gather(charge=False)
        block_nnz = dmat.nnz
        if gathered.nnz != block_nnz:
            out.append(
                Violation(
                    site,
                    "tiling",
                    "gathering folded entries: blocks are not disjoint or "
                    "store identity values",
                    {"gathered": gathered.nnz, "blocks": block_nnz},
                )
            )
        out += check_spmat(gathered, site=f"{site}.gathered")
    return out


def check_matrix(mat, *, site: str = "matrix", deep: bool = False) -> list[Violation]:
    """Dispatch to :func:`check_spmat` or :func:`check_distmat` by type."""
    if isinstance(mat, DistMat):
        return check_distmat(mat, site=site, deep=deep)
    if isinstance(mat, SpMat):
        return check_spmat(mat, site=site)
    return [
        Violation(site, "type", f"not a matrix this library knows: {type(mat).__name__}")
    ]


# ---------------------------------------------------------------------------
# Ledger accounting
# ---------------------------------------------------------------------------


def _nonneg_finite(arr: np.ndarray, name: str, site: str) -> list[Violation]:
    arr = np.asarray(arr, dtype=np.float64)
    out: list[Violation] = []
    if not np.all(np.isfinite(arr)):
        out.append(Violation(site, "finite", f"{name} has non-finite entries", {}))
    elif len(arr) and arr.min() < 0:
        out.append(
            Violation(
                site,
                "nonneg",
                f"{name} went negative",
                {"min": float(arr.min()), "rank": int(arr.argmin())},
            )
        )
    return out


def check_ledger(
    machine,
    *,
    site: str = "ledger",
    theory: dict | None = None,
    rtol: float = 1e-9,
) -> list[Violation]:
    """Validate the machine's charge accounting against the α-β model.

    ``theory``, when given, is a mapping with keys ``n``, ``m``, ``p``
    (and optionally ``c``, ``batches``, ``slack``); critical-path words are
    then also checked against ``slack · batches ·``
    :func:`repro.analysis.theory.mfbc_bandwidth_words` — an order-of-
    magnitude guard that a run's traffic is in the regime Theorem 5.1
    promises, not an exact-equality test.
    """
    led = machine.ledger
    cost = machine.cost
    out: list[Violation] = []

    # after an elastic shrink every per-rank array must have been compacted
    # in lockstep — a stale length means some accounting escaped the shrink
    for name in ("time", "comm_time", "words", "msgs", "compute_per_rank"):
        arr = getattr(led, name)
        if len(arr) != machine.p:
            out.append(
                Violation(
                    site,
                    "shape",
                    f"ledger array {name!r} has {len(arr)} entries for a "
                    f"machine with p={machine.p}",
                    {"len": len(arr), "p": machine.p},
                )
            )
    for name, arr in (("memory_used", machine._mem_used), ("memory_peak", machine._mem_peak)):
        if len(arr) != machine.p:
            out.append(
                Violation(
                    site,
                    "shape",
                    f"{name} has {len(arr)} entries for a machine with "
                    f"p={machine.p}",
                    {"len": len(arr), "p": machine.p},
                )
            )
    if led.p != machine.p:
        out.append(
            Violation(
                site,
                "shape",
                "ledger.p disagrees with machine.p",
                {"ledger_p": led.p, "p": machine.p},
            )
        )
    if out:
        return out

    for name in ("time", "comm_time", "words", "msgs", "compute_per_rank"):
        out += _nonneg_finite(getattr(led, name), name, site)
    for name in ("total_words", "total_msgs", "compute_ops"):
        out += _nonneg_finite(np.array([getattr(led, name)]), name, site)
    out += _nonneg_finite(machine._mem_used, "memory_used", site)
    out += _nonneg_finite(machine._mem_peak, "memory_peak", site)
    if out:
        return out  # the relational checks below assume sane values

    tol = rtol * max(1.0, float(led.time.max(initial=0.0)))
    if np.any(led.comm_time > led.time + tol):
        r = int(np.argmax(led.comm_time - led.time))
        out.append(
            Violation(
                site,
                "comm<=time",
                "communication time exceeds total modeled time",
                {"rank": r, "comm": float(led.comm_time[r]), "time": float(led.time[r])},
            )
        )

    # α-β closed form: every collective charges weight·(x·β + ⌈lg q⌉·α)
    # after a max-merge, so per rank comm_time ≤ β·words + α·msgs always.
    bound = cost.beta * led.words + cost.alpha * led.msgs
    if np.any(led.comm_time > bound + tol):
        r = int(np.argmax(led.comm_time - bound))
        out.append(
            Violation(
                site,
                "alpha-beta",
                "communication time exceeds β·words + α·msgs",
                {
                    "rank": r,
                    "comm": float(led.comm_time[r]),
                    "bound": float(bound[r]),
                },
            )
        )

    if led.total_words + tol < led.critical_words():
        out.append(
            Violation(
                site,
                "totals",
                "flat word total is below the critical-path words",
                {"total": led.total_words, "critical": led.critical_words()},
            )
        )
    if led.total_msgs + tol < led.critical_msgs():
        out.append(
            Violation(
                site,
                "totals",
                "flat message total is below the critical-path messages",
                {"total": led.total_msgs, "critical": led.critical_msgs()},
            )
        )
    cat_sum = float(sum(led.category_words.values()))
    if abs(cat_sum - led.total_words) > rtol * max(1.0, led.total_words):
        out.append(
            Violation(
                site,
                "categories",
                "traffic categories do not sum to the flat word total",
                {"categories": cat_sum, "total": led.total_words},
            )
        )

    if np.any(machine._mem_peak < machine._mem_used):
        r = int(np.argmax(machine._mem_used - machine._mem_peak))
        out.append(
            Violation(
                site,
                "mem-peak",
                "peak memory below current usage (high-water mark broken)",
                {
                    "rank": r,
                    "used": int(machine._mem_used[r]),
                    "peak": int(machine._mem_peak[r]),
                },
            )
        )
    if machine.memory_words is not None and np.any(
        machine._mem_used > machine.memory_words
    ):
        out.append(
            Violation(
                site,
                "mem-budget",
                "tracked usage exceeds the budget without raising",
                {"budget": int(machine.memory_words)},
            )
        )

    if theory is not None:
        from repro.analysis.theory import mfbc_bandwidth_words

        slack = float(theory.get("slack", 64.0))
        batches = float(theory.get("batches", 1.0))
        limit = slack * batches * mfbc_bandwidth_words(
            theory["n"], theory["m"], theory["p"], theory.get("c", 1)
        )
        if led.critical_words() > limit:
            out.append(
                Violation(
                    site,
                    "theory",
                    "critical-path words exceed the §5.3 bandwidth bound",
                    {"critical": led.critical_words(), "limit": limit},
                )
            )
    return out
