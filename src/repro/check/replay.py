"""Repro-case serialization and replay for differential check failures.

When :class:`~repro.check.engine.CheckedEngine` catches a product whose
distributed result diverges from the sequential kernel, it persists the
(minimized) operands, the divergent result, and the spec name into a single
``.npz`` archive — written through the same atomic-NPZ plumbing as the
fault-tolerance checkpoints — plus a tiny generated Python script.  Running
the script (or calling :func:`replay` on :func:`load_case`) recomputes the
sequential reference from the stored operands and compares it against the
*stored* divergent result, so the artifact reproduces the divergence on its
own, even after the buggy code is gone.

Only monoids and specs the library itself defines can be serialized (the
registries below); a case built from an unregistered ad-hoc monoid raises
at emission time rather than producing an unreplayable artifact.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

import numpy as np

from repro.algebra.matmul import MatMulSpec
from repro.algebra.monoid import Monoid
from repro.sparse.spgemm import spgemm
from repro.sparse.spmatrix import SpMat

__all__ = [
    "ReplayCase",
    "ReplayReport",
    "matrices_match",
    "save_case",
    "load_case",
    "replay",
    "emit_case",
]


def matrices_match(
    ref: SpMat, got: SpMat, *, rtol: float = 1e-9, atol: float = 1e-12
) -> bool:
    """Exact structure, near-exact values.

    Shapes, monoid schema, and coordinates must match exactly.  Value
    fields built by order-invariant reductions (min, max) match bit-for-bit
    too, but a replicated distributed reduction sums '+'-accumulated fields
    (e.g. Brandes' partial dependencies) in a different order than the
    sequential loop, which legitimately shifts them by an ulp — hence the
    tight tolerance on float fields rather than bit equality.
    """
    if ref.equals(got):
        return True
    if (ref.nrows, ref.ncols) != (got.nrows, got.ncols):
        return False
    if ref.monoid.field_spec != got.monoid.field_spec:
        return False
    if not (
        np.array_equal(ref.rows, got.rows) and np.array_equal(ref.cols, got.cols)
    ):
        return False
    for name, dtype in ref.monoid.field_spec:
        a, b = ref.vals[name], got.vals[name]
        if np.issubdtype(dtype, np.floating):
            if not np.allclose(a, b, rtol=rtol, atol=atol):
                return False
        elif not np.array_equal(a, b):
            return False
    return True

#: version 2 added the optional output mask (``mask`` / ``mask_complement``);
#: version-1 archives still load (they simply have no mask).
CASE_VERSION = 2


# ---------------------------------------------------------------------------
# registries: names <-> the library's own monoids and specs
# ---------------------------------------------------------------------------


def _monoid_registry() -> dict[str, Monoid]:
    from repro.algebra.centpath import CENTPATH
    from repro.algebra.monoid import MaxMonoid, MinMonoid, PlusMonoid
    from repro.algebra.multpath import MULTPATH

    return {
        "PlusMonoid": PlusMonoid(),
        "MinMonoid": MinMonoid(),
        "MaxMonoid": MaxMonoid(),
        "MultpathMonoid": MULTPATH,
        "CentpathMonoid": CENTPATH,
    }


def _spec_registry() -> dict[str, MatMulSpec]:
    from repro.algebra.semiring import MAX_MIN, REAL_PLUS_TIMES, TROPICAL
    from repro.core.specs import BELLMAN_FORD_SPEC, BRANDES_SPEC

    reg = {
        "tropical": TROPICAL.matmul_spec(),
        "real": REAL_PLUS_TIMES.matmul_spec(),
        "max-min": MAX_MIN.matmul_spec(),
        "bellman-ford": BELLMAN_FORD_SPEC,
        "bf": BELLMAN_FORD_SPEC,
        "brandes": BRANDES_SPEC,
    }
    # the apps' renamed semiring specs (same operators, diagnostic names)
    from repro.algebra.monoid import MinMonoid
    from repro.algebra.semiring import Semiring, left_project

    reg["bfs"] = TROPICAL.matmul_spec(name="bfs")
    reg["sssp"] = TROPICAL.matmul_spec(name="sssp")
    reg["widest"] = MAX_MIN.matmul_spec(name="widest")
    reg["cc"] = Semiring(
        add_monoid=MinMonoid(), multiply=left_project, name="cc"
    ).matmul_spec()
    return reg


def resolve_spec(name: str) -> MatMulSpec:
    """Look up a serializable :class:`MatMulSpec` by name."""
    reg = _spec_registry()
    if name not in reg:
        raise KeyError(
            f"spec {name!r} is not replayable; known: {sorted(set(reg))}"
        )
    return reg[name]


def _monoid_name(monoid: Monoid) -> str:
    name = type(monoid).__name__
    if name not in _monoid_registry():
        raise KeyError(
            f"monoid {name!r} is not replayable; known: "
            f"{sorted(_monoid_registry())}"
        )
    return name


# ---------------------------------------------------------------------------
# the case
# ---------------------------------------------------------------------------


@dataclass
class ReplayCase:
    """One divergent product: operands, spec, and the wrong answer."""

    a: SpMat
    b: SpMat
    spec_name: str
    got: SpMat  #: the divergent product matrix, as the checked engine saw it
    got_ops: int  #: the divergent elementary-product count
    info: dict = field(default_factory=dict)  #: engine description, indices…
    mask: SpMat | None = None  #: structural output mask, when the product had one
    mask_complement: bool = False

    @property
    def spec(self) -> MatMulSpec:
        return resolve_spec(self.spec_name)


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of replaying a case against the sequential kernel."""

    matches: bool
    matrix_match: bool
    ops_match: bool
    expected_nnz: int
    got_nnz: int
    expected_ops: int
    got_ops: int
    info: dict

    def describe(self) -> str:
        verdict = (
            "MATCH (stored result now agrees with the sequential kernel)"
            if self.matches
            else "DIVERGED (stored result disagrees with the sequential kernel)"
        )
        lines = [
            verdict,
            f"  matrix: stored nnz={self.got_nnz}, "
            f"sequential nnz={self.expected_nnz}, "
            f"equal={self.matrix_match}",
            f"  ops:    stored={self.got_ops}, "
            f"sequential={self.expected_ops}, equal={self.ops_match}",
        ]
        for key, val in sorted(self.info.items()):
            lines.append(f"  {key}: {val}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# (de)serialization — one npz per case, written atomically
# ---------------------------------------------------------------------------


def _pack(mat: SpMat, prefix: str, arrays: dict, meta: dict) -> None:
    arrays[f"{prefix}_rows"] = mat.rows
    arrays[f"{prefix}_cols"] = mat.cols
    for name in mat.monoid.field_names:
        arrays[f"{prefix}_f_{name}"] = mat.vals[name]
    meta[prefix] = {
        "nrows": mat.nrows,
        "ncols": mat.ncols,
        "monoid": _monoid_name(mat.monoid),
        "fields": list(mat.monoid.field_names),
    }


def _unpack(archive, prefix: str, meta: dict) -> SpMat:
    m = meta[prefix]
    monoid = _monoid_registry()[m["monoid"]]
    vals = {name: archive[f"{prefix}_f_{name}"] for name in m["fields"]}
    return SpMat(
        m["nrows"],
        m["ncols"],
        archive[f"{prefix}_rows"],
        archive[f"{prefix}_cols"],
        vals,
        monoid,
    )


def save_case(case: ReplayCase, path) -> None:
    """Persist a case to one ``.npz`` archive (atomic temp-file write)."""
    from repro.faults.checkpoint import atomic_save_npz

    resolve_spec(case.spec_name)  # fail fast on unreplayable specs
    arrays: dict = {}
    meta: dict = {
        "version": CASE_VERSION,
        "spec": case.spec_name,
        "got_ops": int(case.got_ops),
        "mask_complement": bool(case.mask_complement),
        "info": case.info,
    }
    _pack(case.a, "a", arrays, meta)
    _pack(case.b, "b", arrays, meta)
    _pack(case.got, "g", arrays, meta)
    if case.mask is not None:
        _pack(case.mask, "m", arrays, meta)
    atomic_save_npz(path, arrays, meta=meta)


def load_case(path) -> ReplayCase:
    """Load a case previously written by :func:`save_case`."""
    with np.load(os.fspath(path)) as archive:
        meta = json.loads(bytes(archive["meta"]).decode())
        if meta.get("version") not in (1, CASE_VERSION):
            raise ValueError(
                f"unsupported repro-case version {meta.get('version')}"
            )
        return ReplayCase(
            a=_unpack(archive, "a", meta),
            b=_unpack(archive, "b", meta),
            spec_name=meta["spec"],
            got=_unpack(archive, "g", meta),
            got_ops=int(meta["got_ops"]),
            info=dict(meta.get("info", {})),
            mask=_unpack(archive, "m", meta) if "m" in meta else None,
            mask_complement=bool(meta.get("mask_complement", False)),
        )


def replay(case: ReplayCase) -> ReplayReport:
    """Recompute the sequential reference and compare to the stored result.

    The reference always runs the *generic* kernel: the dispatch tier's fast
    paths are among the things a replay must be able to indict.
    """
    ref = spgemm(
        case.a,
        case.b,
        case.spec,
        mask=case.mask,
        mask_complement=case.mask_complement,
        kernel="generic",
    )
    matrix_match = matrices_match(ref.matrix, case.got)
    ops_match = int(ref.ops) == int(case.got_ops)
    return ReplayReport(
        matches=matrix_match and ops_match,
        matrix_match=matrix_match,
        ops_match=ops_match,
        expected_nnz=ref.matrix.nnz,
        got_nnz=case.got.nnz,
        expected_ops=int(ref.ops),
        got_ops=int(case.got_ops),
        info=case.info,
    )


_SCRIPT = '''"""Replay a divergent SpGEMM captured by repro.check.

Exit status 0 means the stored result now matches the sequential kernel;
1 means the divergence reproduces.
"""
from repro.check.replay import load_case, replay

report = replay(load_case({case!r}))
print(report.describe())
raise SystemExit(0 if report.matches else 1)
'''


def emit_case(case: ReplayCase, directory, stem: str) -> tuple[str, str]:
    """Write ``<stem>.npz`` + ``<stem>.py`` under ``directory``.

    Returns ``(case_path, script_path)``.  The generated script is
    self-contained: ``python <stem>.py`` replays the case and exits 1 while
    the divergence still reproduces.
    """
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    case_path = os.path.join(directory, f"{stem}.npz")
    script_path = os.path.join(directory, f"{stem}.py")
    save_case(case, case_path)
    with open(script_path, "w") as fh:
        fh.write(_SCRIPT.format(case=os.path.abspath(case_path)))
    return case_path, script_path
