"""repro.check — correctness tooling: invariant validators, the differential
:class:`CheckedEngine`, and the shared property-test strategy library.

Three parts:

* :mod:`repro.check.invariants` — structural validators for the objects the
  paper's argument rests on: :func:`check_spmat` (canonical COO form),
  :func:`check_distmat` (block distribution consistency), and
  :func:`check_ledger` (α-β charge accounting).  Each returns a list of
  structured :class:`Violation` rows instead of just raising, so callers can
  report, filter, or assert.
* :mod:`repro.check.engine` — :class:`CheckedEngine`, an
  :class:`~repro.core.engine.Engine` wrapper that validates every
  ``spgemm``'s operands and results and differentially replays a
  configurable sample of products against the sequential kernel.  Enabled
  via ``Machine``/``DistributedEngine(check=...)``, the ``REPRO_CHECK``
  environment variable (``off``/``cheap``/``full``/``sample:N``), or the
  CLI ``--check`` flag.
* :mod:`repro.check.strategies` — hypothesis strategies shared by the test
  suite (monoids, sparse matrices, graphs, grids, matmul specs).  Imported
  lazily because it requires ``hypothesis``, which is a test-only extra.

See ``docs/testing.md`` for the full tour.
"""

from repro.check.engine import (
    CHECK_ENV,
    CheckConfig,
    CheckedEngine,
    CheckFailure,
    maybe_checked,
    resolve_check_config,
)
from repro.check.invariants import (
    CheckError,
    Violation,
    check_distmat,
    check_ledger,
    check_matrix,
    check_spmat,
    require_clean,
)
from repro.check.replay import ReplayCase, ReplayReport, load_case, replay

__all__ = [
    "CHECK_ENV",
    "CheckConfig",
    "CheckedEngine",
    "CheckError",
    "CheckFailure",
    "ReplayCase",
    "ReplayReport",
    "Violation",
    "check_distmat",
    "check_ledger",
    "check_matrix",
    "check_spmat",
    "load_case",
    "maybe_checked",
    "replay",
    "require_clean",
    "resolve_check_config",
]
