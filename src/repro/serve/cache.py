"""Versioned score cache for the serving layer.

Entries are keyed by ``(graph_version, algorithm, params)`` — the params
half is a canonical sorted tuple, so label order at the call site never
matters.  A graph mutation bumps the service's version, after which every
lookup for the new version misses and recomputes; :meth:`ScoreCache.invalidate`
then purges the now-unreachable old-version entries.

Every cache event lands in :mod:`repro.obs` as a counter
(``serve.cache.hit`` / ``serve.cache.miss`` / ``serve.cache.invalidate``,
labeled by algorithm) when a capture session is active, and always in the
cache's own thread-safe totals — the `repro trace` summary table and the
service's ``stats()`` read these respectively.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.obs import api as obs

__all__ = ["ScoreCache", "cache_key"]


def cache_key(graph_version: int, algorithm: str, params: dict) -> tuple:
    """Canonical cache key: version + algorithm + sorted params items."""
    return (int(graph_version), str(algorithm), tuple(sorted(params.items())))


class ScoreCache:
    """A bounded LRU map from :func:`cache_key` tuples to score payloads.

    Thread-safe: HTTP handler threads consult it on the submit fast path
    while the dispatcher thread populates it after each sweep.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidated = 0
        self.evicted = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: tuple):
        """The cached payload for ``key``, or None; counts a hit or miss."""
        algorithm = key[1]
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
        if obs.enabled():
            if value is not None:
                obs.count("serve.cache.hit", 1.0, algorithm=algorithm)
            else:
                obs.count("serve.cache.miss", 1.0, algorithm=algorithm)
        return value

    def peek(self, key: tuple):
        """Like :meth:`get` but counts nothing (re-checks inside a batch)."""
        with self._lock:
            return self._entries.get(key)

    def put(self, key: tuple, value) -> None:
        if value is None:
            raise ValueError("cache payloads must not be None")
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evicted += 1

    def invalidate(self, *, before_version: int | None = None) -> int:
        """Drop entries older than ``before_version`` (all when None).

        Returns the number of entries dropped and counts each as a
        ``serve.cache.invalidate`` event.
        """
        dropped: list[tuple] = []
        with self._lock:
            for key in list(self._entries):
                if before_version is None or key[0] < before_version:
                    del self._entries[key]
                    dropped.append(key)
            self.invalidated += len(dropped)
        if obs.enabled():
            for key in dropped:
                obs.count("serve.cache.invalidate", 1.0, algorithm=key[1])
        return len(dropped)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "invalidated": self.invalidated,
                "evicted": self.evicted,
                "hit_rate": self.hit_rate(),
            }
