"""Overload robustness for the serving layer: admit, shed, degrade, break.

The robustness ladder (retry → degrade → recover → restart → abort,
``docs/robustness.md``) defends against *fault*-driven failure; this module
defends against *load*-driven failure — the congestion collapse an
unbounded FIFO plus jitter-free retries produce under sustained
over-subscription.  Four cooperating pieces:

* :class:`AdmissionController` — bounds the queue by **query count and
  total modeled seconds** of queued work, enforces per-client token-bucket
  rate limits, and rejects with a structured :class:`AdmissionError`
  carrying a ``Retry-After`` hint.  The α-β cost model gives the service
  something real deployments rarely have: an accurate *a-priori* per-query
  cost estimate (:class:`CostEstimator`), so admission is cost-aware — one
  whole-graph BC query and one BFS row are not the same unit of work.
* **Watermark governor** (inside the controller) — two hysteresis bands
  over queue pressure.  Crossing the *brownout* high watermark arms
  degraded service (stale cache reads, exact ``bc`` downgraded to
  fixed-pivot ``approx_bc``); crossing the *shed* high watermark rejects
  new work outright.  Each band re-arms only below its low watermark, so
  the service never flaps at a boundary.
* :class:`CircuitBreaker` — wraps the fault-recovery/retry ladder.
  Repeated recovery failures open the circuit: queued batches fail fast
  with a structured error instead of grinding the machine, and a half-open
  probe admits one batch after the reset timeout to test the waters.
* :class:`CostEstimator` — Theorem 5.1's closed-form α-β cost seeded with
  the machine's constants, corrected online by an EWMA of the modeled cost
  the ledger actually charged per swept source.

Everything here is deliberately clock-injectable (``clock=``) so tests run
deterministic; the service wires ``time.monotonic``.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from enum import Enum

from repro.obs import api as obs

__all__ = [
    "ServiceState",
    "OverloadConfig",
    "AdmissionError",
    "TokenBucket",
    "AdmissionController",
    "CircuitBreaker",
    "BreakerState",
    "CircuitOpen",
    "CostEstimator",
]


class ServiceState(str, Enum):
    """The health model: what ``/v1/healthz`` truthfully reports."""

    OK = "ok"  # admitting, serving exact answers
    DEGRADED = "degraded"  # brownout armed (or circuit open): degraded answers
    OVERLOADED = "overloaded"  # shedding new work (or dispatcher stalled)
    DRAINING = "draining"  # close() in progress: finishing queued work only
    DEAD = "dead"  # dispatcher thread died (watchdog restart pending)

    @property
    def live(self) -> bool:
        """True when the endpoint should answer 200 (still taking traffic)."""
        return self in (ServiceState.OK, ServiceState.DEGRADED)


@dataclass(frozen=True)
class OverloadConfig:
    """Knobs for admission, brownout/shedding watermarks, and the breaker.

    Pressure is ``max(queued_count / max_queued,
    queued_seconds / max_queued_seconds)`` — the count bound protects
    latency under many cheap queries, the modeled-seconds bound under few
    expensive ones.  Watermarks are fractions of that pressure.
    """

    #: queue bound by query count
    max_queued: int = 1024
    #: queue bound by total modeled seconds of admitted-but-unswept work
    #: (None disables the cost-aware bound)
    max_queued_seconds: float | None = None
    #: queue bound by total modeled peak words (Theorem 5.1 memory forms)
    #: of admitted-but-unswept work (None disables the memory-aware bound)
    max_queued_memory_words: float | None = None
    #: per-client token-bucket refill rate in queries/second (None disables)
    client_rate: float | None = None
    #: per-client burst capacity (bucket size)
    client_burst: float = 20.0
    #: brownout band: degrade above high, recover below low
    brownout_high: float = 0.60
    brownout_low: float = 0.30
    #: shed band: reject above high, re-admit below low
    shed_high: float = 0.90
    shed_low: float = 0.50
    #: how brownout answers exact ``bc`` traffic: ``"approx_bc"`` runs the
    #: fixed-pivot estimator (``brownout_samples`` pivots, no error bound),
    #: ``"adaptive_bc"`` runs the (ε, δ) adaptive sampler — costlier but the
    #: degraded answer still carries a provable error bound
    brownout_algorithm: str = "approx_bc"
    #: fixed-pivot sample count for brownout-degraded ``bc`` answers
    brownout_samples: int = 8
    #: pivot seed for degraded answers (fixed → degraded answers cache)
    brownout_seed: int = 0
    #: accuracy target for ``brownout_algorithm="adaptive_bc"`` answers
    brownout_epsilon: float = 0.1
    brownout_delta: float = 0.1
    #: graph-version generations kept for stale-while-degraded serving
    stale_depth: int = 1
    #: consecutive fault-ladder failures that open the circuit
    breaker_threshold: int = 5
    #: wall seconds the circuit stays open before a half-open probe
    breaker_reset: float = 5.0
    #: watchdog poll interval (dispatcher liveness), wall seconds
    watchdog_interval: float = 0.2
    #: heartbeat age that flags the dispatcher as stalled, wall seconds
    stall_timeout: float = 30.0
    #: Retry-After clamp (wall seconds)
    retry_after_floor: float = 0.05
    retry_after_cap: float = 30.0

    def __post_init__(self) -> None:
        if self.max_queued <= 0:
            raise ValueError(f"max_queued must be positive, got {self.max_queued}")
        if self.max_queued_seconds is not None and self.max_queued_seconds <= 0:
            raise ValueError(
                f"max_queued_seconds must be positive, got {self.max_queued_seconds}"
            )
        if (
            self.max_queued_memory_words is not None
            and self.max_queued_memory_words <= 0
        ):
            raise ValueError(
                f"max_queued_memory_words must be positive, got "
                f"{self.max_queued_memory_words}"
            )
        for name, high, low in (
            ("brownout", self.brownout_high, self.brownout_low),
            ("shed", self.shed_high, self.shed_low),
        ):
            if not 0 < low < high:
                raise ValueError(
                    f"{name} watermarks need 0 < low < high, got "
                    f"low={low}, high={high}"
                )
        if self.brownout_high > self.shed_high:
            raise ValueError("brownout_high must not exceed shed_high")
        if self.breaker_threshold <= 0:
            raise ValueError(
                f"breaker_threshold must be positive, got {self.breaker_threshold}"
            )
        if self.brownout_samples <= 0:
            raise ValueError(
                f"brownout_samples must be positive, got {self.brownout_samples}"
            )
        if self.brownout_algorithm not in ("approx_bc", "adaptive_bc"):
            raise ValueError(
                f"brownout_algorithm must be 'approx_bc' or 'adaptive_bc', "
                f"got {self.brownout_algorithm!r}"
            )
        from repro.core.approx import validate_epsilon_delta

        validate_epsilon_delta(self.brownout_epsilon, self.brownout_delta)
        if self.stale_depth < 0:
            raise ValueError(f"stale_depth must be >= 0, got {self.stale_depth}")


class AdmissionError(RuntimeError):
    """Submission rejected before queueing (shed, rate limit, queue bound).

    ``reason`` is one of ``queue_full`` / ``queue_seconds`` /
    ``queue_memory`` / ``rate_limited`` / ``overloaded`` /
    ``circuit_open`` / ``draining``;
    ``retry_after`` is the wall-seconds hint surfaced as the HTTP
    ``Retry-After`` header (None when retrying cannot help soon).
    """

    def __init__(self, reason: str, message: str, retry_after: float | None) -> None:
        super().__init__(message)
        self.reason = reason
        self.retry_after = retry_after


class CircuitOpen(AdmissionError):
    """Fail-fast rejection while the fault circuit is open."""

    def __init__(self, message: str, retry_after: float | None) -> None:
        super().__init__("circuit_open", message, retry_after)


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second up to ``burst``."""

    def __init__(self, rate: float, burst: float, clock=time.monotonic) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def try_take(self) -> tuple[bool, float]:
        """Take one token; returns ``(ok, seconds_until_next_token)``."""
        now = self._clock()
        self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self._tokens) / self.rate


class AdmissionController:
    """Cost-aware queue bounds, per-client rate limits, and the governor.

    The service calls :meth:`admit` at submit time, :meth:`release` when a
    query leaves the queue (its batch started, or it was cancelled), and
    :meth:`readmit` when retry/deadline survivors are put back — readmits
    never re-run the checks, so retries cannot be shed by their own queue.
    """

    def __init__(self, config: OverloadConfig, clock=time.monotonic) -> None:
        self.config = config
        self._clock = clock
        self._lock = threading.Lock()
        self.queued_count = 0
        self.queued_seconds = 0.0
        self.queued_memory_words = 0.0
        self.peak_queued = 0
        self.brownout_active = False
        self.shedding_active = False
        self._buckets: dict[str, TokenBucket] = {}
        #: EWMA of wall seconds the dispatcher needed per drained query —
        #: the drain rate behind the Retry-After hint
        self._wall_per_query = 0.01

    # -- pressure and the watermark governor ---------------------------------

    def pressure(self) -> float:
        with self._lock:
            return self._pressure_locked()

    def _pressure_locked(self) -> float:
        p = self.queued_count / self.config.max_queued
        if self.config.max_queued_seconds is not None:
            p = max(p, self.queued_seconds / self.config.max_queued_seconds)
        if self.config.max_queued_memory_words is not None:
            p = max(
                p,
                self.queued_memory_words / self.config.max_queued_memory_words,
            )
        return p

    def _update_state_locked(self) -> None:
        cfg = self.config
        p = self._pressure_locked()
        shed, brown = self.shedding_active, self.brownout_active
        if p >= cfg.shed_high:
            self.shedding_active = True
        elif self.shedding_active and p <= cfg.shed_low:
            self.shedding_active = False
        if p >= cfg.brownout_high:
            self.brownout_active = True
        elif (
            self.brownout_active
            and p <= cfg.brownout_low
            and not self.shedding_active
        ):
            self.brownout_active = False
        if obs.enabled():
            obs.gauge("serve.overload.pressure", p)
            if self.shedding_active != shed:
                obs.count(
                    "serve.overload.state",
                    1.0,
                    transition="shed_on" if self.shedding_active else "shed_off",
                )
            if self.brownout_active != brown:
                obs.count(
                    "serve.overload.state",
                    1.0,
                    transition=(
                        "brownout_on" if self.brownout_active else "brownout_off"
                    ),
                )

    # -- admit / release ------------------------------------------------------

    def admit(
        self,
        cost_seconds: float,
        client: str | None = None,
        *,
        memory_words: float = 0.0,
    ) -> None:
        """Admit one query of modeled cost ``cost_seconds`` or raise.

        Check order: shed state → count bound → modeled-seconds bound →
        modeled-memory bound → per-client rate limit.  On success the queue
        accounting is already charged when this returns.  ``memory_words``
        is the query's modeled per-rank peak (Theorem 5.1 memory forms via
        :meth:`CostEstimator.estimate_memory_words`).
        """
        cfg = self.config
        with self._lock:
            if self.shedding_active:
                raise AdmissionError(
                    "overloaded",
                    "service is shedding load (queue pressure above the shed "
                    "watermark)",
                    self._retry_after_locked(),
                )
            if self.queued_count + 1 > cfg.max_queued:
                raise AdmissionError(
                    "queue_full",
                    f"queue full ({self.queued_count}/{cfg.max_queued} queries)",
                    self._retry_after_locked(),
                )
            if (
                cfg.max_queued_seconds is not None
                and self.queued_seconds + cost_seconds > cfg.max_queued_seconds
            ):
                raise AdmissionError(
                    "queue_seconds",
                    f"queued work at {self.queued_seconds:.3e}s modeled "
                    f"(+{cost_seconds:.3e}s would exceed the "
                    f"{cfg.max_queued_seconds:.3e}s budget)",
                    self._retry_after_locked(),
                )
            if (
                cfg.max_queued_memory_words is not None
                and self.queued_memory_words + memory_words
                > cfg.max_queued_memory_words
            ):
                raise AdmissionError(
                    "queue_memory",
                    f"queued work at {self.queued_memory_words:.3e} modeled "
                    f"words (+{memory_words:.3e} would exceed the "
                    f"{cfg.max_queued_memory_words:.3e}-word budget)",
                    self._retry_after_locked(),
                )
            if cfg.client_rate is not None:
                key = client or ""
                bucket = self._buckets.get(key)
                if bucket is None:
                    bucket = self._buckets[key] = TokenBucket(
                        cfg.client_rate, cfg.client_burst, self._clock
                    )
                ok, wait = bucket.try_take()
                if not ok:
                    raise AdmissionError(
                        "rate_limited",
                        f"client {key or '(anonymous)'} over its "
                        f"{cfg.client_rate}/s rate limit",
                        max(wait, cfg.retry_after_floor),
                    )
            self.queued_count += 1
            self.queued_seconds += cost_seconds
            self.queued_memory_words += memory_words
            self.peak_queued = max(self.peak_queued, self.queued_count)
            self._update_state_locked()

    def release(
        self, cost_seconds: float, *, memory_words: float = 0.0
    ) -> None:
        """A query left the queue (batch started / cancelled / drained)."""
        with self._lock:
            self.queued_count = max(0, self.queued_count - 1)
            self.queued_seconds = max(0.0, self.queued_seconds - cost_seconds)
            self.queued_memory_words = max(
                0.0, self.queued_memory_words - memory_words
            )
            self._update_state_locked()

    def readmit(
        self, cost_seconds: float, *, memory_words: float = 0.0
    ) -> None:
        """Re-charge a putback (retry / deadline survivor); never rejects."""
        with self._lock:
            self.queued_count += 1
            self.queued_seconds += cost_seconds
            self.queued_memory_words += memory_words
            self.peak_queued = max(self.peak_queued, self.queued_count)
            self._update_state_locked()

    def observe_drain(self, n_queries: int, wall_seconds: float) -> None:
        """Feed the drain-rate EWMA behind the Retry-After hint."""
        if n_queries <= 0:
            return
        per = wall_seconds / n_queries
        with self._lock:
            self._wall_per_query += 0.3 * (per - self._wall_per_query)

    def retry_after(self) -> float:
        with self._lock:
            return self._retry_after_locked()

    def _retry_after_locked(self) -> float:
        cfg = self.config
        est = self.queued_count * self._wall_per_query
        return min(max(est, cfg.retry_after_floor), cfg.retry_after_cap)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "queued_count": self.queued_count,
                "queued_seconds": self.queued_seconds,
                "queued_memory_words": self.queued_memory_words,
                "peak_queued": self.peak_queued,
                "pressure": self._pressure_locked(),
                "brownout": self.brownout_active,
                "shedding": self.shedding_active,
            }


class BreakerState(str, Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Fail fast after repeated fault-ladder failures; probe to recover.

    ``record_failure`` is called once per batch that entered the
    fault-recovery ladder and did not come back clean; ``record_success``
    once per batch the machine completed.  ``threshold`` consecutive
    failures open the circuit; after ``reset_timeout`` wall seconds one
    probe batch is allowed through (half-open) — its outcome closes or
    re-opens the circuit.
    """

    def __init__(
        self, threshold: int = 5, reset_timeout: float = 5.0, clock=time.monotonic
    ) -> None:
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if reset_timeout <= 0:
            raise ValueError(f"reset_timeout must be positive, got {reset_timeout}")
        self.threshold = int(threshold)
        self.reset_timeout = float(reset_timeout)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        self.opened_total = 0

    @property
    def state(self) -> BreakerState:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May a batch execute now?  Transitions open → half-open when due."""
        with self._lock:
            if self._state is BreakerState.CLOSED:
                return True
            now = self._clock()
            if self._state is BreakerState.OPEN:
                if now - self._opened_at < self.reset_timeout:
                    return False
                self._transition_locked(BreakerState.HALF_OPEN)
                self._probe_inflight = True
                return True
            # half-open: exactly one probe at a time
            if self._probe_inflight:
                return False
            self._probe_inflight = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._probe_inflight = False
            if self._state is not BreakerState.CLOSED:
                self._transition_locked(BreakerState.CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            self._probe_inflight = False
            if self._state is BreakerState.HALF_OPEN or (
                self._state is BreakerState.CLOSED
                and self._failures >= self.threshold
            ):
                self._opened_at = self._clock()
                self.opened_total += 1
                self._transition_locked(BreakerState.OPEN)

    def retry_after(self) -> float:
        with self._lock:
            if self._state is not BreakerState.OPEN:
                return 0.0
            return max(0.0, self.reset_timeout - (self._clock() - self._opened_at))

    def _transition_locked(self, state: BreakerState) -> None:
        self._state = state
        if obs.enabled():
            obs.count("serve.overload.breaker", 1.0, state=state.value)


class CostEstimator:
    """A-priori modeled-seconds cost per query, corrected online.

    The seed estimate prices one source sweep from Theorem 5.1's α-β cost
    at the machine's constants (bandwidth + latency terms per source, plus
    ~``m·log₂n`` elementary operations and the per-product overhead over a
    ``log₂n``-deep frontier evolution).  Every completed batch then feeds
    the ledger's *actually charged* modeled cost back through a
    per-algorithm EWMA, so the estimate converges on the served graph's
    real frontier behavior within a few sweeps.
    """

    def __init__(self, machine, graph, *, smoothing: float = 0.3) -> None:
        self.machine = machine
        self.smoothing = float(smoothing)
        self._lock = threading.Lock()
        self._per_unit: dict[str, float] = {}
        self.rebind(graph)

    def rebind(self, graph) -> None:
        """Point at a new graph (version swap); learned rates reset."""
        with self._lock:
            self._n = int(graph.n)
            self._m = max(int(graph.nnz_adjacency), 1)
            self._per_unit.clear()

    def _baseline_per_source(self) -> float:
        from repro.analysis.theory import (
            mfbc_bandwidth_words,
            mfbc_latency_messages,
        )

        n, m = self._n, self._m
        p = max(int(self.machine.p), 1)
        cost = self.machine.cost
        depth = max(math.log2(max(n, 2)), 1.0)
        words = mfbc_bandwidth_words(n, m, p) / max(n, 1)
        msgs = mfbc_latency_messages(n, m, p) / max(n, 1)
        ops = m * depth
        overhead = 2.0 * depth * cost.product_overhead
        return (
            words * cost.beta
            + msgs * cost.alpha
            + ops / cost.compute_rate
            + overhead
        )

    def units(self, algorithm: str, params: dict) -> float:
        """How many source-sweep equivalents the query costs."""
        if algorithm == "bc":
            return float(self._n)
        if algorithm == "approx_bc":
            return float(params.get("samples", 1))
        if algorithm == "adaptive_bc":
            from repro.core.approx import planned_sample_bound

            return float(
                max(
                    planned_sample_bound(
                        self._n,
                        float(params.get("epsilon", 0.1)),
                        float(params.get("delta", 0.1)),
                    ),
                    1,
                )
            )
        return 1.0

    def estimate(self, algorithm: str, params: dict) -> float:
        """Modeled seconds this query will charge to the ledger."""
        with self._lock:
            rate = self._per_unit.get(algorithm)
        if rate is None:
            rate = self._baseline_per_source()
        return self.units(algorithm, params) * rate

    def estimate_memory_words(
        self, algorithm: str, params: dict, *, width: float | None = None
    ) -> float:
        """Modeled per-rank peak words for the sweep answering this query.

        Theorem 5.1's memory form: the resting adjacency footprint
        ``M = O(c·m/p)`` plus the ``n·n_b/p`` frontier/score working set
        of an ``n_b``-wide batch.  ``width`` defaults to the query's
        source-sweep units (clamped to ``n``); pass ``width=1`` for the
        floor the memory ladder can shrink a sweep down to.
        """
        from repro.analysis.theory import mfbc_memory_words

        with self._lock:
            n, m = self._n, self._m
        p = max(int(self.machine.p), 1)
        if width is None:
            width = self.units(algorithm, params)
        nb = min(max(float(width), 1.0), float(max(n, 1)))
        return mfbc_memory_words(n, m, p) + n * nb / p

    def observe(
        self, algorithm: str, units: float, modeled_seconds: float
    ) -> None:
        """Fold one completed batch's charged cost into the EWMA."""
        if units <= 0 or modeled_seconds < 0:
            return
        per = modeled_seconds / units
        with self._lock:
            prev = self._per_unit.get(algorithm)
            if prev is None:
                self._per_unit[algorithm] = per
            else:
                self._per_unit[algorithm] = prev + self.smoothing * (per - prev)
