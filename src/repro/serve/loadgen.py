"""Seeded load generator for the serving layer (bench + CI smoke).

Drives a :class:`~repro.serve.BCService` — directly in-process or through
the HTTP front end — with a deterministic mixed query stream: mostly
single-source BC (the coalescer's bread and butter) with BFS/SSSP/widest,
sampled-BC, and whole-graph queries sprinkled in.  Sources are drawn from
a skewed popularity distribution (a hot set plus a uniform tail), so the
stream exercises both the cache (repeats) and the coalescer (distinct
concurrent sources).

Run standalone as the CI smoke::

    python -m repro.serve.loadgen --queries 120 --concurrency 8 \
        --http --faults seed:3,crash@40:1 --elastic replica

which exits non-zero when any query fails — injected faults must recover
transparently, never surface to a client.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.serve.service import BCService
from repro.utils.rng import as_rng

__all__ = [
    "LoadReport",
    "generate_queries",
    "run_load",
    "main",
    "DEFAULT_MIX",
    "OUTCOMES",
]

#: default algorithm mix (weights; normalized at draw time)
DEFAULT_MIX: dict[str, float] = {
    "bc_source": 0.55,
    "bfs": 0.15,
    "sssp": 0.10,
    "widest": 0.05,
    "approx_bc": 0.05,
    "connected": 0.05,
    "triangles": 0.05,
}


#: per-query outcome labels clients classify into
OUTCOMES = ("done", "degraded", "shed", "expired", "failed")


@dataclass
class LoadReport:
    """What the load run measured (latencies in wall seconds).

    ``completed`` counts every answered query (exact *and* degraded);
    ``degraded`` is the brownout subset of those.  ``shed`` submissions
    were rejected by admission control (HTTP 503 / ``AdmissionError``) —
    they are the overload design working, not failures — and ``expired``
    queries blew their deadline.  Latency percentiles are computed over
    completed queries only, so sheds (which return in microseconds) never
    flatter the tail.
    """

    queries: int
    completed: int
    failed: int
    wall_seconds: float
    latencies: list[float] = field(default_factory=list, repr=False)
    cache_hit_rate: float = 0.0
    coalescing_factor: float = 0.0
    batches: int = 0
    shed: int = 0
    degraded: int = 0
    expired: int = 0
    offered_qps: float | None = None

    @property
    def throughput_qps(self) -> float:
        return self.queries / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def goodput_qps(self) -> float:
        """Answered queries per second (degraded answers still count)."""
        return self.completed / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def percentile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies), q))

    def summary(self) -> str:
        return (
            f"{self.queries} queries in {self.wall_seconds:.2f}s "
            f"({self.throughput_qps:.1f} q/s offered, "
            f"{self.goodput_qps:.1f} q/s goodput); "
            f"p50 {self.percentile(50) * 1e3:.2f} ms, "
            f"p99 {self.percentile(99) * 1e3:.2f} ms; "
            f"{self.failed} failed, {self.shed} shed, "
            f"{self.degraded} degraded, {self.expired} expired; "
            f"cache hit-rate {self.cache_hit_rate:.1%}; "
            f"coalescing factor {self.coalescing_factor:.2f} "
            f"({self.batches} sweeps)"
        )


def generate_queries(
    n_queries: int,
    n_vertices: int,
    *,
    seed: int = 0,
    mix: dict[str, float] | None = None,
    hot_fraction: float = 0.05,
    hot_probability: float = 0.5,
) -> list[dict]:
    """A deterministic stream of query specs (dicts for ``submit(**spec)``)."""
    rng = as_rng(seed)
    mix = mix or DEFAULT_MIX
    names = sorted(mix)
    weights = np.array([mix[k] for k in names], dtype=np.float64)
    weights = weights / weights.sum()
    hot = rng.choice(n_vertices, size=max(1, int(n_vertices * hot_fraction)), replace=False)
    specs: list[dict] = []
    for _ in range(n_queries):
        algorithm = names[int(rng.choice(len(names), p=weights))]
        spec: dict = {"algorithm": algorithm}
        if algorithm in ("bc_source", "bfs", "sssp", "widest"):
            if rng.random() < hot_probability:
                spec["source"] = int(hot[int(rng.integers(len(hot)))])
            else:
                spec["source"] = int(rng.integers(n_vertices))
        elif algorithm == "approx_bc":
            spec["samples"] = int(min(n_vertices, 8))
            spec["seed"] = int(rng.integers(4))
        specs.append(spec)
    return specs


# -- clients ------------------------------------------------------------------


class DirectClient:
    """Submits straight into the service object (in-process load)."""

    def __init__(
        self, service: BCService, timeout: float = 120.0, client: str | None = None
    ) -> None:
        self.service = service
        self.timeout = timeout
        self.client = client

    def run_one(self, spec: dict) -> tuple[float, str]:
        from repro.serve.overload import AdmissionError
        from repro.serve.service import QueryError

        t0 = time.perf_counter()
        try:
            qid = self.service.submit(**spec, client=self.client)
        except AdmissionError:
            return time.perf_counter() - t0, "shed"
        try:
            self.service.result(qid, timeout=self.timeout)
            status = self.service.poll(qid)
            outcome = "degraded" if status.get("degraded") else "done"
        except QueryError as exc:
            outcome = "expired" if exc.state == "expired" else "failed"
        except Exception:
            outcome = "failed"
        return time.perf_counter() - t0, outcome

    def stats(self) -> dict:
        return self.service.stats()


class HTTPClient:
    """Submits through the HTTP front end (end-to-end load)."""

    def __init__(
        self, base_url: str, timeout: float = 120.0, client: str | None = None
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.client = client

    def _request(self, method: str, path: str, body: dict | None = None) -> dict:
        data = json.dumps(body).encode() if body is not None else None
        headers = {"Content-Type": "application/json"}
        if self.client is not None:
            headers["X-Client-Id"] = self.client
        req = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers=headers,
        )
        with urllib.request.urlopen(req, timeout=self.timeout) as resp:
            return json.loads(resp.read().decode())

    def run_one(self, spec: dict) -> tuple[float, str]:
        import urllib.error

        t0 = time.perf_counter()
        try:
            status = self._request(
                "POST",
                "/v1/query",
                {**spec, "wait": True, "timeout": self.timeout},
            )
            state = status.get("state")
            if state == "done":
                outcome = "degraded" if status.get("degraded") else "done"
            elif state == "expired":
                outcome = "expired"
            else:
                outcome = "failed"
        except urllib.error.HTTPError as exc:
            outcome = "shed" if exc.code == 503 else "failed"
        except Exception:
            outcome = "failed"
        return time.perf_counter() - t0, outcome

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")


def run_load(
    client,
    specs: list[dict],
    *,
    concurrency: int = 8,
    offered_qps: float | None = None,
) -> LoadReport:
    """Fire ``specs`` at ``client`` from a thread pool; measure latencies.

    Closed-loop by default: ``concurrency`` workers each issue the next
    query as soon as their previous one returns (throughput self-limits to
    what the service can drain).  With ``offered_qps`` the run is paced
    open-loop: query *i* is released at ``t0 + i/offered_qps`` regardless
    of completions, which is how you push a service past saturation — the
    overload soak's arrival model.
    """
    if concurrency <= 0:
        raise ValueError(f"concurrency must be positive, got {concurrency}")
    if offered_qps is not None and offered_qps <= 0:
        raise ValueError(f"offered_qps must be positive, got {offered_qps}")
    t0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        if offered_qps is None:
            outcomes = list(pool.map(client.run_one, specs))
        else:
            futures = []
            for i, spec in enumerate(specs):
                release = t0 + i / offered_qps
                delay = release - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                futures.append(pool.submit(client.run_one, spec))
            outcomes = [f.result() for f in futures]
    wall = time.perf_counter() - t0
    stats = client.stats()
    cache = stats.get("cache", {})
    tally = {k: 0 for k in OUTCOMES}
    for _, outcome in outcomes:
        tally[outcome] = tally.get(outcome, 0) + 1
    return LoadReport(
        queries=len(specs),
        completed=tally["done"] + tally["degraded"],
        failed=tally["failed"],
        wall_seconds=wall,
        latencies=[
            lat for lat, outcome in outcomes if outcome in ("done", "degraded")
        ],
        cache_hit_rate=float(cache.get("hit_rate", 0.0)),
        coalescing_factor=float(stats.get("coalescing_factor", 0.0)),
        batches=int(stats.get("batches", 0)),
        shed=tally["shed"],
        degraded=tally["degraded"],
        expired=tally["expired"],
        offered_qps=offered_qps,
    )


# -- CLI entry (the CI smoke) -------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serve.loadgen",
        description="seeded load generator / smoke test for repro.serve",
    )
    parser.add_argument("--queries", type=int, default=120)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=int, default=8, help="log2 vertices (R-MAT)")
    parser.add_argument("--degree", type=int, default=8)
    parser.add_argument("--p", type=int, default=4, help="simulated ranks")
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--batch-window", type=float, default=0.005)
    parser.add_argument("--http", action="store_true", help="drive via the HTTP front end")
    parser.add_argument("--faults", default=None, help="fault-injection spec")
    parser.add_argument("--elastic", default=None, help="elastic recovery policy")
    parser.add_argument("--executor", default=None)
    parser.add_argument("--check", default=None)
    args = parser.parse_args(argv)

    from repro.graphs import rmat_graph

    graph = rmat_graph(args.scale, args.degree, seed=args.seed)
    specs = generate_queries(args.queries, graph.n, seed=args.seed)
    service = BCService(
        graph,
        p=args.p,
        faults=args.faults,
        elastic=args.elastic,
        executor=args.executor,
        check=args.check,
        max_batch=args.max_batch,
        batch_window=args.batch_window,
    )
    server = None
    try:
        if args.http:
            from repro.serve.http import serve_http

            server = serve_http(service, port=0)
            server.start_background()
            client = HTTPClient(server.address)
            print(f"HTTP front end at {server.address}")
        else:
            client = DirectClient(service)
        report = run_load(client, specs, concurrency=args.concurrency)
    finally:
        if server is not None:
            server.shutdown()
        service.close()
    print(report.summary())
    if service.machine.faults is not None:
        print(
            f"faults: {service.machine.faults.injected} injected, "
            f"{len(service.machine.recoveries)} elastic recoveries"
        )
    if report.failed:
        print(f"FAIL: {report.failed} queries did not complete", file=sys.stderr)
        return 1
    print("PASS: zero failed queries")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by the CI smoke
    sys.exit(main())
