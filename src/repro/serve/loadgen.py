"""Seeded load generator for the serving layer (bench + CI smoke).

Drives a :class:`~repro.serve.BCService` — directly in-process or through
the HTTP front end — with a deterministic mixed query stream: mostly
single-source BC (the coalescer's bread and butter) with BFS/SSSP/widest,
sampled-BC, and whole-graph queries sprinkled in.  Sources are drawn from
a skewed popularity distribution (a hot set plus a uniform tail), so the
stream exercises both the cache (repeats) and the coalescer (distinct
concurrent sources).

Run standalone as the CI smoke::

    python -m repro.serve.loadgen --queries 120 --concurrency 8 \
        --http --faults seed:3,crash@40:1 --elastic replica

which exits non-zero when any query fails — injected faults must recover
transparently, never surface to a client.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.serve.service import BCService
from repro.utils.rng import as_rng

__all__ = ["LoadReport", "generate_queries", "run_load", "main", "DEFAULT_MIX"]

#: default algorithm mix (weights; normalized at draw time)
DEFAULT_MIX: dict[str, float] = {
    "bc_source": 0.55,
    "bfs": 0.15,
    "sssp": 0.10,
    "widest": 0.05,
    "approx_bc": 0.05,
    "connected": 0.05,
    "triangles": 0.05,
}


@dataclass
class LoadReport:
    """What the load run measured (latencies in wall seconds)."""

    queries: int
    completed: int
    failed: int
    wall_seconds: float
    latencies: list[float] = field(default_factory=list, repr=False)
    cache_hit_rate: float = 0.0
    coalescing_factor: float = 0.0
    batches: int = 0

    @property
    def throughput_qps(self) -> float:
        return self.queries / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def percentile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies), q))

    def summary(self) -> str:
        return (
            f"{self.queries} queries in {self.wall_seconds:.2f}s "
            f"({self.throughput_qps:.1f} q/s); "
            f"p50 {self.percentile(50) * 1e3:.2f} ms, "
            f"p99 {self.percentile(99) * 1e3:.2f} ms; "
            f"{self.failed} failed; "
            f"cache hit-rate {self.cache_hit_rate:.1%}; "
            f"coalescing factor {self.coalescing_factor:.2f} "
            f"({self.batches} sweeps)"
        )


def generate_queries(
    n_queries: int,
    n_vertices: int,
    *,
    seed: int = 0,
    mix: dict[str, float] | None = None,
    hot_fraction: float = 0.05,
    hot_probability: float = 0.5,
) -> list[dict]:
    """A deterministic stream of query specs (dicts for ``submit(**spec)``)."""
    rng = as_rng(seed)
    mix = mix or DEFAULT_MIX
    names = sorted(mix)
    weights = np.array([mix[k] for k in names], dtype=np.float64)
    weights = weights / weights.sum()
    hot = rng.choice(n_vertices, size=max(1, int(n_vertices * hot_fraction)), replace=False)
    specs: list[dict] = []
    for _ in range(n_queries):
        algorithm = names[int(rng.choice(len(names), p=weights))]
        spec: dict = {"algorithm": algorithm}
        if algorithm in ("bc_source", "bfs", "sssp", "widest"):
            if rng.random() < hot_probability:
                spec["source"] = int(hot[int(rng.integers(len(hot)))])
            else:
                spec["source"] = int(rng.integers(n_vertices))
        elif algorithm == "approx_bc":
            spec["samples"] = int(min(n_vertices, 8))
            spec["seed"] = int(rng.integers(4))
        specs.append(spec)
    return specs


# -- clients ------------------------------------------------------------------


class DirectClient:
    """Submits straight into the service object (in-process load)."""

    def __init__(self, service: BCService, timeout: float = 120.0) -> None:
        self.service = service
        self.timeout = timeout

    def run_one(self, spec: dict) -> tuple[float, bool]:
        t0 = time.perf_counter()
        qid = self.service.submit(**spec)
        try:
            self.service.result(qid, timeout=self.timeout)
            ok = True
        except Exception:
            ok = False
        return time.perf_counter() - t0, ok

    def stats(self) -> dict:
        return self.service.stats()


class HTTPClient:
    """Submits through the HTTP front end (end-to-end load)."""

    def __init__(self, base_url: str, timeout: float = 120.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(self, method: str, path: str, body: dict | None = None) -> dict:
        data = json.dumps(body).encode() if body is not None else None
        req = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req, timeout=self.timeout) as resp:
            return json.loads(resp.read().decode())

    def run_one(self, spec: dict) -> tuple[float, bool]:
        t0 = time.perf_counter()
        try:
            status = self._request(
                "POST",
                "/v1/query",
                {**spec, "wait": True, "timeout": self.timeout},
            )
            ok = status.get("state") == "done"
        except Exception:
            ok = False
        return time.perf_counter() - t0, ok

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")


def run_load(
    client,
    specs: list[dict],
    *,
    concurrency: int = 8,
) -> LoadReport:
    """Fire ``specs`` at ``client`` from a thread pool; measure latencies."""
    if concurrency <= 0:
        raise ValueError(f"concurrency must be positive, got {concurrency}")
    t0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        outcomes = list(pool.map(client.run_one, specs))
    wall = time.perf_counter() - t0
    stats = client.stats()
    cache = stats.get("cache", {})
    return LoadReport(
        queries=len(specs),
        completed=sum(1 for _, ok in outcomes if ok),
        failed=sum(1 for _, ok in outcomes if not ok),
        wall_seconds=wall,
        latencies=[lat for lat, _ in outcomes],
        cache_hit_rate=float(cache.get("hit_rate", 0.0)),
        coalescing_factor=float(stats.get("coalescing_factor", 0.0)),
        batches=int(stats.get("batches", 0)),
    )


# -- CLI entry (the CI smoke) -------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serve.loadgen",
        description="seeded load generator / smoke test for repro.serve",
    )
    parser.add_argument("--queries", type=int, default=120)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=int, default=8, help="log2 vertices (R-MAT)")
    parser.add_argument("--degree", type=int, default=8)
    parser.add_argument("--p", type=int, default=4, help="simulated ranks")
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--batch-window", type=float, default=0.005)
    parser.add_argument("--http", action="store_true", help="drive via the HTTP front end")
    parser.add_argument("--faults", default=None, help="fault-injection spec")
    parser.add_argument("--elastic", default=None, help="elastic recovery policy")
    parser.add_argument("--executor", default=None)
    parser.add_argument("--check", default=None)
    args = parser.parse_args(argv)

    from repro.graphs import rmat_graph

    graph = rmat_graph(args.scale, args.degree, seed=args.seed)
    specs = generate_queries(args.queries, graph.n, seed=args.seed)
    service = BCService(
        graph,
        p=args.p,
        faults=args.faults,
        elastic=args.elastic,
        executor=args.executor,
        check=args.check,
        max_batch=args.max_batch,
        batch_window=args.batch_window,
    )
    server = None
    try:
        if args.http:
            from repro.serve.http import serve_http

            server = serve_http(service, port=0)
            server.start_background()
            client = HTTPClient(server.address)
            print(f"HTTP front end at {server.address}")
        else:
            client = DirectClient(service)
        report = run_load(client, specs, concurrency=args.concurrency)
    finally:
        if server is not None:
            server.shutdown()
        service.close()
    print(report.summary())
    if service.machine.faults is not None:
        print(
            f"faults: {service.machine.faults.injected} injected, "
            f"{len(service.machine.recoveries)} elastic recoveries"
        )
    if report.failed:
        print(f"FAIL: {report.failed} queries did not complete", file=sys.stderr)
        return 1
    print("PASS: zero failed queries")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by the CI smoke
    sys.exit(main())
