"""Query objects and the MFBC batch coalescer.

The coalescer is the serving layer's throughput lever: compatible
source-vertex queries — same algorithm, same non-source parameters — are
drained into one shared frontier sweep, so ``k`` concurrent single-source
BC queries cost one ``k``-wide MFBF+MFBr pass instead of ``k`` passes
(§5.3's batching economics applied to a query mix instead of a fixed
source schedule).

Compatibility deliberately excludes the graph version: a query is always
answered against the version current when its batch executes (the service
holds the execution lock across mutations), and its cache key is stamped
then.  Two queries can therefore only land in one batch when they will be
computed on the same graph.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from enum import Enum

__all__ = ["Query", "QueryState", "Coalescer"]

_IDS = itertools.count(1)


class QueryState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    EXPIRED = "expired"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (
            QueryState.DONE,
            QueryState.FAILED,
            QueryState.EXPIRED,
            QueryState.CANCELLED,
        )


@dataclass
class Query:
    """One in-flight request against the service."""

    algorithm: str
    params: dict
    deadline: float | None = None  # modeled-seconds budget, per execution
    id: str = field(default_factory=lambda: f"q{next(_IDS)}")
    state: QueryState = QueryState.QUEUED
    result: object = None
    error: str | None = None
    cache_hit: bool = False
    graph_version: int | None = None  # version the answer was computed at
    attempts: int = 0
    batch_size: int = 0  # width of the sweep that answered it
    #: a-priori modeled-seconds cost charged to the admission controller
    cost_estimate: float = 0.0
    #: a-priori modeled per-rank peak words charged to the admission
    #: controller (Theorem 5.1 memory forms)
    cost_memory_words: float = 0.0
    #: True when answered in brownout (downgraded algorithm or stale cache)
    degraded: bool = False
    #: the algorithm the client asked for, when brownout rewrote it
    requested_algorithm: str | None = None
    #: graph version a stale brownout answer was computed at, if any
    stale_version: int | None = None
    #: rate-limit principal (HTTP X-Client-Id / remote address)
    client: str | None = None
    #: admission accounting latch — set once the cost has been released
    admission_released: bool = field(default=False, repr=False)
    submitted_wall: float = field(default_factory=time.perf_counter)
    queue_seconds: float = 0.0
    compute_seconds: float = 0.0
    done: threading.Event = field(default_factory=threading.Event)

    @property
    def coalesce_key(self) -> tuple:
        """Batch-compatibility key: algorithm + params minus the source."""
        return (
            self.algorithm,
            tuple(sorted((k, v) for k, v in self.params.items() if k != "source")),
        )

    def finish(
        self,
        state: QueryState,
        *,
        result=None,
        error: str | None = None,
    ) -> None:
        self.result = result
        self.error = error
        self.state = state
        self.done.set()


class Coalescer:
    """A FIFO of queued queries that hands out compatible batches.

    ``take`` blocks until at least one query is pending (or the coalescer
    closes), optionally lingers ``window`` wall-seconds so concurrent
    submitters can pile into the same sweep, then returns the oldest query
    plus every compatible queued query after it, up to ``max_batch``.
    Cancelled queries are dropped on the floor during draining.
    """

    def __init__(self, *, max_batch: int = 64, window: float = 0.0) -> None:
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if window < 0:
            raise ValueError(f"window must be non-negative, got {window}")
        self.max_batch = int(max_batch)
        self.window = float(window)
        self._pending: deque[Query] = deque()
        self._cond = threading.Condition()
        self._closed = False

    def __len__(self) -> int:
        with self._cond:
            return len(self._pending)

    def put(self, query: Query) -> None:
        with self._cond:
            if self._closed:
                raise RuntimeError("coalescer is closed")
            self._pending.append(query)
            self._cond.notify_all()

    def putback(self, queries: list[Query]) -> None:
        """Requeue ``queries`` at the front (deadline survivors, retries)."""
        with self._cond:
            for q in reversed(queries):
                self._pending.appendleft(q)
            self._cond.notify_all()

    def remove(self, query: Query) -> bool:
        """Withdraw a queued query (the cancel path)."""
        with self._cond:
            try:
                self._pending.remove(query)
                return True
            except ValueError:
                return False

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def drain(self) -> list[Query]:
        """Atomically empty the queue (the drain-timeout abandonment path)."""
        with self._cond:
            out = list(self._pending)
            self._pending.clear()
            return out

    def take(self, timeout: float | None = None) -> list[Query] | None:
        """The next compatible batch, or None on timeout / closed-and-empty."""
        deadline = None if timeout is None else time.perf_counter() + timeout
        with self._cond:
            while not self._pending:
                if self._closed:
                    return None
                remaining = None if deadline is None else deadline - time.perf_counter()
                if remaining is not None and remaining <= 0:
                    return None
                self._cond.wait(remaining)
        if self.window > 0:
            # linger so concurrent submitters can join this sweep
            linger_until = time.perf_counter() + self.window
            with self._cond:
                while len(self._pending) < self.max_batch:
                    remaining = linger_until - time.perf_counter()
                    if remaining <= 0 or self._closed:
                        break
                    self._cond.wait(remaining)
        with self._cond:
            batch: list[Query] = []
            key = None
            kept: deque[Query] = deque()
            while self._pending:
                q = self._pending.popleft()
                if q.state is QueryState.CANCELLED:
                    continue
                if key is None:
                    key = q.coalesce_key
                if q.coalesce_key == key and len(batch) < self.max_batch:
                    batch.append(q)
                else:
                    kept.append(q)
            kept.extend(self._pending)
            self._pending = kept
            return batch or None
