"""A thin stdlib HTTP/JSON front end over :class:`~repro.serve.BCService`.

Endpoints (all JSON):

* ``POST /v1/query`` — submit.  Body: ``{"algorithm": "bc_source",
  "source": 3}`` plus optional ``samples``/``seed`` (approx_bc),
  ``epsilon``/``delta``/``seed`` (adaptive_bc),
  ``deadline`` (modeled-seconds budget), and ``"wait": true`` to block for
  the result instead of polling.  Returns ``{"id": "q7", "state": ...}``.
* ``GET /v1/query/<id>`` — poll; terminal states carry ``result``/``error``.
* ``DELETE /v1/query/<id>`` — cancel a queued query.
* ``POST /v1/graph`` — replace the served graph: ``{"n": 8, "edges":
  [[0, 1], [1, 2, 0.5], ...], "directed": false}``.  Bumps the version and
  invalidates the cache.
* ``GET /v1/stats`` — service counters, cache stats, coalescing factor.
* ``GET /v1/healthz`` — the truthful health model: 200 with the full
  :meth:`~repro.serve.BCService.health` body while the service is live
  (``ok``/``degraded``), 503 when it is not (``overloaded``/``draining``/
  ``dead`` — e.g. the dispatcher thread died and the watchdog has not yet
  revived it).

Overload surfaces here as **HTTP 503 + Retry-After**: a shed submission
(:class:`~repro.serve.overload.AdmissionError`) returns
``{"error": ..., "reason": "overloaded|queue_full|queue_seconds|"
"rate_limited|circuit_open|draining", "retry_after": seconds}`` with the
``Retry-After`` header set from the admission controller's drain-rate
estimate.  Brownout-degraded answers carry ``degraded: true`` (plus
``requested_algorithm``/``stale_version``) in the query status.  The
``X-Client-Id`` request header (falling back to the peer address) names
the per-client rate-limit principal.

The server is a ``ThreadingHTTPServer``: handler threads only enqueue,
poll, and read the cache — all actual computation stays on the service's
single dispatcher thread, so concurrency here means request admission
concurrency (and coalescing opportunity), never ledger races.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from repro.serve.overload import AdmissionError
from repro.serve.service import BCService, QueryState

__all__ = ["ServiceHTTPServer", "serve_http"]


def _jsonable(value):
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, float) and not np.isfinite(value):
        return repr(value)
    return value


def _sanitize_floats(obj):
    """JSON has no inf/nan; encode them as strings the way numpy prints."""
    if isinstance(obj, float) and not np.isfinite(obj):
        return "inf" if obj > 0 else ("-inf" if obj < 0 else "nan")
    if isinstance(obj, list):
        return [_sanitize_floats(v) for v in obj]
    if isinstance(obj, dict):
        return {k: _sanitize_floats(v) for k, v in obj.items()}
    return obj


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1.0"

    @property
    def service(self) -> BCService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, fmt, *args):  # pragma: no cover - silence stderr
        if self.server.verbose:  # type: ignore[attr-defined]
            super().log_message(fmt, *args)

    # -- plumbing ------------------------------------------------------------

    def _send(
        self, status: int, payload: dict, headers: dict[str, str] | None = None
    ) -> None:
        body = json.dumps(_sanitize_floats(_jsonable(payload))).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        data = json.loads(raw.decode())
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    def _error(self, status: int, message: str) -> None:
        self._send(status, {"error": message})

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:
        try:
            if self.path == "/v1/healthz":
                health = self.service.health()
                health["ok"] = health["live"]
                self._send(200 if health["live"] else 503, health)
            elif self.path == "/v1/stats":
                self._send(200, self.service.stats())
            elif self.path.startswith("/v1/query/"):
                qid = self.path.rsplit("/", 1)[1]
                self._send(200, self.service.poll(qid))
            else:
                self._error(404, f"no such endpoint: {self.path}")
        except KeyError as exc:
            self._error(404, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            self._error(500, f"{type(exc).__name__}: {exc}")

    def do_POST(self) -> None:
        try:
            body = self._read_json()
            if self.path == "/v1/query":
                self._post_query(body)
            elif self.path == "/v1/graph":
                self._post_graph(body)
            else:
                self._error(404, f"no such endpoint: {self.path}")
        except (ValueError, KeyError, json.JSONDecodeError) as exc:
            self._error(400, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            self._error(500, f"{type(exc).__name__}: {exc}")

    def do_DELETE(self) -> None:
        try:
            if self.path.startswith("/v1/query/"):
                qid = self.path.rsplit("/", 1)[1]
                self._send(200, {"id": qid, "cancelled": self.service.cancel(qid)})
            else:
                self._error(404, f"no such endpoint: {self.path}")
        except KeyError as exc:
            self._error(404, str(exc))

    def _post_query(self, body: dict) -> None:
        algorithm = body.get("algorithm")
        if not algorithm:
            raise ValueError("missing required field: algorithm")
        client = self.headers.get("X-Client-Id") or self.client_address[0]
        try:
            qid = self.service.submit(
                str(algorithm),
                source=body.get("source"),
                samples=body.get("samples"),
                seed=int(body.get("seed", 0)),
                epsilon=body.get("epsilon"),
                delta=body.get("delta"),
                deadline=body.get("deadline"),
                client=client,
            )
        except AdmissionError as exc:
            headers = {}
            if exc.retry_after is not None:
                headers["Retry-After"] = f"{max(exc.retry_after, 0.0):.3f}"
            self._send(
                503,
                {
                    "error": str(exc),
                    "reason": exc.reason,
                    "retry_after": exc.retry_after,
                },
                headers,
            )
            return
        if body.get("wait"):
            timeout = float(body.get("timeout", 60.0))
            self.service._get(qid).done.wait(timeout)
            self._send(200, self.service.poll(qid))
        else:
            status = self.service.poll(qid)
            # a submit-time cache hit already carries the answer
            code = 200 if status["state"] == QueryState.DONE.value else 202
            self._send(code, status)

    def _post_graph(self, body: dict) -> None:
        from repro.graphs.graph import Graph

        n = body.get("n")
        edges = body.get("edges")
        if n is None or edges is None:
            raise ValueError("graph update requires fields: n, edges")
        edges = [list(e) for e in edges]
        src = np.array([e[0] for e in edges], dtype=np.int64)
        dst = np.array([e[1] for e in edges], dtype=np.int64)
        weighted = any(len(e) > 2 for e in edges)
        weight = (
            np.array([float(e[2]) if len(e) > 2 else 1.0 for e in edges])
            if weighted
            else None
        )
        graph = Graph(
            int(n), src, dst, weight, directed=bool(body.get("directed", False))
        )
        version = self.service.update_graph(graph)
        self._send(200, {"graph_version": version, "n": graph.n, "m": graph.m})


class ServiceHTTPServer(ThreadingHTTPServer):
    """The service's HTTP front end; ``serve_forever()`` to run."""

    daemon_threads = True

    def __init__(
        self,
        service: BCService,
        host: str = "127.0.0.1",
        port: int = 8734,
        *,
        verbose: bool = False,
    ) -> None:
        super().__init__((host, port), _Handler)
        self.service = service
        self.verbose = verbose

    @property
    def address(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def start_background(self) -> threading.Thread:
        """Run ``serve_forever`` on a daemon thread (tests, load benches)."""
        thread = threading.Thread(
            target=self.serve_forever, name="bcservice-http", daemon=True
        )
        thread.start()
        return thread


def serve_http(
    service: BCService,
    host: str = "127.0.0.1",
    port: int = 8734,
    *,
    verbose: bool = False,
) -> ServiceHTTPServer:
    """Bind (port 0 picks a free port) — call ``serve_forever()`` or
    ``start_background()`` on the returned server."""
    return ServiceHTTPServer(service, host, port, verbose=verbose)
