"""``BCService``: betweenness centrality (and friends) as a service.

One-shot CLI/bench runs rebuild the simulated machine, redistribute the
graph, and compute from scratch on every invocation.  The service instead
*pins* a distributed graph on a warm :class:`~repro.machine.Machine` —
replication caches and elastic redundancy stay armed between requests —
and answers a concurrent query mix:

* ``bc`` — exact betweenness centrality of every vertex;
* ``bc_source`` — one source's dependency contribution (the unit the
  coalescer turns into shared MFBC sweeps);
* ``approx_bc`` — sampled BC (``samples``/``seed`` parameters expose the
  latency/accuracy knob per request);
* ``bfs`` / ``sssp`` / ``widest`` — per-source kernels from
  :mod:`repro.apps`, coalesced the same way;
* ``connected`` / ``triangles`` — whole-graph kernels, answered from the
  version cache after the first computation.

Execution is single-flight: one dispatcher thread drains the coalescer and
runs each batch on the machine, so the ledger stays a coherent single
timeline while any number of client threads submit/poll/cancel.  Faults
compose with serving: a :class:`~repro.faults.RankFailure` mid-batch takes
the existing elastic-recovery path (grid shrink + block repair) and the
batch transparently re-executes on the survivors; per-query ``deadline``
budgets reuse ``Machine(deadline=)`` — the strictest member of a batch
arms the machine's modeled-time guard, and on expiry only the blown
queries fail while the rest retry.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

import numpy as np

from repro.core.mfbc import mfbc, mfbc_per_source
from repro.faults.plan import DeadlineExceeded, FaultError, RankFailure
from repro.graphs.graph import Graph
from repro.obs import api as obs
from repro.serve.cache import ScoreCache, cache_key
from repro.serve.coalescer import Coalescer, Query, QueryState

if TYPE_CHECKING:
    from repro.machine.machine import Machine

__all__ = ["BCService", "QueryError", "ALGORITHMS", "SOURCE_ALGORITHMS"]

#: queries that carry a ``source`` parameter and coalesce into shared sweeps
SOURCE_ALGORITHMS = frozenset({"bc_source", "bfs", "sssp", "widest"})
#: whole-graph queries (no source); identical concurrent requests dedupe
GRAPH_ALGORITHMS = frozenset({"bc", "approx_bc", "connected", "triangles"})
ALGORITHMS = SOURCE_ALGORITHMS | GRAPH_ALGORITHMS


class QueryError(RuntimeError):
    """Raised by :meth:`BCService.result` when the query did not succeed."""

    def __init__(self, query_id: str, state: str, message: str) -> None:
        super().__init__(f"query {query_id} {state}: {message}")
        self.query_id = query_id
        self.state = state


class BCService:
    """A persistent query service over one pinned distributed graph.

    Parameters
    ----------
    graph:
        The graph to serve.  Replaceable at runtime via
        :meth:`update_graph`, which bumps the graph version and invalidates
        the score cache.
    machine:
        A pre-built :class:`~repro.machine.Machine` (keyword-only).  When
        None, one is built from ``p`` / ``executor`` / ``faults`` /
        ``elastic`` / ``deadline``.
    p, policy, check, executor, faults, elastic, deadline, kernel:
        Forwarded to the machine / engine exactly as the CLI does.
    batch_window:
        Wall-seconds the dispatcher lingers after the first queued query so
        concurrent submitters coalesce into the same sweep (0 disables).
    max_batch:
        Maximum sweep width ``k`` — the §5.3 time/storage knob applied to
        the query mix.
    cache_capacity:
        LRU capacity of the versioned score cache.
    retries:
        Batch re-executions allowed per injected non-rank fault (rank
        failures take the elastic path first, which never burns retries).
    """

    def __init__(
        self,
        graph: Graph,
        *,
        machine: "Machine | None" = None,
        p: int = 4,
        policy=None,
        check=None,
        executor=None,
        faults=None,
        elastic=None,
        deadline: float | None = None,
        kernel: str | None = None,
        batch_window: float = 0.002,
        max_batch: int = 64,
        cache_capacity: int = 4096,
        retries: int = 2,
    ) -> None:
        # deferred imports: repro.dist pulls in the full engine stack
        from repro.dist.engine import DistributedEngine
        from repro.machine.machine import Machine

        if machine is None:
            machine = Machine(
                p,
                executor=executor,
                faults=faults,
                elastic=elastic,
                deadline=deadline,
                kernel=kernel,
            )
        self.machine = machine
        self.engine = DistributedEngine(machine, policy=policy, check=check)
        self.graph = graph
        self.graph_version = 0
        self.retries = int(retries)
        self.cache = ScoreCache(capacity=cache_capacity)
        self.coalescer = Coalescer(max_batch=max_batch, window=batch_window)
        self._queries: dict[str, Query] = {}
        self._registry_lock = threading.Lock()
        #: serializes batch execution against graph mutation
        self._exec_lock = threading.Lock()
        self._pinned: dict[str, object] = {}
        self._counters: dict[str, float] = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "expired": 0,
            "cancelled": 0,
            "batches": 0,
            "swept_sources": 0,
            "recoveries": 0,
            "retries": 0,
        }
        self._closed = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="bcservice-dispatch", daemon=True
        )
        self._dispatcher.start()

    # -- client API ----------------------------------------------------------

    def submit(
        self,
        algorithm: str,
        *,
        source: int | None = None,
        samples: int | None = None,
        seed: int = 0,
        deadline: float | None = None,
    ) -> str:
        """Enqueue a query; returns its id for :meth:`poll` / :meth:`result`.

        ``deadline`` is a modeled-seconds budget for the query's sweep
        (measured from when its batch starts executing on the machine).
        A cache hit at the current graph version completes immediately —
        without touching the machine's ledger.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        params = self._canonical_params(
            algorithm, source=source, samples=samples, seed=seed
        )
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        query = Query(algorithm=algorithm, params=params, deadline=deadline)
        with self._registry_lock:
            self._queries[query.id] = query
            self._counters["submitted"] += 1
        cached = self.cache.get(cache_key(self.graph_version, algorithm, params))
        if cached is not None:
            query.cache_hit = True
            query.graph_version = self.graph_version
            query.finish(QueryState.DONE, result=cached)
            with self._registry_lock:
                self._counters["completed"] += 1
            self._note_query(query)
            return query.id
        self.coalescer.put(query)
        return query.id

    def poll(self, query_id: str) -> dict:
        """Status snapshot: state plus result/error once terminal."""
        q = self._get(query_id)
        out = {
            "id": q.id,
            "algorithm": q.algorithm,
            "params": dict(q.params),
            "state": q.state.value,
            "cache_hit": q.cache_hit,
            "attempts": q.attempts,
            "batch_size": q.batch_size,
            "graph_version": q.graph_version,
            "queue_seconds": q.queue_seconds,
            "compute_seconds": q.compute_seconds,
        }
        if q.state is QueryState.DONE:
            out["result"] = q.result
        elif q.state.terminal:
            out["error"] = q.error
        return out

    def result(self, query_id: str, timeout: float | None = None):
        """Block until the query finishes; return its payload or raise."""
        q = self._get(query_id)
        if not q.done.wait(timeout):
            raise TimeoutError(f"query {query_id} still {q.state.value}")
        if q.state is QueryState.DONE:
            return q.result
        raise QueryError(q.id, q.state.value, q.error or "no detail")

    def cancel(self, query_id: str) -> bool:
        """Withdraw a queued query; running/terminal queries are not touched."""
        q = self._get(query_id)
        if q.state is not QueryState.QUEUED:
            return False
        q.state = QueryState.CANCELLED
        self.coalescer.remove(q)
        q.finish(QueryState.CANCELLED, error="cancelled")
        with self._registry_lock:
            self._counters["cancelled"] += 1
        return True

    def update_graph(self, graph: Graph) -> int:
        """Replace the served graph; returns the new graph version.

        Queued queries are answered against the new version (queries bind
        to the version current when their batch executes); the score cache
        drops every older-version entry and the pinned adjacency layouts
        are rebuilt lazily on the next sweep.
        """
        with self._exec_lock:
            self.graph = graph
            self.graph_version += 1
            self._pinned.clear()
            self.engine.release_invariants()
            self.cache.invalidate(before_version=self.graph_version)
            if obs.enabled():
                obs.count("serve.graph_updates", 1.0)
            return self.graph_version

    def stats(self) -> dict:
        """Service counters + cache stats + coalescing factor."""
        with self._registry_lock:
            counters = dict(self._counters)
        batches = counters["batches"]
        counters["coalescing_factor"] = (
            counters["swept_sources"] / batches if batches else 0.0
        )
        return {
            "graph_version": self.graph_version,
            "queued": len(self.coalescer),
            "p": self.machine.p,
            **counters,
            "cache": self.cache.stats(),
        }

    def close(self, timeout: float | None = 10.0) -> None:
        """Drain queued work, stop the dispatcher, and release the machine."""
        if self._closed:
            return
        self._closed = True
        self.coalescer.close()
        self._dispatcher.join(timeout)
        self.machine.executor.close()

    def __enter__(self) -> "BCService":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- dispatch ------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            batch = self.coalescer.take(timeout=0.05)
            if batch is None:
                if self._closed and not len(self.coalescer):
                    return
                continue
            try:
                self._execute(batch)
            except Exception as exc:  # defensive: never kill the dispatcher
                for q in batch:
                    if not q.state.terminal:
                        self._fail(q, QueryState.FAILED, f"{type(exc).__name__}: {exc}")

    def _execute(self, batch: list[Query]) -> None:
        with self._exec_lock:
            version = self.graph_version
            algorithm = batch[0].algorithm
            now = _wall()
            batch = [q for q in batch if not q.state.terminal]  # late cancels
            if not batch:
                return
            for q in batch:
                q.state = QueryState.RUNNING
                q.queue_seconds = now - q.submitted_wall
            # re-check the cache: an earlier batch may have answered this key
            remaining: list[Query] = []
            for q in batch:
                key = cache_key(version, algorithm, q.params)
                hit = self.cache.peek(key)
                if hit is not None:
                    q.cache_hit = True
                    self._complete(q, hit, version, batch_size=0)
                else:
                    remaining.append(q)
            if not remaining:
                return
            self._execute_live(algorithm, remaining, version)

    def _execute_live(
        self, algorithm: str, queries: list[Query], version: int
    ) -> None:
        """Run one sweep for ``queries`` (all sharing a coalesce key)."""
        machine = self.machine
        saved_deadline = machine.deadline
        budgets = [q.deadline for q in queries if q.deadline is not None]
        start_modeled = machine.ledger.critical_time()
        if budgets:
            batch_budget = start_modeled + min(budgets)
            machine.deadline = (
                batch_budget
                if saved_deadline is None
                else min(saved_deadline, batch_budget)
            )
        for q in queries:
            q.attempts += 1
        t0 = _wall()
        try:
            with obs.span(
                "serve.batch",
                cat="serve",
                algorithm=algorithm,
                size=len(queries),
                version=version,
            ) as sp:
                results = self._compute(algorithm, queries, version)
                if obs.enabled():
                    sp.set(modeled_cost=machine.ledger.critical_time() - start_modeled)
                    obs.count("serve.batches", 1.0, algorithm=algorithm)
                    obs.observe(
                        "serve.batch_size", float(len(queries)), algorithm=algorithm
                    )
        except DeadlineExceeded:
            elapsed = machine.ledger.critical_time() - start_modeled
            expired = [
                q for q in queries if q.deadline is not None and q.deadline <= elapsed
            ]
            if not expired:  # the machine's own global deadline tripped
                for q in queries:
                    self._fail(q, QueryState.EXPIRED, "machine deadline exceeded")
                return
            survivors = [q for q in queries if q not in expired]
            for q in expired:
                self._fail(
                    q,
                    QueryState.EXPIRED,
                    f"deadline {q.deadline}s modeled exceeded ({elapsed:.3e}s elapsed)",
                )
            if survivors:
                with self._registry_lock:
                    self._counters["retries"] += 1
                for q in survivors:
                    q.state = QueryState.QUEUED
                self.coalescer.putback(survivors)
            return
        except FaultError as exc:
            self._handle_fault(queries, exc)
            return
        finally:
            machine.deadline = saved_deadline
        compute = _wall() - t0
        with self._registry_lock:
            self._counters["batches"] += 1
            self._counters["swept_sources"] += len(queries)
        for q in queries:
            q.compute_seconds = compute
            payload = results[q.id]
            self.cache.put(cache_key(version, algorithm, q.params), payload)
            self._complete(q, payload, version, batch_size=len(queries))

    def _handle_fault(self, queries: list[Query], exc: FaultError) -> None:
        """Recover from an injected fault and transparently retry the batch."""
        recovered = False
        if (
            isinstance(exc, RankFailure)
            and getattr(self.machine, "elastic", None) is not None
        ):
            from repro.elastic.recovery import RecoveryError

            try:
                self.engine.recover_from(exc)
                recovered = True
                with self._registry_lock:
                    self._counters["recoveries"] += 1
                if obs.enabled():
                    obs.count("serve.recoveries", 1.0, mode="elastic")
            except RecoveryError:
                recovered = False
        if not recovered:
            # plain retry ladder: reset transient engine state, bounded budget
            max_attempts = self.retries + 1
            if any(q.attempts >= max_attempts for q in queries):
                for q in queries:
                    self._fail(
                        q,
                        QueryState.FAILED,
                        f"{type(exc).__name__} after {q.attempts} attempts",
                    )
                return
            recover = getattr(self.engine, "recover", None)
            if recover is not None:
                recover()
            with self._registry_lock:
                self._counters["retries"] += 1
        # requeue: elastic recovery never burns retry budget (each success
        # strictly shrinks p, so storms terminate — same contract as mfbc)
        if recovered:
            for q in queries:
                q.attempts -= 1
        for q in queries:
            q.state = QueryState.QUEUED
        self.coalescer.putback(queries)

    # -- kernels -------------------------------------------------------------

    def _compute(
        self, algorithm: str, queries: list[Query], version: int
    ) -> dict[str, object]:
        """One sweep answering every query; returns payloads by query id."""
        graph = self.graph
        engine = self.engine
        if algorithm in SOURCE_ALGORITHMS:
            # dedupe repeated sources within the batch: one sweep column each
            sources = sorted({int(q.params["source"]) for q in queries})
            order = {s: i for i, s in enumerate(sources)}
            src = np.asarray(sources, dtype=np.int64)
            if algorithm == "bc_source":
                rows = mfbc_per_source(
                    graph, src, engine=engine, adj=self._pin("weighted")
                )
            elif algorithm == "bfs":
                from repro.apps import bfs_levels

                rows = bfs_levels(graph, src, engine=engine, adj=self._pin("hops"))
            elif algorithm == "sssp":
                from repro.apps import sssp_distances

                rows = sssp_distances(
                    graph, src, engine=engine, adj=self._pin("weighted")
                )
            else:  # widest
                from repro.apps import widest_path_widths

                rows = widest_path_widths(
                    graph, src, engine=engine, adj=self._pin("weighted")
                )
            return {
                q.id: rows[order[int(q.params["source"])]].copy() for q in queries
            }
        if algorithm == "bc":
            res = mfbc(graph, engine=engine, retries=0)
            payload = res.scores
        elif algorithm == "approx_bc":
            from repro.core.approx import approximate_bc

            params = queries[0].params
            payload = approximate_bc(
                graph,
                int(params["samples"]),
                seed=int(params["seed"]),
                engine=engine,
            )
        elif algorithm == "connected":
            from repro.apps import connected_components

            payload = connected_components(graph, engine=engine)
        else:  # triangles
            from repro.apps import triangle_count

            payload = triangle_count(graph, engine=engine)
        return {q.id: payload for q in queries}

    def _pin(self, flavor: str):
        """The pinned engine adjacency for this graph version (built once).

        ``"weighted"`` is the tropical adjacency MFBC/SSSP/widest multiply
        against; ``"hops"`` is the unweighted variant BFS needs.  Pinning
        registers the matrix as loop-invariant, so the selector amortizes
        its replication and elastic redundancy stays armed across queries.
        """
        mat = self._pinned.get(flavor)
        if mat is None:
            if flavor == "hops" and self.graph.weighted:
                mat = self.engine.adjacency(self.graph.unweighted())
            else:
                mat = self.engine.adjacency(self.graph)
            self._pinned[flavor] = mat
            if flavor == "hops" and not self.graph.weighted:
                # unweighted graph: the tropical and hop adjacencies coincide
                self._pinned["weighted"] = mat
        return mat

    # -- bookkeeping ---------------------------------------------------------

    def _canonical_params(
        self,
        algorithm: str,
        *,
        source: int | None,
        samples: int | None,
        seed: int,
    ) -> dict:
        if algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; expected one of "
                f"{sorted(ALGORITHMS)}"
            )
        if algorithm in SOURCE_ALGORITHMS:
            if source is None:
                raise ValueError(f"{algorithm} requires a source vertex")
            if not 0 <= int(source) < self.graph.n:
                raise ValueError(
                    f"source {source} out of range [0, {self.graph.n})"
                )
            return {"source": int(source)}
        if source is not None:
            raise ValueError(f"{algorithm} does not take a source")
        if algorithm == "approx_bc":
            if samples is None:
                raise ValueError("approx_bc requires samples")
            if not 1 <= int(samples) <= self.graph.n:
                raise ValueError(
                    f"samples must be in [1, n={self.graph.n}], got {samples}"
                )
            return {"samples": int(samples), "seed": int(seed)}
        return {}

    def _get(self, query_id: str) -> Query:
        with self._registry_lock:
            q = self._queries.get(query_id)
        if q is None:
            raise KeyError(f"unknown query id {query_id!r}")
        return q

    def _complete(self, q: Query, payload, version: int, *, batch_size: int) -> None:
        if q.state.terminal:
            return  # cancelled while running
        q.graph_version = version
        q.batch_size = batch_size
        q.finish(QueryState.DONE, result=payload)
        with self._registry_lock:
            self._counters["completed"] += 1
        self._note_query(q)

    def _fail(self, q: Query, state: QueryState, message: str) -> None:
        if q.state.terminal:
            return
        q.finish(state, error=message)
        with self._registry_lock:
            self._counters[
                "expired" if state is QueryState.EXPIRED else "failed"
            ] += 1
        self._note_query(q)

    def _note_query(self, q: Query) -> None:
        if not obs.enabled():
            return
        obs.count(
            "serve.queries", 1.0, algorithm=q.algorithm, outcome=q.state.value
        )
        obs.complete(
            "serve.query",
            cat="serve",
            wall_dur=q.queue_seconds + q.compute_seconds,
            args={
                "id": q.id,
                "algorithm": q.algorithm,
                "outcome": q.state.value,
                "cache_hit": q.cache_hit,
                "queue_s": q.queue_seconds,
                "compute_s": q.compute_seconds,
                "batch": q.batch_size,
                "attempts": q.attempts,
            },
        )


def _wall() -> float:
    import time

    return time.perf_counter()
